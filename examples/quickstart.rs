//! Quickstart: train a Wide&Deep CTR model with full HET (hybrid
//! architecture + embedding cache) and compare it against the cache-less
//! hybrid on the same workload.
//!
//! Run with:
//! ```sh
//! cargo run --release --example quickstart
//! ```

use het::prelude::*;

fn run(preset: SystemPreset) -> TrainReport {
    // A scaled-down Criteo-like workload: 26 categorical fields, ~100k
    // embedding keys, Zipf-skewed popularity.
    let mut ctr = CtrConfig::criteo_like(42);
    ctr.n_train = 40_000;
    ctr.n_test = 4_000;
    let dataset = CtrDataset::new(ctr);

    let mut config = TrainerConfig::cluster_a(preset);
    config.dim = 16;
    config.max_iterations = 4_000;
    config.eval_every = 800;

    let mut trainer = Trainer::new(config, dataset, |rng| WideDeep::new(rng, 26, 16, &[64, 32]));
    trainer.run()
}

fn main() {
    println!("== HET quickstart: WDL on a Criteo-like workload, 8 workers ==\n");
    let mut reports = Vec::new();
    for preset in [
        SystemPreset::HetHybrid,
        SystemPreset::HetCache { staleness: 100 },
    ] {
        let report = run(preset);
        println!(
            "{:<12}  sim time {:>8.2}s   AUC {:.4}   epoch time {:>7.2}s   comm fraction {:>5.1}%",
            report.system,
            report.total_sim_time.as_secs_f64(),
            report.final_metric,
            report.epoch_time(),
            100.0 * report.breakdown.communication_fraction(),
        );
        reports.push(report);
    }

    let (hybrid, cached) = (&reports[0], &reports[1]);
    println!(
        "\nHET Cache vs HET Hybrid: {:.2}x faster, {:.1}% embedding communication reduction",
        hybrid.total_sim_time.as_secs_f64() / cached.total_sim_time.as_secs_f64(),
        100.0 * cached.comm.embedding_reduction_vs(&hybrid.comm),
    );
    println!(
        "cache hit rate: {:.1}% over {} lookups",
        100.0 * cached.cache.hit_rate(),
        cached.cache.lookups(),
    );
}
