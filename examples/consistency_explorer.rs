//! Consistency explorer: drives the HET client protocol by hand on a
//! two-worker setup, printing every clock transition, then sweeps the
//! staleness threshold to show the consistency/communication trade-off
//! (the paper's §3.3 model and Table 2 in miniature).
//!
//! Run with:
//! ```sh
//! cargo run --release --example consistency_explorer
//! ```

use het::core::consistency::{max_divergence, ConsistencyBound};
use het::core::HetClient;
use het::prelude::*;

fn show(label: &str, client: &HetClient, key: Key, server: &PsServer) {
    match client.cache().peek(key) {
        Some(e) => println!(
            "  {label}: c_s={} c_c={} dirty={}  (server c_g={})",
            e.start_clock,
            e.current_clock,
            e.dirty,
            server.clock_of(key)
        ),
        None => println!(
            "  {label}: <not cached>  (server c_g={})",
            server.clock_of(key)
        ),
    }
}

fn main() {
    println!("== Per-embedding clock-bounded consistency, step by step (s=2) ==\n");
    let dim = 4;
    let server = PsServer::new(PsConfig {
        dim,
        n_shards: 2,
        lr: 0.1,
        seed: 3,
        optimizer: ServerOptimizer::Sgd,
        grad_clip: None,
    });
    let net = ClusterSpec::cluster_a(2, 1).collectives();
    let mut stats = CommStats::new();
    let mut a = HetClient::new(64, 2, PolicyKind::light_lfu(), dim, 0.1);
    let mut b = HetClient::new(64, 2, PolicyKind::light_lfu(), dim, 0.1);
    let key: Key = 7;
    let mut grad = SparseGrads::new(dim);
    grad.accumulate(key, &[1.0; 4]);

    println!("worker A and B fetch key {key}:");
    let _ = a.read(&[key], &server, &net, &mut stats, None);
    let _ = b.read(&[key], &server, &net, &mut stats, None);
    show("A", &a, key, &server);
    show("B", &b, key, &server);

    println!("\nworker A writes 3 times (stale writes accumulate locally):");
    for i in 1..=3 {
        a.write(&grad, &server, &net, &mut stats, None);
        println!(" after write {i}:");
        show("A", &a, key, &server);
    }

    println!("\nworker A reads again — condition (1) c_c ≤ c_s + s now fails, forcing");
    println!("an evict (write-back) + fetch:");
    let _ = a.read(&[key], &server, &net, &mut stats, None);
    show("A", &a, key, &server);

    println!("\nworker B reads — condition (2) c_g ≤ c_c + s still holds (c_g=3, c_c=0, s=2?");
    println!("no: 3 > 0+2, so B resynchronises too):");
    let _ = b.read(&[key], &server, &net, &mut stats, None);
    show("B", &b, key, &server);

    println!(
        "\nLemma 1 any-time bound holds: max divergence {} ≤ 2s+2 = {} -> {}",
        max_divergence(&[&a, &b]),
        2 * 2 + 2,
        ConsistencyBound::cache_clock(2).holds_any_time(max_divergence(&[&a, &b]))
    );

    // Staleness sweep on a real workload: quality vs communication.
    println!("\n== Staleness sweep (WDL, Criteo-like, 4 workers) ==\n");
    println!(
        "{:>8} {:>10} {:>14} {:>12} {:>12}",
        "s", "AUC", "emb bytes", "hit rate", "sim time"
    );
    for s in [0u64, 10, 100, 10_000] {
        let mut ctr = CtrConfig::criteo_like(99);
        ctr.n_train = 20_000;
        ctr.n_test = 2_000;
        let dataset = CtrDataset::new(ctr);
        let mut config = TrainerConfig::cluster_a(SystemPreset::HetCache { staleness: s });
        config.cluster = ClusterSpec::cluster_a(4, 1);
        config.dim = 16;
        config.max_iterations = 2_000;
        config.eval_every = 500;
        let mut trainer =
            Trainer::new(config, dataset, |rng| WideDeep::new(rng, 26, 16, &[64, 32]));
        let r = trainer.run();
        println!(
            "{:>8} {:>10.4} {:>14} {:>11.1}% {:>11.2}s",
            s,
            r.final_metric,
            r.comm.embedding_bytes(),
            100.0 * r.cache.hit_rate(),
            r.total_sim_time.as_secs_f64()
        );
    }
    println!("\nLarger s buys less communication at (eventually) lower model quality —");
    println!("the paper's Table 2 trade-off.");
}
