//! CTR recommendation: trains the paper's three DLRM workloads (WDL,
//! DeepFM, Deep&Cross) on a Criteo-like stream with HET and prints a
//! side-by-side comparison — the scenario the paper's introduction
//! motivates (recommender systems at web companies).
//!
//! Run with:
//! ```sh
//! cargo run --release --example ctr_recommendation
//! ```

use het::prelude::*;

const FIELDS: usize = 26;
const DIM: usize = 16;

fn dataset() -> CtrDataset {
    let mut ctr = CtrConfig::criteo_like(1234);
    ctr.n_train = 30_000;
    ctr.n_test = 3_000;
    CtrDataset::new(ctr)
}

fn config() -> TrainerConfig {
    let mut config = TrainerConfig::cluster_a(SystemPreset::HetCache { staleness: 100 });
    config.dim = DIM;
    config.max_iterations = 3_000;
    config.eval_every = 600;
    config
}

fn main() {
    println!("== HET on the three DLRM workloads (8 workers, 1 GbE, cache 10%, s=100) ==\n");
    println!(
        "{:<6} {:>10} {:>10} {:>12} {:>12} {:>12}",
        "model", "AUC", "sim time", "hit rate", "fetch MB", "push MB"
    );

    let wdl = {
        let mut t = Trainer::new(config(), dataset(), |rng| {
            WideDeep::new(rng, FIELDS, DIM, &[64, 32])
        });
        t.run()
    };
    let dfm = {
        let mut t = Trainer::new(config(), dataset(), |rng| {
            DeepFm::new(rng, FIELDS, DIM, &[64, 32])
        });
        t.run()
    };
    let dcn = {
        let mut t = Trainer::new(config(), dataset(), |rng| {
            DeepCross::new(rng, FIELDS, DIM, 3, &[64, 32])
        });
        t.run()
    };

    for (name, r) in [("WDL", &wdl), ("DFM", &dfm), ("DCN", &dcn)] {
        println!(
            "{:<6} {:>10.4} {:>9.2}s {:>11.1}% {:>12.2} {:>12.2}",
            name,
            r.final_metric,
            r.total_sim_time.as_secs_f64(),
            100.0 * r.cache.hit_rate(),
            r.comm.bytes(CommCategory::EmbeddingFetch) as f64 / 1e6,
            r.comm.bytes(CommCategory::EmbeddingPush) as f64 / 1e6,
        );
    }

    println!("\nConvergence curves (AUC over simulated time):");
    for (name, r) in [("WDL", &wdl), ("DFM", &dfm), ("DCN", &dcn)] {
        let curve: Vec<String> = r
            .curve
            .iter()
            .map(|p| format!("({:.1}s, {:.3})", p.sim_time.as_secs_f64(), p.metric))
            .collect();
        println!("  {:<4} {}", name, curve.join(" "));
    }
}
