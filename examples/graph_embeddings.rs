//! Graph representation learning: trains GraphSAGE on a Reddit-like
//! power-law graph where node-ID embeddings are the only features (the
//! paper's GNN workloads, §5), and shows how cache policy and size drive
//! the hit rate on hub-heavy access patterns.
//!
//! Run with:
//! ```sh
//! cargo run --release --example graph_embeddings
//! ```

use het::prelude::*;

fn make_dataset() -> GnnDataset {
    let mut cfg = GraphConfig::reddit_like(7);
    cfg.n_nodes = 8_000; // scaled for example runtime
    GnnDataset::new(Graph::generate(cfg), NeighborSampler::new(10, 5))
}

fn main() {
    println!("== GraphSAGE on a Reddit-like graph: HET cache behaviour ==\n");

    // Train once with the full system.
    let dataset = make_dataset();
    let n_classes = dataset.graph().config().n_classes;
    let mut config = TrainerConfig::cluster_a(SystemPreset::HetCache { staleness: 100 });
    config.dim = 16;
    config.lr = 0.6; // from-scratch node embeddings need an aggressive rate
    config.max_iterations = 3_000;
    config.eval_every = 600;
    let mut trainer = Trainer::new(config, dataset, move |rng| {
        GraphSage::new(rng, 16, 32, n_classes)
    });
    let report = trainer.run();
    println!(
        "HET Cache (s=100): accuracy {:.3} after {} iterations, {:.2} simulated s",
        report.final_metric,
        report.total_iterations,
        report.total_sim_time.as_secs_f64()
    );
    println!(
        "cache: {:.1}% hit rate, {} capacity evictions, {} invalidations\n",
        100.0 * report.cache.hit_rate(),
        report.cache.capacity_evictions,
        report.cache.invalidations
    );

    // Policy × capacity sweep (the paper's Fig. 8 in miniature).
    println!("miss rate by cache size and policy (hub-skewed access):");
    println!(
        "{:>9} {:>10} {:>10} {:>10}",
        "capacity", "LRU", "LFU", "LightLFU"
    );
    for frac in [0.03, 0.05, 0.10, 0.15] {
        let mut row = format!("{:>8.0}% ", frac * 100.0);
        for policy in [PolicyKind::Lru, PolicyKind::Lfu, PolicyKind::light_lfu()] {
            let dataset = make_dataset();
            let classes = dataset.graph().config().n_classes;
            let mut config = TrainerConfig::cluster_a(SystemPreset::HetCache { staleness: 100 })
                .with_cache(frac, policy);
            config.dim = 16;
            config.max_iterations = 800;
            config.eval_every = 10_000; // skip mid-run evals for speed
            let mut trainer = Trainer::new(config, dataset, move |rng| {
                GraphSage::new(rng, 16, 32, classes)
            });
            let r = trainer.run();
            row.push_str(&format!("{:>9.1}% ", 100.0 * r.cache.miss_rate()));
        }
        println!("{row}");
    }
    println!("\nLFU-family policies retain the hub nodes; miss rate falls as capacity grows.");
}
