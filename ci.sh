#!/bin/sh
# Repository CI gate: formatting, lints, tier-1 build + tests.
# Everything runs offline against vendored/in-tree dependencies.
set -eu

cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --check

# The extra lint wall guards the threaded execution backend: no
# non-Send/Sync payloads smuggled into Arcs, and no Mutex<usize|bool>
# where an atomic would do (exceptions carry a justified #[allow],
# e.g. het-runtime's Condvar-paired Turnstile mutex).
echo "==> cargo clippy --workspace --all-targets (with concurrency lint wall)"
cargo clippy --workspace --all-targets -- -D warnings \
    -D clippy::arc_with_non_send_sync -D clippy::mutex_atomic

echo "==> cargo build --release (tier-1)"
cargo build --release

echo "==> cargo test -q (tier-1, per-package timing)"
suite_start=$(date +%s)
for pkg in het-json het-rng het-trace het-simnet het-tensor het-data \
           het-store het-ps het-cache het-runtime het-models het-core \
           het-serve het-oracle het-bench het; do
    pkg_start=$(date +%s)
    cargo test -q -p "$pkg"
    echo "    [timing] $pkg: $(($(date +%s) - pkg_start))s"
done
echo "    [timing] test suite total: $(($(date +%s) - suite_start))s"

echo "==> trace schema validation (golden fixtures + byte-identity)"
cargo test -q -p het --test trace_golden

echo "==> golden fixtures current (re-derive and byte-diff against committed)"
cargo test -q -p het --test trace_golden golden_fixtures_are_current

echo "==> serving subsystem (determinism, staleness window, warmup, faults)"
cargo test -q -p het --test serving

echo "==> colocated train+serve smoke (one runtime, one PS fabric)"
cargo run -q --release -p het-bench --bin hetctl -- colocate --iters 120 --requests 200

echo "==> parallel backend (BSP bit-identity vs sim, async oracle replay, sim untouched)"
cargo test -q -p het --test parallel

echo "==> PS concurrency stress (seeded schedule perturbation, high test parallelism)"
step_start=$(date +%s)
RUST_TEST_THREADS=8 cargo test -q --release -p het-ps --test stress
echo "    [timing] ps stress: $(($(date +%s) - step_start))s"

echo "==> threaded train smoke (Fig. 2 CTR recipe on threads:4, oracle-replayed)"
cargo run -q --release -p het-bench --bin hetctl -- train \
    --backend threads:4 --workload wdl --iters 240 --dim 32

echo "==> threaded colocate smoke (live trainer + serving fleet on real threads)"
cargo run -q --release -p het-bench --bin hetctl -- colocate \
    --backend threads:2 --iters 120 --requests 200

# The scale-sweep gate is hardware-honest: on a >=4-core host threads:4
# must beat threads:1 outright (ratio 1.0); on the 1-core CI boxes four
# time-sliced BSP threads can only add coordination overhead, so the
# gate degrades to "parallelism must not collapse" (measured overhead
# there is ~5-30% run to run; 0.5 keeps headroom against scheduler
# noise while still catching a serialization bug, which would show up
# as ~1/threads).
CORES=$(nproc)
if [ "$CORES" -ge 4 ]; then SCALE_GATE=1.0; else SCALE_GATE=0.5; fi
echo "==> scale sweep ($CORES cores -> threads:4 >= ${SCALE_GATE}x threads:1 throughput)"
step_start=$(date +%s)
cargo run -q --release -p het-bench --bin hetctl -- scale-sweep \
    --threads 1,2,4 --iters 240 --gate "$SCALE_GATE"
echo "    [timing] scale sweep: $(($(date +%s) - step_start))s"

echo "==> elasticity (supervised recovery, autoscaler, live split, chaos)"
cargo test -q -p het --test elasticity

echo "==> chaos smoke (compound failure, SLO/RTO gate, single seed)"
cargo run -q --release -p het-bench --bin hetctl -- chaos --seed 7

echo "==> chaos recovery campaign (every seed must ride out the storm)"
cargo run -q --release -p het-bench --bin hetctl -- chaos --seeds 0..120

echo "==> eviction-policy model equivalence (naive O(n) references, full zoo)"
step_start=$(date +%s)
cargo test -q -p het-cache --test policy_model
echo "    [timing] policy_model: $(($(date +%s) - step_start))s"

echo "==> consistency oracle (120-seed fuzz campaign over the full policy zoo)"
# The campaign also exercises the prefetch cell: ~1/3 of sampled
# scenarios run with nonzero lookahead and are re-checked against the
# prefetch ledger and staleness-window invariants. Policies are drawn
# from all seven fixed kinds plus three adaptive windows, so coherence,
# gradient conservation, and the staging-region pin exemption are
# re-proven per policy — including across mid-run adaptive switches.
# ~35% of scenarios additionally run every PS shard on the tiered
# memory/disk store with a tiny hot budget (8/32/128 rows), so the
# same invariants are re-proven across demotions, cold-log spills, and
# compactions; the shrinker tries dropping back to the Mem store first.
step_start=$(date +%s)
cargo run -q --release -p het-bench --bin hetctl -- oracle --seeds 0..120 --iters 40
echo "    [timing] oracle campaign: $(($(date +%s) - step_start))s"

echo "==> lookahead prefetching (exact-lookahead invariant, byte-identity, ledger)"
cargo test -q -p het --test prefetch

echo "==> prefetch depth sweep (>=30% cut at depth 4, monotone non-increasing)"
cargo run -q --release -p het-bench --bin hetctl -- prefetch-sweep \
    --iters 480 --depths 0,1,2,4,8 --gate 0.30

echo "==> tiered store (page byte-layout pin, compaction, crash recovery)"
step_start=$(date +%s)
cargo test -q -p het-store
echo "    [timing] het-store: $(($(date +%s) - step_start))s"

echo "==> tiered determinism matrix + golden fixture (reports and traces byte-identical)"
cargo test -q -p het --test determinism tiered_store_seed_matrix
cargo test -q -p het --test trace_golden tiered_fixture_reconciles_store_counters

echo "==> store sweep smoke (10^7 keys, bounded residency, hit-rate floor, Mem zero-disk)"
step_start=$(date +%s)
cargo run -q --release -p het-bench --bin hetctl -- store-sweep \
    --keys 10000000 --ops 300000 --hot 65536 --gate 0.5
echo "    [timing] store sweep: $(($(date +%s) - step_start))s"

echo "==> policy shootout (adaptive within 5 hit-rate points of best fixed, all scenarios)"
step_start=$(date +%s)
cargo run -q --release -p het-bench --bin hetctl -- policy-shootout \
    --iters 240 --requests 2400 --gate 0.05
echo "    [timing] policy shootout: $(($(date +%s) - step_start))s"

echo "CI green."
