#!/bin/sh
# Repository CI gate: formatting, lints, tier-1 build + tests.
# Everything runs offline against vendored/in-tree dependencies.
set -eu

cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release (tier-1)"
cargo build --release

echo "==> cargo test -q (tier-1)"
cargo test -q

echo "CI green."
