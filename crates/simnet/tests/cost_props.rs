//! Randomised property tests of the network cost models: monotonicity,
//! scaling laws, and accounting consistency. Cases are drawn from a
//! seeded in-tree generator so runs are deterministic and hermetic.

use het_rng::rngs::StdRng;
use het_rng::{Rng, SeedableRng};
use het_simnet::{ClusterSpec, CommCategory, CommStats, LinkSpec, SimDuration};

const CASES: usize = 256;

/// Transfer time is monotone in bytes on any sane link.
#[test]
fn transfer_time_monotone() {
    let mut rng = StdRng::seed_from_u64(0xC057_0001);
    for _ in 0..CASES {
        let bw_mbps = rng.gen_range(1.0f64..100_000.0);
        let lat_us = rng.gen_range(0u64..10_000);
        let a = rng.gen_range(0u64..1_000_000);
        let b = rng.gen_range(0u64..1_000_000);
        let link = LinkSpec::new(bw_mbps * 1e6, SimDuration::from_micros(lat_us));
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        assert!(link.transfer_time(lo) <= link.transfer_time(hi));
    }
}

/// Doubling bandwidth never makes a transfer slower.
#[test]
fn more_bandwidth_never_hurts() {
    let mut rng = StdRng::seed_from_u64(0xC057_0002);
    for _ in 0..CASES {
        let bytes = rng.gen_range(0u64..10_000_000);
        let bw_mbps = rng.gen_range(1.0f64..1_000.0);
        let slow = LinkSpec::new(bw_mbps * 1e6, SimDuration::from_micros(50));
        let fast = LinkSpec::new(bw_mbps * 2e6, SimDuration::from_micros(50));
        assert!(fast.transfer_time(bytes) <= slow.transfer_time(bytes));
    }
}

/// PS transfer time decreases (weakly) with more server shards.
#[test]
fn more_servers_never_hurt() {
    let mut rng = StdRng::seed_from_u64(0xC057_0003);
    for _ in 0..CASES {
        let bytes = rng.gen_range(1u64..10_000_000);
        let servers = rng.gen_range(1usize..16);
        let few = ClusterSpec::cluster_a(8, servers)
            .collectives()
            .ps_transfer(bytes);
        let more = ClusterSpec::cluster_a(8, servers * 2)
            .collectives()
            .ps_transfer(bytes);
        assert!(more <= few);
    }
}

/// Ring AllReduce byte accounting: each worker moves strictly less
/// than 2× the payload, approaching it from below as N grows.
#[test]
fn allreduce_bytes_bounded() {
    let mut rng = StdRng::seed_from_u64(0xC057_0004);
    for _ in 0..CASES {
        let bytes = rng.gen_range(8u64..1_000_000);
        let workers = rng.gen_range(2usize..64);
        let c = ClusterSpec::cluster_a(workers, 1).collectives();
        let per_worker = c.ring_allreduce_bytes_per_worker(bytes);
        // 2(N-1)/N * ceil-per-chunk overhead can add at most N bytes.
        assert!(per_worker <= 2 * (bytes + workers as u64));
        assert!(
            per_worker >= bytes,
            "must move at least the payload for N≥2"
        );
    }
}

/// AllGather cost grows with worker count.
#[test]
fn allgather_monotone_in_workers() {
    let mut rng = StdRng::seed_from_u64(0xC057_0005);
    for _ in 0..CASES {
        let block = rng.gen_range(1u64..1_000_000);
        let n = rng.gen_range(2usize..32);
        let small = ClusterSpec::cluster_a(n, 1).collectives().allgather(block);
        let large = ClusterSpec::cluster_a(n + 1, 1)
            .collectives()
            .allgather(block);
        assert!(large >= small);
    }
}

/// CommStats merge is associative-by-value with record.
#[test]
fn stats_merge_matches_sequential_record() {
    let mut rng = StdRng::seed_from_u64(0xC057_0006);
    for _ in 0..CASES {
        let n = rng.gen_range(0usize..50);
        let sizes: Vec<u64> = (0..n).map(|_| rng.gen_range(0u64..100_000)).collect();
        let mut merged = CommStats::new();
        let mut split_a = CommStats::new();
        let mut split_b = CommStats::new();
        for (i, &s) in sizes.iter().enumerate() {
            merged.record(CommCategory::EmbeddingFetch, s);
            if i % 2 == 0 {
                split_a.record(CommCategory::EmbeddingFetch, s);
            } else {
                split_b.record(CommCategory::EmbeddingFetch, s);
            }
        }
        split_a.merge(&split_b);
        assert_eq!(merged, split_a);
    }
}
