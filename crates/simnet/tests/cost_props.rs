//! Property-based tests of the network cost models: monotonicity,
//! scaling laws, and accounting consistency.

use het_simnet::{ClusterSpec, CommCategory, CommStats, LinkSpec, SimDuration};
use proptest::prelude::*;

proptest! {
    /// Transfer time is monotone in bytes on any sane link.
    #[test]
    fn transfer_time_monotone(
        bw_mbps in 1.0f64..100_000.0,
        lat_us in 0u64..10_000,
        a in 0u64..1_000_000,
        b in 0u64..1_000_000,
    ) {
        let link = LinkSpec::new(bw_mbps * 1e6, SimDuration::from_micros(lat_us));
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(link.transfer_time(lo) <= link.transfer_time(hi));
    }

    /// Doubling bandwidth never makes a transfer slower.
    #[test]
    fn more_bandwidth_never_hurts(bytes in 0u64..10_000_000, bw_mbps in 1.0f64..1_000.0) {
        let slow = LinkSpec::new(bw_mbps * 1e6, SimDuration::from_micros(50));
        let fast = LinkSpec::new(bw_mbps * 2e6, SimDuration::from_micros(50));
        prop_assert!(fast.transfer_time(bytes) <= slow.transfer_time(bytes));
    }

    /// PS transfer time decreases (weakly) with more server shards.
    #[test]
    fn more_servers_never_hurt(bytes in 1u64..10_000_000, servers in 1usize..16) {
        let few = ClusterSpec::cluster_a(8, servers).collectives().ps_transfer(bytes);
        let more = ClusterSpec::cluster_a(8, servers * 2).collectives().ps_transfer(bytes);
        prop_assert!(more <= few);
    }

    /// Ring AllReduce byte accounting: each worker moves strictly less
    /// than 2× the payload, approaching it from below as N grows.
    #[test]
    fn allreduce_bytes_bounded(bytes in 8u64..1_000_000, workers in 2usize..64) {
        let c = ClusterSpec::cluster_a(workers, 1).collectives();
        let per_worker = c.ring_allreduce_bytes_per_worker(bytes);
        // 2(N-1)/N * ceil-per-chunk overhead can add at most N bytes.
        prop_assert!(per_worker <= 2 * (bytes + workers as u64));
        prop_assert!(per_worker >= bytes, "must move at least the payload for N≥2");
    }

    /// AllGather cost grows with worker count.
    #[test]
    fn allgather_monotone_in_workers(block in 1u64..1_000_000, n in 2usize..32) {
        let small = ClusterSpec::cluster_a(n, 1).collectives().allgather(block);
        let large = ClusterSpec::cluster_a(n + 1, 1).collectives().allgather(block);
        prop_assert!(large >= small);
    }

    /// CommStats merge is associative-by-value with record.
    #[test]
    fn stats_merge_matches_sequential_record(
        sizes in proptest::collection::vec(0u64..100_000, 0..50),
    ) {
        let mut merged = CommStats::new();
        let mut split_a = CommStats::new();
        let mut split_b = CommStats::new();
        for (i, &s) in sizes.iter().enumerate() {
            merged.record(CommCategory::EmbeddingFetch, s);
            if i % 2 == 0 {
                split_a.record(CommCategory::EmbeddingFetch, s);
            } else {
                split_b.record(CommCategory::EmbeddingFetch, s);
            }
        }
        split_a.merge(&split_b);
        prop_assert_eq!(merged, split_a);
    }
}
