//! Per-category communication accounting.
//!
//! The paper's headline "up to 88 % embedding communication reduction"
//! is a statement about bytes; this module is where those bytes are
//! counted. Every protocol action records (category, direction, bytes,
//! messages) so the benches can break epoch time into the same components
//! the paper plots (Fig. 2, Fig. 7).

use het_json::{Json, ToJson};
use std::fmt;

/// What a message was for.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CommCategory {
    /// Embedding vector fetch (server → worker) and its request.
    EmbeddingFetch,
    /// Embedding gradient write-back on eviction (worker → server).
    EmbeddingPush,
    /// Clock-only validation round trips (CheckValid condition 2).
    ClockSync,
    /// Dense parameter/gradient transfer via the PS path.
    DensePs,
    /// Dense gradient AllReduce between workers.
    DenseAllReduce,
    /// Sparse gradient AllGather between workers (HET AR baseline).
    SparseAllGather,
}

impl CommCategory {
    /// All categories, for iteration in reports.
    pub const ALL: [CommCategory; 6] = [
        CommCategory::EmbeddingFetch,
        CommCategory::EmbeddingPush,
        CommCategory::ClockSync,
        CommCategory::DensePs,
        CommCategory::DenseAllReduce,
        CommCategory::SparseAllGather,
    ];

    /// True for the categories that carry *embedding* traffic — the ones
    /// the paper's communication-reduction numbers are computed over.
    pub fn is_embedding_traffic(self) -> bool {
        matches!(
            self,
            CommCategory::EmbeddingFetch
                | CommCategory::EmbeddingPush
                | CommCategory::ClockSync
                | CommCategory::SparseAllGather
        )
    }

    fn index(self) -> usize {
        match self {
            CommCategory::EmbeddingFetch => 0,
            CommCategory::EmbeddingPush => 1,
            CommCategory::ClockSync => 2,
            CommCategory::DensePs => 3,
            CommCategory::DenseAllReduce => 4,
            CommCategory::SparseAllGather => 5,
        }
    }
}

impl fmt::Display for CommCategory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CommCategory::EmbeddingFetch => "embedding-fetch",
            CommCategory::EmbeddingPush => "embedding-push",
            CommCategory::ClockSync => "clock-sync",
            CommCategory::DensePs => "dense-ps",
            CommCategory::DenseAllReduce => "dense-allreduce",
            CommCategory::SparseAllGather => "sparse-allgather",
        };
        f.write_str(s)
    }
}

/// Direction of a transfer relative to the worker.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Direction {
    /// Worker → server (or worker → peer).
    Send,
    /// Server → worker (or peer → worker).
    Recv,
}

/// Byte/message counters, one slot per category.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CommStats {
    bytes: [u64; 6],
    messages: [u64; 6],
}

impl CommStats {
    /// A zeroed counter set.
    pub fn new() -> Self {
        CommStats::default()
    }

    /// Records one message of `bytes` in `category`.
    pub fn record(&mut self, category: CommCategory, bytes: u64) {
        let i = category.index();
        self.bytes[i] = self.bytes[i].saturating_add(bytes);
        self.messages[i] = self.messages[i].saturating_add(1);
        if het_trace::enabled() {
            const BYTE_COUNTERS: [&str; 6] = [
                "bytes_embedding_fetch",
                "bytes_embedding_push",
                "bytes_clock_sync",
                "bytes_dense_ps",
                "bytes_dense_allreduce",
                "bytes_sparse_allgather",
            ];
            const MSG_COUNTERS: [&str; 6] = [
                "msgs_embedding_fetch",
                "msgs_embedding_push",
                "msgs_clock_sync",
                "msgs_dense_ps",
                "msgs_dense_allreduce",
                "msgs_sparse_allgather",
            ];
            het_trace::counter_add("simnet", BYTE_COUNTERS[i], bytes);
            het_trace::counter_add("simnet", MSG_COUNTERS[i], 1);
        }
    }

    /// Bytes recorded in one category.
    pub fn bytes(&self, category: CommCategory) -> u64 {
        self.bytes[category.index()]
    }

    /// Messages recorded in one category.
    pub fn messages(&self, category: CommCategory) -> u64 {
        self.messages[category.index()]
    }

    /// Total bytes across all categories.
    pub fn total_bytes(&self) -> u64 {
        self.bytes.iter().sum()
    }

    /// Total messages across all categories.
    pub fn total_messages(&self) -> u64 {
        self.messages.iter().sum()
    }

    /// Bytes in embedding-carrying categories only — the denominator of
    /// the paper's communication-reduction claim.
    pub fn embedding_bytes(&self) -> u64 {
        CommCategory::ALL
            .iter()
            .filter(|c| c.is_embedding_traffic())
            .map(|c| self.bytes(*c))
            .sum()
    }

    /// Merges another counter set into this one.
    pub fn merge(&mut self, other: &CommStats) {
        for i in 0..6 {
            self.bytes[i] = self.bytes[i].saturating_add(other.bytes[i]);
            self.messages[i] = self.messages[i].saturating_add(other.messages[i]);
        }
    }

    /// Fractional reduction of embedding bytes relative to a baseline:
    /// `1 − self/baseline`. Returns 0 when the baseline recorded nothing.
    pub fn embedding_reduction_vs(&self, baseline: &CommStats) -> f64 {
        let base = baseline.embedding_bytes();
        if base == 0 {
            0.0
        } else {
            1.0 - self.embedding_bytes() as f64 / base as f64
        }
    }
}

impl ToJson for CommStats {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("bytes".to_string(), self.bytes.to_json()),
            ("messages".to_string(), self.messages.to_json()),
        ])
    }
}

impl fmt::Display for CommStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for c in CommCategory::ALL {
            if self.messages(c) > 0 {
                writeln!(
                    f,
                    "  {:<18} {:>14} bytes in {:>10} msgs",
                    c.to_string(),
                    self.bytes(c),
                    self.messages(c)
                )?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_accumulates_bytes_and_messages() {
        let mut s = CommStats::new();
        s.record(CommCategory::EmbeddingFetch, 100);
        s.record(CommCategory::EmbeddingFetch, 50);
        s.record(CommCategory::DensePs, 7);
        assert_eq!(s.bytes(CommCategory::EmbeddingFetch), 150);
        assert_eq!(s.messages(CommCategory::EmbeddingFetch), 2);
        assert_eq!(s.total_bytes(), 157);
        assert_eq!(s.total_messages(), 3);
    }

    #[test]
    fn embedding_bytes_excludes_dense_traffic() {
        let mut s = CommStats::new();
        s.record(CommCategory::EmbeddingFetch, 10);
        s.record(CommCategory::EmbeddingPush, 20);
        s.record(CommCategory::ClockSync, 5);
        s.record(CommCategory::SparseAllGather, 40);
        s.record(CommCategory::DensePs, 1000);
        s.record(CommCategory::DenseAllReduce, 2000);
        assert_eq!(s.embedding_bytes(), 75);
    }

    #[test]
    fn merge_adds_counters() {
        let mut a = CommStats::new();
        a.record(CommCategory::ClockSync, 8);
        let mut b = CommStats::new();
        b.record(CommCategory::ClockSync, 4);
        b.record(CommCategory::EmbeddingPush, 12);
        a.merge(&b);
        assert_eq!(a.bytes(CommCategory::ClockSync), 12);
        assert_eq!(a.messages(CommCategory::ClockSync), 2);
        assert_eq!(a.bytes(CommCategory::EmbeddingPush), 12);
    }

    #[test]
    fn reduction_computation() {
        let mut cached = CommStats::new();
        cached.record(CommCategory::EmbeddingFetch, 12);
        let mut baseline = CommStats::new();
        baseline.record(CommCategory::EmbeddingFetch, 100);
        let red = cached.embedding_reduction_vs(&baseline);
        assert!(
            (red - 0.88).abs() < 1e-12,
            "12 vs 100 bytes is an 88% reduction"
        );
    }

    #[test]
    fn reduction_against_empty_baseline_is_zero() {
        let cached = CommStats::new();
        let baseline = CommStats::new();
        assert_eq!(cached.embedding_reduction_vs(&baseline), 0.0);
    }
}
