//! Cluster topology and collective-communication cost models.
//!
//! The paper's deployment (§5) is a worker cluster (GPUs, fast
//! interconnect) plus a separate CPU server cluster, joined by Ethernet.
//! `ClusterSpec` captures that shape; `Collectives` provides the analytic
//! time costs for the operations built on it:
//!
//! * PS pull/push over the worker ↔ server Ethernet link, with servers
//!   sharded so `n_servers` links serve in parallel;
//! * ring AllReduce over the worker ↔ worker link — each worker sends and
//!   receives `2(N−1)/N · bytes`;
//! * AllGather (the primitive AllReduce degenerates to for sparse data,
//!   §2.3) — each worker receives `(N−1)` blocks.

use crate::link::LinkSpec;
use crate::time::SimDuration;

/// Static description of the simulated cluster.
#[derive(Clone, Copy, Debug)]
pub struct ClusterSpec {
    /// Number of training workers.
    pub n_workers: usize,
    /// Number of parameter-server shards (machines).
    pub n_servers: usize,
    /// Worker ↔ server link (Ethernet in the paper).
    pub worker_server: LinkSpec,
    /// Worker ↔ worker link (PCIe/NVLink class in the paper).
    pub worker_worker: LinkSpec,
    /// Per-worker compute throughput in FLOP/s, used to convert model
    /// FLOPs into simulated compute time.
    pub worker_flops: f64,
    /// Model the parameter-server NIC as *shared*: when more workers
    /// than server machines transfer simultaneously, each worker sees
    /// `worker_server` bandwidth divided by `n_workers / n_servers`.
    /// This is what makes PS architectures flatten as workers grow
    /// (the paper's Fig. 9); off by default so per-pair experiments
    /// (Figs. 2, 6, 7) stay in the paper's per-link cost model.
    pub shared_server_bandwidth: bool,
}

impl ClusterSpec {
    /// The paper's cluster A: RTX TITAN workers, 1 Gbit Ethernet to the
    /// servers. The FLOP rate models the *achieved* throughput of the
    /// small dense kernels of embedding models at batch 128 — dominated
    /// by kernel-launch and memory overheads, far below the card's peak
    /// (calibrated so Fig. 2's transfer/compute split lands near the
    /// paper's 60–86 % transfer share).
    pub fn cluster_a(n_workers: usize, n_servers: usize) -> Self {
        ClusterSpec {
            n_workers,
            n_servers,
            worker_server: LinkSpec::ethernet_1gbit(),
            worker_worker: LinkSpec::collective_effective(),
            worker_flops: 1.0e11,
            shared_server_bandwidth: false,
        }
    }

    /// The paper's cluster B: V100 workers, 10 Gbit Ethernet.
    pub fn cluster_b(n_workers: usize, n_servers: usize) -> Self {
        ClusterSpec {
            n_workers,
            n_servers,
            worker_server: LinkSpec::ethernet_10gbit(),
            worker_worker: LinkSpec::collective_effective(),
            worker_flops: 2.0e11,
            shared_server_bandwidth: false,
        }
    }

    /// Compute time for `flops` floating point operations on one worker.
    pub fn compute_time(&self, flops: f64) -> SimDuration {
        SimDuration::from_secs_f64(flops / self.worker_flops)
    }

    /// Collective cost models over this cluster.
    pub fn collectives(&self) -> Collectives {
        Collectives { spec: *self }
    }
}

/// Analytic cost models for the collectives used by HET and its baselines.
#[derive(Clone, Copy, Debug)]
pub struct Collectives {
    spec: ClusterSpec,
}

impl Collectives {
    /// Time for one worker to move `bytes` to/from the parameter servers.
    /// Traffic is sharded across servers, so the per-link payload is
    /// `bytes / n_servers` (plus one latency). With
    /// [`ClusterSpec::shared_server_bandwidth`] the server NICs are a
    /// shared resource: the payload time additionally scales with the
    /// worker-to-server ratio (every worker transfers each iteration, so
    /// in steady state the server links divide among them).
    pub fn ps_transfer(&self, bytes: u64) -> SimDuration {
        het_trace::counter_add("simnet", "ps_transfers", 1);
        let shards = self.spec.n_servers.max(1) as u64;
        let per_shard = bytes.div_ceil(shards);
        let contention = if self.spec.shared_server_bandwidth {
            (self.spec.n_workers as u64).div_ceil(shards).max(1)
        } else {
            1
        };
        self.spec.worker_server.latency
            + self
                .spec
                .worker_server
                .payload_time(per_shard.saturating_mul(contention))
    }

    /// AllReduce of a dense buffer of `bytes` across all workers,
    /// modelling NCCL's algorithm selection: the bandwidth-optimal ring
    /// (`2(N−1)` rounds of `bytes/N`) for large payloads, the
    /// latency-optimal double binary tree (`2·⌈log₂N⌉` rounds of the
    /// full payload) for small ones — whichever is cheaper.
    pub fn ring_allreduce(&self, bytes: u64) -> SimDuration {
        het_trace::counter_add_at("simnet", "allreduces", None, 1);
        let n = self.spec.n_workers.max(1) as u64;
        if n == 1 {
            return SimDuration::ZERO;
        }
        let link = self.spec.worker_worker;
        let ring_rounds = 2 * (n - 1);
        let chunk = bytes.div_ceil(n);
        let ring = (link.latency + link.payload_time(chunk)) * ring_rounds;
        let tree_rounds = 2 * (64 - (n - 1).leading_zeros() as u64).max(1);
        let tree = (link.latency + link.payload_time(bytes)) * tree_rounds;
        ring.min(tree)
    }

    /// AllGather: every worker ends up with all `N` blocks of
    /// `block_bytes`. Each worker receives `N−1` blocks in `N−1` rounds.
    pub fn allgather(&self, block_bytes: u64) -> SimDuration {
        het_trace::counter_add_at("simnet", "allgathers", None, 1);
        let n = self.spec.n_workers.max(1) as u64;
        if n == 1 {
            return SimDuration::ZERO;
        }
        let rounds = n - 1;
        let link = self.spec.worker_worker;
        (link.latency + link.payload_time(block_bytes)) * rounds
    }

    /// Total bytes one worker sends during a ring AllReduce of `bytes`
    /// (for the byte counters): `2(N−1)/N · bytes`.
    pub fn ring_allreduce_bytes_per_worker(&self, bytes: u64) -> u64 {
        let n = self.spec.n_workers.max(1) as u64;
        if n == 1 {
            return 0;
        }
        2 * (n - 1) * bytes.div_ceil(n)
    }

    /// Total bytes one worker receives during an AllGather of blocks of
    /// `block_bytes`: `(N−1) · block_bytes`.
    pub fn allgather_bytes_per_worker(&self, block_bytes: u64) -> u64 {
        let n = self.spec.n_workers.max(1) as u64;
        (n - 1) * block_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(n_workers: usize, n_servers: usize) -> ClusterSpec {
        ClusterSpec::cluster_a(n_workers, n_servers)
    }

    #[test]
    fn ps_transfer_scales_down_with_servers() {
        let one = spec(8, 1).collectives().ps_transfer(1_000_000);
        let four = spec(8, 4).collectives().ps_transfer(1_000_000);
        assert!(four < one);
    }

    #[test]
    fn allreduce_is_zero_for_single_worker() {
        assert_eq!(
            spec(1, 1).collectives().ring_allreduce(1 << 20),
            SimDuration::ZERO
        );
        assert_eq!(
            spec(1, 1).collectives().allgather(1 << 20),
            SimDuration::ZERO
        );
    }

    #[test]
    fn allreduce_tree_wins_for_tiny_payloads() {
        // At 32 workers a small buffer should ride the logarithmic tree,
        // far below the 62-round ring latency floor.
        let c = spec(32, 1).collectives();
        let small = c.ring_allreduce(1_000);
        let ring_floor = LinkSpec::collective_effective().latency * 62;
        assert!(
            small < ring_floor,
            "{small:?} should beat ring floor {ring_floor:?}"
        );
    }

    #[test]
    fn allreduce_bandwidth_term_is_nearly_constant_in_n() {
        // The 2(N-1)/N factor approaches 2: doubling workers should not
        // double AllReduce time for large payloads.
        let t8 = spec(8, 1)
            .collectives()
            .ring_allreduce(100 << 20)
            .as_secs_f64();
        let t16 = spec(16, 1)
            .collectives()
            .ring_allreduce(100 << 20)
            .as_secs_f64();
        assert!(t16 / t8 < 1.25, "t16={t16} t8={t8}");
    }

    #[test]
    fn allgather_grows_linearly_with_workers() {
        let t4 = spec(4, 1).collectives().allgather(10 << 20).as_secs_f64();
        let t8 = spec(8, 1).collectives().allgather(10 << 20).as_secs_f64();
        let ratio = t8 / t4;
        assert!((ratio - 7.0 / 3.0).abs() < 0.05, "ratio={ratio}");
    }

    #[test]
    fn byte_accounting_formulas() {
        let c = spec(4, 1).collectives();
        assert_eq!(c.ring_allreduce_bytes_per_worker(400), 2 * 3 * 100);
        assert_eq!(c.allgather_bytes_per_worker(400), 3 * 400);
        assert_eq!(
            spec(1, 1)
                .collectives()
                .ring_allreduce_bytes_per_worker(400),
            0
        );
    }

    #[test]
    fn shared_server_bandwidth_scales_with_worker_ratio() {
        let mut shared = spec(8, 2);
        shared.shared_server_bandwidth = true;
        let exclusive = spec(8, 2);
        let bytes = 1_000_000u64;
        let t_shared = shared.collectives().ps_transfer(bytes).as_secs_f64();
        let t_excl = exclusive.collectives().ps_transfer(bytes).as_secs_f64();
        // 8 workers over 2 servers -> 4x contention on the payload term.
        assert!(
            t_shared > 3.0 * t_excl,
            "shared {t_shared} vs exclusive {t_excl}"
        );
        // More servers relieve contention.
        let mut more = spec(8, 8);
        more.shared_server_bandwidth = true;
        let t_more = more.collectives().ps_transfer(bytes).as_secs_f64();
        assert!(t_more < t_shared);
    }

    #[test]
    fn compute_time_inversely_proportional_to_flops() {
        let a = spec(1, 1);
        let mut b = a;
        b.worker_flops *= 2.0;
        let ta = a.compute_time(1e9).as_secs_f64();
        let tb = b.compute_time(1e9).as_secs_f64();
        assert!((ta / tb - 2.0).abs() < 1e-9);
    }

    #[test]
    fn allreduce_over_pcie_beats_ps_over_ethernet_for_dense() {
        // The paper's observation: HET AR outperforms HET PS on the
        // 1 GbE cluster because AllReduce rides the PCIe bandwidth.
        let c = spec(8, 1).collectives();
        let dense = 10 << 20; // 10 MB of dense gradients
        assert!(c.ring_allreduce(dense) < c.ps_transfer(dense) * 2);
    }
}
