//! Simulated time: nanosecond-resolution instants and durations.
//!
//! `std::time` types are deliberately not used — the simulation must be
//! fully deterministic and decoupled from wall-clock time. Both types are
//! thin wrappers over `u64` nanoseconds with saturating arithmetic, so a
//! pathological configuration (e.g. zero bandwidth) saturates instead of
//! panicking in release builds.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A span of simulated time, in nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration from whole nanoseconds.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimDuration(nanos)
    }

    /// Creates a duration from whole microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros * 1_000)
    }

    /// Creates a duration from whole milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis * 1_000_000)
    }

    /// Creates a duration from fractional seconds. Negative and NaN inputs
    /// clamp to zero; overflow saturates.
    pub fn from_secs_f64(secs: f64) -> Self {
        if secs.is_nan() || secs <= 0.0 {
            return SimDuration::ZERO;
        }
        let nanos = secs * 1e9;
        if nanos >= u64::MAX as f64 {
            SimDuration(u64::MAX)
        } else {
            SimDuration(nanos as u64)
        }
    }

    /// This duration in whole nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// This duration in fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }

    /// The larger of two durations.
    pub fn max(self, other: SimDuration) -> SimDuration {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// The smaller of two durations.
    pub fn min(self, other: SimDuration) -> SimDuration {
        if self <= other {
            self
        } else {
            other
        }
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl Mul<f64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: f64) -> SimDuration {
        SimDuration::from_secs_f64(self.as_secs_f64() * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs.max(1))
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, |a, b| a + b)
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

/// An instant on the simulated timeline, measured from simulation start.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);

    /// Creates an instant from whole nanoseconds since simulation start.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimTime(nanos)
    }

    /// Nanoseconds since simulation start.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Fractional seconds since simulation start.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Duration since an earlier instant (saturating at zero).
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// The later of two instants.
    pub fn max(self, other: SimTime) -> SimTime {
        if self >= other {
            self
        } else {
            other
        }
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.as_nanos()))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_construction_round_trips() {
        assert_eq!(SimDuration::from_micros(3).as_nanos(), 3_000);
        assert_eq!(SimDuration::from_millis(2).as_nanos(), 2_000_000);
        let d = SimDuration::from_secs_f64(1.5);
        assert_eq!(d.as_nanos(), 1_500_000_000);
        assert!((d.as_secs_f64() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn negative_and_nan_seconds_clamp_to_zero() {
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
    }

    #[test]
    fn huge_seconds_saturate() {
        assert_eq!(SimDuration::from_secs_f64(1e30).as_nanos(), u64::MAX);
    }

    #[test]
    fn duration_arithmetic() {
        let a = SimDuration::from_nanos(10);
        let b = SimDuration::from_nanos(4);
        assert_eq!((a + b).as_nanos(), 14);
        assert_eq!((a - b).as_nanos(), 6);
        assert_eq!((b - a).as_nanos(), 0, "subtraction saturates");
        assert_eq!((a * 3).as_nanos(), 30);
        assert_eq!((a / 2).as_nanos(), 5);
        assert_eq!(
            (a / 0).as_nanos(),
            10,
            "division by zero clamps divisor to 1"
        );
        assert_eq!(a.max(b), a);
        assert_eq!(a.min(b), b);
    }

    #[test]
    fn duration_sum() {
        let total: SimDuration = (1..=4).map(SimDuration::from_nanos).sum();
        assert_eq!(total.as_nanos(), 10);
    }

    #[test]
    fn time_advances_and_measures() {
        let t0 = SimTime::ZERO;
        let t1 = t0 + SimDuration::from_millis(5);
        assert_eq!(t1.since(t0), SimDuration::from_millis(5));
        assert_eq!(t0.since(t1), SimDuration::ZERO, "since saturates");
        assert_eq!(t0.max(t1), t1);
    }

    #[test]
    fn time_ordering_is_total() {
        let times: Vec<SimTime> = [5u64, 1, 3, 2]
            .iter()
            .map(|&n| SimTime::from_nanos(n))
            .collect();
        let mut sorted = times.clone();
        sorted.sort();
        assert_eq!(
            sorted.iter().map(|t| t.as_nanos()).collect::<Vec<_>>(),
            vec![1, 2, 3, 5]
        );
    }
}
