//! Simulated-network substrate for the HET reproduction.
//!
//! The original HET system ran on GPU clusters connected by 1/10 Gbit
//! Ethernet (workers ↔ parameter servers) and PCIe/NVLink (worker ↔ worker
//! AllReduce). None of that hardware is available here, so this crate
//! models it: simulated clocks, link bandwidth/latency cost models,
//! analytic costs for the collectives the paper uses (PS pull/push, ring
//! AllReduce, AllGather), and per-category byte accounting.
//!
//! Everything the paper measures about *communication* — epoch time
//! breakdowns (Fig. 2, Fig. 7), communication reduction (§5.1),
//! scalability (Fig. 9) — is a function of bytes moved over links of a
//! given bandwidth. This crate computes those quantities from first
//! principles, which is what makes the reproduction's *shape* faithful
//! even though absolute seconds differ from the authors' testbed.
//!
//! # Example
//!
//! ```
//! use het_simnet::{LinkSpec, SimDuration, wire};
//!
//! // A 1 Gbit/s Ethernet link with 100 µs latency, as in the paper's
//! // cluster A.
//! let link = LinkSpec::ethernet_1gbit();
//! // Fetching one D=128 embedding: key + clock + vector + header.
//! let bytes = wire::embedding_fetch_response_bytes(128);
//! let t = link.transfer_time(bytes);
//! assert!(t > SimDuration::ZERO);
//! ```

#![warn(missing_docs)]

pub mod disk;
pub mod event;
pub mod fault;
pub mod link;
pub mod stats;
pub mod time;
pub mod topology;
pub mod wire;

pub use disk::DiskSpec;
pub use event::{EventQueue, TieBreak};
pub use fault::{FaultEvent, FaultPlan, FaultSpec, LinkFactors};
pub use link::LinkSpec;
pub use stats::{CommCategory, CommStats, Direction};
pub use time::{SimDuration, SimTime};
pub use topology::{ClusterSpec, Collectives};
