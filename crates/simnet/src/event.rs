//! Deterministic discrete-event queue.
//!
//! The asynchronous trainers (ASP-style presets) interleave workers by
//! simulated time. Ties are broken by insertion sequence number so the
//! simulation is fully deterministic regardless of payload type.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

struct Entry<T> {
    time: SimTime,
    seq: u64,
    payload: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<T> Eq for Entry<T> {}

impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event pops
        // first, with the lowest sequence number winning ties.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A min-heap of `(SimTime, payload)` events with deterministic FIFO tie
/// breaking.
pub struct EventQueue<T> {
    heap: BinaryHeap<Entry<T>>,
    next_seq: u64,
}

impl<T> EventQueue<T> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedules `payload` at `time`.
    pub fn push(&mut self, time: SimTime, payload: T) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { time, seq, payload });
        het_trace::counter_add_at("simnet", "evq_push", None, 1);
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<(SimTime, T)> {
        let popped = self.heap.pop().map(|e| (e.time, e.payload));
        if popped.is_some() {
            het_trace::counter_add_at("simnet", "evq_pop", None, 1);
        }
        popped
    }

    /// The time of the earliest event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        EventQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_nanos(30), "c");
        q.push(SimTime::from_nanos(10), "a");
        q.push(SimTime::from_nanos(20), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, p)| p).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_nanos(5);
        q.push(t, 1);
        q.push(t, 2);
        q.push(t, 3);
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, p)| p).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.push(SimTime::ZERO + SimDuration::from_nanos(7), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_nanos(7)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
        q.pop().unwrap();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn interleaved_push_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_nanos(10), 10);
        q.push(SimTime::from_nanos(5), 5);
        assert_eq!(q.pop().unwrap().1, 5);
        q.push(SimTime::from_nanos(1), 1);
        q.push(SimTime::from_nanos(20), 20);
        assert_eq!(q.pop().unwrap().1, 1);
        assert_eq!(q.pop().unwrap().1, 10);
        assert_eq!(q.pop().unwrap().1, 20);
        assert!(q.pop().is_none());
    }
}
