//! Deterministic discrete-event queue.
//!
//! The asynchronous trainers (ASP-style presets) interleave workers by
//! simulated time. Ties are broken by a pluggable [`TieBreak`] rule so
//! the schedule-exploration harness can permute same-time orderings
//! while every individual rule stays fully deterministic regardless of
//! payload type. The default is FIFO (insertion order), which preserves
//! the historical behaviour byte-for-byte.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// How same-time events are ordered when popped.
///
/// All three rules are pure functions of the insertion sequence number,
/// so any fixed choice yields a deterministic simulation; only the
/// *relative order of ties* changes between rules. The oracle fuzzer
/// sweeps this to explore adversarial interleavings.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum TieBreak {
    /// Earliest-pushed event wins ties (insertion order).
    #[default]
    Fifo,
    /// Latest-pushed event wins ties (reverse insertion order).
    Lifo,
    /// Ties permuted by a deterministic hash of the sequence number
    /// keyed with `salt` — a different salt gives a different (but
    /// still reproducible) interleaving.
    Salted(u64),
}

/// SplitMix64 finalizer: a cheap bijective mix for [`TieBreak::Salted`].
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl TieBreak {
    /// The sort rank of the `seq`-th pushed event among same-time peers
    /// (lower rank pops first).
    fn rank(self, seq: u64) -> u64 {
        match self {
            TieBreak::Fifo => seq,
            TieBreak::Lifo => !seq,
            TieBreak::Salted(salt) => mix64(seq ^ salt),
        }
    }
}

struct Entry<T> {
    time: SimTime,
    rank: u64,
    seq: u64,
    payload: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<T> Eq for Entry<T> {}

impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event pops
        // first, with the lowest tie-break rank winning ties (seq is a
        // final tiebreaker in case a salted rank ever collides).
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.rank.cmp(&self.rank))
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A min-heap of `(SimTime, payload)` events with deterministic,
/// pluggable tie breaking (FIFO by default).
pub struct EventQueue<T> {
    heap: BinaryHeap<Entry<T>>,
    next_seq: u64,
    tie_break: TieBreak,
}

impl<T> EventQueue<T> {
    /// Creates an empty queue with FIFO tie breaking.
    pub fn new() -> Self {
        EventQueue::with_tie_break(TieBreak::Fifo)
    }

    /// Creates an empty queue with the given tie-break rule.
    pub fn with_tie_break(tie_break: TieBreak) -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            tie_break,
        }
    }

    /// The tie-break rule this queue was built with.
    pub fn tie_break(&self) -> TieBreak {
        self.tie_break
    }

    /// Schedules `payload` at `time`.
    pub fn push(&mut self, time: SimTime, payload: T) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry {
            time,
            rank: self.tie_break.rank(seq),
            seq,
            payload,
        });
        het_trace::counter_add_at("simnet", "evq_push", None, 1);
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<(SimTime, T)> {
        let popped = self.heap.pop().map(|e| (e.time, e.payload));
        if popped.is_some() {
            het_trace::counter_add_at("simnet", "evq_pop", None, 1);
        }
        popped
    }

    /// The time of the earliest event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        EventQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_nanos(30), "c");
        q.push(SimTime::from_nanos(10), "a");
        q.push(SimTime::from_nanos(20), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, p)| p).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_nanos(5);
        q.push(t, 1);
        q.push(t, 2);
        q.push(t, 3);
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, p)| p).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn lifo_reverses_ties_but_not_time_order() {
        let mut q = EventQueue::with_tie_break(TieBreak::Lifo);
        let t = SimTime::from_nanos(5);
        q.push(t, 1);
        q.push(t, 2);
        q.push(SimTime::from_nanos(1), 0);
        q.push(t, 3);
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, p)| p).collect();
        assert_eq!(order, vec![0, 3, 2, 1]);
    }

    #[test]
    fn salted_ties_are_deterministic_and_salt_sensitive() {
        let run = |salt: u64| {
            let mut q = EventQueue::with_tie_break(TieBreak::Salted(salt));
            let t = SimTime::from_nanos(5);
            for p in 0..16 {
                q.push(t, p);
            }
            std::iter::from_fn(|| q.pop())
                .map(|(_, p)| p)
                .collect::<Vec<i32>>()
        };
        assert_eq!(run(7), run(7), "same salt, same schedule");
        assert_ne!(run(7), run(8), "different salt permutes ties");
        let mut sorted = run(7);
        sorted.sort_unstable();
        assert_eq!(sorted, (0..16).collect::<Vec<_>>(), "permutation only");
    }

    #[test]
    fn salted_time_order_still_wins_over_rank() {
        let mut q = EventQueue::with_tie_break(TieBreak::Salted(99));
        q.push(SimTime::from_nanos(30), "late");
        q.push(SimTime::from_nanos(10), "early");
        assert_eq!(q.pop().unwrap().1, "early");
        assert_eq!(q.pop().unwrap().1, "late");
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.push(SimTime::ZERO + SimDuration::from_nanos(7), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_nanos(7)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
        q.pop().unwrap();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn interleaved_push_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_nanos(10), 10);
        q.push(SimTime::from_nanos(5), 5);
        assert_eq!(q.pop().unwrap().1, 5);
        q.push(SimTime::from_nanos(1), 1);
        q.push(SimTime::from_nanos(20), 20);
        assert_eq!(q.pop().unwrap().1, 1);
        assert_eq!(q.pop().unwrap().1, 10);
        assert_eq!(q.pop().unwrap().1, 20);
        assert!(q.pop().is_none());
    }
}
