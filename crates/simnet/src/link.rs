//! Point-to-point link cost model.
//!
//! A link is characterised by bandwidth (bits per second) and a fixed
//! per-message latency, the classic α–β model: transferring `n` bytes
//! costs `α + n·8/β`. The paper's two clusters give us the reference
//! configurations: 1 Gbit Ethernet (cluster A, worker ↔ server),
//! 10 Gbit Ethernet (cluster B), and PCIe 3.0 (worker ↔ worker, used by
//! the AllReduce path of HET AR / HET Hybrid).

use crate::time::SimDuration;

/// Bandwidth + latency description of a network link.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LinkSpec {
    /// Usable bandwidth in bits per second.
    pub bandwidth_bps: f64,
    /// One-way latency added to every message.
    pub latency: SimDuration,
}

impl LinkSpec {
    /// Creates a link from bandwidth (bits/s) and latency.
    ///
    /// # Panics
    /// Panics if `bandwidth_bps` is not strictly positive and finite.
    pub fn new(bandwidth_bps: f64, latency: SimDuration) -> Self {
        assert!(
            bandwidth_bps > 0.0 && bandwidth_bps.is_finite(),
            "link bandwidth must be positive and finite, got {bandwidth_bps}"
        );
        LinkSpec {
            bandwidth_bps,
            latency,
        }
    }

    /// The paper's cluster A inter-machine link: 1 Gbit Ethernet.
    pub fn ethernet_1gbit() -> Self {
        LinkSpec::new(1e9, SimDuration::from_micros(100))
    }

    /// The paper's cluster B inter-machine link: 10 Gbit Ethernet.
    pub fn ethernet_10gbit() -> Self {
        LinkSpec::new(1e10, SimDuration::from_micros(50))
    }

    /// Intra-cluster worker ↔ worker link: PCIe 3.0 x16 (~128 Gbit/s
    /// usable), the intra-node segment of the collective path.
    pub fn pcie3() -> Self {
        LinkSpec::new(1.28e11, SimDuration::from_micros(5))
    }

    /// Effective worker ↔ worker *collective* link: a hierarchical NCCL
    /// ring rides PCIe inside a node but crosses Ethernet between nodes,
    /// so its end-to-end effective bandwidth sits between the two. This
    /// is what makes the paper's HET AR competitive on the 1 GbE cluster
    /// (§5.1, "utilization of the PCIe bandwidth cross GPUs") yet the
    /// slowest system on the 10 GbE cluster.
    pub fn collective_effective() -> Self {
        LinkSpec::new(6e9, SimDuration::from_micros(20))
    }

    /// Time to move `bytes` over this link, including latency.
    pub fn transfer_time(&self, bytes: u64) -> SimDuration {
        self.latency + self.payload_time(bytes)
    }

    /// Pure serialisation time for `bytes`, without latency. Used by the
    /// collective cost models, which account latency per round instead of
    /// per fragment.
    pub fn payload_time(&self, bytes: u64) -> SimDuration {
        SimDuration::from_secs_f64(bytes as f64 * 8.0 / self.bandwidth_bps)
    }

    /// Effective achievable throughput in bytes/second for messages of a
    /// given size (latency amortised in).
    pub fn effective_bytes_per_sec(&self, message_bytes: u64) -> f64 {
        let t = self.transfer_time(message_bytes).as_secs_f64();
        if t <= 0.0 {
            f64::INFINITY
        } else {
            message_bytes as f64 / t
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gigabit_moves_a_gigabit_per_second() {
        let link = LinkSpec::new(1e9, SimDuration::ZERO);
        // 125 MB = 1 Gbit -> exactly 1 s.
        let t = link.transfer_time(125_000_000);
        assert!((t.as_secs_f64() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn latency_dominates_small_messages() {
        let link = LinkSpec::ethernet_1gbit();
        let t = link.transfer_time(16); // a clock-validation message
                                        // 16 bytes at 1 Gbit/s is 128 ns; latency is 100 µs.
        assert!(t.as_secs_f64() > 0.99e-4);
        assert!(t.as_secs_f64() < 1.01e-4 + 1e-6);
    }

    #[test]
    fn ten_gbe_is_ten_times_faster_on_payload() {
        let b = 10_000_000u64;
        let t1 = LinkSpec::ethernet_1gbit().payload_time(b).as_secs_f64();
        let t10 = LinkSpec::ethernet_10gbit().payload_time(b).as_secs_f64();
        assert!((t1 / t10 - 10.0).abs() < 1e-6);
    }

    #[test]
    fn pcie_is_faster_than_ethernet() {
        let b = 1_000_000u64;
        assert!(LinkSpec::pcie3().transfer_time(b) < LinkSpec::ethernet_10gbit().transfer_time(b));
    }

    #[test]
    fn effective_throughput_increases_with_message_size() {
        let link = LinkSpec::ethernet_1gbit();
        assert!(link.effective_bytes_per_sec(1_000_000) > link.effective_bytes_per_sec(100));
    }

    #[test]
    #[should_panic(expected = "bandwidth must be positive")]
    fn zero_bandwidth_rejected() {
        let _ = LinkSpec::new(0.0, SimDuration::ZERO);
    }

    #[test]
    fn transfer_time_monotone_in_bytes() {
        let link = LinkSpec::ethernet_1gbit();
        let mut prev = SimDuration::ZERO;
        for bytes in [0u64, 1, 100, 10_000, 1_000_000] {
            let t = link.transfer_time(bytes);
            assert!(t >= prev);
            prev = t;
        }
    }
}
