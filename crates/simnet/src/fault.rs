//! Deterministic fault injection: seeded schedules of worker crashes,
//! PS-shard outages, link degradation, message drops, and stragglers.
//!
//! Everything is expressed in **simulated time** and derived from the
//! run seed via SplitMix64 — no wall-clock randomness anywhere — so a
//! run under faults replays bit-identically from the same seed, and a
//! plan with zero scheduled faults is indistinguishable from faults
//! being disabled (every query returns its neutral value and callers
//! apply multipliers only when they differ from 1.0).
//!
//! The taxonomy mirrors what breaks in production embedding training:
//!
//! - **Worker crash**: a trainer process dies and restarts after a
//!   delay. Its cache — including dirty entries whose pending gradients
//!   were never pushed — is lost; it resumes from server state.
//! - **PS-shard outage**: one shard of the parameter server becomes
//!   unreachable, then fails over to a replacement restored from the
//!   last checkpoint (updates since that checkpoint are lost and
//!   accounted as clock regression).
//! - **Link degradation**: a window during which worker↔server links
//!   run with inflated latency and deflated bandwidth.
//! - **Message drop**: an individual request is lost and must be
//!   retried (each retry is charged simulated time and bytes).
//! - **Straggler**: a window during which one worker computes slower by
//!   a constant factor — the classic BSP tail-latency fault.

use crate::time::{SimDuration, SimTime};
use het_json::Json;
use het_rng::SplitMix64;

/// One scheduled fault, with its recovery point in simulated time.
#[derive(Clone, Debug, PartialEq)]
pub enum FaultEvent {
    /// Worker `worker` crashes at `at` and restarts `restart_delay`
    /// later, losing all cached state.
    WorkerCrash {
        /// Crashing worker index.
        worker: usize,
        /// Crash instant.
        at: SimTime,
        /// Downtime before the worker rejoins.
        restart_delay: SimDuration,
    },
    /// PS shard `shard` is unreachable from `at` until failover
    /// completes `failover_delay` later.
    PsShardOutage {
        /// Failing shard index.
        shard: usize,
        /// Outage start.
        at: SimTime,
        /// Time to restore the shard from its last checkpoint.
        failover_delay: SimDuration,
    },
    /// Worker↔server links degrade during `[from, until)`.
    LinkDegradation {
        /// Window start.
        from: SimTime,
        /// Window end (exclusive).
        until: SimTime,
        /// Latency multiplier (≥ 1).
        latency_factor: f64,
        /// Bandwidth multiplier (≤ 1, > 0).
        bandwidth_factor: f64,
    },
    /// Worker `worker` computes `slowdown`× slower during `[from, until)`.
    Straggler {
        /// Straggling worker index.
        worker: usize,
        /// Window start.
        from: SimTime,
        /// Window end (exclusive).
        until: SimTime,
        /// Compute-time multiplier (≥ 1).
        slowdown: f64,
    },
}

impl FaultEvent {
    /// The instant the fault takes effect (used for ordering).
    pub fn at(&self) -> SimTime {
        match self {
            FaultEvent::WorkerCrash { at, .. } | FaultEvent::PsShardOutage { at, .. } => *at,
            FaultEvent::LinkDegradation { from, .. } | FaultEvent::Straggler { from, .. } => *from,
        }
    }
}

/// Knobs for seeded fault-schedule generation.
///
/// Counts are exact (not rates): `worker_crashes = 2` schedules exactly
/// two crash events inside the horizon, which keeps sweep experiments
/// comparable across seeds. The default is the all-zero spec — no
/// faults of any kind.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultSpec {
    /// Number of workers faults may target.
    pub n_workers: usize,
    /// Number of PS shards faults may target.
    pub n_shards: usize,
    /// Faults are scheduled inside `[5%, 85%]` of this horizon, so
    /// recovery windows fit before a typical run ends.
    pub horizon: SimDuration,
    /// Worker crash/restart events to schedule.
    pub worker_crashes: usize,
    /// Downtime before a crashed worker rejoins.
    pub restart_delay: SimDuration,
    /// PS-shard outage/failover events to schedule.
    pub shard_outages: usize,
    /// Time to restore a failed shard from its last checkpoint.
    pub failover_delay: SimDuration,
    /// Straggler windows to schedule.
    pub stragglers: usize,
    /// Compute-time multiplier inside a straggler window (≥ 1).
    pub straggler_slowdown: f64,
    /// Length of each straggler window.
    pub straggler_window: SimDuration,
    /// Link-degradation windows to schedule.
    pub link_degradations: usize,
    /// Latency multiplier inside a degradation window (≥ 1).
    pub degraded_latency_factor: f64,
    /// Bandwidth multiplier inside a degradation window (0 < f ≤ 1).
    pub degraded_bandwidth_factor: f64,
    /// Length of each link-degradation window.
    pub degradation_window: SimDuration,
    /// Probability an individual request is dropped and must be
    /// retried (decided per message, deterministically from the seed).
    pub message_drop_prob: f64,
}

impl Default for FaultSpec {
    fn default() -> Self {
        FaultSpec {
            n_workers: 0,
            n_shards: 0,
            horizon: SimDuration::from_millis(10_000),
            worker_crashes: 0,
            restart_delay: SimDuration::from_millis(200),
            shard_outages: 0,
            failover_delay: SimDuration::from_millis(300),
            stragglers: 0,
            straggler_slowdown: 4.0,
            straggler_window: SimDuration::from_millis(500),
            link_degradations: 0,
            degraded_latency_factor: 10.0,
            degraded_bandwidth_factor: 0.1,
            degradation_window: SimDuration::from_millis(500),
            message_drop_prob: 0.0,
        }
    }
}

impl FaultSpec {
    /// True when this spec schedules nothing and drops nothing.
    pub fn is_zero(&self) -> bool {
        self.worker_crashes == 0
            && self.shard_outages == 0
            && self.stragglers == 0
            && self.link_degradations == 0
            && self.message_drop_prob <= 0.0
    }
}

/// Multipliers a degraded link applies; `NEUTRAL` when links are clean.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LinkFactors {
    /// Latency multiplier (≥ 1).
    pub latency: f64,
    /// Bandwidth multiplier (0 < f ≤ 1).
    pub bandwidth: f64,
}

impl LinkFactors {
    /// The identity factors of an undegraded link.
    pub const NEUTRAL: LinkFactors = LinkFactors {
        latency: 1.0,
        bandwidth: 1.0,
    };

    /// True when applying these factors would change nothing.
    pub fn is_neutral(&self) -> bool {
        self.latency == 1.0 && self.bandwidth == 1.0
    }
}

/// A fully materialised, immutable fault schedule.
///
/// Construction is the only place randomness enters: [`FaultPlan::generate`]
/// derives every event from `(seed, spec)` via SplitMix64, and
/// [`FaultPlan::should_drop`] hashes `(seed, worker, op)` so the
/// drop decision for a given message is a pure function of the plan.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
    drop_prob: f64,
    drop_seed: u64,
}

impl FaultPlan {
    /// The empty plan: no events, no drops.
    pub fn none() -> Self {
        FaultPlan {
            events: Vec::new(),
            drop_prob: 0.0,
            drop_seed: 0,
        }
    }

    /// Generates the schedule for `spec`, deterministically from `seed`.
    pub fn generate(seed: u64, spec: &FaultSpec) -> Self {
        let mut rng = SplitMix64::new(seed ^ 0xFA17_FA17_FA17_FA17);
        let mut events = Vec::new();
        let h = spec.horizon.as_nanos();
        // Events land in [5%, 85%] of the horizon so recovery windows
        // complete inside a typical run.
        let lo = h / 20;
        let span = (h * 17 / 20).saturating_sub(lo).max(1);
        let at = |rng: &mut SplitMix64| SimTime::from_nanos(lo + rng.next_u64() % span);
        let pick = |rng: &mut SplitMix64, n: usize| (rng.next_u64() % n.max(1) as u64) as usize;

        for _ in 0..spec.worker_crashes {
            events.push(FaultEvent::WorkerCrash {
                worker: pick(&mut rng, spec.n_workers),
                at: at(&mut rng),
                restart_delay: spec.restart_delay,
            });
        }
        for _ in 0..spec.shard_outages {
            events.push(FaultEvent::PsShardOutage {
                shard: pick(&mut rng, spec.n_shards),
                at: at(&mut rng),
                failover_delay: spec.failover_delay,
            });
        }
        for _ in 0..spec.stragglers {
            let from = at(&mut rng);
            events.push(FaultEvent::Straggler {
                worker: pick(&mut rng, spec.n_workers),
                from,
                until: from + spec.straggler_window,
                slowdown: spec.straggler_slowdown,
            });
        }
        for _ in 0..spec.link_degradations {
            let from = at(&mut rng);
            events.push(FaultEvent::LinkDegradation {
                from,
                until: from + spec.degradation_window,
                latency_factor: spec.degraded_latency_factor,
                bandwidth_factor: spec.degraded_bandwidth_factor,
            });
        }
        let drop_prob = spec.message_drop_prob.clamp(0.0, 1.0);
        // With nothing to drop, the seed can never influence behaviour;
        // normalise it so a zero spec compares equal to `none()`.
        let drop_seed = if drop_prob > 0.0 { seed } else { 0 };
        let mut plan = FaultPlan {
            events,
            drop_prob,
            drop_seed,
        };
        plan.sort();
        plan
    }

    /// Builds a plan from hand-written events (for tests and demos that
    /// need exact scenarios). `drop_prob`/`drop_seed` stay zero.
    pub fn scripted(events: Vec<FaultEvent>) -> Self {
        let mut plan = FaultPlan {
            events,
            drop_prob: 0.0,
            drop_seed: 0,
        };
        plan.sort();
        plan
    }

    fn sort(&mut self) {
        // Stable sort keyed on the effect instant: ties keep insertion
        // order, so replay order is fully determined.
        self.events.sort_by_key(|e| e.at());
    }

    /// True when the plan schedules nothing and drops nothing — the
    /// case that must be bit-identical to faults being disabled.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty() && self.drop_prob == 0.0
    }

    /// All events in effect order.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Crash events for one worker, in time order.
    pub fn worker_crashes(&self, worker: usize) -> Vec<(SimTime, SimDuration)> {
        self.events
            .iter()
            .filter_map(|e| match e {
                FaultEvent::WorkerCrash {
                    worker: w,
                    at,
                    restart_delay,
                } if *w == worker => Some((*at, *restart_delay)),
                _ => None,
            })
            .collect()
    }

    /// Shard outages, in time order.
    pub fn shard_outages(&self) -> Vec<(usize, SimTime, SimDuration)> {
        self.events
            .iter()
            .filter_map(|e| match e {
                FaultEvent::PsShardOutage {
                    shard,
                    at,
                    failover_delay,
                } => Some((*shard, *at, *failover_delay)),
                _ => None,
            })
            .collect()
    }

    /// True while `shard` is inside an outage window at `at`.
    pub fn shard_down(&self, shard: usize, at: SimTime) -> bool {
        self.shard_outage_end(shard, at).is_some()
    }

    /// If `shard` is inside an outage window at `at`, the instant its
    /// failover completes (the latest end over overlapping windows).
    pub fn shard_outage_end(&self, shard: usize, at: SimTime) -> Option<SimTime> {
        let mut end: Option<SimTime> = None;
        for e in &self.events {
            if let FaultEvent::PsShardOutage {
                shard: s,
                at: start,
                failover_delay,
            } = e
            {
                let until = *start + *failover_delay;
                if *s == shard && at >= *start && at < until {
                    end = Some(end.map_or(until, |t| t.max(until)));
                }
            }
        }
        end
    }

    /// Compute-time multiplier for `worker` at `at` (1.0 when no
    /// straggler window is active; overlapping windows compound).
    pub fn straggler_factor(&self, worker: usize, at: SimTime) -> f64 {
        let mut factor = 1.0;
        for e in &self.events {
            if let FaultEvent::Straggler {
                worker: w,
                from,
                until,
                slowdown,
            } = e
            {
                if *w == worker && at >= *from && at < *until {
                    factor *= *slowdown;
                }
            }
        }
        factor
    }

    /// Link multipliers at `at` ([`LinkFactors::NEUTRAL`] when clean;
    /// overlapping windows compound).
    pub fn link_factors(&self, at: SimTime) -> LinkFactors {
        let mut f = LinkFactors::NEUTRAL;
        for e in &self.events {
            if let FaultEvent::LinkDegradation {
                from,
                until,
                latency_factor,
                bandwidth_factor,
            } = e
            {
                if at >= *from && at < *until {
                    f.latency *= *latency_factor;
                    f.bandwidth *= *bandwidth_factor;
                }
            }
        }
        f
    }

    /// Whether message number `op` from `worker` is dropped — a pure
    /// function of `(plan seed, worker, op)`, so replays agree.
    pub fn should_drop(&self, worker: usize, op: u64) -> bool {
        if self.drop_prob <= 0.0 {
            return false;
        }
        let mut h = SplitMix64::new(
            self.drop_seed ^ (worker as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ op,
        );
        let unit = (h.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < self.drop_prob
    }

    /// The per-message drop probability.
    pub fn drop_prob(&self) -> f64 {
        self.drop_prob
    }

    /// Serialises the plan as JSON, so a chaos scenario is a
    /// reproducible artifact (a file on disk) instead of a flag soup.
    /// Round-trips exactly through [`FaultPlan::from_json`].
    pub fn to_json(&self) -> Json {
        let event_json = |e: &FaultEvent| -> Json {
            let kv = |k: &str, v: Json| (k.to_string(), v);
            match e {
                FaultEvent::WorkerCrash {
                    worker,
                    at,
                    restart_delay,
                } => Json::Obj(vec![
                    kv("kind", Json::Str("worker_crash".to_string())),
                    kv("worker", Json::UInt(*worker as u64)),
                    kv("at_ns", Json::UInt(at.as_nanos())),
                    kv("restart_ns", Json::UInt(restart_delay.as_nanos())),
                ]),
                FaultEvent::PsShardOutage {
                    shard,
                    at,
                    failover_delay,
                } => Json::Obj(vec![
                    kv("kind", Json::Str("ps_shard_outage".to_string())),
                    kv("shard", Json::UInt(*shard as u64)),
                    kv("at_ns", Json::UInt(at.as_nanos())),
                    kv("failover_ns", Json::UInt(failover_delay.as_nanos())),
                ]),
                FaultEvent::LinkDegradation {
                    from,
                    until,
                    latency_factor,
                    bandwidth_factor,
                } => Json::Obj(vec![
                    kv("kind", Json::Str("link_degradation".to_string())),
                    kv("from_ns", Json::UInt(from.as_nanos())),
                    kv("until_ns", Json::UInt(until.as_nanos())),
                    kv("latency_factor", Json::Num(*latency_factor)),
                    kv("bandwidth_factor", Json::Num(*bandwidth_factor)),
                ]),
                FaultEvent::Straggler {
                    worker,
                    from,
                    until,
                    slowdown,
                } => Json::Obj(vec![
                    kv("kind", Json::Str("straggler".to_string())),
                    kv("worker", Json::UInt(*worker as u64)),
                    kv("from_ns", Json::UInt(from.as_nanos())),
                    kv("until_ns", Json::UInt(until.as_nanos())),
                    kv("slowdown", Json::Num(*slowdown)),
                ]),
            }
        };
        Json::Obj(vec![
            (
                "events".to_string(),
                Json::Arr(self.events.iter().map(event_json).collect()),
            ),
            ("drop_prob".to_string(), Json::Num(self.drop_prob)),
            ("drop_seed".to_string(), Json::UInt(self.drop_seed)),
        ])
    }

    /// Parses a plan back from its [`FaultPlan::to_json`] form. Events
    /// are re-sorted and a zero drop probability normalises the drop
    /// seed to 0, so a round-trip compares equal even after hand edits.
    pub fn from_json(json: &Json) -> Result<FaultPlan, String> {
        fn get<'a>(obj: &'a [(String, Json)], key: &str) -> Result<&'a Json, String> {
            obj.iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v)
                .ok_or_else(|| format!("fault plan: missing field '{key}'"))
        }
        fn get_uint(obj: &[(String, Json)], key: &str) -> Result<u64, String> {
            match get(obj, key)? {
                Json::UInt(n) => Ok(*n),
                other => Err(format!("fault plan: '{key}' must be a uint, got {other:?}")),
            }
        }
        fn get_num(obj: &[(String, Json)], key: &str) -> Result<f64, String> {
            match get(obj, key)? {
                Json::Num(x) => Ok(*x),
                Json::UInt(n) => Ok(*n as f64),
                Json::Int(n) => Ok(*n as f64),
                other => Err(format!(
                    "fault plan: '{key}' must be a number, got {other:?}"
                )),
            }
        }
        let Json::Obj(obj) = json else {
            return Err("fault plan: not an object".to_string());
        };
        let Json::Arr(raw_events) = get(obj, "events")? else {
            return Err("fault plan: 'events' must be an array".to_string());
        };
        let mut events = Vec::with_capacity(raw_events.len());
        for (i, raw) in raw_events.iter().enumerate() {
            let Json::Obj(e) = raw else {
                return Err(format!("fault plan: event {i} is not an object"));
            };
            let kind = match get(e, "kind")? {
                Json::Str(s) => s.as_str(),
                other => return Err(format!("fault plan: event {i} kind {other:?}")),
            };
            events.push(match kind {
                "worker_crash" => FaultEvent::WorkerCrash {
                    worker: get_uint(e, "worker")? as usize,
                    at: SimTime::from_nanos(get_uint(e, "at_ns")?),
                    restart_delay: SimDuration::from_nanos(get_uint(e, "restart_ns")?),
                },
                "ps_shard_outage" => FaultEvent::PsShardOutage {
                    shard: get_uint(e, "shard")? as usize,
                    at: SimTime::from_nanos(get_uint(e, "at_ns")?),
                    failover_delay: SimDuration::from_nanos(get_uint(e, "failover_ns")?),
                },
                "link_degradation" => FaultEvent::LinkDegradation {
                    from: SimTime::from_nanos(get_uint(e, "from_ns")?),
                    until: SimTime::from_nanos(get_uint(e, "until_ns")?),
                    latency_factor: get_num(e, "latency_factor")?,
                    bandwidth_factor: get_num(e, "bandwidth_factor")?,
                },
                "straggler" => FaultEvent::Straggler {
                    worker: get_uint(e, "worker")? as usize,
                    from: SimTime::from_nanos(get_uint(e, "from_ns")?),
                    until: SimTime::from_nanos(get_uint(e, "until_ns")?),
                    slowdown: get_num(e, "slowdown")?,
                },
                other => return Err(format!("fault plan: event {i} unknown kind '{other}'")),
            });
        }
        let drop_prob = get_num(obj, "drop_prob")?.clamp(0.0, 1.0);
        let drop_seed = if drop_prob > 0.0 {
            get_uint(obj, "drop_seed")?
        } else {
            0
        };
        let mut plan = FaultPlan {
            events,
            drop_prob,
            drop_seed,
        };
        plan.sort();
        Ok(plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> FaultSpec {
        FaultSpec {
            n_workers: 8,
            n_shards: 4,
            horizon: SimDuration::from_millis(4_000),
            worker_crashes: 3,
            shard_outages: 2,
            stragglers: 2,
            link_degradations: 1,
            message_drop_prob: 0.05,
            ..FaultSpec::default()
        }
    }

    #[test]
    fn same_seed_same_schedule() {
        let a = FaultPlan::generate(42, &spec());
        let b = FaultPlan::generate(42, &spec());
        assert_eq!(a, b);
        let c = FaultPlan::generate(43, &spec());
        assert_ne!(a, c, "different seeds should give different schedules");
    }

    #[test]
    fn zero_spec_yields_empty_plan() {
        let spec = FaultSpec {
            n_workers: 8,
            n_shards: 4,
            ..FaultSpec::default()
        };
        assert!(spec.is_zero());
        let plan = FaultPlan::generate(7, &spec);
        assert!(plan.is_empty());
        assert_eq!(plan, FaultPlan::none());
    }

    #[test]
    fn event_counts_match_spec() {
        let plan = FaultPlan::generate(1, &spec());
        let crashes = plan
            .events()
            .iter()
            .filter(|e| matches!(e, FaultEvent::WorkerCrash { .. }))
            .count();
        let outages = plan
            .events()
            .iter()
            .filter(|e| matches!(e, FaultEvent::PsShardOutage { .. }))
            .count();
        let strag = plan
            .events()
            .iter()
            .filter(|e| matches!(e, FaultEvent::Straggler { .. }))
            .count();
        let degr = plan
            .events()
            .iter()
            .filter(|e| matches!(e, FaultEvent::LinkDegradation { .. }))
            .count();
        assert_eq!((crashes, outages, strag, degr), (3, 2, 2, 1));
    }

    #[test]
    fn events_are_time_ordered_and_inside_horizon() {
        let s = spec();
        let plan = FaultPlan::generate(99, &s);
        let times: Vec<_> = plan.events().iter().map(|e| e.at()).collect();
        let mut sorted = times.clone();
        sorted.sort();
        assert_eq!(times, sorted);
        for t in times {
            assert!(t.as_nanos() < s.horizon.as_nanos());
        }
    }

    #[test]
    fn shard_down_window_is_half_open() {
        let plan = FaultPlan::scripted(vec![FaultEvent::PsShardOutage {
            shard: 2,
            at: SimTime::from_nanos(100),
            failover_delay: SimDuration::from_nanos(50),
        }]);
        assert!(!plan.shard_down(2, SimTime::from_nanos(99)));
        assert!(plan.shard_down(2, SimTime::from_nanos(100)));
        assert!(plan.shard_down(2, SimTime::from_nanos(149)));
        assert!(!plan.shard_down(2, SimTime::from_nanos(150)));
        assert!(
            !plan.shard_down(1, SimTime::from_nanos(120)),
            "other shards unaffected"
        );
        assert_eq!(
            plan.shard_outage_end(2, SimTime::from_nanos(120)),
            Some(SimTime::from_nanos(150))
        );
        assert_eq!(plan.shard_outage_end(2, SimTime::from_nanos(150)), None);
        assert_eq!(plan.shard_outage_end(1, SimTime::from_nanos(120)), None);
    }

    #[test]
    fn straggler_and_link_factors_neutral_outside_windows() {
        let plan = FaultPlan::scripted(vec![
            FaultEvent::Straggler {
                worker: 1,
                from: SimTime::from_nanos(10),
                until: SimTime::from_nanos(20),
                slowdown: 3.0,
            },
            FaultEvent::LinkDegradation {
                from: SimTime::from_nanos(15),
                until: SimTime::from_nanos(30),
                latency_factor: 5.0,
                bandwidth_factor: 0.5,
            },
        ]);
        assert_eq!(plan.straggler_factor(1, SimTime::from_nanos(5)), 1.0);
        assert_eq!(plan.straggler_factor(1, SimTime::from_nanos(15)), 3.0);
        assert_eq!(plan.straggler_factor(0, SimTime::from_nanos(15)), 1.0);
        assert!(plan.link_factors(SimTime::from_nanos(5)).is_neutral());
        let f = plan.link_factors(SimTime::from_nanos(20));
        assert_eq!(
            f,
            LinkFactors {
                latency: 5.0,
                bandwidth: 0.5
            }
        );
    }

    #[test]
    fn drops_are_deterministic_and_roughly_calibrated() {
        let plan = FaultPlan::generate(5, &spec());
        let hits: Vec<bool> = (0..10_000).map(|op| plan.should_drop(3, op)).collect();
        let again: Vec<bool> = (0..10_000).map(|op| plan.should_drop(3, op)).collect();
        assert_eq!(hits, again);
        let rate = hits.iter().filter(|&&h| h).count() as f64 / 10_000.0;
        assert!(
            (rate - 0.05).abs() < 0.01,
            "drop rate {rate} should be near 0.05"
        );
        let none = FaultPlan::none();
        assert!((0..1000).all(|op| !none.should_drop(0, op)));
    }

    #[test]
    fn json_round_trips_generated_and_scripted_plans() {
        for seed in [1u64, 42, 0xFA17] {
            let plan = FaultPlan::generate(seed, &spec());
            let back = FaultPlan::from_json(&plan.to_json()).unwrap();
            assert_eq!(plan, back, "seed {seed}");
            // Text round-trip through the in-tree parser too.
            let parsed = het_json::from_str(&plan.to_json().encode()).unwrap();
            assert_eq!(FaultPlan::from_json(&parsed).unwrap(), plan);
        }
        let empty = FaultPlan::none();
        assert_eq!(FaultPlan::from_json(&empty.to_json()).unwrap(), empty);
    }

    #[test]
    fn json_rejects_malformed_plans() {
        assert!(FaultPlan::from_json(&Json::Null).is_err());
        let no_events = Json::Obj(vec![("drop_prob".to_string(), Json::Num(0.0))]);
        assert!(FaultPlan::from_json(&no_events).is_err());
        let bad_kind =
            het_json::from_str(r#"{"events":[{"kind":"mystery"}],"drop_prob":0.0,"drop_seed":0}"#)
                .unwrap();
        assert!(FaultPlan::from_json(&bad_kind).is_err());
    }

    #[test]
    fn json_normalises_drop_seed_when_prob_is_zero() {
        let doc = het_json::from_str(r#"{"events":[],"drop_prob":0.0,"drop_seed":99}"#).unwrap();
        let plan = FaultPlan::from_json(&doc).unwrap();
        assert_eq!(plan, FaultPlan::none());
    }

    #[test]
    fn scripted_plan_sorts_events() {
        let plan = FaultPlan::scripted(vec![
            FaultEvent::WorkerCrash {
                worker: 0,
                at: SimTime::from_nanos(200),
                restart_delay: SimDuration::ZERO,
            },
            FaultEvent::WorkerCrash {
                worker: 1,
                at: SimTime::from_nanos(100),
                restart_delay: SimDuration::ZERO,
            },
        ]);
        assert_eq!(plan.events()[0].at(), SimTime::from_nanos(100));
        assert_eq!(plan.worker_crashes(0).len(), 1);
        assert_eq!(plan.worker_crashes(2).len(), 0);
    }
}
