//! Wire-format size accounting for every message the HET protocols send.
//!
//! The reproduction charges simulated time for exactly the bytes each
//! protocol step would put on the wire: embedding keys, f32 vectors,
//! Lamport clocks, and a fixed per-message framing overhead (Ethernet +
//! IP + TCP headers plus the PS-Lite-style message header). Keeping the
//! formulas in one module means the trainer, the baselines, and the
//! benches all agree on costs.

/// Bytes of one embedding key (u64 feature ID).
pub const KEY_BYTES: u64 = 8;
/// Bytes of one Lamport clock (u64).
pub const CLOCK_BYTES: u64 = 8;
/// Bytes of one f32 embedding component.
pub const F32_BYTES: u64 = 4;
/// Fixed framing overhead per message (headers, routing metadata).
pub const MSG_OVERHEAD_BYTES: u64 = 64;

/// Bytes of a fetch *request* for `n_keys` embeddings.
pub fn embedding_fetch_request_bytes(n_keys: usize) -> u64 {
    MSG_OVERHEAD_BYTES + n_keys as u64 * KEY_BYTES
}

/// Bytes of a fetch *response* carrying one embedding of dimension `dim`
/// (vector + key echo + global clock).
pub fn embedding_fetch_response_bytes(dim: usize) -> u64 {
    MSG_OVERHEAD_BYTES + KEY_BYTES + CLOCK_BYTES + dim as u64 * F32_BYTES
}

/// Bytes of a batched fetch response for `n_keys` embeddings of `dim`.
pub fn batched_fetch_response_bytes(n_keys: usize, dim: usize) -> u64 {
    MSG_OVERHEAD_BYTES + n_keys as u64 * (KEY_BYTES + CLOCK_BYTES + dim as u64 * F32_BYTES)
}

/// Bytes of a push (eviction write-back) of `n_keys` accumulated
/// gradients of `dim` with their local clocks.
pub fn embedding_push_bytes(n_keys: usize, dim: usize) -> u64 {
    MSG_OVERHEAD_BYTES + n_keys as u64 * (KEY_BYTES + CLOCK_BYTES + dim as u64 * F32_BYTES)
}

/// Bytes of a clock-validation round trip for `n_keys` keys: the client
/// sends (key, local clock) pairs; the server answers with (key, global
/// clock) pairs. This is the cheap message HET §3.1 relies on: "we only
/// send the clocks, rather than the embedding vectors".
pub fn clock_check_bytes(n_keys: usize) -> u64 {
    2 * (MSG_OVERHEAD_BYTES + n_keys as u64 * (KEY_BYTES + CLOCK_BYTES))
}

/// Bytes of one dense-gradient push or dense-parameter pull covering
/// `n_params` f32 values (used by the pure-PS baselines for the dense
/// part of the model).
pub fn dense_transfer_bytes(n_params: usize) -> u64 {
    MSG_OVERHEAD_BYTES + n_params as u64 * F32_BYTES
}

/// Bytes one worker contributes to an AllGather of its sparse gradient
/// set (`n_keys` keys of `dim`): its own block is sent to every peer.
pub fn sparse_allgather_block_bytes(n_keys: usize, dim: usize) -> u64 {
    MSG_OVERHEAD_BYTES + n_keys as u64 * (KEY_BYTES + dim as u64 * F32_BYTES)
}

/// Unfused variants: one message (and one header) per key, the cost a
/// runtime pays without the paper's §4.2 message-fusion optimisation.
pub mod unfused {
    use super::*;

    /// Per-key fetch requests.
    pub fn embedding_fetch_request_bytes(n_keys: usize) -> u64 {
        n_keys as u64 * (MSG_OVERHEAD_BYTES + KEY_BYTES)
    }

    /// Per-key fetch responses.
    pub fn batched_fetch_response_bytes(n_keys: usize, dim: usize) -> u64 {
        n_keys as u64 * super::embedding_fetch_response_bytes(dim)
    }

    /// Per-key pushes.
    pub fn embedding_push_bytes(n_keys: usize, dim: usize) -> u64 {
        n_keys as u64 * (MSG_OVERHEAD_BYTES + KEY_BYTES + CLOCK_BYTES + dim as u64 * F32_BYTES)
    }

    /// Per-key clock-validation round trips.
    pub fn clock_check_bytes(n_keys: usize) -> u64 {
        n_keys as u64 * 2 * (MSG_OVERHEAD_BYTES + KEY_BYTES + CLOCK_BYTES)
    }
}

/// Dispatches between fused (§4.2) and per-key message costs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MessageCosts {
    /// Whether pulls/pushes are fused into one message per protocol step.
    pub fused: bool,
}

impl MessageCosts {
    /// Fetch-request bytes for `n_keys`.
    pub fn fetch_request(&self, n_keys: usize) -> u64 {
        if self.fused {
            embedding_fetch_request_bytes(n_keys)
        } else {
            unfused::embedding_fetch_request_bytes(n_keys)
        }
    }

    /// Fetch-response bytes for `n_keys` of `dim`.
    pub fn fetch_response(&self, n_keys: usize, dim: usize) -> u64 {
        if self.fused {
            batched_fetch_response_bytes(n_keys, dim)
        } else {
            unfused::batched_fetch_response_bytes(n_keys, dim)
        }
    }

    /// Push bytes for `n_keys` of `dim`.
    pub fn push(&self, n_keys: usize, dim: usize) -> u64 {
        if self.fused {
            embedding_push_bytes(n_keys, dim)
        } else {
            unfused::embedding_push_bytes(n_keys, dim)
        }
    }

    /// Clock round-trip bytes for `n_keys`.
    pub fn clock_check(&self, n_keys: usize) -> u64 {
        if self.fused {
            clock_check_bytes(n_keys)
        } else {
            unfused::clock_check_bytes(n_keys)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fetch_response_scales_with_dim() {
        let small = embedding_fetch_response_bytes(32);
        let large = embedding_fetch_response_bytes(128);
        assert_eq!(large - small, (128 - 32) * F32_BYTES);
    }

    #[test]
    fn clock_check_is_much_cheaper_than_vector_transfer() {
        // The premise of CheckValid: clocks are cheap relative to vectors.
        let check = clock_check_bytes(1);
        let fetch = embedding_fetch_response_bytes(128);
        assert!(check < fetch);
    }

    #[test]
    fn batched_fetch_amortises_overhead() {
        let one_by_one: u64 = (0..10).map(|_| embedding_fetch_response_bytes(64)).sum();
        let batched = batched_fetch_response_bytes(10, 64);
        assert!(batched < one_by_one);
        // Payload bytes identical; difference is exactly 9 saved headers.
        assert_eq!(one_by_one - batched, 9 * MSG_OVERHEAD_BYTES);
    }

    #[test]
    fn push_and_fetch_are_symmetric() {
        assert_eq!(
            embedding_push_bytes(5, 16),
            batched_fetch_response_bytes(5, 16)
        );
    }

    #[test]
    fn zero_keys_still_costs_a_header() {
        assert_eq!(embedding_fetch_request_bytes(0), MSG_OVERHEAD_BYTES);
        assert_eq!(dense_transfer_bytes(0), MSG_OVERHEAD_BYTES);
    }

    #[test]
    fn unfused_always_costs_at_least_fused() {
        let fused = MessageCosts { fused: true };
        let raw = MessageCosts { fused: false };
        for n in [1usize, 4, 64, 1000] {
            assert!(raw.fetch_request(n) >= fused.fetch_request(n));
            assert!(raw.fetch_response(n, 32) >= fused.fetch_response(n, 32));
            assert!(raw.push(n, 32) >= fused.push(n, 32));
            assert!(raw.clock_check(n) >= fused.clock_check(n));
        }
        // The gap is exactly the saved headers.
        assert_eq!(raw.push(10, 8) - fused.push(10, 8), 9 * MSG_OVERHEAD_BYTES);
    }

    #[test]
    fn unfused_zero_keys_costs_nothing() {
        let raw = MessageCosts { fused: false };
        assert_eq!(raw.fetch_request(0), 0);
        assert_eq!(raw.push(0, 16), 0);
    }
}
