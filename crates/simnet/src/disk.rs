//! Disk I/O cost model.
//!
//! The tiered parameter-server store (`het-store`) spills cold embedding
//! rows to a log-structured on-disk tier; the time those reads and
//! writes take must flow into the simulated clocks exactly like network
//! time does, or the memory-vs-disk trade-off the tiering exists to
//! explore would be invisible. A disk access is priced with the same
//! α–β shape as [`crate::link::LinkSpec`]: a fixed per-access seek term
//! (α) plus a per-byte transfer term (β). The model is a pure function
//! of the byte count, so charging it is deterministic — same seed, same
//! access stream, same simulated clock.
//!
//! Bandwidths are in **bytes** per second (the storage convention),
//! unlike `LinkSpec`, which follows the networking convention of bits
//! per second.

use crate::time::SimDuration;

/// Seek latency + read/write bandwidth description of one storage
/// device.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DiskSpec {
    /// Fixed per-access positioning cost (the α term): head seek for
    /// spinning media, command/queue overhead for flash.
    pub seek: SimDuration,
    /// Sequential read bandwidth in bytes per second (the β term for
    /// reads).
    pub read_bytes_per_sec: f64,
    /// Sequential write bandwidth in bytes per second (the β term for
    /// writes).
    pub write_bytes_per_sec: f64,
}

impl DiskSpec {
    /// Creates a disk model from a seek time and read/write bandwidths
    /// (bytes per second).
    ///
    /// # Panics
    /// Panics if either bandwidth is not strictly positive and finite.
    pub fn new(seek: SimDuration, read_bytes_per_sec: f64, write_bytes_per_sec: f64) -> Self {
        assert!(
            read_bytes_per_sec > 0.0 && read_bytes_per_sec.is_finite(),
            "disk read bandwidth must be positive and finite, got {read_bytes_per_sec}"
        );
        assert!(
            write_bytes_per_sec > 0.0 && write_bytes_per_sec.is_finite(),
            "disk write bandwidth must be positive and finite, got {write_bytes_per_sec}"
        );
        DiskSpec {
            seek,
            read_bytes_per_sec,
            write_bytes_per_sec,
        }
    }

    /// A datacenter NVMe flash device: ~20 µs access overhead,
    /// 2.5 GB/s reads, 1.2 GB/s writes. The default for the tiered
    /// store's cold tier.
    pub fn nvme() -> Self {
        DiskSpec::new(SimDuration::from_micros(20), 2.5e9, 1.2e9)
    }

    /// A 7200 rpm hard drive: ~8 ms average seek, 180/120 MB/s
    /// sequential read/write. The pessimistic end of the sweep.
    pub fn hdd() -> Self {
        DiskSpec::new(SimDuration::from_millis(8), 1.8e8, 1.2e8)
    }

    /// Time to read `bytes` in one access: seek + payload.
    pub fn read_time(&self, bytes: u64) -> SimDuration {
        self.seek + SimDuration::from_secs_f64(bytes as f64 / self.read_bytes_per_sec)
    }

    /// Time to write `bytes` in one access: seek + payload.
    pub fn write_time(&self, bytes: u64) -> SimDuration {
        self.seek + SimDuration::from_secs_f64(bytes as f64 / self.write_bytes_per_sec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_time_is_seek_plus_payload() {
        let d = DiskSpec::new(SimDuration::from_micros(100), 1e6, 1e6);
        // 1 MB at 1 MB/s = 1 s, plus 100 µs seek.
        let t = d.read_time(1_000_000);
        assert!((t.as_secs_f64() - 1.0001).abs() < 1e-9);
    }

    #[test]
    fn seek_dominates_small_accesses() {
        let d = DiskSpec::hdd();
        let t = d.read_time(256); // one embedding-row page
        let seek = d.seek.as_secs_f64();
        assert!(t.as_secs_f64() >= seek);
        assert!(t.as_secs_f64() < seek * 1.01);
    }

    #[test]
    fn nvme_is_faster_than_hdd() {
        let b = 1_000_000u64;
        assert!(DiskSpec::nvme().read_time(b) < DiskSpec::hdd().read_time(b));
        assert!(DiskSpec::nvme().write_time(b) < DiskSpec::hdd().write_time(b));
    }

    #[test]
    fn writes_cost_at_least_reads_on_asymmetric_devices() {
        let d = DiskSpec::nvme();
        assert!(d.write_time(1_000_000) > d.read_time(1_000_000));
    }

    #[test]
    fn times_are_monotone_in_bytes() {
        let d = DiskSpec::nvme();
        let mut prev = SimDuration::ZERO;
        for bytes in [0u64, 1, 100, 10_000, 1_000_000] {
            let t = d.write_time(bytes);
            assert!(t >= prev);
            prev = t;
        }
    }

    #[test]
    fn cost_is_deterministic() {
        let d = DiskSpec::nvme();
        for bytes in [0u64, 17, 4096, 123_456_789] {
            assert_eq!(d.read_time(bytes), d.read_time(bytes));
            assert_eq!(d.write_time(bytes), d.write_time(bytes));
        }
    }

    #[test]
    #[should_panic(expected = "read bandwidth must be positive")]
    fn zero_read_bandwidth_rejected() {
        let _ = DiskSpec::new(SimDuration::ZERO, 0.0, 1.0);
    }
}
