//! Model-based consistency oracle for the HET stack.
//!
//! The oracle replays a finished `het-trace-v1` event stream against an
//! idealized sequential model of the run and checks, per event, the
//! invariants the paper claims (§3.3, §4):
//!
//! 1. **Clock bounds per sync mode** — BSP workers show divergence 0 at
//!    every barrier (≤ 1 mid-round), SSP workers stay within `s` (+1
//!    for the in-flight iteration), ASP is unbounded but every worker's
//!    progress is monotone in simulated time.
//! 2. **Gradient conservation** — every cache entry that started
//!    accumulating a pending gradient (`cache/dirtied`) is eventually
//!    written back to the PS (`cache/writebacks`) or attributed to an
//!    injected crash (`trainer/worker_crash.dirty_lost`); with a cached
//!    sparse path the PS sees exactly one push per write-back.
//! 3. **Cache coherence** — every read served from the cache reports
//!    its observed staleness window (`client/read_window`); the lag
//!    `c_c − c_s` and gap `c_g − c_c` must both stay within the
//!    *configured* staleness `s`, independently of what the client's
//!    own `CheckValid` admitted. Prefetch-served reads flow through the
//!    same `read_window` events, so a prefetch install can never let a
//!    read evade this check.
//! 4. **Prefetch discipline** — a run with `lookahead_depth = 0` must
//!    be prefetch-silent (no `prefetcher` events, no prefetch
//!    counters); with lookahead, the prefetch ledger must close
//!    (`installs = hits + wasted`, installs ≤ issued pulls, prefetch
//!    hits ≤ total hits) and the `prefetch_install` / `prefetch_hit`
//!    event stream must reconcile with the cache counters.
//!
//! The oracle is driven either from an in-memory
//! [`het_trace::TraceLog`] (via `ReplayLog::from`) or from a JSONL
//! document (via `ReplayLog::parse`). The schedule-exploration fuzzer
//! on top of it lives in [`fuzz`].

#![warn(missing_docs)]

pub mod fuzz;

use het_core::config::{SparseMode, SyncMode, TrainerConfig};
use het_core::consistency::ConsistencyBound;
use het_json::{Json, ToJson};
use het_trace::replay::ReplayLog;

/// What the oracle needs to know about the run it replays.
#[derive(Clone, Debug, PartialEq)]
pub struct OracleSpec {
    /// Worker synchronisation mode of the run.
    pub sync: SyncMode,
    /// Cache staleness threshold `s` (`None` = no cached sparse path).
    pub cache_staleness: Option<u64>,
    /// Number of workers in the cluster.
    pub n_workers: usize,
    /// Check that PS pushes equal cache write-backs — valid only when
    /// the *only* gradient path to the sparse PS is cache eviction.
    pub check_push_parity: bool,
    /// Configured prefetch lookahead depth (0 = demand-only run, which
    /// the oracle requires to be prefetch-silent).
    pub lookahead_depth: u64,
}

impl OracleSpec {
    /// Derives the spec from a trainer configuration.
    pub fn of(config: &TrainerConfig) -> OracleSpec {
        let cache_staleness = match config.system.sparse {
            SparseMode::Cached { staleness, .. } => Some(staleness),
            _ => None,
        };
        OracleSpec {
            sync: config.system.sync,
            cache_staleness,
            n_workers: config.cluster.n_workers,
            check_push_parity: cache_staleness.is_some(),
            lookahead_depth: config.lookahead_depth,
        }
    }
}

/// One invariant violation, pinned to the event that exposed it.
#[derive(Clone, Debug, PartialEq)]
pub struct Violation {
    /// Which check failed (e.g. `"bsp-barrier-divergence"`).
    pub check: &'static str,
    /// Simulated time of the offending event (0 for end-of-trace
    /// checks).
    pub t_ns: u64,
    /// Worker the offending event was attributed to.
    pub worker: Option<u64>,
    /// Human-readable description of the breakage.
    pub message: String,
}

impl ToJson for Violation {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("check".to_string(), Json::Str(self.check.to_string())),
            ("t_ns".to_string(), Json::UInt(self.t_ns)),
            (
                "worker".to_string(),
                self.worker.map(Json::UInt).unwrap_or(Json::Null),
            ),
            ("message".to_string(), Json::Str(self.message.clone())),
        ])
    }
}

/// Coverage counters of one successful replay, so harnesses can assert
/// the oracle actually exercised its checks.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct OracleReport {
    /// Events walked.
    pub events: usize,
    /// Per-worker iteration completions observed.
    pub computes: u64,
    /// BSP barriers checked for zero divergence.
    pub barriers: u64,
    /// `client/read_window` events checked against the staleness bound.
    pub window_reads: u64,
    /// Largest worker-clock spread observed anywhere in the run.
    pub max_spread: u64,
    /// Workers whose dirty-gradient ledger was balanced at end of
    /// trace.
    pub conservation_workers: usize,
    /// Prefetch installs whose ledger was reconciled at end of trace.
    pub prefetch_installs: u64,
}

macro_rules! violation {
    ($check:expr, $t:expr, $w:expr, $($fmt:tt)*) => {
        return Err(Violation {
            check: $check,
            t_ns: $t,
            worker: $w,
            message: format!($($fmt)*),
        })
    };
}

/// Replays a trace against the reference model and checks every
/// invariant. Returns coverage counters on success, the first
/// violation otherwise.
pub fn check_replay(log: &ReplayLog, spec: &OracleSpec) -> Result<OracleReport, Violation> {
    let n = spec.n_workers;
    let bound = ConsistencyBound::for_sync(spec.sync);
    let mut report = OracleReport::default();
    let mut iters = vec![0u64; n];
    let mut last_compute_t = vec![0u64; n];
    let mut crash_dirty = vec![0u64; n];
    let mut prefetch_install_events = 0u64;
    let mut prefetch_hit_events = 0u64;

    let spread = |iters: &[u64]| -> u64 {
        let lo = iters.iter().copied().min().unwrap_or(0);
        let hi = iters.iter().copied().max().unwrap_or(0);
        hi - lo
    };

    for e in log.cursor() {
        report.events += 1;
        if e.is("trainer", "compute") {
            let Some(w) = e.worker else {
                violation!(
                    "attribution",
                    e.t_ns,
                    None,
                    "compute event without a worker scope"
                );
            };
            let w = w as usize;
            if w >= n {
                violation!(
                    "attribution",
                    e.t_ns,
                    e.worker,
                    "compute event for worker {w} outside the {n}-worker cluster"
                );
            }
            // Monotone progress: a worker's iterations never move
            // backwards in simulated time (ASP's only guarantee).
            if e.t_ns < last_compute_t[w] {
                violation!(
                    "monotone-progress",
                    e.t_ns,
                    e.worker,
                    "worker {w} computed at t={} after t={}",
                    e.t_ns,
                    last_compute_t[w]
                );
            }
            last_compute_t[w] = e.t_ns;
            iters[w] += 1;
            report.computes += 1;
            let d = spread(&iters);
            report.max_spread = report.max_spread.max(d);
            if !bound.holds_any_time(d) {
                violation!(
                    "sync-any-time-bound",
                    e.t_ns,
                    e.worker,
                    "worker-clock spread {d} exceeds the {:?} any-time bound {:?} \
                     (iterations {iters:?})",
                    spec.sync,
                    bound.any_time_bound()
                );
            }
        } else if e.is("trainer", "barrier") {
            report.barriers += 1;
            let d = spread(&iters);
            if !bound.holds_at_validation(d) {
                violation!(
                    "bsp-barrier-divergence",
                    e.t_ns,
                    e.worker,
                    "worker-clock spread {d} at a barrier exceeds the {:?} validation \
                     bound {:?} (iterations {iters:?})",
                    spec.sync,
                    bound.validation_bound()
                );
            }
        } else if e.is("trainer", "worker_crash") {
            if let (Some(w), Some(dirty)) = (e.worker, e.field_u64("dirty_lost")) {
                if (w as usize) < n {
                    crash_dirty[w as usize] += dirty;
                }
            }
        } else if e.is("client", "read_window") {
            let Some(s) = spec.cache_staleness else {
                violation!(
                    "cache-window",
                    e.t_ns,
                    e.worker,
                    "read_window event in a run without a cached sparse path"
                );
            };
            report.window_reads += 1;
            let lag = e.field_u64("max_lag").unwrap_or(0);
            let gap = e.field_u64("max_gap").unwrap_or(0);
            if lag > s {
                violation!(
                    "cache-window",
                    e.t_ns,
                    e.worker,
                    "read served a cache entry with write lag c_c−c_s = {lag} > s = {s}"
                );
            }
            if gap > s {
                violation!(
                    "cache-window",
                    e.t_ns,
                    e.worker,
                    "read validated a cache entry with clock gap c_g−c_c = {gap} > s = {s}"
                );
            }
        } else if e.comp == "prefetcher" {
            // Prefetching only exists on the cached sparse path, and a
            // depth-0 run must reproduce the legacy path byte-for-byte
            // — any prefetcher event there is a protocol leak.
            if spec.cache_staleness.is_none() {
                violation!(
                    "prefetch-attribution",
                    e.t_ns,
                    e.worker,
                    "prefetcher event '{}' in a run without a cached sparse path",
                    e.name
                );
            }
            if spec.lookahead_depth == 0 {
                violation!(
                    "prefetch-attribution",
                    e.t_ns,
                    e.worker,
                    "prefetcher event '{}' in a run with lookahead_depth = 0",
                    e.name
                );
            }
            if e.is("prefetcher", "prefetch_install") {
                prefetch_install_events += e.field_u64("installed").unwrap_or(0);
            } else if e.is("prefetcher", "prefetch_hit") {
                prefetch_hit_events += e.field_u64("n").unwrap_or(0);
            }
        }
    }

    // End-of-trace checks.
    if matches!(spec.sync, SyncMode::Bsp) && spread(&iters) != 0 {
        violation!(
            "bsp-final-divergence",
            0,
            None,
            "BSP run ended with unequal worker iterations {iters:?}"
        );
    }

    let pushes = log.counter("simnet", "evq_push");
    let pops = log.counter("simnet", "evq_pop");
    if pops > pushes {
        violation!(
            "event-queue",
            0,
            None,
            "event queue popped {pops} events but only {pushes} were pushed"
        );
    }

    if spec.cache_staleness.is_some() {
        // Gradient conservation, per worker: every clean→dirty
        // transition is matched by a write-back or an accounted crash
        // loss. The final flush guarantees no residual dirty entries.
        for (w, &crash_dropped) in crash_dirty.iter().enumerate() {
            let dirtied = log.counter_at("cache", "dirtied", Some(w as u64));
            let writebacks = log.counter_at("cache", "writebacks", Some(w as u64));
            if dirtied != writebacks + crash_dropped {
                violation!(
                    "gradient-conservation",
                    0,
                    Some(w as u64),
                    "worker {w} dirtied {dirtied} entries but accounted for {} \
                     ({writebacks} writebacks + {crash_dropped} crash-dropped)",
                    writebacks + crash_dropped
                );
            }
            report.conservation_workers += 1;
        }
        if spec.check_push_parity {
            let ps_pushes = log.counter("ps", "pushes");
            let writebacks = log.counter("cache", "writebacks");
            if ps_pushes != writebacks {
                violation!(
                    "gradient-conservation",
                    0,
                    None,
                    "PS applied {ps_pushes} sparse pushes but the caches wrote back \
                     {writebacks} entries"
                );
            }
        }
    }

    // Prefetch ledger: after the end-of-run flush, every installed
    // prefetch has resolved to exactly one hit or one waste, nothing
    // was installed that was never pulled, and the event stream agrees
    // with the counters it narrates.
    let installs = log.counter("cache", "prefetch_installs");
    let hits = log.counter("cache", "prefetch_hits");
    let wasted = log.counter("cache", "prefetch_wasted");
    let issued = log.counter("prefetcher", "issued_keys");
    if spec.lookahead_depth == 0 && installs + hits + wasted + issued > 0 {
        violation!(
            "prefetch-silence",
            0,
            None,
            "depth-0 run touched prefetch counters (issued {issued}, installs {installs}, \
             hits {hits}, wasted {wasted})"
        );
    }
    if installs != hits + wasted {
        violation!(
            "prefetch-ledger",
            0,
            None,
            "{installs} prefetch installs resolved to {hits} hits + {wasted} wasted"
        );
    }
    if installs > issued {
        violation!(
            "prefetch-ledger",
            0,
            None,
            "{installs} prefetch installs exceed the {issued} keys ever pulled"
        );
    }
    if hits > log.counter("cache", "hits") {
        violation!(
            "prefetch-ledger",
            0,
            None,
            "{hits} prefetch hits exceed the cache's {} total hits",
            log.counter("cache", "hits")
        );
    }
    if prefetch_install_events != installs {
        violation!(
            "prefetch-ledger",
            0,
            None,
            "prefetch_install events account for {prefetch_install_events} installs \
             but the cache counted {installs}"
        );
    }
    if prefetch_hit_events != hits {
        violation!(
            "prefetch-ledger",
            0,
            None,
            "prefetch_hit events account for {prefetch_hit_events} hits \
             but the cache counted {hits}"
        );
    }
    report.prefetch_installs = installs;

    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use het_json::Json;
    use het_trace::Value;

    fn spec(sync: SyncMode, cache_staleness: Option<u64>, n: usize) -> OracleSpec {
        OracleSpec {
            sync,
            cache_staleness,
            n_workers: n,
            check_push_parity: cache_staleness.is_some(),
            lookahead_depth: 0,
        }
    }

    fn prefetch_spec(cache_staleness: u64, depth: u64, n: usize) -> OracleSpec {
        OracleSpec {
            lookahead_depth: depth,
            ..spec(SyncMode::Bsp, Some(cache_staleness), n)
        }
    }

    fn compute(w: u64, t: u64) {
        het_trace::set_scope(t, Some(w));
        het_trace::emit("trainer", "compute", Some(1), vec![]);
    }

    fn synthetic(build: impl FnOnce()) -> ReplayLog {
        het_trace::start(Vec::new());
        build();
        ReplayLog::from(&het_trace::finish())
    }

    #[test]
    fn bsp_lockstep_passes_and_divergent_barrier_fails() {
        let ok = synthetic(|| {
            for round in 0..3u64 {
                compute(0, round * 10);
                compute(1, round * 10 + 1);
                het_trace::set_scope(round * 10 + 2, None);
                het_trace::emit("trainer", "barrier", Some(1), vec![]);
            }
        });
        let r = check_replay(&ok, &spec(SyncMode::Bsp, None, 2)).unwrap();
        assert_eq!(r.computes, 6);
        assert_eq!(r.barriers, 3);
        assert_eq!(r.max_spread, 1);

        let bad = synthetic(|| {
            compute(0, 0);
            compute(0, 10);
            het_trace::set_scope(11, None);
            het_trace::emit("trainer", "barrier", Some(1), vec![]);
        });
        let v = check_replay(&bad, &spec(SyncMode::Bsp, None, 2)).unwrap_err();
        assert_eq!(v.check, "sync-any-time-bound");
    }

    #[test]
    fn ssp_spread_bound_is_enforced() {
        let s = 1u64;
        let ok = synthetic(|| {
            compute(0, 0);
            compute(0, 10); // spread 2 = s + 1: admissible in flight
            compute(1, 11);
            compute(1, 12);
        });
        check_replay(&ok, &spec(SyncMode::Ssp { staleness: s }, None, 2)).unwrap();

        let bad = synthetic(|| {
            compute(0, 0);
            compute(0, 10);
            compute(0, 20); // spread 3 > s + 1
        });
        let v = check_replay(&bad, &spec(SyncMode::Ssp { staleness: s }, None, 2)).unwrap_err();
        assert_eq!(v.check, "sync-any-time-bound");
    }

    #[test]
    fn asp_is_unbounded_but_monotone() {
        let ok = synthetic(|| {
            for i in 0..50u64 {
                compute(0, i * 10);
            }
            compute(1, 999);
        });
        let r = check_replay(&ok, &spec(SyncMode::Asp, None, 2)).unwrap();
        // Worker 1 sits at 0 completed iterations while worker 0 runs
        // to 50, so the maximum observed spread is the full 50.
        assert_eq!(r.max_spread, 50);

        let bad = synthetic(|| {
            compute(0, 100);
            compute(0, 50); // time moved backwards
        });
        let v = check_replay(&bad, &spec(SyncMode::Asp, None, 2)).unwrap_err();
        assert_eq!(v.check, "monotone-progress");
    }

    #[test]
    fn stale_read_window_is_flagged() {
        let log = synthetic(|| {
            het_trace::set_scope(5, Some(0));
            het_trace::emit(
                "client",
                "read_window",
                None,
                vec![
                    ("validated", Value::UInt(3)),
                    ("degraded", Value::UInt(0)),
                    ("max_lag", Value::UInt(4)),
                    ("max_gap", Value::UInt(0)),
                ],
            );
        });
        check_replay(&log, &spec(SyncMode::Bsp, Some(4), 1)).unwrap();
        let v = check_replay(&log, &spec(SyncMode::Bsp, Some(3), 1)).unwrap_err();
        assert_eq!(v.check, "cache-window");
        assert!(v.message.contains("write lag"));
    }

    #[test]
    fn unbalanced_dirty_ledger_is_flagged() {
        let log = synthetic(|| {
            het_trace::set_scope(1, Some(0));
            het_trace::counter_add("cache", "dirtied", 5);
            het_trace::counter_add("cache", "writebacks", 4);
            het_trace::counter_add("ps", "pushes", 4);
        });
        let v = check_replay(&log, &spec(SyncMode::Bsp, Some(2), 1)).unwrap_err();
        assert_eq!(v.check, "gradient-conservation");

        // A crash event accounting for the missing entry balances it.
        let balanced = synthetic(|| {
            het_trace::set_scope(1, Some(0));
            het_trace::counter_add("cache", "dirtied", 5);
            het_trace::counter_add("cache", "writebacks", 4);
            het_trace::counter_add("ps", "pushes", 4);
            het_trace::emit(
                "trainer",
                "worker_crash",
                None,
                vec![("dirty_lost", Value::UInt(1))],
            );
        });
        let r = check_replay(&balanced, &spec(SyncMode::Bsp, Some(2), 1)).unwrap();
        assert_eq!(r.conservation_workers, 1);
    }

    #[test]
    fn push_parity_mismatch_is_flagged() {
        let log = synthetic(|| {
            het_trace::set_scope(1, Some(0));
            het_trace::counter_add("cache", "dirtied", 3);
            het_trace::counter_add("cache", "writebacks", 3);
            het_trace::counter_add("ps", "pushes", 2);
        });
        let v = check_replay(&log, &spec(SyncMode::Bsp, Some(2), 1)).unwrap_err();
        assert_eq!(v.check, "gradient-conservation");
        assert!(v.message.contains("PS applied"));
    }

    /// A minimal consistent prefetch narrative: 4 keys pulled, 3
    /// installed (narrated by `prefetch_install` events), 2 consumed as
    /// hits (narrated by `prefetch_hit`), 1 flushed as waste.
    fn balanced_prefetch_trace() {
        het_trace::set_scope(1, Some(0));
        het_trace::counter_add("prefetcher", "issued_keys", 4);
        het_trace::counter_add("cache", "prefetch_installs", 3);
        het_trace::emit(
            "prefetcher",
            "prefetch_install",
            None,
            vec![("installed", Value::UInt(3)), ("waited_ns", Value::UInt(0))],
        );
        het_trace::counter_add("cache", "hits", 5);
        het_trace::counter_add("cache", "prefetch_hits", 2);
        het_trace::emit(
            "prefetcher",
            "prefetch_hit",
            None,
            vec![("n", Value::UInt(2))],
        );
        het_trace::counter_add("cache", "prefetch_wasted", 1);
        het_trace::emit(
            "prefetcher",
            "prefetch_waste",
            None,
            vec![("n", Value::UInt(1))],
        );
    }

    #[test]
    fn balanced_prefetch_ledger_passes_and_is_reported() {
        let log = synthetic(balanced_prefetch_trace);
        let r = check_replay(&log, &prefetch_spec(2, 4, 1)).unwrap();
        assert_eq!(r.prefetch_installs, 3);
    }

    #[test]
    fn unbalanced_prefetch_ledger_is_flagged() {
        // An install that never resolves to a hit or a waste.
        let log = synthetic(|| {
            het_trace::set_scope(1, Some(0));
            het_trace::counter_add("prefetcher", "issued_keys", 4);
            het_trace::counter_add("cache", "prefetch_installs", 3);
            het_trace::emit(
                "prefetcher",
                "prefetch_install",
                None,
                vec![("installed", Value::UInt(3))],
            );
            het_trace::counter_add("cache", "hits", 2);
            het_trace::counter_add("cache", "prefetch_hits", 2);
            het_trace::emit(
                "prefetcher",
                "prefetch_hit",
                None,
                vec![("n", Value::UInt(2))],
            );
        });
        let v = check_replay(&log, &prefetch_spec(2, 4, 1)).unwrap_err();
        assert_eq!(v.check, "prefetch-ledger");
        assert!(v.message.contains("resolved to"), "{}", v.message);

        // Installs the prefetcher never pulled.
        let log = synthetic(|| {
            het_trace::set_scope(1, Some(0));
            het_trace::counter_add("cache", "prefetch_installs", 2);
            het_trace::emit(
                "prefetcher",
                "prefetch_install",
                None,
                vec![("installed", Value::UInt(2))],
            );
            het_trace::counter_add("cache", "hits", 2);
            het_trace::counter_add("cache", "prefetch_hits", 2);
            het_trace::emit(
                "prefetcher",
                "prefetch_hit",
                None,
                vec![("n", Value::UInt(2))],
            );
        });
        let v = check_replay(&log, &prefetch_spec(2, 4, 1)).unwrap_err();
        assert_eq!(v.check, "prefetch-ledger");
        assert!(v.message.contains("ever pulled"), "{}", v.message);
    }

    #[test]
    fn prefetch_event_stream_must_reconcile_with_counters() {
        // Counters claim 3 installs but the event stream only narrates 2.
        let log = synthetic(|| {
            het_trace::set_scope(1, Some(0));
            het_trace::counter_add("prefetcher", "issued_keys", 4);
            het_trace::counter_add("cache", "prefetch_installs", 3);
            het_trace::emit(
                "prefetcher",
                "prefetch_install",
                None,
                vec![("installed", Value::UInt(2))],
            );
            het_trace::counter_add("cache", "hits", 3);
            het_trace::counter_add("cache", "prefetch_hits", 3);
            het_trace::emit(
                "prefetcher",
                "prefetch_hit",
                None,
                vec![("n", Value::UInt(3))],
            );
        });
        let v = check_replay(&log, &prefetch_spec(2, 4, 1)).unwrap_err();
        assert_eq!(v.check, "prefetch-ledger");
        assert!(
            v.message.contains("prefetch_install events"),
            "{}",
            v.message
        );
    }

    #[test]
    fn prefetch_hits_cannot_exceed_total_hits() {
        let log = synthetic(|| {
            het_trace::set_scope(1, Some(0));
            het_trace::counter_add("prefetcher", "issued_keys", 4);
            het_trace::counter_add("cache", "prefetch_installs", 3);
            het_trace::emit(
                "prefetcher",
                "prefetch_install",
                None,
                vec![("installed", Value::UInt(3))],
            );
            het_trace::counter_add("cache", "hits", 1);
            het_trace::counter_add("cache", "prefetch_hits", 3);
            het_trace::emit(
                "prefetcher",
                "prefetch_hit",
                None,
                vec![("n", Value::UInt(3))],
            );
        });
        let v = check_replay(&log, &prefetch_spec(2, 4, 1)).unwrap_err();
        assert_eq!(v.check, "prefetch-ledger");
        assert!(v.message.contains("total hits"), "{}", v.message);
    }

    #[test]
    fn depth_zero_runs_must_stay_prefetch_silent() {
        // A prefetcher event in a depth-0 spec is an attribution leak.
        let log = synthetic(balanced_prefetch_trace);
        let v = check_replay(&log, &prefetch_spec(2, 0, 1)).unwrap_err();
        assert_eq!(v.check, "prefetch-attribution");

        // Counters alone (no events) still break depth-0 silence.
        let log = synthetic(|| {
            het_trace::set_scope(1, Some(0));
            het_trace::counter_add("prefetcher", "issued_keys", 1);
        });
        let v = check_replay(&log, &prefetch_spec(2, 0, 1)).unwrap_err();
        assert_eq!(v.check, "prefetch-silence");

        // And prefetching without a cached sparse path is impossible.
        let log = synthetic(balanced_prefetch_trace);
        let v = check_replay(
            &log,
            &OracleSpec {
                lookahead_depth: 4,
                ..spec(SyncMode::Bsp, None, 1)
            },
        )
        .unwrap_err();
        assert_eq!(v.check, "prefetch-attribution");
        assert!(v.message.contains("cached sparse path"), "{}", v.message);
    }

    #[test]
    fn violation_serialises_to_json() {
        let v = Violation {
            check: "cache-window",
            t_ns: 42,
            worker: Some(1),
            message: "boom".to_string(),
        };
        let Json::Obj(obj) = v.to_json() else {
            panic!("violation must serialise to an object");
        };
        assert!(obj.iter().any(|(k, v)| k == "t_ns" && *v == Json::UInt(42)));
    }
}
