//! Deterministic schedule-exploration harness.
//!
//! A seed-driven fuzzer samples short training [`Scenario`]s — sync
//! mode, cache policy and staleness, event-queue tie-breaking, fault
//! schedule — executes each one with tracing enabled, and feeds the
//! trace to the oracle ([`crate::check_replay`]). Every scenario is a
//! pure function of `(master_seed, index)`, so any violation is
//! replayable from two integers. On violation the harness greedily
//! shrinks the scenario (fewer iterations, fewer workers, simpler
//! schedule) while the same check keeps failing, and writes a repro
//! file under `target/oracle/` that `hetctl oracle --repro` replays.

use crate::{check_replay, OracleReport, OracleSpec, Violation};
use het_cache::PolicyKind;
use het_core::config::{
    Backbone, DenseSync, SparseMode, StoreSpec, SyncMode, SystemConfig, SystemPreset, TieredConfig,
    TrainerConfig,
};
use het_core::{FaultConfig, TrainReport, Trainer};
use het_data::{CtrConfig, CtrDataset};
use het_json::{Json, ToJson};
use het_models::WideDeep;
use het_rng::rngs::StdRng;
use het_rng::{Rng, SeedableRng};
use het_simnet::{ClusterSpec, SimDuration, TieBreak};
use std::path::{Path, PathBuf};

/// One sampled workload: everything needed to re-execute a run
/// bit-identically.
#[derive(Clone, Debug, PartialEq)]
pub struct Scenario {
    /// Trainer + dataset seed.
    pub seed: u64,
    /// Number of workers.
    pub workers: usize,
    /// Iteration budget.
    pub iters: u64,
    /// Worker synchronisation mode.
    pub sync: SyncMode,
    /// Dense parameter path (`Ps` for async modes).
    pub dense: DenseSync,
    /// Sparse embedding path.
    pub sparse: SparseMode,
    /// Event-queue tie-break rule (async modes).
    pub tie_break: TieBreak,
    /// Worker crash/restart events to schedule.
    pub crashes: usize,
    /// PS-shard outage/failover events to schedule.
    pub outages: usize,
    /// Straggler windows to schedule.
    pub stragglers: usize,
    /// Per-message drop probability.
    pub drop_prob: f64,
    /// Sabotage: widen the client's admitted staleness window by this
    /// many ticks (0 = correct protocol). Used to prove the oracle
    /// catches a broken `CheckValid`.
    pub extra_staleness: u64,
    /// Prefetch lookahead depth (0 = legacy demand-only path; sampled
    /// only for cached scenarios, where the prefetcher can exist).
    pub lookahead: u64,
    /// Hot-tier row budget when PS shards run the tiered memory/disk
    /// store (0 = flat in-memory store). Sampled budgets are tiny so
    /// short fuzz runs actually demote, spill, and compact.
    pub tiered_hot: u64,
}

fn mix(master_seed: u64, index: u64) -> u64 {
    master_seed ^ (index.wrapping_add(1)).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

impl Scenario {
    /// Samples the `index`-th scenario of a fuzz campaign, capping the
    /// iteration budget at `max_iters`.
    pub fn sample(master_seed: u64, index: u64, max_iters: u64) -> Scenario {
        let mut rng = StdRng::seed_from_u64(mix(master_seed, index));
        let workers = rng.gen_range(2usize..5);
        let iters = rng.gen_range(4..max_iters.max(4) + 1);
        let sync = match rng.gen_range(0u32..3) {
            0 => SyncMode::Bsp,
            1 => SyncMode::Asp,
            _ => SyncMode::Ssp {
                staleness: rng.gen_range(1u64..4),
            },
        };
        let dense = if matches!(sync, SyncMode::Bsp) && rng.gen_bool(0.5) {
            DenseSync::AllReduce
        } else {
            DenseSync::Ps
        };
        let sparse = if rng.gen_bool(0.7) {
            SparseMode::Cached {
                staleness: rng.gen_range(0u64..5),
                capacity_fraction: [0.05, 0.10, 0.30][rng.gen_range(0usize..3)],
                policy: {
                    // The full zoo, with a sweepable LightLFU threshold
                    // and adaptive windows small enough that short fuzz
                    // runs hit forced switch points.
                    let zoo = [
                        PolicyKind::Lru,
                        PolicyKind::Lfu,
                        PolicyKind::light_lfu(),
                        PolicyKind::LightLfu {
                            promote_threshold: 4,
                        },
                        PolicyKind::Clock,
                        PolicyKind::Slru,
                        PolicyKind::Lfuda,
                        PolicyKind::Gdsf,
                        PolicyKind::Adaptive { window: 8 },
                        PolicyKind::Adaptive { window: 32 },
                        PolicyKind::Adaptive { window: 128 },
                    ];
                    zoo[rng.gen_range(0usize..zoo.len())]
                },
            }
        } else {
            SparseMode::PsDirect
        };
        let lookahead = if matches!(sparse, SparseMode::Cached { .. }) && rng.gen_bool(0.5) {
            [1u64, 2, 4, 8][rng.gen_range(0usize..4)]
        } else {
            0
        };
        let tie_break = match rng.gen_range(0u32..3) {
            0 => TieBreak::Fifo,
            1 => TieBreak::Lifo,
            _ => TieBreak::Salted(rng.gen_range(0..u64::MAX)),
        };
        let (crashes, outages, stragglers, drop_prob) = if rng.gen_bool(0.4) {
            (
                rng.gen_range(0usize..3),
                rng.gen_range(0usize..2),
                rng.gen_range(0usize..2),
                if rng.gen_bool(0.5) { 0.02 } else { 0.0 },
            )
        } else {
            (0, 0, 0, 0.0)
        };
        // A third of runs exercise the tiered memory/disk store; the
        // tiny tables mean even an 8-row hot tier sees real demotion
        // and cold-log compaction traffic.
        let tiered_hot = if rng.gen_bool(0.35) {
            [8u64, 32, 128][rng.gen_range(0usize..3)]
        } else {
            0
        };
        Scenario {
            seed: rng.gen_range(0u64..1 << 32),
            workers,
            iters,
            sync,
            dense,
            sparse,
            tie_break,
            crashes,
            outages,
            stragglers,
            drop_prob,
            extra_staleness: 0,
            lookahead,
            tiered_hot,
        }
    }

    /// Whether the scenario schedules any fault.
    pub fn has_faults(&self) -> bool {
        self.crashes + self.outages + self.stragglers > 0 || self.drop_prob > 0.0
    }

    /// The trainer configuration this scenario describes (faults are
    /// attached separately — their horizon needs the clean run time).
    pub fn trainer_config(&self) -> TrainerConfig {
        let mut config = TrainerConfig::tiny(SystemPreset::TfPs);
        config.system = SystemConfig {
            name: "fuzz",
            dense: self.dense,
            sparse: self.sparse,
            sync: self.sync,
            backbone: Backbone::het(),
        };
        config.cluster = ClusterSpec::cluster_a(self.workers, 1);
        config.max_iterations = self.iters;
        config.seed = self.seed;
        config.tie_break = self.tie_break;
        config.lookahead_depth = self.lookahead;
        if self.tiered_hot > 0 {
            config.store = StoreSpec::Tiered(TieredConfig::new(self.tiered_hot as usize));
        }
        config
    }

    /// The fault schedule, scoped to a horizon derived from the clean
    /// run's duration.
    pub fn fault_config(&self, horizon: SimDuration) -> FaultConfig {
        if !self.has_faults() {
            return FaultConfig::disabled();
        }
        let mut cfg = FaultConfig::disabled();
        cfg.enabled = true;
        cfg.spec.worker_crashes = self.crashes;
        cfg.spec.shard_outages = self.outages;
        cfg.spec.stragglers = self.stragglers;
        cfg.spec.message_drop_prob = self.drop_prob;
        cfg.spec.horizon = horizon;
        cfg.checkpoint_every = 20;
        cfg
    }

    /// What the oracle must check for this scenario.
    pub fn oracle_spec(&self) -> OracleSpec {
        OracleSpec::of(&self.trainer_config())
    }
}

fn sync_to_json(sync: SyncMode) -> Json {
    match sync {
        SyncMode::Bsp => Json::Str("bsp".to_string()),
        SyncMode::Asp => Json::Str("asp".to_string()),
        SyncMode::Ssp { staleness } => Json::Obj(vec![("ssp".to_string(), Json::UInt(staleness))]),
    }
}

fn policy_to_json(policy: PolicyKind) -> Json {
    match policy {
        PolicyKind::Lru => Json::Str("lru".to_string()),
        PolicyKind::Lfu => Json::Str("lfu".to_string()),
        PolicyKind::LightLfu { promote_threshold } => Json::Obj(vec![(
            "light_lfu".to_string(),
            Json::UInt(promote_threshold),
        )]),
        PolicyKind::Clock => Json::Str("clock".to_string()),
        PolicyKind::Slru => Json::Str("slru".to_string()),
        PolicyKind::Lfuda => Json::Str("lfuda".to_string()),
        PolicyKind::Gdsf => Json::Str("gdsf".to_string()),
        PolicyKind::Adaptive { window } => {
            Json::Obj(vec![("adaptive".to_string(), Json::UInt(window))])
        }
    }
}

fn policy_from_json(json: &Json) -> Result<PolicyKind, String> {
    match json {
        Json::Str(p) if p == "lru" => Ok(PolicyKind::Lru),
        Json::Str(p) if p == "lfu" => Ok(PolicyKind::Lfu),
        // Repro files written before the threshold was sweepable.
        Json::Str(p) if p == "light_lfu" => Ok(PolicyKind::light_lfu()),
        Json::Str(p) if p == "clock" => Ok(PolicyKind::Clock),
        Json::Str(p) if p == "slru" => Ok(PolicyKind::Slru),
        Json::Str(p) if p == "lfuda" => Ok(PolicyKind::Lfuda),
        Json::Str(p) if p == "gdsf" => Ok(PolicyKind::Gdsf),
        Json::Obj(o) if o.iter().any(|(k, _)| k == "light_lfu") => Ok(PolicyKind::LightLfu {
            promote_threshold: get_uint(o, "light_lfu")?,
        }),
        Json::Obj(o) if o.iter().any(|(k, _)| k == "adaptive") => Ok(PolicyKind::Adaptive {
            window: get_uint(o, "adaptive")?,
        }),
        other => Err(format!("scenario: bad policy {other:?}")),
    }
}

impl ToJson for Scenario {
    fn to_json(&self) -> Json {
        let sparse = match self.sparse {
            SparseMode::PsDirect => Json::Str("direct".to_string()),
            SparseMode::AllGather => Json::Str("allgather".to_string()),
            SparseMode::Cached {
                staleness,
                capacity_fraction,
                policy,
            } => Json::Obj(vec![
                ("staleness".to_string(), Json::UInt(staleness)),
                (
                    "capacity_fraction".to_string(),
                    Json::Num(capacity_fraction),
                ),
                ("policy".to_string(), policy_to_json(policy)),
            ]),
        };
        let tie_break = match self.tie_break {
            TieBreak::Fifo => Json::Str("fifo".to_string()),
            TieBreak::Lifo => Json::Str("lifo".to_string()),
            TieBreak::Salted(salt) => Json::Obj(vec![("salted".to_string(), Json::UInt(salt))]),
        };
        Json::Obj(vec![
            ("seed".to_string(), Json::UInt(self.seed)),
            ("workers".to_string(), Json::UInt(self.workers as u64)),
            ("iters".to_string(), Json::UInt(self.iters)),
            ("sync".to_string(), sync_to_json(self.sync)),
            (
                "dense".to_string(),
                Json::Str(
                    match self.dense {
                        DenseSync::Ps => "ps",
                        DenseSync::AllReduce => "allreduce",
                    }
                    .to_string(),
                ),
            ),
            ("sparse".to_string(), sparse),
            ("tie_break".to_string(), tie_break),
            ("crashes".to_string(), Json::UInt(self.crashes as u64)),
            ("outages".to_string(), Json::UInt(self.outages as u64)),
            ("stragglers".to_string(), Json::UInt(self.stragglers as u64)),
            ("drop_prob".to_string(), Json::Num(self.drop_prob)),
            (
                "extra_staleness".to_string(),
                Json::UInt(self.extra_staleness),
            ),
            ("lookahead".to_string(), Json::UInt(self.lookahead)),
            ("tiered_hot".to_string(), Json::UInt(self.tiered_hot)),
        ])
    }
}

fn get<'a>(obj: &'a [(String, Json)], key: &str) -> Result<&'a Json, String> {
    obj.iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .ok_or_else(|| format!("scenario: missing field '{key}'"))
}

fn get_uint(obj: &[(String, Json)], key: &str) -> Result<u64, String> {
    match get(obj, key)? {
        Json::UInt(n) => Ok(*n),
        other => Err(format!("scenario: '{key}' must be a uint, got {other:?}")),
    }
}

fn get_num(obj: &[(String, Json)], key: &str) -> Result<f64, String> {
    match get(obj, key)? {
        Json::Num(n) => Ok(*n),
        Json::UInt(n) => Ok(*n as f64),
        other => Err(format!("scenario: '{key}' must be a number, got {other:?}")),
    }
}

impl Scenario {
    /// Parses a scenario back from its [`ToJson`] form.
    pub fn from_json(json: &Json) -> Result<Scenario, String> {
        let Json::Obj(obj) = json else {
            return Err("scenario: not an object".to_string());
        };
        let sync = match get(obj, "sync")? {
            Json::Str(s) if s == "bsp" => SyncMode::Bsp,
            Json::Str(s) if s == "asp" => SyncMode::Asp,
            Json::Obj(o) => SyncMode::Ssp {
                staleness: get_uint(o, "ssp")?,
            },
            other => return Err(format!("scenario: bad sync {other:?}")),
        };
        let dense = match get(obj, "dense")? {
            Json::Str(s) if s == "ps" => DenseSync::Ps,
            Json::Str(s) if s == "allreduce" => DenseSync::AllReduce,
            other => return Err(format!("scenario: bad dense {other:?}")),
        };
        let sparse = match get(obj, "sparse")? {
            Json::Str(s) if s == "direct" => SparseMode::PsDirect,
            Json::Str(s) if s == "allgather" => SparseMode::AllGather,
            Json::Obj(o) => SparseMode::Cached {
                staleness: get_uint(o, "staleness")?,
                capacity_fraction: get_num(o, "capacity_fraction")?,
                policy: policy_from_json(get(o, "policy")?)?,
            },
            other => return Err(format!("scenario: bad sparse {other:?}")),
        };
        let tie_break = match get(obj, "tie_break")? {
            Json::Str(s) if s == "fifo" => TieBreak::Fifo,
            Json::Str(s) if s == "lifo" => TieBreak::Lifo,
            Json::Obj(o) => TieBreak::Salted(get_uint(o, "salted")?),
            other => return Err(format!("scenario: bad tie_break {other:?}")),
        };
        Ok(Scenario {
            seed: get_uint(obj, "seed")?,
            workers: get_uint(obj, "workers")? as usize,
            iters: get_uint(obj, "iters")?,
            sync,
            dense,
            sparse,
            tie_break,
            crashes: get_uint(obj, "crashes")? as usize,
            outages: get_uint(obj, "outages")? as usize,
            stragglers: get_uint(obj, "stragglers")? as usize,
            drop_prob: get_num(obj, "drop_prob")?,
            extra_staleness: get_uint(obj, "extra_staleness")?,
            // Absent in repro files written before prefetching existed.
            lookahead: get_uint(obj, "lookahead").unwrap_or(0),
            // Absent in repro files written before the tiered store.
            tiered_hot: get_uint(obj, "tiered_hot").unwrap_or(0),
        })
    }
}

/// Result of executing one scenario under the oracle.
pub struct ScenarioOutcome {
    /// The training report of the (traced) run.
    pub report: TrainReport,
    /// The oracle verdict over the run's trace.
    pub oracle: Result<OracleReport, Violation>,
}

fn train(scenario: &Scenario, faults: FaultConfig, extra_staleness: u64) -> TrainReport {
    let mut config = scenario.trainer_config();
    config.faults = faults;
    config.sabotage_extra_staleness = extra_staleness;
    let dataset = CtrDataset::new(CtrConfig::tiny(scenario.seed));
    let mut trainer = Trainer::new(config, dataset, |rng| WideDeep::new(rng, 4, 8, &[16]));
    trainer.run()
}

/// Executes `scenario` with tracing enabled and replays the trace
/// through the oracle. Faulted scenarios first run a clean untraced
/// probe to size the fault horizon (as the golden-trace tests do), so
/// injected faults actually land inside the run. The probe always runs
/// the correct protocol; only the traced run carries the scenario's
/// sabotage widening.
pub fn run_scenario(scenario: &Scenario) -> ScenarioOutcome {
    let faults = if scenario.has_faults() {
        let probe = train(scenario, FaultConfig::disabled(), 0);
        scenario.fault_config(SimDuration::from_secs_f64(
            probe.total_sim_time.as_secs_f64() * 0.8,
        ))
    } else {
        FaultConfig::disabled()
    };
    het_trace::start(vec![
        ("workload".to_string(), Json::Str("fuzz".to_string())),
        ("scenario".to_string(), scenario.to_json()),
    ]);
    let report = train(scenario, faults, scenario.extra_staleness);
    let log = het_trace::finish();
    let replay = het_trace::replay::ReplayLog::from(&log);
    let oracle = check_replay(&replay, &scenario.oracle_spec());
    ScenarioOutcome { report, oracle }
}

/// Upper bound on extra runs spent shrinking one violation.
const SHRINK_BUDGET: usize = 120;

fn shrink_candidates(s: &Scenario) -> Vec<Scenario> {
    let mut out: Vec<Scenario> = Vec::new();
    let mut push = |c: Scenario| {
        if !out.contains(&c) {
            out.push(c);
        }
    };
    for iters in [1, 2, 4, s.iters / 4, s.iters / 2, s.iters.saturating_sub(1)] {
        if iters >= 1 && iters < s.iters {
            push(Scenario { iters, ..s.clone() });
        }
    }
    for workers in [1, 2, s.workers.saturating_sub(1)] {
        if workers >= 1 && workers < s.workers {
            push(Scenario {
                workers,
                ..s.clone()
            });
        }
    }
    if s.has_faults() {
        push(Scenario {
            crashes: 0,
            outages: 0,
            stragglers: 0,
            drop_prob: 0.0,
            ..s.clone()
        });
    }
    if s.tie_break != TieBreak::Fifo {
        push(Scenario {
            tie_break: TieBreak::Fifo,
            ..s.clone()
        });
    }
    if s.lookahead > 0 {
        push(Scenario {
            lookahead: 0,
            ..s.clone()
        });
    }
    if s.tiered_hot > 0 {
        push(Scenario {
            tiered_hot: 0,
            ..s.clone()
        });
    }
    if let SparseMode::Cached {
        staleness,
        capacity_fraction,
        policy,
    } = s.sparse
    {
        if policy != PolicyKind::Lru {
            push(Scenario {
                sparse: SparseMode::Cached {
                    staleness,
                    capacity_fraction,
                    policy: PolicyKind::Lru,
                },
                ..s.clone()
            });
        }
    }
    out
}

/// Greedily shrinks a violating scenario: each candidate that still
/// fails the *same* check replaces the current scenario, until no
/// candidate fails or the run budget is spent. Returns the minimal
/// scenario, its violation, and the number of shrink runs executed.
pub fn shrink(scenario: &Scenario, violation: &Violation) -> (Scenario, Violation, usize) {
    let mut current = scenario.clone();
    let mut current_v = violation.clone();
    let mut runs = 0usize;
    'outer: loop {
        for cand in shrink_candidates(&current) {
            if runs >= SHRINK_BUDGET {
                break 'outer;
            }
            runs += 1;
            if let Err(v) = run_scenario(&cand).oracle {
                if v.check == current_v.check {
                    current = cand;
                    current_v = v;
                    continue 'outer;
                }
            }
        }
        break;
    }
    (current, current_v, runs)
}

/// One caught-and-shrunk violation.
pub struct CaughtViolation {
    /// Campaign master seed.
    pub master_seed: u64,
    /// Run index within the campaign.
    pub index: u64,
    /// The scenario as sampled.
    pub original: Scenario,
    /// The minimal scenario that still violates.
    pub shrunk: Scenario,
    /// The violation reported by the shrunk scenario.
    pub violation: Violation,
    /// Extra runs spent shrinking.
    pub shrink_runs: usize,
    /// Where the repro file was written (if an output dir was given).
    pub repro_path: Option<PathBuf>,
}

/// A fuzz campaign configuration.
pub struct FuzzConfig {
    /// Master seed of the campaign (scenario = f(master_seed, index)).
    pub master_seed: u64,
    /// First run index (inclusive).
    pub seed_start: u64,
    /// Last run index (exclusive).
    pub seed_end: u64,
    /// Iteration-budget cap per scenario.
    pub max_iters: u64,
    /// Sabotage widening applied to every scenario (0 = correct
    /// protocol; the campaign then expects zero violations).
    pub extra_staleness: u64,
    /// Where to write repro files (`None` = don't write).
    pub out_dir: Option<PathBuf>,
    /// Stop after this many violations (0 = never stop early).
    pub stop_after: usize,
}

/// Aggregate results of a fuzz campaign.
#[derive(Default)]
pub struct FuzzOutcome {
    /// Scenarios executed.
    pub runs: u64,
    /// Runs per sync mode (BSP, ASP, SSP).
    pub by_sync: [u64; 3],
    /// Runs with a cached sparse path.
    pub cached_runs: u64,
    /// Runs with a nonzero prefetch lookahead.
    pub prefetch_runs: u64,
    /// Runs on the tiered memory/disk row store.
    pub tiered_runs: u64,
    /// Runs with at least one scheduled fault.
    pub faulted_runs: u64,
    /// Total iteration completions checked.
    pub computes: u64,
    /// Total staleness-window reads checked.
    pub window_reads: u64,
    /// Total BSP barriers checked.
    pub barriers: u64,
    /// Total prefetch installs whose ledger was reconciled.
    pub prefetch_installs: u64,
    /// Caught-and-shrunk violations.
    pub violations: Vec<CaughtViolation>,
}

fn write_repro(
    dir: &Path,
    caught_master: u64,
    index: u64,
    original: &Scenario,
    shrunk: &Scenario,
    violation: &Violation,
) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("repro-{caught_master}-{index}.json"));
    let doc = Json::Obj(vec![
        ("master_seed".to_string(), Json::UInt(caught_master)),
        ("index".to_string(), Json::UInt(index)),
        ("original".to_string(), original.to_json()),
        ("shrunk".to_string(), shrunk.to_json()),
        ("violation".to_string(), violation.to_json()),
        (
            "command".to_string(),
            Json::Str(format!("hetctl oracle --repro {}", path.to_string_lossy())),
        ),
    ]);
    std::fs::write(&path, doc.encode_pretty() + "\n")?;
    Ok(path)
}

/// Parses a repro file and returns its shrunk scenario.
pub fn read_repro(path: &Path) -> Result<Scenario, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let json = het_json::from_str(&text).map_err(|e| format!("{}: {e}", path.display()))?;
    let Json::Obj(obj) = &json else {
        return Err("repro file: not an object".to_string());
    };
    Scenario::from_json(get(obj, "shrunk")?)
}

/// Runs a fuzz campaign: samples, executes, and oracle-checks
/// `seed_end − seed_start` scenarios, shrinking and recording every
/// violation.
pub fn run_fuzz(cfg: &FuzzConfig) -> FuzzOutcome {
    let mut out = FuzzOutcome::default();
    for index in cfg.seed_start..cfg.seed_end {
        let mut scenario = Scenario::sample(cfg.master_seed, index, cfg.max_iters);
        scenario.extra_staleness = cfg.extra_staleness;
        out.runs += 1;
        out.by_sync[match scenario.sync {
            SyncMode::Bsp => 0,
            SyncMode::Asp => 1,
            SyncMode::Ssp { .. } => 2,
        }] += 1;
        if matches!(scenario.sparse, SparseMode::Cached { .. }) {
            out.cached_runs += 1;
        }
        if scenario.lookahead > 0 {
            out.prefetch_runs += 1;
        }
        if scenario.tiered_hot > 0 {
            out.tiered_runs += 1;
        }
        if scenario.has_faults() {
            out.faulted_runs += 1;
        }
        match run_scenario(&scenario).oracle {
            Ok(r) => {
                out.computes += r.computes;
                out.window_reads += r.window_reads;
                out.barriers += r.barriers;
                out.prefetch_installs += r.prefetch_installs;
            }
            Err(v) => {
                let (shrunk, violation, shrink_runs) = shrink(&scenario, &v);
                let repro_path = cfg.out_dir.as_ref().and_then(|dir| {
                    write_repro(dir, cfg.master_seed, index, &scenario, &shrunk, &violation).ok()
                });
                out.violations.push(CaughtViolation {
                    master_seed: cfg.master_seed,
                    index,
                    original: scenario,
                    shrunk,
                    violation,
                    shrink_runs,
                    repro_path,
                });
                if cfg.stop_after > 0 && out.violations.len() >= cfg.stop_after {
                    break;
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenarios_are_deterministic_in_master_seed_and_index() {
        let a = Scenario::sample(1, 7, 40);
        let b = Scenario::sample(1, 7, 40);
        assert_eq!(a, b);
        assert_ne!(a, Scenario::sample(1, 8, 40));
        assert_ne!(a, Scenario::sample(2, 7, 40));
        assert!(a.iters >= 4 && a.iters <= 40);
        assert!(a.workers >= 2 && a.workers <= 4);
    }

    #[test]
    fn scenario_json_round_trips() {
        for index in 0..40 {
            let s = Scenario::sample(0xF00D, index, 50);
            let back = Scenario::from_json(&s.to_json()).unwrap();
            assert_eq!(s, back, "index {index}");
        }
    }

    #[test]
    fn sampled_scenarios_cover_the_mode_matrix() {
        let mut bsp = 0;
        let mut asp = 0;
        let mut ssp = 0;
        let mut cached = 0;
        let mut prefetched = 0;
        let mut tiered = 0;
        let mut faulted = 0;
        let mut zoo: std::collections::BTreeSet<String> = std::collections::BTreeSet::new();
        let mut adaptive = 0;
        for index in 0..200 {
            let s = Scenario::sample(3, index, 50);
            match s.sync {
                SyncMode::Bsp => bsp += 1,
                SyncMode::Asp => asp += 1,
                SyncMode::Ssp { .. } => ssp += 1,
            }
            if let SparseMode::Cached { policy, .. } = s.sparse {
                cached += 1;
                zoo.insert(policy.to_string());
                if policy.is_adaptive() {
                    adaptive += 1;
                }
            } else {
                assert_eq!(s.lookahead, 0, "prefetch sampled without a cache");
            }
            if s.lookahead > 0 {
                prefetched += 1;
            }
            if s.tiered_hot > 0 {
                tiered += 1;
                assert!(
                    [8, 32, 128].contains(&s.tiered_hot),
                    "unexpected hot budget {}",
                    s.tiered_hot
                );
            }
            if s.has_faults() {
                faulted += 1;
            }
        }
        assert!(bsp > 20 && asp > 20 && ssp > 20, "{bsp}/{asp}/{ssp}");
        assert!(cached > 60, "cached only {cached}/200");
        assert!(prefetched > 30, "prefetched only {prefetched}/200");
        assert!(tiered > 30, "tiered only {tiered}/200");
        assert!(faulted > 30, "faulted only {faulted}/200");
        // The policy dimension spans the whole zoo, with enough
        // adaptive runs that forced switch points get exercised.
        assert_eq!(
            zoo.into_iter().collect::<Vec<_>>(),
            ["Adaptive", "CLOCK", "GDSF", "LFU", "LFUDA", "LRU", "LightLFU", "SLRU"],
        );
        assert!(adaptive > 10, "adaptive only {adaptive}/200");
    }

    #[test]
    fn clean_scenario_passes_the_oracle() {
        let scenario = Scenario {
            seed: 11,
            workers: 3,
            iters: 24,
            sync: SyncMode::Bsp,
            dense: DenseSync::AllReduce,
            sparse: SparseMode::Cached {
                staleness: 2,
                capacity_fraction: 0.10,
                policy: PolicyKind::light_lfu(),
            },
            tie_break: TieBreak::Fifo,
            crashes: 0,
            outages: 0,
            stragglers: 0,
            drop_prob: 0.0,
            extra_staleness: 0,
            lookahead: 0,
            tiered_hot: 0,
        };
        let outcome = run_scenario(&scenario);
        let report = outcome.oracle.expect("clean run must pass");
        assert!(report.computes >= 24);
        assert!(report.barriers > 0);
        assert!(report.window_reads > 0, "cached run must check windows");
        assert_eq!(report.conservation_workers, 3);
        assert_eq!(report.prefetch_installs, 0, "depth 0 must stay silent");

        // The same scenario with lookahead engages the prefetcher and
        // still passes every check, now with prefetch coverage.
        let prefetched = Scenario {
            lookahead: 4,
            ..scenario.clone()
        };
        let outcome = run_scenario(&prefetched);
        let report = outcome.oracle.expect("clean prefetch run must pass");
        assert!(
            report.prefetch_installs > 0,
            "prefetch run reconciled no installs"
        );

        // And on the tiered store: a hot tier small enough to force
        // demotion to the cold log must not perturb any checked
        // invariant — tiering moves bytes between tiers and charges
        // modelled disk time, but never changes values or clocks.
        let tiered = Scenario {
            tiered_hot: 8,
            ..scenario
        };
        let outcome = run_scenario(&tiered);
        let report = outcome.oracle.expect("clean tiered run must pass");
        assert!(report.computes >= 24);
        assert!(report.window_reads > 0);
        let store = outcome.report.store.expect("tiered run must report store");
        assert!(store.stats.demotions > 0, "8-row hot tier never demoted");
    }
}
