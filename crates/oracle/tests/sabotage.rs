//! End-to-end oracle acceptance tests.
//!
//! The oracle is only trustworthy if it (a) stays silent on correct
//! executions and (b) actually fires when the protocol is broken.
//! `TrainerConfig::sabotage_extra_staleness` widens the admitted
//! staleness window of every cache client built from that config, so
//! we can plant a real `CheckValid` bug and demand the fuzzer catch it
//! *and* shrink it to a small repro. The knob is plain per-run
//! configuration — no global or thread-local state — so concurrent
//! tests can't interfere with each other.

use het_cache::PolicyKind;
use het_core::config::{DenseSync, SparseMode, SyncMode};
use het_oracle::fuzz::{read_repro, run_fuzz, run_scenario, FuzzConfig, Scenario};
use het_simnet::TieBreak;

fn base_scenario() -> Scenario {
    Scenario {
        seed: 42,
        workers: 4,
        iters: 40,
        sync: SyncMode::Asp,
        dense: DenseSync::Ps,
        sparse: SparseMode::Cached {
            staleness: 0,
            capacity_fraction: 0.10,
            policy: PolicyKind::Lru,
        },
        tie_break: TieBreak::Fifo,
        crashes: 0,
        outages: 0,
        stragglers: 0,
        drop_prob: 0.0,
        extra_staleness: 0,
        lookahead: 0,
        tiered_hot: 0,
    }
}

#[test]
fn clean_fuzz_batch_has_zero_violations() {
    let cfg = FuzzConfig {
        master_seed: 0,
        seed_start: 0,
        seed_end: 16,
        max_iters: 30,
        extra_staleness: 0,
        out_dir: None,
        stop_after: 0,
    };
    let outcome = run_fuzz(&cfg);
    assert_eq!(outcome.runs, 16);
    assert!(
        outcome.violations.is_empty(),
        "clean campaign reported violations: {:?}",
        outcome
            .violations
            .iter()
            .map(|v| (v.index, v.violation.check, v.violation.message.clone()))
            .collect::<Vec<_>>()
    );
    assert!(outcome.computes > 0);
    assert!(outcome.cached_runs > 0);
    assert!(
        outcome.window_reads > 0,
        "no staleness windows were checked"
    );
}

#[test]
fn sabotaged_staleness_check_is_caught() {
    // staleness 0 means the client must never serve an entry whose
    // clock advanced since admission; widening the window by 8 makes
    // it serve stale hits that the oracle must flag.
    let mut scenario = base_scenario();
    scenario.extra_staleness = 8;
    let outcome = run_scenario(&scenario);
    let violation = outcome
        .oracle
        .expect_err("oracle must catch the widened staleness window");
    assert_eq!(violation.check, "cache-window", "{violation:?}");
}

#[test]
fn sabotaged_staleness_check_is_caught_with_prefetching_enabled() {
    // Prefetch installs must not launder stale entries past the
    // coherence window: the same planted CheckValid bug stays visible
    // to the oracle when the lookahead prefetcher is feeding the cache.
    let mut scenario = base_scenario();
    scenario.extra_staleness = 8;
    scenario.lookahead = 4;
    let violation = run_scenario(&scenario)
        .oracle
        .expect_err("oracle must catch the widened window under prefetching");
    assert_eq!(violation.check, "cache-window", "{violation:?}");
}

#[test]
fn sabotaged_staleness_check_is_caught_on_the_tiered_store() {
    // Demotion to the cold log and re-promotion must not launder the
    // planted staleness bug either: the oracle judges the trace, not
    // the storage tier the row happened to live in.
    let mut scenario = base_scenario();
    scenario.extra_staleness = 8;
    scenario.tiered_hot = 8;
    let violation = run_scenario(&scenario)
        .oracle
        .expect_err("oracle must catch the widened window on the tiered store");
    assert_eq!(violation.check, "cache-window", "{violation:?}");
}

#[test]
fn sabotaged_fuzz_campaign_catches_and_shrinks() {
    let out_dir = std::env::temp_dir().join("het-oracle-sabotage-test");
    let _ = std::fs::remove_dir_all(&out_dir);
    let cfg = FuzzConfig {
        master_seed: 7,
        seed_start: 0,
        seed_end: 40,
        max_iters: 40,
        extra_staleness: 16,
        out_dir: Some(out_dir.clone()),
        stop_after: 1,
    };
    let outcome = run_fuzz(&cfg);
    assert!(
        !outcome.violations.is_empty(),
        "sabotaged campaign found nothing in {} runs",
        outcome.runs
    );
    let caught = &outcome.violations[0];
    assert_eq!(
        caught.violation.check, "cache-window",
        "{:?}",
        caught.violation
    );
    // Acceptance bar: the shrinker must reduce the repro to at most
    // 2 workers and 10 iterations.
    assert!(
        caught.shrunk.workers <= 2,
        "shrunk to {} workers (runs spent: {})",
        caught.shrunk.workers,
        caught.shrink_runs
    );
    assert!(
        caught.shrunk.iters <= 10,
        "shrunk to {} iterations (runs spent: {})",
        caught.shrunk.iters,
        caught.shrink_runs
    );

    // The repro file must exist, parse, and reproduce the violation.
    let path = caught.repro_path.as_ref().expect("repro file written");
    let shrunk = read_repro(path).expect("repro file parses");
    assert_eq!(shrunk, caught.shrunk);
    let replayed = run_scenario(&shrunk)
        .oracle
        .expect_err("replayed repro must still violate");
    assert_eq!(replayed.check, caught.violation.check);
    let _ = std::fs::remove_dir_all(&out_dir);
}
