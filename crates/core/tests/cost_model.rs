//! Pins `het_cache`'s α-β refetch-cost model to the simulated wire
//! format. `het-cache` cannot depend on `het-simnet` (it sits below it
//! in the crate graph), so it mirrors the message constants locally;
//! this test is the promised cross-crate check that the mirror and the
//! wire never drift apart. If a wire-format change breaks it, update
//! `FETCH_COST_ALPHA_BYTES` / `FETCH_COST_BETA_BYTES` in
//! `crates/cache/src/policy.rs` to match.

use het_cache::{fetch_cost_bytes, FETCH_COST_ALPHA_BYTES, FETCH_COST_BETA_BYTES};
use het_simnet::wire;

#[test]
fn cache_cost_model_matches_wire_format() {
    assert_eq!(
        FETCH_COST_ALPHA_BYTES,
        wire::MSG_OVERHEAD_BYTES + wire::KEY_BYTES + wire::CLOCK_BYTES,
        "α must equal the per-message fetch-response overhead"
    );
    assert_eq!(
        FETCH_COST_BETA_BYTES,
        wire::F32_BYTES,
        "β must equal the per-element payload cost"
    );
    for dim in [0usize, 1, 8, 16, 128, 4096] {
        assert_eq!(
            fetch_cost_bytes(dim),
            wire::embedding_fetch_response_bytes(dim),
            "priced refetch cost diverges from the wire at dim {dim}"
        );
    }
}
