//! One retry/backoff policy shared by every recovery path.
//!
//! Before this module each caller carried its own ad-hoc pair of
//! constants (`max_retries` + `retry_backoff` threaded through
//! [`crate::fault::FaultContext`], hard-coded doubling in
//! `charge_leg`). [`RetryPolicy`] centralises the schedule so the
//! client's message-drop resends, the supervisor's respawn/restore
//! probes, and the resharding migration loop all back off the same way
//! and can be configured (and tested) in one place.
//!
//! The schedule is a pure function of `(policy, attempt)`:
//!
//! ```text
//! delay(a) = min(cap, max_{k ≤ a} base·factor^k + jitter(k))
//! ```
//!
//! where `jitter(k) ∈ [0, base)` is drawn from a SplitMix64 stream
//! keyed by `jitter_seed` (and is identically zero when the seed is 0).
//! The running max makes the schedule monotone non-decreasing even for
//! growth factors below 2, where one attempt's jitter could otherwise
//! overshoot the next attempt's base delay.
//!
//! Bit-compatibility contract: with `factor == 2.0` and jitter off —
//! the [`crate::FaultConfig`] defaults — `delay(a)` is computed in
//! integer nanoseconds as `base << a` (exponent clamped at 16), which
//! reproduces the historical `charge_leg` arithmetic byte-for-byte.

use het_simnet::SimDuration;

/// Exponent clamp: beyond this the shift would overflow any practical
/// base, and the historical `charge_leg` arithmetic clamped here too.
const MAX_EXPONENT: u32 = 16;

/// A deterministic exponential-backoff schedule.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RetryPolicy {
    /// Delay before the first retry; also the jitter range.
    pub base: SimDuration,
    /// Multiplicative growth per attempt (clamped below at 1.0).
    pub factor: f64,
    /// Upper bound every delay saturates at.
    pub cap: SimDuration,
    /// Attempts before the caller gives up.
    pub max_attempts: u32,
    /// Seed of the jitter stream; 0 disables jitter entirely.
    pub jitter_seed: u64,
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

impl RetryPolicy {
    /// The historical client schedule: `base` doubling per attempt, no
    /// cap in practice, no jitter. `FaultConfig` builds this from its
    /// `retry_backoff`/`max_retries` knobs.
    pub fn exponential(base: SimDuration, max_attempts: u32) -> Self {
        RetryPolicy {
            base,
            factor: 2.0,
            cap: SimDuration::from_nanos(u64::MAX),
            max_attempts,
            jitter_seed: 0,
        }
    }

    /// Seeds the jitter stream, leaving the deterministic envelope
    /// untouched.
    pub fn with_jitter(mut self, seed: u64) -> Self {
        self.jitter_seed = seed;
        self
    }

    /// The un-jittered, un-maxed delay of one attempt, in nanoseconds.
    fn raw_ns(&self, attempt: u32) -> u64 {
        let base = self.base.as_nanos();
        let exp = attempt.min(MAX_EXPONENT);
        if self.factor == 2.0 {
            // Integer fast path: byte-identical to the historical
            // `retry_backoff * (1 << attempt)` charge.
            base.saturating_mul(1u64 << exp)
        } else {
            let scaled = base as f64 * self.factor.max(1.0).powi(exp as i32);
            if scaled >= u64::MAX as f64 {
                u64::MAX
            } else {
                scaled as u64
            }
        }
    }

    /// The jitter of one attempt: `[0, base)`, or 0 with jitter off.
    fn jitter_ns(&self, attempt: u32) -> u64 {
        let base = self.base.as_nanos();
        if self.jitter_seed == 0 || base == 0 {
            return 0;
        }
        splitmix64(self.jitter_seed ^ (attempt as u64 + 1).wrapping_mul(0xA076_1D64_78BD_642F))
            % base
    }

    /// The delay to charge before retry number `attempt` (0-based).
    /// Monotone non-decreasing in `attempt` and saturating at `cap`.
    pub fn delay(&self, attempt: u32) -> SimDuration {
        let mut best = 0u64;
        for a in 0..=attempt.min(MAX_EXPONENT + 1) {
            best = best.max(self.raw_ns(a).saturating_add(self.jitter_ns(a)));
        }
        SimDuration::from_nanos(best.min(self.cap.as_nanos()))
    }

    /// The full schedule, one delay per allowed attempt.
    pub fn schedule(&self) -> Vec<SimDuration> {
        (0..self.max_attempts).map(|a| self.delay(a)).collect()
    }

    /// Total time a caller polling with this schedule spends before the
    /// cumulative backoff first reaches `target` — or `None` when the
    /// whole budget runs out short of it. Recovery paths use this to
    /// wait out a known outage window with retry semantics instead of
    /// an oracle-style exact sleep.
    pub fn time_to_reach(&self, target: SimDuration) -> Option<SimDuration> {
        let mut total = SimDuration::ZERO;
        for a in 0..self.max_attempts {
            total += self.delay(a);
            if total >= target {
                return Some(total);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_schedule_matches_the_historical_doubling() {
        let p = RetryPolicy::exponential(SimDuration::from_nanos(100), 5);
        let ns: Vec<u64> = p.schedule().iter().map(|d| d.as_nanos()).collect();
        assert_eq!(ns, vec![100, 200, 400, 800, 1_600]);
        // The exact expression charge_leg used before the refactor.
        for a in 0..20u32 {
            assert_eq!(
                p.delay(a).as_nanos(),
                100u64 * (1u64 << a.min(16)),
                "attempt {a}"
            );
        }
    }

    #[test]
    fn schedules_are_deterministic_per_seed() {
        for seed in [1u64, 7, 0xDEAD_BEEF, u64::MAX] {
            let p = RetryPolicy::exponential(SimDuration::from_micros(50), 8).with_jitter(seed);
            assert_eq!(p.schedule(), p.schedule(), "seed {seed}");
            let q = RetryPolicy::exponential(SimDuration::from_micros(50), 8)
                .with_jitter(seed.wrapping_add(1));
            assert_ne!(p.schedule(), q.schedule(), "seed {seed} vs +1");
        }
    }

    #[test]
    fn schedules_are_monotone_and_capped_for_any_factor() {
        for (factor, seed) in [
            (1.0, 3u64),
            (1.3, 11),
            (2.0, 0),
            (2.0, 99),
            (3.5, 1234),
            (10.0, 42),
        ] {
            let p = RetryPolicy {
                base: SimDuration::from_nanos(500),
                factor,
                cap: SimDuration::from_micros(20),
                max_attempts: 24,
                jitter_seed: seed,
            };
            let sched = p.schedule();
            for w in sched.windows(2) {
                assert!(
                    w[0] <= w[1],
                    "factor {factor} seed {seed}: schedule not monotone: {sched:?}"
                );
            }
            for d in &sched {
                assert!(*d <= p.cap, "factor {factor}: delay above cap");
            }
            if factor > 1.0 {
                assert_eq!(
                    *sched.last().unwrap(),
                    p.cap,
                    "24 growing attempts must hit the cap"
                );
            }
        }
    }

    #[test]
    fn jitter_stays_under_one_base() {
        let base = SimDuration::from_nanos(1_000);
        let clean = RetryPolicy::exponential(base, 10);
        let jittered = clean.with_jitter(77);
        for a in 0..10 {
            let lo = clean.delay(a);
            let hi = clean.delay(a) + base;
            let d = jittered.delay(a);
            assert!(
                d >= lo && d < hi,
                "attempt {a}: {d:?} outside [{lo:?},{hi:?})"
            );
        }
    }

    #[test]
    fn time_to_reach_covers_or_exhausts() {
        let p = RetryPolicy::exponential(SimDuration::from_nanos(100), 4);
        // 100+200 = 300 ≥ 250 after two attempts.
        assert_eq!(
            p.time_to_reach(SimDuration::from_nanos(250)),
            Some(SimDuration::from_nanos(300))
        );
        // 100+200+400+800 = 1500 < 10_000: budget exhausted.
        assert_eq!(p.time_to_reach(SimDuration::from_micros(10)), None);
        assert_eq!(
            p.time_to_reach(SimDuration::ZERO),
            Some(SimDuration::from_nanos(100)),
            "zero target still charges the first probe"
        );
    }
}
