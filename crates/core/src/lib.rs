//! HET: the cache-enabled distributed embedding-training framework.
//!
//! This crate is the paper's contribution (Miao et al., PVLDB 15(2),
//! 2021): a client-side embedding cache with **per-embedding
//! clock-bounded consistency** that allows staleness for both reads and
//! writes, layered over a hybrid communication architecture (parameter
//! server for sparse embeddings, AllReduce for dense parameters).
//!
//! The pieces:
//!
//! * [`client`] — the HET client implementing the paper's Algorithms 1–3
//!   (`Read`, `Write`, `Fetch`, `Evict`, `CheckValid`) with wire-accurate
//!   communication accounting;
//! * [`config`] — system presets matching the paper's six evaluated
//!   systems (TF PS, TF Parallax, HET PS, HET AR, HET Hybrid, HET Cache)
//!   plus SSP for the conventional-consistency comparison;
//! * [`trainer`] — the discrete-event cluster simulation that trains real
//!   models (from `het-models`) across N simulated workers, producing
//!   convergence curves in simulated time;
//! * [`report`] — what an experiment returns: convergence curve, time
//!   breakdown, communication and cache statistics.
//!
//! # Quick example
//!
//! ```
//! use het_core::config::{SystemPreset, TrainerConfig};
//! use het_core::trainer::Trainer;
//! use het_data::{CtrConfig, CtrDataset};
//! use het_models::WideDeep;
//!
//! let dataset = CtrDataset::new(CtrConfig::tiny(7));
//! let config = TrainerConfig::tiny(SystemPreset::HetCache { staleness: 10 });
//! let mut trainer = Trainer::new(config, dataset, |rng| {
//!     WideDeep::new(rng, 4, 8, &[16])
//! });
//! let report = trainer.run();
//! assert!(report.total_iterations > 0);
//! ```

#![warn(missing_docs)]

pub mod client;
pub mod config;
pub mod consistency;
pub mod fault;
pub mod prefetch;
pub mod report;
pub mod retry;
pub mod trainer;

pub use client::HetClient;
pub use config::{
    Backbone, DenseSync, SparseMode, StoreSpec, SyncMode, SystemConfig, SystemPreset, TieredConfig,
    TrainerConfig,
};
pub use fault::{FaultConfig, FaultRecord, FaultStats};
pub use prefetch::{PrefetchAudit, PrefetchSummary, Prefetcher};
pub use report::{ConvergencePoint, StoreSummary, TimeBreakdown, TrainReport};
pub use retry::RetryPolicy;
pub use trainer::parallel::ParallelReport;
pub use trainer::Trainer;
