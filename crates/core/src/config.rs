//! System and trainer configuration, including the paper's six evaluated
//! system presets.

use crate::fault::FaultConfig;
use het_cache::PolicyKind;
pub use het_ps::{StoreSpec, TieredConfig};
use het_simnet::{ClusterSpec, TieBreak};

/// How dense (non-embedding) parameters are synchronised.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DenseSync {
    /// Dense parameters live on the parameter server; workers push
    /// gradients and pull fresh parameters every iteration (TF PS,
    /// HET PS).
    Ps,
    /// Dense gradients are ring-AllReduced between workers every
    /// iteration (the hybrid systems and HET AR).
    AllReduce,
}

/// How sparse (embedding) parameters are handled.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum SparseMode {
    /// Pull the batch's embeddings from the PS at read, push gradients at
    /// write, every iteration (TF PS, HET PS, TF Parallax, HET Hybrid).
    PsDirect,
    /// Every worker holds a full replica of the embedding table; sparse
    /// gradients are AllGathered between workers each round (HET AR —
    /// the paper's §2.3 note that AllReduce degenerates to AllGather for
    /// sparse data; memory-restricted like HugeCTR).
    AllGather,
    /// The paper's contribution: a per-worker cache with per-embedding
    /// clock-bounded consistency and stale writes.
    Cached {
        /// Staleness threshold `s` of `CheckValid`.
        staleness: u64,
        /// Cache capacity as a fraction of the total key space (the
        /// paper's §5.1 default is 0.10).
        capacity_fraction: f64,
        /// Eviction policy (§4.3; the paper's default is its light LFU).
        policy: PolicyKind,
    },
}

/// Worker synchronisation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SyncMode {
    /// Bulk-synchronous rounds with a barrier per iteration.
    Bsp,
    /// Fully asynchronous free-running workers.
    Asp,
    /// Stale Synchronous Parallel with a *worker-clock* bound — the
    /// conventional consistency model the paper contrasts with (§2.1,
    /// §3.4). Workers may run at most `staleness` iterations ahead of the
    /// slowest worker.
    Ssp {
        /// Maximum iteration lead over the slowest worker.
        staleness: u64,
    },
}

/// Backbone/runtime quality knobs. The paper attributes the gap between
/// TF-based and HET-based variants of the *same* architecture entirely to
/// backbone optimisations (§5.1): computation/communication overlap
/// (§4.1), message fusion and pre-fetching (§4.2), and kernel efficiency.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Backbone {
    /// Overlap sparse communication with computation: iteration time is
    /// `max(compute, sparse_comm)` instead of their sum (§4.1).
    pub overlap: bool,
    /// Fuse per-key pulls/pushes/clock checks into one message per
    /// protocol step (§4.2); without it every key pays a header.
    pub fuse_messages: bool,
    /// Multiplier on compute time (>1 models a less efficient kernel
    /// stack).
    pub compute_factor: f64,
}

impl Backbone {
    /// The HET runtime: overlapping, fused messages, efficient kernels.
    pub fn het() -> Self {
        Backbone {
            overlap: true,
            fuse_messages: true,
            compute_factor: 1.0,
        }
    }

    /// The TensorFlow 1.15 baseline runtime as characterised in §5.1
    /// (no overlap, no message fusion, slower kernels).
    pub fn tensorflow() -> Self {
        Backbone {
            overlap: false,
            fuse_messages: false,
            compute_factor: 1.5,
        }
    }
}

/// A complete system description (architecture × consistency × backbone).
#[derive(Clone, Debug, PartialEq)]
pub struct SystemConfig {
    /// Human-readable name used in reports and benches.
    pub name: &'static str,
    /// Dense parameter path.
    pub dense: DenseSync,
    /// Sparse embedding path.
    pub sparse: SparseMode,
    /// Worker synchronisation.
    pub sync: SyncMode,
    /// Runtime quality.
    pub backbone: Backbone,
}

/// The six systems of the paper's evaluation (§5), plus SSP.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum SystemPreset {
    /// TensorFlow parameter server, ASP.
    TfPs,
    /// Parallax-style hybrid (PS for sparse, AllReduce for dense) on the
    /// TF backbone, BSP.
    TfParallax,
    /// HET's backbone with a plain PS architecture, ASP.
    HetPs,
    /// HET's backbone with AllReduce/AllGather for everything, BSP.
    HetAr,
    /// HET's hybrid architecture without the cache, BSP.
    HetHybrid,
    /// Full HET: hybrid + cache with staleness `s`, BSP rounds.
    HetCache {
        /// The staleness threshold `s`.
        staleness: u64,
    },
    /// Conventional SSP over the PS architecture (comparison baseline).
    Ssp {
        /// Worker-clock staleness bound.
        staleness: u64,
    },
}

impl SystemPreset {
    /// Materialises the preset with default cache parameters
    /// (capacity 10 % of the key space, light LFU — the paper's §5.1
    /// setup).
    pub fn config(self) -> SystemConfig {
        match self {
            SystemPreset::TfPs => SystemConfig {
                name: "TF PS",
                dense: DenseSync::Ps,
                sparse: SparseMode::PsDirect,
                sync: SyncMode::Asp,
                backbone: Backbone::tensorflow(),
            },
            SystemPreset::TfParallax => SystemConfig {
                name: "TF Parallax",
                dense: DenseSync::AllReduce,
                sparse: SparseMode::PsDirect,
                sync: SyncMode::Bsp,
                backbone: Backbone::tensorflow(),
            },
            SystemPreset::HetPs => SystemConfig {
                name: "HET PS",
                dense: DenseSync::Ps,
                sparse: SparseMode::PsDirect,
                sync: SyncMode::Asp,
                backbone: Backbone::het(),
            },
            SystemPreset::HetAr => SystemConfig {
                name: "HET AR",
                dense: DenseSync::AllReduce,
                sparse: SparseMode::AllGather,
                sync: SyncMode::Bsp,
                backbone: Backbone::het(),
            },
            SystemPreset::HetHybrid => SystemConfig {
                name: "HET Hybrid",
                dense: DenseSync::AllReduce,
                sparse: SparseMode::PsDirect,
                sync: SyncMode::Bsp,
                backbone: Backbone::het(),
            },
            SystemPreset::HetCache { staleness } => SystemConfig {
                name: "HET Cache",
                dense: DenseSync::AllReduce,
                sparse: SparseMode::Cached {
                    staleness,
                    capacity_fraction: 0.10,
                    policy: PolicyKind::light_lfu(),
                },
                sync: SyncMode::Bsp,
                backbone: Backbone::het(),
            },
            SystemPreset::Ssp { staleness } => SystemConfig {
                name: "SSP",
                dense: DenseSync::Ps,
                sparse: SparseMode::PsDirect,
                sync: SyncMode::Ssp { staleness },
                backbone: Backbone::het(),
            },
        }
    }
}

/// Everything a training run needs besides the dataset and model.
#[derive(Clone, Debug)]
pub struct TrainerConfig {
    /// The system under test.
    pub system: SystemConfig,
    /// Cluster shape and link speeds.
    pub cluster: ClusterSpec,
    /// Mini-batch size per worker (paper: 128).
    pub batch_size: usize,
    /// Embedding dimension D.
    pub dim: usize,
    /// Learning rate (shared by workers and the server).
    pub lr: f32,
    /// Hard cap on total iterations summed over workers.
    pub max_iterations: u64,
    /// Evaluate every this many global iterations.
    pub eval_every: u64,
    /// Number of test batches per evaluation.
    pub eval_batches: usize,
    /// Stop as soon as the metric reaches this value (the paper's
    /// convergence-threshold methodology).
    pub target_metric: Option<f64>,
    /// L2 clip applied by the server to each pushed (possibly
    /// accumulated) embedding gradient; `None` disables. Stabilises
    /// models with multiplicative interaction terms under large
    /// staleness (see `het_ps::PsConfig::grad_clip`).
    pub server_grad_clip: Option<f32>,
    /// Master seed: model init, worker data order.
    pub seed: u64,
    /// Deterministic fault injection (crashes, outages, stragglers,
    /// degraded links, message drops). Disabled by default; with an
    /// empty schedule the run is bit-identical to injection off.
    pub faults: FaultConfig,
    /// Same-time ordering rule for the async event queue (ASP/SSP).
    /// `Fifo` preserves the historical schedule; the oracle fuzzer
    /// sweeps the other rules to explore adversarial interleavings.
    pub tie_break: TieBreak,
    /// Deliberate consistency-protocol sabotage: widens every cache
    /// client's admitted staleness bound by this much *without*
    /// updating the oracle's model. Zero (the default) is a strict
    /// no-op. Only the oracle's self-tests set this — it exists to
    /// prove the checker catches a broken `CheckValid`.
    pub sabotage_extra_staleness: u64,
    /// Lookahead prefetch depth in batches (§4.2's pre-fetching, made
    /// exact by the deterministic data cursor): each worker's next
    /// `lookahead_depth` batches have their deduped key sets pulled
    /// concurrently with the current compute span and installed into
    /// the cache before the read that needs them. `0` (the default)
    /// disables the prefetcher entirely and reproduces the legacy path
    /// byte-for-byte. Only meaningful under `SparseMode::Cached`.
    pub lookahead_depth: u64,
    /// Row-store backend for every PS shard. [`StoreSpec::Mem`] (the
    /// default) is the flat in-memory table and reproduces the legacy
    /// simulation byte-for-byte; [`StoreSpec::Tiered`] bounds resident
    /// rows per the spec's hot budget and spills the rest to a modelled
    /// cold tier whose disk time flows into the simulated clocks.
    pub store: StoreSpec,
}

impl TrainerConfig {
    /// The paper's cluster-A style default: 8 workers, 1 server, 1 GbE.
    pub fn cluster_a(system: SystemPreset) -> Self {
        TrainerConfig {
            system: system.config(),
            cluster: ClusterSpec::cluster_a(8, 1),
            batch_size: 128,
            dim: 16,
            lr: 0.05,
            max_iterations: 20_000,
            eval_every: 500,
            eval_batches: 8,
            target_metric: None,
            server_grad_clip: Some(1.0),
            seed: 0xBEEF,
            faults: FaultConfig::disabled(),
            tie_break: TieBreak::Fifo,
            sabotage_extra_staleness: 0,
            lookahead_depth: 0,
            store: StoreSpec::Mem,
        }
    }

    /// A fast configuration for unit/integration tests: 4 workers, tiny
    /// batches.
    pub fn tiny(system: SystemPreset) -> Self {
        TrainerConfig {
            system: system.config(),
            cluster: ClusterSpec::cluster_a(4, 1),
            batch_size: 16,
            dim: 8,
            lr: 0.05,
            max_iterations: 200,
            eval_every: 50,
            eval_batches: 4,
            target_metric: None,
            server_grad_clip: Some(1.0),
            seed: 0xBEEF,
            faults: FaultConfig::disabled(),
            tie_break: TieBreak::Fifo,
            sabotage_extra_staleness: 0,
            lookahead_depth: 0,
            store: StoreSpec::Mem,
        }
    }

    /// Overrides the cache fraction/policy when the system is cached;
    /// no-op otherwise.
    pub fn with_cache(mut self, capacity_fraction: f64, policy: het_cache::PolicyKind) -> Self {
        if let SparseMode::Cached { staleness, .. } = self.system.sparse {
            self.system.sparse = SparseMode::Cached {
                staleness,
                capacity_fraction,
                policy,
            };
        }
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_paper_architecture_table() {
        let tf_ps = SystemPreset::TfPs.config();
        assert_eq!(tf_ps.dense, DenseSync::Ps);
        assert_eq!(tf_ps.sync, SyncMode::Asp);
        assert!(!tf_ps.backbone.overlap);

        let parallax = SystemPreset::TfParallax.config();
        assert_eq!(parallax.dense, DenseSync::AllReduce);
        assert_eq!(parallax.sparse, SparseMode::PsDirect);

        let het_ar = SystemPreset::HetAr.config();
        assert_eq!(het_ar.sparse, SparseMode::AllGather);

        let hybrid = SystemPreset::HetHybrid.config();
        assert_eq!(hybrid.sparse, SparseMode::PsDirect);
        assert!(hybrid.backbone.overlap);

        let cache = SystemPreset::HetCache { staleness: 100 }.config();
        match cache.sparse {
            SparseMode::Cached {
                staleness,
                capacity_fraction,
                ..
            } => {
                assert_eq!(staleness, 100);
                assert!((capacity_fraction - 0.10).abs() < 1e-12);
            }
            other => panic!("expected cached sparse mode, got {other:?}"),
        }
    }

    #[test]
    fn ssp_preset_bounds_worker_clocks() {
        let ssp = SystemPreset::Ssp { staleness: 3 }.config();
        assert_eq!(ssp.sync, SyncMode::Ssp { staleness: 3 });
    }

    #[test]
    fn with_cache_overrides_only_cached_systems() {
        let cfg = TrainerConfig::tiny(SystemPreset::HetCache { staleness: 5 })
            .with_cache(0.25, PolicyKind::Lru);
        match cfg.system.sparse {
            SparseMode::Cached {
                capacity_fraction,
                policy,
                staleness,
            } => {
                assert_eq!(staleness, 5);
                assert!((capacity_fraction - 0.25).abs() < 1e-12);
                assert_eq!(policy, PolicyKind::Lru);
            }
            other => panic!("unexpected {other:?}"),
        }
        let untouched = TrainerConfig::tiny(SystemPreset::TfPs).with_cache(0.25, PolicyKind::Lru);
        assert_eq!(untouched.system.sparse, SparseMode::PsDirect);
    }

    #[test]
    fn backbone_presets_differ() {
        assert!(Backbone::het().overlap);
        assert!(!Backbone::tensorflow().overlap);
        assert!(Backbone::tensorflow().compute_factor > Backbone::het().compute_factor);
    }
}
