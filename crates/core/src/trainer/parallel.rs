//! The threaded execution backend for the trainer.
//!
//! [`Trainer::run`] schedules every worker on the single-threaded
//! discrete-event runtime; this module runs the *same* training job on
//! real OS threads — one thread per worker — behind the
//! `--backend threads:<n>` seam (`het_runtime::ExecutionBackend`). The
//! simulator stays the correctness oracle:
//!
//! * **BSP** rounds are replayed with the sim's exact server-visible
//!   operation order: reads pass through an ordered [`Turnstile`],
//!   compute runs genuinely in parallel, writes pass through a second
//!   turnstile, and the round tail (sparse AllGather merge, dense
//!   gradient averaging, evaluation) runs on the deterministic barrier
//!   leader (the thread that owns worker 0). Because every PS-mutating
//!   step happens in worker order and the gradient average accumulates
//!   in worker order, the final dense parameters and the convergence
//!   curve are **bit-identical** to the sim backend's.
//! * **ASP/SSP** workers free-run against the shared PS (per-shard
//!   locks carry the concurrency); an iteration is claimed under a
//!   progress lock before it runs, and the SSP gate blocks a worker
//!   whose completed-iteration count is more than `staleness` ahead of
//!   the slowest — so a merged trace always satisfies the oracle's
//!   spread bound (`s + 1`, counting the in-flight iteration).
//!
//! Tracing: each worker thread runs its own thread-local collector (the
//! existing sink, unchanged); events are stamped from a shared
//! strictly-increasing [`WallClock`] and merged at join time with
//! [`het_trace::merge_threads`], which orders by `(t, tid)`. Callers
//! that want a trace pass `trace_meta` to [`Trainer::run_threaded`] and
//! must **not** have their own collector running on the calling thread
//! — the run starts one for the post-join flush and merges it in as the
//! last part.
//!
//! Locking order (DESIGN.md §3.13): progress/phase locks → PS shard
//! locks → trace scope. Nothing in this module takes a shard lock while
//! holding another shard's lock, and no PS call is made while holding
//! the progress or tail mutex.
//!
//! Not supported (rejected up front): fault injection and lookahead
//! prefetch, both of which are defined in terms of the simulated clock.
//! Mid-run evaluation is BSP-only; ASP/SSP threaded runs evaluate once
//! at the end (the sim backend remains the tool for async convergence
//! curves).

use super::{SparseEngine, Trainer, Worker};
use crate::config::{DenseSync, SyncMode, TrainerConfig};
use crate::report::ConvergencePoint;
use het_cache::CacheStats;
use het_json::{Json, ToJson};
use het_models::{Dataset, EmbeddingModel, EmbeddingStore, EvalChunk, ModelBatch, SparseGrads};
use het_ps::{DenseStore, PsServer};
use het_runtime::{Barrier, Turnstile, WallClock};
use het_simnet::{wire, Collectives, CommCategory, CommStats, SimTime};
use het_tensor::{FlatGrads, FlatParams, Sgd};
use het_trace::TraceLog;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Condvar, Mutex};

/// The result of one threaded training run.
///
/// Times are wall-clock nanoseconds (`curve[i].sim_time` holds the wall
/// stamp of the evaluation), unlike [`crate::report::TrainReport`]'s
/// simulated times — the two are not comparable on the time axis, only
/// on iterations, metrics, and (for BSP) the parameters themselves.
#[derive(Clone, Debug)]
pub struct ParallelReport {
    /// The system's display name.
    pub system: String,
    /// Backend label, `"threads:<n>"`.
    pub backend: String,
    /// Worker-thread count.
    pub n_threads: usize,
    /// Total iterations summed over workers.
    pub total_iterations: u64,
    /// Wall-clock run time in nanoseconds (training only; the final
    /// flush and evaluation are excluded).
    pub wall_ns: u64,
    /// Iterations per wall-clock second.
    pub ops_per_sec: f64,
    /// Metric at the final evaluation (after the end-of-run flush).
    pub final_metric: f64,
    /// Wall stamp at which the target metric was reached, if it was.
    pub converged_at_ns: Option<u64>,
    /// Convergence curve; `sim_time` carries the wall stamp. BSP curves
    /// are metric- and loss-identical to the sim backend's.
    pub curve: Vec<ConvergencePoint>,
    /// Per-category communication bytes/messages (merged over workers).
    pub comm: CommStats,
    /// Cache statistics (zeroed for cache-less systems).
    pub cache: CacheStats,
    /// Worker 0's flat dense parameters at the end of the run — the
    /// cross-backend bit-identity probe (compare against
    /// [`Trainer::export_dense_params`] on a sim run).
    pub final_dense: Vec<f32>,
    /// The merged per-thread trace, when `trace_meta` was passed.
    pub trace: Option<TraceLog>,
}

impl ToJson for ParallelReport {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("system".to_string(), self.system.to_json()),
            ("backend".to_string(), self.backend.to_json()),
            ("n_threads".to_string(), Json::UInt(self.n_threads as u64)),
            (
                "total_iterations".to_string(),
                Json::UInt(self.total_iterations),
            ),
            ("wall_ns".to_string(), Json::UInt(self.wall_ns)),
            ("ops_per_sec".to_string(), Json::Num(self.ops_per_sec)),
            ("final_metric".to_string(), Json::Num(self.final_metric)),
            (
                "converged_at_ns".to_string(),
                self.converged_at_ns.map(Json::UInt).unwrap_or(Json::Null),
            ),
            ("curve".to_string(), self.curve.to_json()),
            ("comm".to_string(), self.comm.to_json()),
        ])
    }
}

/// Immutable per-run state shared by every worker thread.
struct ThreadCtx<'a, D> {
    config: &'a TrainerConfig,
    dataset: &'a D,
    server: &'a PsServer,
    dense_store: Option<&'a DenseStore>,
    net: Collectives,
    sgd: Sgd,
    n: usize,
    tracing: bool,
}

/// Leader-side BSP round accounting.
#[derive(Default)]
struct BspTail {
    rounds: u64,
    curve: Vec<ConvergencePoint>,
    converged_at_ns: Option<u64>,
}

/// Everything the BSP threads rendezvous on.
struct BspShared {
    read_ts: Turnstile,
    write_ts: Turnstile,
    /// All reads + computes done; no write may precede a later worker's
    /// read (the sim runs the whole read phase before the write phase).
    computed: Barrier,
    /// All writes done; the leader tail may merge.
    written: Barrier,
    /// Leader tail done; followers may apply the averaged gradient.
    applied: Barrier,
    clock: WallClock,
    stop: AtomicBool,
    /// Per-worker exported dense gradients, filled in the write phase.
    dense_slots: Mutex<Vec<Option<FlatGrads>>>,
    /// Per-worker sparse gradient blocks (HET AR only).
    gathered: Mutex<Vec<Option<SparseGrads>>>,
    /// The round's averaged dense gradient, published by the leader.
    avg: Mutex<FlatGrads>,
    /// Per-worker `(loss_sum, loss_count)` slots; summed in worker
    /// order at evaluation so the reported train loss is bit-identical
    /// to the sim's (float addition order matters).
    loss: Mutex<Vec<(f64, u64)>>,
    tail: Mutex<BspTail>,
}

/// ASP/SSP progress ledger: completed iterations per worker plus the
/// global claim counter. Claim-before-run: a worker increments `global`
/// under this lock before the iteration executes, so exactly
/// `max_iterations` iterations run in total.
struct AsyncProgress {
    iters: Vec<u64>,
    global: u64,
}

struct AsyncShared {
    clock: WallClock,
    progress: Mutex<AsyncProgress>,
    cv: Condvar,
}

impl<M: EmbeddingModel, D: Dataset<Batch = M::Batch>> Trainer<M, D> {
    /// Runs the training job on real threads (one per configured
    /// worker) and returns the [`ParallelReport`]. Pass `trace_meta` to
    /// collect a merged wall-clock trace (see the module docs for the
    /// collector contract).
    ///
    /// Errors if the configuration requires the simulated clock: a
    /// non-empty fault plan or lookahead prefetching.
    pub fn run_threaded(
        &mut self,
        trace_meta: Option<Vec<(String, Json)>>,
    ) -> Result<ParallelReport, String> {
        if !self.plan.is_empty() {
            return Err(
                "the threaded backend does not support fault injection; use --backend sim"
                    .to_string(),
            );
        }
        if self.config.lookahead_depth > 0 {
            return Err(
                "the threaded backend does not support lookahead prefetch; use --backend sim"
                    .to_string(),
            );
        }
        Ok(match self.config.system.sync {
            SyncMode::Bsp => self.run_threaded_bsp(trace_meta),
            SyncMode::Asp => self.run_threaded_async(None, trace_meta),
            SyncMode::Ssp { staleness } => self.run_threaded_async(Some(staleness), trace_meta),
        })
    }

    /// Worker 0's flat dense parameters, for cross-backend bit-identity
    /// probes against [`ParallelReport::final_dense`].
    pub fn export_dense_params(&mut self) -> Vec<f32> {
        let mut flat = FlatParams::new();
        flat.export_from(&mut self.workers[0].model);
        flat.into_vec()
    }

    fn run_threaded_bsp(&mut self, trace_meta: Option<Vec<(String, Json)>>) -> ParallelReport {
        let n = self.workers.len();
        let tracing = trace_meta.is_some();
        let shared = BspShared {
            read_ts: Turnstile::new(n),
            write_ts: Turnstile::new(n),
            computed: Barrier::new(n),
            written: Barrier::new(n),
            applied: Barrier::new(n),
            clock: WallClock::new(),
            stop: AtomicBool::new(false),
            dense_slots: Mutex::new((0..n).map(|_| None).collect()),
            gathered: Mutex::new((0..n).map(|_| None).collect()),
            avg: Mutex::new(FlatGrads::new()),
            loss: Mutex::new(vec![(0.0, 0u64); n]),
            tail: Mutex::new(BspTail::default()),
        };
        let Trainer {
            config,
            dataset,
            server,
            dense_store,
            workers,
            net,
            sgd,
            ..
        } = &mut *self;
        let ctx = ThreadCtx {
            config,
            dataset,
            server,
            dense_store: dense_store.as_ref(),
            net: *net,
            sgd: *sgd,
            n,
            tracing,
        };
        let logs: Vec<TraceLog> = std::thread::scope(|s| {
            let mut handles = Vec::with_capacity(n);
            for (w, worker) in workers.iter_mut().enumerate() {
                let shared = &shared;
                let ctx = &ctx;
                handles.push(s.spawn(move || {
                    if ctx.tracing {
                        het_trace::start(Vec::new());
                    }
                    bsp_worker_loop(w, worker, shared, ctx);
                    het_trace::finish()
                }));
            }
            handles
                .into_iter()
                .map(|h| h.join().expect("worker thread panicked"))
                .collect()
        });
        let tail = std::mem::take(&mut *shared.tail.lock().unwrap());
        let total = tail.rounds * n as u64;
        self.finish_threaded(
            n,
            &shared.clock,
            logs,
            trace_meta,
            total,
            tail.curve,
            tail.converged_at_ns,
            false,
        )
    }

    fn run_threaded_async(
        &mut self,
        staleness: Option<u64>,
        trace_meta: Option<Vec<(String, Json)>>,
    ) -> ParallelReport {
        let n = self.workers.len();
        let tracing = trace_meta.is_some();
        let shared = AsyncShared {
            clock: WallClock::new(),
            progress: Mutex::new(AsyncProgress {
                iters: vec![0; n],
                global: 0,
            }),
            cv: Condvar::new(),
        };
        let Trainer {
            config,
            dataset,
            server,
            dense_store,
            workers,
            net,
            sgd,
            ..
        } = &mut *self;
        let ctx = ThreadCtx {
            config,
            dataset,
            server,
            dense_store: dense_store.as_ref(),
            net: *net,
            sgd: *sgd,
            n,
            tracing,
        };
        let logs: Vec<TraceLog> = std::thread::scope(|s| {
            let mut handles = Vec::with_capacity(n);
            for (w, worker) in workers.iter_mut().enumerate() {
                let shared = &shared;
                let ctx = &ctx;
                handles.push(s.spawn(move || {
                    if ctx.tracing {
                        het_trace::start(Vec::new());
                    }
                    async_worker_loop(w, worker, shared, ctx, staleness);
                    het_trace::finish()
                }));
            }
            handles
                .into_iter()
                .map(|h| h.join().expect("worker thread panicked"))
                .collect()
        });
        let total = shared.progress.lock().unwrap().global;
        self.finish_threaded(
            n,
            &shared.clock,
            logs,
            trace_meta,
            total,
            Vec::new(),
            None,
            true,
        )
    }

    /// Post-join tail shared by both modes: flush every cache (wall
    /// stamps, on the main thread's own collector), evaluate, merge the
    /// per-thread traces, and assemble the report.
    #[allow(clippy::too_many_arguments)]
    fn finish_threaded(
        &mut self,
        n: usize,
        clock: &WallClock,
        logs: Vec<TraceLog>,
        trace_meta: Option<Vec<(String, Json)>>,
        total: u64,
        mut curve: Vec<ConvergencePoint>,
        converged_at_ns: Option<u64>,
        push_final_point: bool,
    ) -> ParallelReport {
        let tracing = trace_meta.is_some();
        let wall_ns = clock.elapsed_ns();
        if tracing {
            het_trace::start(Vec::new());
        }
        {
            let Trainer {
                server,
                net,
                workers,
                ..
            } = &mut *self;
            let server = &**server;
            for (i, worker) in workers.iter_mut().enumerate() {
                if let SparseEngine::Cached(c) = &mut worker.sparse {
                    if tracing {
                        het_trace::set_scope(clock.stamp(), Some(i as u64));
                    }
                    let t = c.flush(server, net, &mut worker.comm);
                    worker.breakdown.sparse_write += t;
                    het_trace::span!("trainer", "flush", t.as_nanos());
                }
            }
        }
        let final_metric = self.evaluate_now();
        let trace = trace_meta.map(|meta| {
            let mut parts = logs;
            parts.push(het_trace::finish());
            het_trace::merge_threads(meta, parts)
        });
        if push_final_point {
            let loss_sum: f64 = self.workers.iter().map(|w| w.loss_sum).sum();
            let loss_count: u64 = self.workers.iter().map(|w| w.loss_count).sum();
            curve.push(ConvergencePoint {
                sim_time: SimTime::from_nanos(wall_ns),
                iteration: total,
                metric: final_metric,
                train_loss: if loss_count > 0 {
                    loss_sum / loss_count as f64
                } else {
                    0.0
                },
            });
        }
        let mut comm = CommStats::new();
        let mut cache = CacheStats::default();
        for worker in &self.workers {
            comm.merge(&worker.comm);
            if let SparseEngine::Cached(c) = &worker.sparse {
                cache.merge(c.cache().stats());
            }
        }
        self.global_iterations = total;
        self.curve = curve.clone();
        let wall_s = wall_ns as f64 / 1e9;
        ParallelReport {
            system: self.config.system.name.to_string(),
            backend: format!("threads:{n}"),
            n_threads: n,
            total_iterations: total,
            wall_ns,
            ops_per_sec: if wall_s > 0.0 {
                total as f64 / wall_s
            } else {
                0.0
            },
            final_metric,
            converged_at_ns,
            curve,
            comm,
            cache,
            final_dense: self.export_dense_params(),
            trace,
        }
    }
}

/// One worker thread's BSP loop. Per round: ordered read, parallel
/// compute, barrier, ordered write (+ dense export or ordered dense PS
/// sync), barrier, leader tail, barrier, apply averaged gradient.
fn bsp_worker_loop<M: EmbeddingModel, D: Dataset<Batch = M::Batch>>(
    w: usize,
    worker: &mut Worker<M>,
    shared: &BspShared,
    ctx: &ThreadCtx<'_, D>,
) {
    let dim = ctx.config.dim;
    loop {
        if shared.stop.load(Ordering::SeqCst) {
            break;
        }
        let cursor = (worker.iterations * ctx.n as u64 + w as u64) * ctx.config.batch_size as u64;
        let batch = ctx.dataset.train_batch(cursor, ctx.config.batch_size);
        let keys = batch.unique_keys();
        let store = shared.read_ts.pass(w, || {
            if ctx.tracing {
                het_trace::set_scope(shared.clock.stamp(), Some(w as u64));
            }
            engine_read(worker, &keys, ctx)
        });
        let c0 = shared.clock.elapsed_ns();
        let (loss, grads) = worker.model.forward_backward(&batch, &store);
        let compute_ns = shared.clock.elapsed_ns().saturating_sub(c0);
        shared.computed.wait(w);
        shared.write_ts.pass(w, || {
            if ctx.tracing {
                het_trace::set_scope(shared.clock.stamp(), Some(w as u64));
            }
            if matches!(worker.sparse, SparseEngine::Replicated) {
                let block = wire::sparse_allgather_block_bytes(grads.len(), dim);
                let bytes = ctx.net.allgather_bytes_per_worker(block);
                if bytes > 0 {
                    worker.comm.record(CommCategory::SparseAllGather, bytes);
                }
                shared.gathered.lock().unwrap()[w] = Some(grads);
            } else {
                engine_write(worker, &grads, ctx);
            }
            match ctx.config.system.dense {
                DenseSync::AllReduce => {
                    let mut g = FlatGrads::new();
                    g.export_from(&mut worker.model);
                    shared.dense_slots.lock().unwrap()[w] = Some(g);
                }
                DenseSync::Ps => {
                    dense_ps_sync(worker, ctx.dense_store.expect("dense PS store"), &ctx.net);
                }
            }
            worker.iterations += 1;
            {
                let mut slots = shared.loss.lock().unwrap();
                slots[w].0 += loss as f64;
                slots[w].1 += 1;
            }
            het_trace::span!("trainer", "compute", compute_ns, "loss" => loss as f64);
        });
        if shared.written.wait(w) {
            bsp_leader_tail(worker, shared, ctx);
        }
        shared.applied.wait(w);
        if matches!(ctx.config.system.dense, DenseSync::AllReduce) {
            let avg = shared.avg.lock().unwrap();
            if w != 0 {
                // The leader already applied it to worker 0's replica
                // (before evaluating, mirroring the sim's apply-then-
                // eval order).
                avg.import_into(&mut worker.model);
                ctx.sgd.step(&mut worker.model);
            }
            let bytes = (avg.len() * wire::F32_BYTES as usize) as u64;
            let per_worker = ctx.net.ring_allreduce_bytes_per_worker(bytes);
            if per_worker > 0 {
                worker.comm.record(CommCategory::DenseAllReduce, per_worker);
            }
        }
    }
}

/// The single-threaded tail of a BSP round, run by the barrier leader
/// (worker 0's thread): sparse AllGather merge, dense gradient
/// averaging (worker-order accumulation — the sim's float addition
/// order), round accounting, and evaluation at the sim's cadence.
fn bsp_leader_tail<M: EmbeddingModel, D: Dataset<Batch = M::Batch>>(
    worker: &mut Worker<M>,
    shared: &BspShared,
    ctx: &ThreadCtx<'_, D>,
) {
    let n = ctx.n;
    let gathered: Vec<Option<SparseGrads>> = {
        let mut g = shared.gathered.lock().unwrap();
        g.iter_mut().map(|s| s.take()).collect()
    };
    if gathered.iter().any(|g| g.is_some()) {
        let mut merged = SparseGrads::new(ctx.config.dim);
        for g in gathered.iter().flatten() {
            merged.merge(g);
        }
        for k in merged.sorted_keys() {
            ctx.server.push_inc(k, merged.get(k).expect("merged key"));
        }
        ctx.server.take_io_ns();
    }
    if matches!(ctx.config.system.dense, DenseSync::AllReduce) {
        let slots: Vec<FlatGrads> = {
            let mut s = shared.dense_slots.lock().unwrap();
            s.iter_mut()
                .map(|g| g.take().expect("dense slot filled in write phase"))
                .collect()
        };
        let mut sum = FlatGrads::new();
        for g in &slots {
            sum.accumulate(g);
        }
        sum.scale(1.0 / n as f32);
        sum.import_into(&mut worker.model);
        ctx.sgd.step(&mut worker.model);
        *shared.avg.lock().unwrap() = sum;
    }
    let mut tail = shared.tail.lock().unwrap();
    tail.rounds += 1;
    let global = tail.rounds * n as u64;
    let t_ns = shared.clock.stamp();
    if ctx.tracing {
        het_trace::set_scope(t_ns, None);
        het_trace::span!("trainer", "barrier", 0u64,
            "round_iters" => n, "round_end_ns" => t_ns);
    }
    if global % ctx.config.eval_every < n as u64 {
        let metric = eval_worker0(&*worker, ctx);
        let (mut loss_sum, mut loss_count) = (0.0f64, 0u64);
        {
            let mut slots = shared.loss.lock().unwrap();
            for s in slots.iter_mut() {
                loss_sum += s.0;
                loss_count += s.1;
                *s = (0.0, 0);
            }
        }
        let train_loss = if loss_count > 0 {
            loss_sum / loss_count as f64
        } else {
            0.0
        };
        if ctx.tracing {
            het_trace::event!("trainer", "eval",
                "iteration" => global, "metric" => metric, "train_loss" => train_loss);
        }
        tail.curve.push(ConvergencePoint {
            sim_time: SimTime::from_nanos(t_ns),
            iteration: global,
            metric,
            train_loss,
        });
        if let Some(target) = ctx.config.target_metric {
            if metric >= target && tail.converged_at_ns.is_none() {
                tail.converged_at_ns = Some(t_ns);
                shared.stop.store(true, Ordering::SeqCst);
            }
        }
    }
    if global >= ctx.config.max_iterations {
        shared.stop.store(true, Ordering::SeqCst);
    }
}

/// One worker thread's ASP/SSP loop: claim an iteration under the
/// progress lock (blocking at the SSP gate), run it against the shared
/// PS, then publish completion — stamping and emitting the compute
/// event *inside* the lock, so the merged `(t, tid)` order equals the
/// completion order and the oracle's spread bound holds at every event.
fn async_worker_loop<M: EmbeddingModel, D: Dataset<Batch = M::Batch>>(
    w: usize,
    worker: &mut Worker<M>,
    shared: &AsyncShared,
    ctx: &ThreadCtx<'_, D>,
    staleness: Option<u64>,
) {
    let max = ctx.config.max_iterations;
    loop {
        {
            let mut p = shared.progress.lock().unwrap();
            loop {
                if p.global >= max {
                    shared.cv.notify_all();
                    return;
                }
                if let Some(s) = staleness {
                    let min = p.iters.iter().copied().min().unwrap_or(0);
                    if p.iters[w] > min + s {
                        p = shared.cv.wait(p).unwrap();
                        continue;
                    }
                }
                break;
            }
            p.global += 1;
        }
        let cursor = (worker.iterations * ctx.n as u64 + w as u64) * ctx.config.batch_size as u64;
        let batch = ctx.dataset.train_batch(cursor, ctx.config.batch_size);
        let keys = batch.unique_keys();
        if ctx.tracing {
            het_trace::set_scope(shared.clock.stamp(), Some(w as u64));
        }
        let store = engine_read(worker, &keys, ctx);
        let c0 = shared.clock.elapsed_ns();
        let (loss, grads) = worker.model.forward_backward(&batch, &store);
        let compute_ns = shared.clock.elapsed_ns().saturating_sub(c0);
        worker.loss_sum += loss as f64;
        worker.loss_count += 1;
        engine_write(worker, &grads, ctx);
        if matches!(ctx.config.system.dense, DenseSync::Ps) {
            dense_ps_sync(worker, ctx.dense_store.expect("dense PS store"), &ctx.net);
        }
        {
            let mut p = shared.progress.lock().unwrap();
            if ctx.tracing {
                het_trace::set_scope(shared.clock.stamp(), Some(w as u64));
                het_trace::span!("trainer", "compute", compute_ns, "loss" => loss as f64);
            }
            p.iters[w] += 1;
            worker.iterations += 1;
            shared.cv.notify_all();
        }
    }
}

/// The sparse read, minus the sim-only prefetch/fault paths.
fn engine_read<M: EmbeddingModel, D: Dataset>(
    worker: &mut Worker<M>,
    keys: &[het_data::Key],
    ctx: &ThreadCtx<'_, D>,
) -> EmbeddingStore {
    let (store, t) = match &mut worker.sparse {
        SparseEngine::Direct(c) => c.read(keys, ctx.server, &ctx.net, &mut worker.comm, None),
        SparseEngine::Cached(c) => c.read(keys, ctx.server, &ctx.net, &mut worker.comm, None),
        SparseEngine::Replicated => {
            let mut store = EmbeddingStore::new(ctx.server.dim());
            for &k in keys {
                store.insert(k, ctx.server.pull(k).vector);
            }
            ctx.server.reclassify_pending_io();
            (store, het_simnet::SimDuration::ZERO)
        }
    };
    worker.breakdown.sparse_read += t;
    het_trace::span!("trainer", "read", t.as_nanos(), "keys" => keys.len());
    store
}

/// The sparse write for the direct and cached engines (replicated mode
/// gathers at the barrier instead).
fn engine_write<M: EmbeddingModel, D: Dataset>(
    worker: &mut Worker<M>,
    grads: &SparseGrads,
    ctx: &ThreadCtx<'_, D>,
) {
    let t = match &mut worker.sparse {
        SparseEngine::Direct(c) => c.write(grads, ctx.server, &ctx.net, &mut worker.comm, None),
        SparseEngine::Cached(c) => c.write(grads, ctx.server, &ctx.net, &mut worker.comm, None),
        SparseEngine::Replicated => unreachable!("replicated writes gather at the barrier"),
    };
    worker.breakdown.sparse_write += t;
    het_trace::span!("trainer", "write", t.as_nanos());
}

/// Dense PS push/pull, mirroring the sim's `dense_ps_sync` math (the
/// `DenseStore` is internally synchronised).
fn dense_ps_sync<M: EmbeddingModel>(worker: &mut Worker<M>, store: &DenseStore, net: &Collectives) {
    let mut grads = FlatGrads::new();
    grads.export_from(&mut worker.model);
    store.push(grads.as_slice());
    let (params, _version) = store.pull();
    FlatParams::from_vec(params).import_into(&mut worker.model);
    worker.model.zero_grads();
    let bytes = wire::dense_transfer_bytes(grads.len());
    worker.comm.record(CommCategory::DensePs, bytes);
    worker.comm.record(CommCategory::DensePs, bytes);
    let t = net.ps_transfer(bytes) * 2;
    worker.breakdown.dense_sync += t;
    het_trace::span!("trainer", "dense_sync", t.as_nanos(), "bytes" => bytes * 2);
}

/// Held-out evaluation from worker 0's point of view — the same view
/// the sim's `evaluate_now` builds: cached values where resident,
/// server values otherwise.
fn eval_worker0<M: EmbeddingModel, D: Dataset<Batch = M::Batch>>(
    worker: &Worker<M>,
    ctx: &ThreadCtx<'_, D>,
) -> f64 {
    let mut chunk = EvalChunk::default();
    let cache = match &worker.sparse {
        SparseEngine::Cached(c) => Some(c.cache()),
        _ => None,
    };
    for b in 0..ctx.config.eval_batches {
        let batch = ctx
            .dataset
            .test_batch((b * ctx.config.batch_size) as u64, ctx.config.batch_size);
        let keys = batch.unique_keys();
        let mut store = EmbeddingStore::new(ctx.config.dim);
        for &k in &keys {
            let v = cache
                .and_then(|c| c.peek(k).map(|e| e.vector.clone()))
                .unwrap_or_else(|| ctx.server.pull(k).vector);
            store.insert(k, v);
        }
        ctx.server.reclassify_pending_io();
        chunk.extend(worker.model.evaluate(&batch, &store));
    }
    chunk.metric(worker.model.metric_kind())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SystemPreset;
    use het_data::{CtrConfig, CtrDataset};
    use het_models::WideDeep;

    fn ctr_trainer(preset: SystemPreset) -> Trainer<WideDeep, CtrDataset> {
        let dataset = CtrDataset::new(CtrConfig::tiny(7));
        let config = TrainerConfig::tiny(preset);
        Trainer::new(config, dataset, |rng| WideDeep::new(rng, 4, 8, &[16]))
    }

    #[test]
    fn threaded_bsp_cached_matches_sim_bit_for_bit() {
        let mut sim = ctr_trainer(SystemPreset::HetCache { staleness: 10 });
        let sim_report = sim.run();
        let sim_dense = sim.export_dense_params();

        let mut thr = ctr_trainer(SystemPreset::HetCache { staleness: 10 });
        let report = thr.run_threaded(None).unwrap();

        assert_eq!(report.total_iterations, sim_report.total_iterations);
        assert_eq!(
            report.final_dense, sim_dense,
            "dense params must be bit-identical"
        );
        assert_eq!(report.final_metric, sim_report.final_metric);
        assert_eq!(report.curve.len(), sim_report.curve.len());
        for (a, b) in report.curve.iter().zip(&sim_report.curve) {
            assert_eq!(a.iteration, b.iteration);
            assert_eq!(
                a.metric, b.metric,
                "eval metric diverged at iter {}",
                a.iteration
            );
            assert_eq!(a.train_loss, b.train_loss);
        }
        assert_eq!(report.comm, sim_report.comm, "comm accounting diverged");
    }

    #[test]
    fn threaded_bsp_allgather_matches_sim() {
        let mut sim = ctr_trainer(SystemPreset::HetAr);
        let sim_report = sim.run();
        let sim_dense = sim.export_dense_params();
        let mut thr = ctr_trainer(SystemPreset::HetAr);
        let report = thr.run_threaded(None).unwrap();
        assert_eq!(report.final_dense, sim_dense);
        assert_eq!(report.final_metric, sim_report.final_metric);
    }

    #[test]
    fn threaded_asp_runs_every_iteration() {
        let mut thr = ctr_trainer(SystemPreset::HetPs);
        let report = thr.run_threaded(None).unwrap();
        assert_eq!(report.total_iterations, 200);
        assert!(report.final_metric.is_finite());
        let per_worker: u64 = (0..thr.n_workers()).map(|w| thr.worker_iterations(w)).sum();
        assert_eq!(per_worker, 200);
    }

    #[test]
    fn threaded_ssp_bounds_completed_spread() {
        let mut thr = ctr_trainer(SystemPreset::Ssp { staleness: 2 });
        let report = thr.run_threaded(None).unwrap();
        assert_eq!(report.total_iterations, 200);
        let iters: Vec<u64> = (0..thr.n_workers())
            .map(|w| thr.worker_iterations(w))
            .collect();
        let min = *iters.iter().min().unwrap();
        let max = *iters.iter().max().unwrap();
        assert!(max - min <= 3, "SSP spread {min}..{max} exceeds s + 1");
    }

    #[test]
    fn threaded_rejects_sim_only_features() {
        let dataset = CtrDataset::new(CtrConfig::tiny(7));
        let mut config = TrainerConfig::tiny(SystemPreset::HetCache { staleness: 10 });
        config.lookahead_depth = 2;
        let mut t = Trainer::new(config, dataset, |rng| WideDeep::new(rng, 4, 8, &[16]));
        assert!(t.run_threaded(None).unwrap_err().contains("lookahead"));
    }

    #[test]
    fn threaded_trace_merges_and_orders() {
        let mut thr = ctr_trainer(SystemPreset::HetCache { staleness: 10 });
        let report = thr
            .run_threaded(Some(vec![(
                "run".to_string(),
                Json::Str("threaded-test".to_string()),
            )]))
            .unwrap();
        let trace = report.trace.expect("trace requested");
        assert!(trace
            .meta
            .iter()
            .any(|(k, v)| k == het_trace::CLOCK_META_KEY && *v == Json::Str("wall".into())));
        // Every event is tid-tagged and the stream is (t, tid)-sorted.
        let mut last = (0u64, 0u64);
        for e in &trace.events {
            let tid = e.tid.expect("merged events carry a tid");
            assert!((e.t_ns, tid) >= last, "merge order violated");
            last = (e.t_ns, tid);
        }
        let computes = trace
            .events
            .iter()
            .filter(|e| e.comp == "trainer" && e.name == "compute")
            .count() as u64;
        assert_eq!(computes, report.total_iterations);
        het_trace::schema::validate_jsonl(&trace.to_jsonl()).expect("schema-valid");
    }
}
