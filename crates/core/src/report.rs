//! Experiment output: convergence curves, time breakdowns, and the
//! communication/cache statistics the paper's tables and figures report.

use crate::fault::{FaultRecord, FaultStats};
use crate::prefetch::PrefetchSummary;
use het_cache::CacheStats;
use het_json::{Json, ToJson};
use het_ps::StoreStats;
use het_simnet::{CommStats, SimDuration, SimTime};

/// One point on a convergence curve.
#[derive(Clone, Copy, Debug)]
pub struct ConvergencePoint {
    /// Simulated wall-clock time of the evaluation.
    pub sim_time: SimTime,
    /// Global iterations completed (summed over workers).
    pub iteration: u64,
    /// The workload metric (AUC or accuracy).
    pub metric: f64,
    /// Mean training loss since the previous evaluation.
    pub train_loss: f64,
}

impl ToJson for ConvergencePoint {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            (
                "sim_time".to_string(),
                Json::Num(self.sim_time.as_secs_f64()),
            ),
            ("iteration".to_string(), Json::UInt(self.iteration)),
            ("metric".to_string(), Json::Num(self.metric)),
            ("train_loss".to_string(), Json::Num(self.train_loss)),
        ])
    }
}

/// Where simulated time went, summed over workers (Fig. 2 / Fig. 7's
/// decomposition into transfer vs computation).
#[derive(Clone, Copy, Debug, Default)]
pub struct TimeBreakdown {
    /// Sparse read communication (fetches, clock checks).
    pub sparse_read: SimDuration,
    /// Model forward/backward compute.
    pub compute: SimDuration,
    /// Sparse write communication (pushes, evictions, AllGather).
    pub sparse_write: SimDuration,
    /// Dense synchronisation (AllReduce or dense PS).
    pub dense_sync: SimDuration,
}

impl ToJson for TimeBreakdown {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            (
                "sparse_read".to_string(),
                Json::Num(self.sparse_read.as_secs_f64()),
            ),
            ("compute".to_string(), Json::Num(self.compute.as_secs_f64())),
            (
                "sparse_write".to_string(),
                Json::Num(self.sparse_write.as_secs_f64()),
            ),
            (
                "dense_sync".to_string(),
                Json::Num(self.dense_sync.as_secs_f64()),
            ),
        ])
    }
}

impl TimeBreakdown {
    /// Total accounted time.
    pub fn total(&self) -> SimDuration {
        self.sparse_read + self.compute + self.sparse_write + self.dense_sync
    }

    /// All communication components.
    pub fn communication(&self) -> SimDuration {
        self.sparse_read + self.sparse_write + self.dense_sync
    }

    /// Fraction of accounted time spent communicating (the paper's
    /// Fig. 2 observation: up to 86 % for TF PS).
    pub fn communication_fraction(&self) -> f64 {
        let total = self.total().as_secs_f64();
        if total <= 0.0 {
            0.0
        } else {
            self.communication().as_secs_f64() / total
        }
    }
}

/// Tiered-store accounting for one run: the shard-summed row-store
/// counters plus the server-level split of modelled disk time into
/// client-visible and background pools.
#[derive(Clone, Debug, Default)]
pub struct StoreSummary {
    /// Shard-summed row-store counters.
    pub stats: StoreStats,
    /// Modelled disk nanoseconds charged into request/leg latency.
    pub client_io_ns: u64,
    /// Modelled disk nanoseconds from maintenance paths (checkpoints,
    /// migration, warmup, evaluation views).
    pub background_io_ns: u64,
    /// Rows resident in hot tiers at the end of the run.
    pub resident_rows: u64,
    /// Total rows stored (hot + cold) at the end of the run.
    pub total_rows: u64,
}

impl ToJson for StoreSummary {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("hot_hits".to_string(), Json::UInt(self.stats.hot_hits)),
            ("promotions".to_string(), Json::UInt(self.stats.promotions)),
            ("demotions".to_string(), Json::UInt(self.stats.demotions)),
            (
                "clean_drops".to_string(),
                Json::UInt(self.stats.clean_drops),
            ),
            (
                "cold_read_bytes".to_string(),
                Json::UInt(self.stats.cold_read_bytes),
            ),
            (
                "cold_write_bytes".to_string(),
                Json::UInt(self.stats.cold_write_bytes),
            ),
            (
                "compactions".to_string(),
                Json::UInt(self.stats.compactions),
            ),
            (
                "reclaimed_bytes".to_string(),
                Json::UInt(self.stats.reclaimed_bytes),
            ),
            (
                "hot_hit_rate".to_string(),
                Json::Num(self.stats.hot_hit_rate()),
            ),
            ("io_ns".to_string(), Json::UInt(self.stats.io_ns)),
            ("client_io_ns".to_string(), Json::UInt(self.client_io_ns)),
            (
                "background_io_ns".to_string(),
                Json::UInt(self.background_io_ns),
            ),
            ("resident_rows".to_string(), Json::UInt(self.resident_rows)),
            ("total_rows".to_string(), Json::UInt(self.total_rows)),
        ])
    }
}

/// The result of one training run.
#[derive(Clone, Debug)]
pub struct TrainReport {
    /// The system's display name.
    pub system: String,
    /// Convergence curve sampled every `eval_every` iterations.
    pub curve: Vec<ConvergencePoint>,
    /// Total simulated time (latest worker clock at termination).
    pub total_sim_time: SimTime,
    /// Total iterations summed over workers.
    pub total_iterations: u64,
    /// Training examples processed.
    pub examples_processed: u64,
    /// Epochs completed (examples / epoch size).
    pub epochs: f64,
    /// First simulated time at which the target metric was reached.
    pub converged_at: Option<SimTime>,
    /// Metric at the last evaluation.
    pub final_metric: f64,
    /// Per-category communication bytes/messages (merged over workers).
    pub comm: CommStats,
    /// Cache statistics (zeroed for cache-less systems).
    pub cache: CacheStats,
    /// Where simulated time went.
    pub breakdown: TimeBreakdown,
    /// The embedding keys resident in each worker's cache at the end of
    /// training, snapshotted *before* the final flush (empty for
    /// cache-less systems). This is the "stale path" set: predictions
    /// for these keys were served from cached values during training.
    pub resident_keys_per_worker: Vec<Vec<u64>>,
    /// Aggregate fault/recovery counters (all zero when injection was
    /// disabled or the schedule was empty).
    pub faults: FaultStats,
    /// Every fault and recovery event as it fired, in simulated-time
    /// order.
    pub fault_events: Vec<FaultRecord>,
    /// Lookahead-prefetch accounting; `None` when the run had no
    /// prefetcher (`lookahead_depth = 0`), which also keeps the
    /// serialized report byte-identical to the legacy path.
    pub prefetch: Option<PrefetchSummary>,
    /// Tiered-store accounting; `None` when the run used the flat
    /// in-memory store (the default), which keeps the serialized report
    /// byte-identical to the legacy path.
    pub store: Option<StoreSummary>,
}

impl ToJson for TrainReport {
    fn to_json(&self) -> Json {
        let mut fields = vec![
            ("system".to_string(), self.system.to_json()),
            ("curve".to_string(), self.curve.to_json()),
            (
                "total_sim_time".to_string(),
                Json::Num(self.total_sim_time.as_secs_f64()),
            ),
            (
                "total_iterations".to_string(),
                Json::UInt(self.total_iterations),
            ),
            (
                "examples_processed".to_string(),
                Json::UInt(self.examples_processed),
            ),
            ("epochs".to_string(), Json::Num(self.epochs)),
            ("final_metric".to_string(), Json::Num(self.final_metric)),
            ("comm".to_string(), self.comm.to_json()),
            ("breakdown".to_string(), self.breakdown.to_json()),
            ("faults".to_string(), self.faults.to_json()),
            ("fault_events".to_string(), self.fault_events.to_json()),
        ];
        // Emitted only for prefetch-enabled runs so a depth-0 report
        // stays byte-identical to one from a build without the
        // prefetcher at all.
        if let Some(p) = &self.prefetch {
            fields.push(("prefetch".to_string(), p.to_json()));
        }
        // Likewise absent for in-memory-store runs.
        if let Some(s) = &self.store {
            fields.push(("store".to_string(), s.to_json()));
        }
        Json::Obj(fields)
    }
}

impl TrainReport {
    /// Simulated seconds per epoch (∞ if less than one epoch ran).
    pub fn epoch_time(&self) -> f64 {
        if self.epochs > 0.0 {
            self.total_sim_time.as_secs_f64() / self.epochs
        } else {
            f64::INFINITY
        }
    }

    /// Throughput in examples per simulated second.
    pub fn throughput(&self) -> f64 {
        let t = self.total_sim_time.as_secs_f64();
        if t > 0.0 {
            self.examples_processed as f64 / t
        } else {
            0.0
        }
    }

    /// Time to the target metric in simulated seconds, if reached.
    pub fn convergence_time(&self) -> Option<f64> {
        self.converged_at.map(|t| t.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breakdown_fractions() {
        let b = TimeBreakdown {
            sparse_read: SimDuration::from_millis(60),
            compute: SimDuration::from_millis(20),
            sparse_write: SimDuration::from_millis(10),
            dense_sync: SimDuration::from_millis(10),
        };
        assert_eq!(b.total(), SimDuration::from_millis(100));
        assert_eq!(b.communication(), SimDuration::from_millis(80));
        assert!((b.communication_fraction() - 0.8).abs() < 1e-9);
        assert_eq!(TimeBreakdown::default().communication_fraction(), 0.0);
    }

    fn report() -> TrainReport {
        TrainReport {
            system: "test".into(),
            curve: vec![],
            total_sim_time: SimTime::from_nanos(2_000_000_000),
            total_iterations: 100,
            examples_processed: 1_000,
            epochs: 4.0,
            converged_at: Some(SimTime::from_nanos(1_000_000_000)),
            final_metric: 0.8,
            comm: CommStats::new(),
            cache: CacheStats::default(),
            breakdown: TimeBreakdown::default(),
            resident_keys_per_worker: Vec::new(),
            faults: FaultStats::default(),
            fault_events: Vec::new(),
            prefetch: None,
            store: None,
        }
    }

    #[test]
    fn derived_rates() {
        let r = report();
        assert!((r.epoch_time() - 0.5).abs() < 1e-9);
        assert!((r.throughput() - 500.0).abs() < 1e-6);
        assert_eq!(r.convergence_time(), Some(1.0));
    }

    #[test]
    fn zero_epoch_edge_cases() {
        let mut r = report();
        r.epochs = 0.0;
        assert!(r.epoch_time().is_infinite());
        r.total_sim_time = SimTime::ZERO;
        assert_eq!(r.throughput(), 0.0);
    }

    #[test]
    fn report_serialises_to_json() {
        let r = report();
        let json = het_json::to_string(&r);
        assert!(json.contains("\"system\":\"test\""));
    }
}
