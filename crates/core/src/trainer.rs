//! The discrete-event multi-worker trainer.
//!
//! Workers are simulated machines: every protocol step advances a
//! worker's clock by the simulated network/compute time while the
//! *training math runs for real* (models from `het-models`, parameters
//! on `het-ps`), so convergence curves are genuine learning curves
//! plotted against simulated time.
//!
//! Synchronous systems (the hybrids, HET AR) run in two-phase BSP
//! rounds: all workers read, then all compute and write, then the dense
//! AllReduce (and, for HET AR, the sparse AllGather) closes the round at
//! the barrier. Asynchronous systems (TF PS, HET PS) interleave worker
//! iterations; SSP additionally blocks workers that run more than `s`
//! iterations ahead of the slowest.
//!
//! Both shapes are [`Process`] implementations scheduled by the shared
//! [`ClusterRuntime`] event loop: a BSP trainer is a *barrier process*
//! (one event per round), an ASP/SSP trainer schedules one event per
//! worker iteration, and the SSP staleness gate is expressed as a
//! runtime wait condition ([`Ctx::wait_until`]). Crashes and PS-shard
//! outages are routed to the trainer by the runtime's centralized fault
//! delivery, so a co-scheduled job (e.g. a serving fleet on the same PS
//! fabric) shares one plan, one queue, and one clock domain.

pub mod parallel;

use crate::client::{DirectPsClient, HetClient};
use crate::config::{Backbone, DenseSync, SparseMode, SyncMode, TrainerConfig};
use crate::fault::{FaultContext, FaultRecord, FaultStats};
use crate::prefetch::{PrefetchAudit, PrefetchOrder, PrefetchPlane, Prefetcher};
use crate::report::{ConvergencePoint, TimeBreakdown, TrainReport};
use het_data::Key;
use het_models::{Dataset, EmbeddingModel, EmbeddingStore, EvalChunk, ModelBatch, SparseGrads};
use het_ps::{DenseStore, PsConfig, PsServer, ServerHandle, ShardCheckpointStore};
use het_rng::rngs::StdRng;
use het_rng::SeedableRng;
use het_runtime::{ClusterRuntime, Ctx, Event, Process, ProcessId};
use het_simnet::{
    wire, Collectives, CommCategory, CommStats, FaultPlan, SimDuration, SimTime, TieBreak,
};
use het_tensor::{FlatGrads, FlatParams, Sgd};
use std::sync::{Arc, Mutex};

/// Per-worker sparse path.
enum SparseEngine {
    Direct(DirectPsClient),
    Cached(HetClient),
    /// Full local replica (HET AR): reads are free, writes are gathered
    /// at the round barrier.
    Replicated,
}

struct Worker<M> {
    model: M,
    sparse: SparseEngine,
    clock: SimTime,
    iterations: u64,
    comm: CommStats,
    breakdown: TimeBreakdown,
    loss_sum: f64,
    loss_count: u64,
}

/// Timing of one iteration's components.
struct IterTiming {
    read: SimDuration,
    compute: SimDuration,
    write: SimDuration,
}

impl IterTiming {
    /// The iteration's critical-path span under a backbone (§4.1:
    /// overlapping communication with computation).
    fn span(&self, backbone: &Backbone) -> SimDuration {
        if backbone.overlap {
            self.compute.max(self.read + self.write)
        } else {
            self.read + self.compute + self.write
        }
    }
}

/// The training simulation for one (system, model, dataset) triple.
pub struct Trainer<M: EmbeddingModel, D: Dataset<Batch = M::Batch>> {
    config: TrainerConfig,
    dataset: D,
    server: ServerHandle,
    dense_store: Option<DenseStore>,
    workers: Vec<Worker<M>>,
    net: Collectives,
    sgd: Sgd,
    global_iterations: u64,
    curve: Vec<ConvergencePoint>,
    converged_at: Option<SimTime>,
    // --- fault injection (all inert when `plan` is empty) ---
    // Crash and outage *schedules* live in the runtime's centralized
    // fault delivery; the trainer keeps the plan only for the effects the
    // runtime does not cursor (stragglers, degraded links, drops).
    plan: FaultPlan,
    ckpt_store: Option<ShardCheckpointStore>,
    fault_stats: FaultStats,
    fault_events: Vec<FaultRecord>,
    /// Per-worker monotone operation counters feeding the deterministic
    /// message-drop hash.
    worker_ops: Vec<u64>,
    last_checkpoint_iter: u64,
    /// Lookahead-prefetch state shared with the [`Prefetcher`] process;
    /// `None` unless `lookahead_depth > 0` under a cached sparse mode.
    plane: Option<Arc<Mutex<PrefetchPlane>>>,
    /// The co-registered prefetcher's process id. Planning is inert
    /// until this is set — a run without a prefetcher process (e.g. a
    /// co-scheduled runtime that never registered one) stays on the
    /// legacy path even when a depth is configured.
    prefetcher_pid: Option<ProcessId>,
}

impl<M: EmbeddingModel, D: Dataset<Batch = M::Batch>> Trainer<M, D> {
    /// Builds the simulation. `model_factory` constructs one replica from
    /// an RNG; it is called once per worker with identically seeded RNGs,
    /// so all replicas start equal (data-parallel requirement, §2.1).
    pub fn new(
        config: TrainerConfig,
        dataset: D,
        model_factory: impl Fn(&mut StdRng) -> M,
    ) -> Self {
        Self::with_shared_members(config, dataset, model_factory, 0)
    }

    /// Like [`Trainer::new`], but generates the fault plan over
    /// `config.cluster.n_workers + extra_members` cluster members, so a
    /// job co-scheduled after this trainer on the same [`ClusterRuntime`]
    /// (which then owns members `n_workers..n_workers + extra_members`)
    /// draws its crash schedule from the same plan.
    pub fn with_shared_members(
        config: TrainerConfig,
        dataset: D,
        model_factory: impl Fn(&mut StdRng) -> M,
        extra_members: usize,
    ) -> Self {
        Self::with_shared_members_and_spares(config, dataset, model_factory, extra_members, 0)
    }

    /// Like [`Trainer::with_shared_members`], but reserves
    /// `spare_shards` extra physical PS shards as live-split targets
    /// (see [`het_ps::PsServer::with_spare_shards`]). The fault plan
    /// still addresses only the base shards — spares receive traffic
    /// solely through supervised resharding.
    pub fn with_shared_members_and_spares(
        config: TrainerConfig,
        dataset: D,
        model_factory: impl Fn(&mut StdRng) -> M,
        extra_members: usize,
        spare_shards: usize,
    ) -> Self {
        let net = config.cluster.collectives();
        let n_shards = config.cluster.n_servers.max(1) * 4;
        let ps_config = PsConfig {
            dim: config.dim,
            n_shards,
            lr: config.lr,
            seed: config.seed ^ 0x5EED_5EED,
            optimizer: het_ps::ServerOptimizer::Sgd,
            grad_clip: config.server_grad_clip,
        };
        let server =
            ServerHandle::new(PsServer::with_store(ps_config, spare_shards, &config.store));

        let plan = config.faults.plan(
            config.seed,
            config.cluster.n_workers + extra_members,
            n_shards,
        );
        let mut fault_stats = FaultStats::default();
        // Failover restores from the last checkpoint, so a baseline
        // snapshot of the (deterministically initialised) table is taken
        // before training starts. Sized over the *physical* shard count
        // so shards populated by a live split stay restorable.
        let ckpt_store = (!plan.is_empty()).then(|| {
            let mut store = ShardCheckpointStore::new(server.n_shards(), config.dim);
            store.checkpoint_all(&server).expect("in-memory checkpoint");
            fault_stats.checkpoints += 1;
            if het_trace::enabled() {
                het_trace::set_scope(0, None);
                het_trace::event!("ps", "checkpoint", "iteration" => 0u64);
            }
            store
        });

        let n_keys = dataset.n_keys();
        let costs = wire::MessageCosts {
            fused: config.system.backbone.fuse_messages,
        };
        let mut workers = Vec::with_capacity(config.cluster.n_workers);
        for _ in 0..config.cluster.n_workers {
            let mut rng = StdRng::seed_from_u64(config.seed ^ 0x0DE1_CAFE);
            let model = model_factory(&mut rng);
            let sparse = match config.system.sparse {
                SparseMode::PsDirect => {
                    SparseEngine::Direct(DirectPsClient::with_costs(config.dim, costs))
                }
                SparseMode::AllGather => SparseEngine::Replicated,
                SparseMode::Cached {
                    staleness,
                    capacity_fraction,
                    policy,
                } => {
                    let capacity = ((n_keys as f64 * capacity_fraction).ceil() as usize).max(1);
                    let mut client = HetClient::with_costs(
                        capacity, staleness, policy, config.dim, config.lr, costs,
                    );
                    if config.sabotage_extra_staleness > 0 {
                        client.set_extra_staleness(config.sabotage_extra_staleness);
                    }
                    // Lookahead runs push dirty evictions through the
                    // plane's transmit channel (write-behind); depth 0
                    // keeps the legacy synchronous push.
                    if config.lookahead_depth > 0 {
                        client.set_write_behind(true);
                    }
                    SparseEngine::Cached(client)
                }
            };
            workers.push(Worker {
                model,
                sparse,
                clock: SimTime::ZERO,
                iterations: 0,
                comm: CommStats::new(),
                breakdown: TimeBreakdown::default(),
                loss_sum: 0.0,
                loss_count: 0,
            });
        }

        let dense_store = if config.system.dense == DenseSync::Ps {
            let mut flat = FlatParams::new();
            flat.export_from(&mut workers[0].model);
            Some(DenseStore::new(flat.into_vec(), config.lr))
        } else {
            None
        };

        let sgd = Sgd::new(config.lr);
        let worker_ops = vec![0u64; config.cluster.n_workers];
        let plane = (config.lookahead_depth > 0
            && matches!(config.system.sparse, SparseMode::Cached { .. }))
        .then(|| {
            Arc::new(Mutex::new(PrefetchPlane::new(
                config.cluster.n_workers,
                config.lookahead_depth,
            )))
        });
        Trainer {
            config,
            dataset,
            server,
            dense_store,
            workers,
            net,
            sgd,
            global_iterations: 0,
            curve: Vec::new(),
            converged_at: None,
            plan,
            ckpt_store,
            fault_stats,
            fault_events: Vec::new(),
            worker_ops,
            last_checkpoint_iter: 0,
            plane,
            prefetcher_pid: None,
        }
    }

    /// The trainer's configuration.
    pub fn config(&self) -> &TrainerConfig {
        &self.config
    }

    /// The global embedding server (for test oracles and benches).
    pub fn server(&self) -> &PsServer {
        &self.server
    }

    /// A clone of the shared PS-fabric handle, for co-scheduling another
    /// job (e.g. a serving fleet) against the same table.
    pub fn server_handle(&self) -> ServerHandle {
        self.server.clone()
    }

    /// The cluster's fault plan. The trainer's workers are cluster
    /// members `0..n_workers`; any extra members requested at
    /// construction follow.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Replaces the fault plan with a scripted (or file-loaded) one.
    /// Must be called before the run starts; the caller is responsible
    /// for handing the same plan to the shared [`ClusterRuntime`].
    /// Event member indices follow the construction-time layout
    /// (workers `0..n_workers`, then any extra members).
    pub fn override_plan(&mut self, plan: FaultPlan) {
        self.plan = plan;
    }

    /// The same-time ordering rule the trainer's runtime must use.
    pub fn tie_break(&self) -> TieBreak {
        self.config.tie_break
    }

    /// A worker's HET client, if the system is cached.
    pub fn worker_client(&self, worker: usize) -> Option<&HetClient> {
        match &self.workers[worker].sparse {
            SparseEngine::Cached(c) => Some(c),
            _ => None,
        }
    }

    /// A worker's model replica.
    pub fn worker_model(&self, worker: usize) -> &M {
        &self.workers[worker].model
    }

    /// The dataset under training.
    pub fn dataset(&self) -> &D {
        &self.dataset
    }

    /// Number of workers.
    pub fn n_workers(&self) -> usize {
        self.workers.len()
    }

    /// The data cursor of worker `w`'s iteration `t`: workers stride the
    /// global example sequence so shards are disjoint.
    fn data_cursor(&self, worker: usize, iteration: u64) -> u64 {
        (iteration * self.workers.len() as u64 + worker as u64) * self.config.batch_size as u64
    }

    /// Public view of the data cursor, so lookahead tests can recompute
    /// exactly which batch a worker reads at a given iteration.
    pub fn data_cursor_of(&self, worker: usize, iteration: u64) -> u64 {
        self.data_cursor(worker, iteration)
    }

    /// Iterations completed by one worker.
    pub fn worker_iterations(&self, worker: usize) -> u64 {
        self.workers[worker].iterations
    }

    /// Builds the lookahead [`Prefetcher`] process for this trainer, or
    /// `None` when prefetching is off (`lookahead_depth == 0` or a
    /// cache-less sparse mode). [`Trainer::run`] wires it up itself;
    /// co-scheduled setups register it on their shared runtime and hand
    /// the pid back via [`Trainer::set_prefetcher_pid`].
    pub fn make_prefetcher(&self) -> Option<Prefetcher> {
        self.plane.as_ref().map(|plane| {
            Prefetcher::new(
                Arc::clone(plane),
                self.server.clone(),
                self.net,
                wire::MessageCosts {
                    fused: self.config.system.backbone.fuse_messages,
                },
                self.config.dim,
                self.plan.clone(),
            )
        })
    }

    /// Registers the prefetcher's process id; lookahead planning stays
    /// inert until this is called.
    pub fn set_prefetcher_pid(&mut self, pid: ProcessId) {
        self.prefetcher_pid = Some(pid);
    }

    /// Turns on plan auditing: every plan decision (the target batch's
    /// full key set and how it was partitioned into issued / resident /
    /// in-flight) is recorded for [`Trainer::prefetch_audit`]. Test
    /// harness hook — costs memory proportional to the run length.
    pub fn enable_prefetch_audit(&mut self) {
        if let Some(plane) = &self.plane {
            plane.lock().unwrap().enable_audit();
        }
    }

    /// The recorded plan audit (see [`Trainer::enable_prefetch_audit`]).
    pub fn prefetch_audit(&self) -> Option<Vec<PrefetchAudit>> {
        self.plane
            .as_ref()
            .and_then(|p| p.lock().unwrap().audit_clone())
    }

    /// Plans lookahead pulls for worker `w` after it finished an
    /// iteration: targets `next_read..next_read + depth` that are not
    /// yet planned, deduplicating each batch's key set against resident
    /// and in-flight keys, then wakes the prefetcher at `issue_at` (the
    /// start of the *current* iteration's compute span, so transfers
    /// overlap compute). Exactness comes from the deterministic data
    /// cursor: the planned key sets are the ones the worker will read.
    fn plan_prefetch(&self, w: usize, issue_at: SimTime, ctx: &mut Ctx<'_>) {
        let Some(pf_pid) = self.prefetcher_pid else {
            return;
        };
        let Some(plane_rc) = &self.plane else {
            return;
        };
        let SparseEngine::Cached(client) = &self.workers[w].sparse else {
            return;
        };
        let mut plane = plane_rc.lock().unwrap();
        let next_read = self.workers[w].iterations;
        let from = plane.planned_until(w).max(next_read);
        let to = next_read + plane.depth();
        let mut queued = false;
        for target in from..to {
            let cursor = self.data_cursor(w, target);
            let batch = self.dataset.train_batch(cursor, self.config.batch_size);
            let keys = batch.unique_keys();
            let mut issued = Vec::new();
            let mut skipped_resident = Vec::new();
            let mut skipped_inflight = Vec::new();
            for &k in &keys {
                if client.cache().find(k) {
                    skipped_resident.push(k);
                } else if plane.is_inflight(w, k) {
                    skipped_inflight.push(k);
                } else {
                    issued.push(k);
                }
            }
            if plane.audit_enabled() {
                plane.record_audit(PrefetchAudit {
                    worker: w,
                    target_iteration: target,
                    planned: keys,
                    issued: issued.clone(),
                    skipped_resident,
                    skipped_inflight,
                });
            }
            if !issued.is_empty() {
                plane.push_order(PrefetchOrder {
                    worker: w,
                    target_iteration: target,
                    keys: issued,
                });
                queued = true;
            }
        }
        plane.set_planned_until(w, to);
        if queued {
            // Scheduled at the current dispatch's timestamp: the
            // runtime delivers it after this dispatch completes, so the
            // prefetcher observes post-iteration server state while its
            // transfer window still spans the compute phase.
            ctx.schedule_for(pf_pid, issue_at, Event::Wake(w as u64));
        }
    }

    /// Drops every queued or in-flight prefetch at trainer shutdown so
    /// residual prefetcher wake-ups find empty queues and stay silent.
    fn stop_prefetch(&self) {
        if let Some(plane) = &self.plane {
            plane.lock().unwrap().cancel_all();
        }
    }

    /// Fires due fault-plan events at simulated time `now`: periodic
    /// checkpoints (on the global iteration counter) and PS-shard
    /// failovers, which roll the shard back to its last checkpoint and
    /// account every lost clock tick. Outages are drained from the
    /// runtime's cluster-global cursor, so a co-scheduled job never
    /// replays a failover this trainer already performed.
    fn process_fault_events(&mut self, now: SimTime, ctx: &mut Ctx<'_>) {
        let Some(store) = &mut self.ckpt_store else {
            return;
        };
        let every = self.config.faults.checkpoint_every;
        if every > 0 && self.global_iterations >= self.last_checkpoint_iter + every {
            self.last_checkpoint_iter = self.global_iterations;
            store
                .checkpoint_all(&self.server)
                .expect("in-memory checkpoint");
            self.fault_stats.checkpoints += 1;
            if het_trace::enabled() {
                het_trace::set_scope(now.as_nanos(), None);
                het_trace::event!("ps", "checkpoint", "iteration" => self.global_iterations);
            }
        }
        while let Some((shard, at, failover)) = ctx.take_due_outage(now) {
            let outcome = store
                .fail_and_restore(&self.server, shard)
                .expect("in-memory checkpoint");
            self.fault_stats.shard_failovers += 1;
            self.fault_stats.rows_restored += outcome.rows_restored as u64;
            self.fault_stats.keys_lost += outcome.keys_lost as u64;
            self.fault_stats.lost_updates += outcome.lost_updates;
            if het_trace::enabled() {
                het_trace::set_scope(at.as_nanos(), None);
                het_trace::event!("ps", "failover",
                    "shard" => shard,
                    "rows_restored" => outcome.rows_restored,
                    "keys_lost" => outcome.keys_lost,
                    "lost_updates" => outcome.lost_updates,
                    "failover_ns" => failover.as_nanos());
            }
            self.fault_events.push(FaultRecord {
                at,
                description: format!(
                    "ps shard {shard} failed; restored {} rows from checkpoint \
                     ({} keys lost, {} update ticks rolled back, failover {})",
                    outcome.rows_restored, outcome.keys_lost, outcome.lost_updates, failover
                ),
            });
        }
    }

    /// If worker `w`'s next scheduled crash (routed by the runtime's
    /// fault delivery) is due at `now`, kills and restarts it: the whole
    /// cache (including dirty, never-pushed updates) is lost, the dense
    /// replica is re-pulled from the dense PS where one exists, and the
    /// worker pays the restart delay.
    fn maybe_crash(&mut self, w: usize, now: SimTime, ctx: &mut Ctx<'_>) -> SimDuration {
        let Some((at, restart)) = ctx.take_crash(w, now) else {
            return SimDuration::ZERO;
        };
        let Trainer {
            workers,
            dense_store,
            fault_stats,
            fault_events,
            plane,
            ..
        } = self;
        let worker = &mut workers[w];
        // Scope the trace to the crashing worker *before* clearing its
        // cache so the crash_drops counters attribute to it, not to
        // whatever scope the previous event left behind.
        if het_trace::enabled() {
            het_trace::set_scope(at.as_nanos(), Some(w as u64));
        }
        // A crash invalidates everything the prefetcher queued or has in
        // flight for this worker: the cache those pulls would install
        // into is about to be wiped, and the planning cursor restarts
        // from the worker's post-restart iteration.
        let mut prefetch_dropped = 0u64;
        if let Some(p) = plane {
            prefetch_dropped = p.lock().unwrap().cancel_worker(w);
        }
        let waste_before = match &worker.sparse {
            SparseEngine::Cached(c) => c.cache().stats().prefetch_wasted,
            _ => 0,
        };
        let (entries, dirty, ticks) = match &mut worker.sparse {
            SparseEngine::Cached(c) => c.crash_reset(),
            _ => (0, 0, 0),
        };
        if let Some(store) = dense_store {
            let (params, _version) = store.pull();
            FlatParams::from_vec(params).import_into(&mut worker.model);
            worker.model.zero_grads();
        }
        fault_stats.worker_crashes += 1;
        fault_stats.dirty_entries_lost += dirty;
        fault_stats.pending_updates_lost += ticks;
        if het_trace::enabled() {
            het_trace::event!("trainer", "worker_crash",
                "entries_lost" => entries,
                "dirty_lost" => dirty,
                "ticks_lost" => ticks,
                "restart_ns" => restart.as_nanos());
            if prefetch_dropped > 0 {
                het_trace::event!("prefetcher", "prefetch_cancel",
                    "keys" => prefetch_dropped,
                    "reason" => "worker_crash");
                het_trace::counter_add("prefetcher", "cancelled_keys", prefetch_dropped);
            }
            let wasted = match &worker.sparse {
                SparseEngine::Cached(c) => c.cache().stats().prefetch_wasted - waste_before,
                _ => 0,
            };
            if wasted > 0 {
                het_trace::event!("prefetcher", "prefetch_waste", "n" => wasted);
            }
        }
        fault_events.push(FaultRecord {
            at,
            description: format!(
                "worker {w} crashed; {entries} cached entries lost \
                 ({dirty} dirty, {ticks} pending update ticks), restart {restart}"
            ),
        });
        restart
    }

    /// Phase 1 of an iteration: acquire embeddings.
    fn do_read(&mut self, w: usize, keys: &[Key]) -> (EmbeddingStore, SimDuration) {
        let retry = self.config.faults.retry_policy();
        // Split borrows: the engine needs &mut, the server &.
        let Trainer {
            server,
            net,
            workers,
            plan,
            fault_stats,
            worker_ops,
            plane,
            ..
        } = self;
        let worker = &mut workers[w];
        let now = worker.clock;
        if het_trace::enabled() {
            het_trace::set_scope(now.as_nanos(), Some(w as u64));
        }
        // Land every due prefetch first, waiting out (and charging) any
        // in-flight pull this batch needs — the unhidden remainder of
        // the transfer is the only part the read ever pays.
        let mut prefetch_wait = SimDuration::ZERO;
        if let Some(plane_rc) = plane {
            if let SparseEngine::Cached(c) = &mut worker.sparse {
                let (landed, stall) = plane_rc.lock().unwrap().take_for_read(w, now, keys);
                prefetch_wait = stall;
                let mut installed = 0u64;
                let mut superseded = 0u64;
                for r in landed {
                    if c.install_prefetch_result(r.key, r.vector, r.clock, server) {
                        installed += 1;
                    } else {
                        superseded += 1;
                    }
                }
                // Installs can displace dirty rows back to the server;
                // that write-back's disk time stalls this read.
                prefetch_wait += SimDuration::from_nanos(server.take_io_ns());
                let mut plane = plane_rc.lock().unwrap();
                plane.note_install(installed, stall);
                plane.note_cancelled(superseded);
                if het_trace::enabled() && (installed > 0 || stall > SimDuration::ZERO) {
                    het_trace::event!("prefetcher", "prefetch_install",
                        "installed" => installed,
                        "waited_ns" => stall.as_nanos());
                }
            }
        }
        let mut ctx = (!plan.is_empty()).then(|| FaultContext {
            plan,
            now,
            worker: w,
            retry,
            ops: &mut worker_ops[w],
            stats: fault_stats,
        });
        let (store, t_read) = match &mut worker.sparse {
            SparseEngine::Direct(c) => c.read(keys, server, net, &mut worker.comm, ctx.as_mut()),
            SparseEngine::Cached(c) => c.read(keys, server, net, &mut worker.comm, ctx.as_mut()),
            SparseEngine::Replicated => {
                let mut store = EmbeddingStore::new(server.dim());
                for &k in keys {
                    store.insert(k, server.pull(k).vector);
                }
                // Replica reads stand for local table lookups, not a
                // priced PS leg — keep their disk time out of request
                // latency.
                server.reclassify_pending_io();
                (store, SimDuration::ZERO)
            }
        };
        let t_read = prefetch_wait + t_read;
        het_trace::span!("trainer", "read", t_read.as_nanos(), "keys" => keys.len());
        (store, t_read)
    }

    /// Phase 2 of an iteration: compute + sparse write. Returns the
    /// timing and, for replicated mode, the gradients to gather at the
    /// barrier.
    fn do_compute_write(
        &mut self,
        w: usize,
        batch: &M::Batch,
        store: &EmbeddingStore,
        read_time: SimDuration,
    ) -> (IterTiming, Option<SparseGrads>) {
        let compute_factor = self.config.system.backbone.compute_factor;
        let flops = {
            let worker = &self.workers[w];
            worker.model.flops_per_batch(batch.n_examples())
        };
        let mut compute = self.config.cluster.compute_time(flops * compute_factor);
        if !self.plan.is_empty() {
            // Straggler windows slow this worker's compute, not the math.
            let sf = self.plan.straggler_factor(w, self.workers[w].clock);
            if sf != 1.0 {
                compute = compute * sf;
                self.fault_stats.straggler_slow_iters += 1;
                if het_trace::enabled() {
                    het_trace::set_scope(self.workers[w].clock.as_nanos(), Some(w as u64));
                    het_trace::event!("trainer", "straggler_slow", "factor" => sf);
                }
            }
        }
        let retry = self.config.faults.retry_policy();

        let Trainer {
            server,
            net,
            workers,
            plan,
            fault_stats,
            worker_ops,
            plane,
            ..
        } = self;
        let worker = &mut workers[w];
        let (loss, grads) = worker.model.forward_backward(batch, store);
        worker.loss_sum += loss as f64;
        worker.loss_count += 1;

        let now = worker.clock;
        if het_trace::enabled() {
            het_trace::set_scope(now.as_nanos(), Some(w as u64));
        }
        let mut ctx = (!plan.is_empty()).then(|| FaultContext {
            plan,
            now,
            worker: w,
            retry,
            ops: &mut worker_ops[w],
            stats: fault_stats,
        });
        let (write, gathered) = match &mut worker.sparse {
            SparseEngine::Direct(c) => (
                c.write(&grads, server, net, &mut worker.comm, ctx.as_mut()),
                None,
            ),
            SparseEngine::Cached(c) => (
                c.write(&grads, server, net, &mut worker.comm, ctx.as_mut()),
                None,
            ),
            SparseEngine::Replicated => (SimDuration::ZERO, Some(grads)),
        };

        // Write-behind: the dirty evictions already reached the server
        // inside `write`, but their wire time was deferred — drain it
        // onto the plane's transmit channel, where it streams out
        // concurrently with later spans (and is paid in full at the
        // shutdown drain if the run ends first).
        if let Some(plane_rc) = plane {
            if let SparseEngine::Cached(c) = &mut worker.sparse {
                let bg = c.take_deferred_push();
                if bg > SimDuration::ZERO {
                    let issue_at = now + read_time + compute;
                    let (start, _) = plane_rc.lock().unwrap().tx_transfer(w, issue_at, bg);
                    if het_trace::enabled() {
                        het_trace::set_scope(start.as_nanos(), Some(w as u64));
                        het_trace::span!("prefetcher", "writeback_bg", bg.as_nanos());
                        het_trace::set_scope(now.as_nanos(), Some(w as u64));
                    }
                }
            }
        }

        worker.iterations += 1;
        worker.breakdown.sparse_read += read_time;
        worker.breakdown.compute += compute;
        worker.breakdown.sparse_write += write;
        het_trace::span!("trainer", "compute", compute.as_nanos(), "loss" => loss as f64);
        het_trace::span!("trainer", "write", write.as_nanos());
        (
            IterTiming {
                read: read_time,
                compute,
                write,
            },
            gathered,
        )
    }

    /// ASP dense path: push gradients to the dense store, pull fresh
    /// parameters. Returns the time spent.
    fn dense_ps_sync(&mut self, w: usize) -> SimDuration {
        let Trainer {
            dense_store,
            workers,
            net,
            ..
        } = self;
        let Some(store) = dense_store else {
            return SimDuration::ZERO;
        };
        let worker = &mut workers[w];
        if het_trace::enabled() {
            het_trace::set_scope(worker.clock.as_nanos(), Some(w as u64));
        }
        let mut grads = FlatGrads::new();
        grads.export_from(&mut worker.model);
        store.push(grads.as_slice());
        let (params, _version) = store.pull();
        FlatParams::from_vec(params).import_into(&mut worker.model);
        worker.model.zero_grads();

        let bytes = wire::dense_transfer_bytes(grads.len());
        worker.comm.record(CommCategory::DensePs, bytes);
        worker.comm.record(CommCategory::DensePs, bytes);
        let t = net.ps_transfer(bytes) * 2;
        worker.breakdown.dense_sync += t;
        het_trace::span!("trainer", "dense_sync", t.as_nanos(), "bytes" => bytes * 2);
        t
    }

    /// BSP dense path: average gradients across workers, step each
    /// replica. Returns the AllReduce time (zero for one worker).
    fn dense_allreduce(&mut self) -> SimDuration {
        let mut sum = FlatGrads::new();
        let mut per_worker = Vec::with_capacity(self.workers.len());
        for worker in &mut self.workers {
            let mut g = FlatGrads::new();
            g.export_from(&mut worker.model);
            sum.accumulate(&g);
            per_worker.push(g);
        }
        let n = self.workers.len() as f32;
        sum.scale(1.0 / n);
        let bytes = (sum.len() * wire::F32_BYTES as usize) as u64;
        let t = self.net.ring_allreduce(bytes);
        let per_worker_bytes = self.net.ring_allreduce_bytes_per_worker(bytes);
        let sgd = self.sgd;
        for (i, worker) in self.workers.iter_mut().enumerate() {
            if het_trace::enabled() {
                het_trace::set_scope(worker.clock.as_nanos(), Some(i as u64));
            }
            sum.import_into(&mut worker.model);
            sgd.step(&mut worker.model);
            if per_worker_bytes > 0 {
                worker
                    .comm
                    .record(CommCategory::DenseAllReduce, per_worker_bytes);
            }
            worker.breakdown.dense_sync += t;
        }
        t
    }

    /// HET AR sparse path at the barrier: AllGather every worker's
    /// gradient block, apply the merged update once to the shared table.
    fn sparse_allgather(&mut self, gathered: Vec<SparseGrads>) -> SimDuration {
        let dim = self.config.dim;
        let net = self.net;
        let mut merged = SparseGrads::new(dim);
        let mut max_block = 0u64;
        for (i, (grads, worker)) in gathered.iter().zip(&mut self.workers).enumerate() {
            if het_trace::enabled() {
                het_trace::set_scope(worker.clock.as_nanos(), Some(i as u64));
            }
            let block = wire::sparse_allgather_block_bytes(grads.len(), dim);
            max_block = max_block.max(block);
            let bytes = net.allgather_bytes_per_worker(block);
            if bytes > 0 {
                worker.comm.record(CommCategory::SparseAllGather, bytes);
            }
            merged.merge(grads);
        }
        for k in merged.sorted_keys() {
            self.server.push_inc(k, merged.get(k).expect("merged key"));
        }
        // The merged apply is the gathered update landing in every
        // replica; its disk time rides the barrier it happens behind.
        let t = net.allgather(max_block) + SimDuration::from_nanos(self.server.take_io_ns());
        for worker in &mut self.workers {
            worker.breakdown.sparse_write += t;
        }
        t
    }

    /// Evaluates the current model against the held-out split from
    /// worker 0's point of view: its dense replica, and its *cache view*
    /// of the embeddings where resident (read-my-updates — pending
    /// stale writes are visible, exactly as they are to the training
    /// computation), falling back to the server for everything else.
    pub fn evaluate_now(&mut self) -> f64 {
        let mut chunk = EvalChunk::default();
        for b in 0..self.config.eval_batches {
            let batch = self
                .dataset
                .test_batch((b * self.config.batch_size) as u64, self.config.batch_size);
            let keys = batch.unique_keys();
            let store = self.resolve_eval_view(&keys);
            chunk.extend(self.workers[0].model.evaluate(&batch, &store));
        }
        chunk.metric(self.workers[0].model.metric_kind())
    }

    /// Worker 0's view of a key set: cached local values where resident
    /// (without touching eviction bookkeeping), server values otherwise.
    fn resolve_eval_view(&self, keys: &[Key]) -> EmbeddingStore {
        let mut store = EmbeddingStore::new(self.config.dim);
        let cache = match &self.workers[0].sparse {
            SparseEngine::Cached(c) => Some(c.cache()),
            _ => None,
        };
        for &k in keys {
            let v = cache
                .and_then(|c| c.peek(k).map(|e| e.vector.clone()))
                .unwrap_or_else(|| self.server.pull(k).vector);
            store.insert(k, v);
        }
        // Evaluation is outside the simulated clocks entirely.
        self.server.reclassify_pending_io();
        store
    }

    fn record_eval(&mut self, sim_time: SimTime) -> bool {
        let metric = self.evaluate_now();
        let loss_sum: f64 = self.workers.iter().map(|w| w.loss_sum).sum();
        let loss_count: u64 = self.workers.iter().map(|w| w.loss_count).sum();
        let train_loss = if loss_count > 0 {
            loss_sum / loss_count as f64
        } else {
            0.0
        };
        for w in &mut self.workers {
            w.loss_sum = 0.0;
            w.loss_count = 0;
        }
        if het_trace::enabled() {
            het_trace::set_scope(sim_time.as_nanos(), None);
            het_trace::event!("trainer", "eval",
                "iteration" => self.global_iterations,
                "metric" => metric,
                "train_loss" => train_loss);
        }
        self.curve.push(ConvergencePoint {
            sim_time,
            iteration: self.global_iterations,
            metric,
            train_loss,
        });
        if let Some(target) = self.config.target_metric {
            if metric >= target && self.converged_at.is_none() {
                self.converged_at = Some(sim_time);
                return true;
            }
        }
        false
    }

    /// Runs the full simulation on a private [`ClusterRuntime`] and
    /// returns the report. Co-scheduled setups (training + serving on
    /// one cluster) build the runtime themselves, register every job,
    /// call [`Trainer::prime`], run, then [`Trainer::finalize`].
    pub fn run(&mut self) -> TrainReport {
        let mut rt = ClusterRuntime::new(self.config.tie_break, self.plan.clone());
        let pid = rt.register(self.workers.len());
        // The prefetcher is a separate process with no fault-domain
        // members of its own: worker crashes and shard outages route to
        // the trainer, which cancels the affected plane state.
        let prefetcher = self.make_prefetcher();
        self.prime(&mut rt, pid);
        match prefetcher {
            Some(mut pf) => {
                let pf_pid = rt.register(0);
                self.set_prefetcher_pid(pf_pid);
                let this: &mut dyn Process = self;
                rt.run(&mut [this, &mut pf]);
            }
            None => {
                let this: &mut dyn Process = self;
                rt.run(&mut [this]);
            }
        }
        self.finalize()
    }

    /// Schedules this trainer's initial events on `rt`: one round event
    /// for BSP, one event per worker for ASP/SSP.
    pub fn prime(&self, rt: &mut ClusterRuntime, pid: ProcessId) {
        match self.config.system.sync {
            SyncMode::Bsp => rt.prime(pid, SimTime::ZERO, Event::Wake(0)),
            SyncMode::Asp | SyncMode::Ssp { .. } => {
                for w in 0..self.workers.len() {
                    rt.prime(pid, SimTime::ZERO, Event::Wake(w as u64));
                }
            }
        }
    }

    /// One BSP round, dispatched as a single barrier-process event: all
    /// workers read, all compute and write, then the collectives close
    /// the round and the next round is scheduled at the barrier's exit.
    fn on_round(&mut self, ctx: &mut Ctx<'_>) {
        if self.global_iterations >= self.config.max_iterations {
            self.stop_prefetch();
            ctx.stop();
            return;
        }
        let n = self.workers.len();
        let round_start = self.workers[0].clock;
        let mut restart_penalty = SimDuration::ZERO;
        if !self.plan.is_empty() {
            self.process_fault_events(round_start, ctx);
            // A crashed worker restarts within the round; under BSP
            // the barrier makes everyone wait for the longest restart.
            for w in 0..n {
                restart_penalty = restart_penalty.max(self.maybe_crash(w, round_start, ctx));
            }
        }
        // Phase 1: reads.
        let mut pending: Vec<(M::Batch, EmbeddingStore, SimDuration)> = Vec::with_capacity(n);
        for w in 0..n {
            let cursor = self.data_cursor(w, self.workers[w].iterations);
            let batch = self.dataset.train_batch(cursor, self.config.batch_size);
            let keys = batch.unique_keys();
            let (store, t_read) = self.do_read(w, &keys);
            pending.push((batch, store, t_read));
        }
        // Phase 2: compute + write.
        let mut span_max = SimDuration::ZERO;
        let mut gathered = Vec::new();
        for (w, (batch, store, t_read)) in pending.into_iter().enumerate() {
            let (timing, g) = self.do_compute_write(w, &batch, &store, t_read);
            span_max = span_max.max(timing.span(&self.config.system.backbone));
            if let Some(g) = g {
                gathered.push(g);
            }
        }
        // Barrier: collectives.
        let mut barrier_time = SimDuration::ZERO;
        if !gathered.is_empty() {
            barrier_time += self.sparse_allgather(gathered);
        }
        match self.config.system.dense {
            DenseSync::AllReduce => barrier_time += self.dense_allreduce(),
            DenseSync::Ps => {
                // BSP over a dense PS (not used by the presets but
                // supported): each worker syncs; charge the max.
                let mut max_t = SimDuration::ZERO;
                for w in 0..n {
                    max_t = max_t.max(self.dense_ps_sync(w));
                }
                barrier_time += max_t;
            }
        }
        let round_time = span_max + barrier_time + restart_penalty;
        let now = round_start + round_time;
        if het_trace::enabled() {
            het_trace::set_scope((round_start + span_max).as_nanos(), None);
            het_trace::span!("trainer", "barrier", barrier_time.as_nanos(),
                "round_iters" => n, "round_end_ns" => now.as_nanos());
        }
        for worker in &mut self.workers {
            worker.clock = now;
        }
        self.global_iterations += n as u64;

        if self.global_iterations % self.config.eval_every < n as u64 && self.record_eval(now) {
            self.stop_prefetch();
            ctx.stop();
            return;
        }
        if self.global_iterations >= self.config.max_iterations {
            self.stop_prefetch();
            ctx.stop();
        } else {
            // Keep the legacy wake first so depth-0 runs push events in
            // the exact order (and thus queue sequence) they always did.
            ctx.schedule(now, Event::Wake(0));
            // Issue prefetch pulls at the *start* of the round just
            // charged: they run on the network while the round's compute
            // span elapses, so by the next read at `now` all but the
            // unhidden tail of the transfer has already happened.
            for w in 0..n {
                self.plan_prefetch(w, round_start, ctx);
            }
        }
    }

    /// One ASP/SSP worker iteration, dispatched as a per-worker event.
    fn on_worker_event(
        &mut self,
        t: SimTime,
        w: usize,
        ssp_staleness: Option<u64>,
        ctx: &mut Ctx<'_>,
    ) {
        if self.global_iterations >= self.config.max_iterations {
            self.stop_prefetch();
            ctx.stop();
            return;
        }
        // SSP: block workers too far ahead of the slowest.
        if let Some(s) = ssp_staleness {
            let min_iter = self.workers.iter().map(|x| x.iterations).min().unwrap_or(0);
            if self.workers[w].iterations > min_iter + s {
                // Retry just after the next completion of a slowest
                // worker — the earliest point the gate can reopen. (A
                // worker's clock is the time of its pending event.)
                // Retrying at peek+1 instead degenerates into a 1 ns
                // ping-pong between blocked workers whenever the slow
                // worker's event is far away, e.g. behind a straggler
                // window or a crash restart.
                let gate = self
                    .workers
                    .iter()
                    .filter(|x| x.iterations == min_iter)
                    .map(|x| x.clock)
                    .min()
                    .unwrap_or(t);
                let retry = ctx.wait_until(gate, Event::Wake(w as u64));
                if het_trace::enabled() {
                    het_trace::set_scope(t.as_nanos(), Some(w as u64));
                    het_trace::event!("trainer", "ssp_block",
                        "retry_ns" => retry.as_nanos());
                }
                return;
            }
        }
        let mut crash_delay = SimDuration::ZERO;
        if !self.plan.is_empty() {
            self.process_fault_events(t, ctx);
            self.workers[w].clock = t;
            crash_delay = self.maybe_crash(w, t, ctx);
            if crash_delay > SimDuration::ZERO {
                self.workers[w].clock = t + crash_delay;
            }
        }
        let cursor = self.data_cursor(w, self.workers[w].iterations);
        let batch = self.dataset.train_batch(cursor, self.config.batch_size);
        let keys = batch.unique_keys();
        let (store, t_read) = self.do_read(w, &keys);
        let (timing, gathered) = self.do_compute_write(w, &batch, &store, t_read);
        debug_assert!(gathered.is_none(), "replicated sparse requires BSP");
        let mut iter_time = timing.span(&self.config.system.backbone);
        iter_time += self.dense_ps_sync(w);

        let now = t + crash_delay + iter_time;
        self.workers[w].clock = now;
        ctx.schedule(now, Event::Wake(w as u64));
        self.global_iterations += 1;

        if self.global_iterations % self.config.eval_every == 0 && self.record_eval(now) {
            self.stop_prefetch();
            ctx.stop();
            return;
        }
        if self.global_iterations >= self.config.max_iterations {
            self.stop_prefetch();
            ctx.stop();
        } else {
            // Issue prefetch pulls at the point this iteration's compute
            // began — they transfer concurrently with the span just
            // charged and land (mostly) before the wake at `now`.
            self.plan_prefetch(w, t + crash_delay, ctx);
        }
    }

    /// Drains the caches and assembles the [`TrainReport`]. Called by
    /// [`Trainer::run`]; co-scheduled setups call it directly after the
    /// shared runtime's loop returns.
    pub fn finalize(&mut self) -> TrainReport {
        // Strand whatever the prefetcher still had queued or in flight
        // at shutdown: those keys count as cancelled, never installed.
        if let Some(p) = &self.plane {
            p.lock().unwrap().cancel_all();
            // Drain the transmit channels: deferred write-backs already
            // updated the server, but their wire time must finish
            // streaming before the run counts as over.
            let plane = p.lock().unwrap();
            for (i, worker) in self.workers.iter_mut().enumerate() {
                let drain = plane.tx_drain(i);
                if drain > worker.clock {
                    worker.clock = drain;
                }
            }
        }
        // Snapshot cache residency (the "stale path" key sets), then
        // flush so every pending update reaches the server (the paper's
        // end-of-training write-back).
        let resident_keys_per_worker: Vec<Vec<u64>> = self
            .workers
            .iter()
            .map(|w| match &w.sparse {
                SparseEngine::Cached(c) => {
                    let mut keys: Vec<u64> = c.cache().keys().collect();
                    keys.sort_unstable();
                    keys
                }
                _ => Vec::new(),
            })
            .collect();
        let Trainer {
            server,
            net,
            workers,
            ..
        } = &mut *self;
        let (server, net) = (&*server, &*net);
        for (i, worker) in workers.iter_mut().enumerate() {
            if let SparseEngine::Cached(c) = &mut worker.sparse {
                if het_trace::enabled() {
                    het_trace::set_scope(worker.clock.as_nanos(), Some(i as u64));
                }
                let waste_before = c.cache().stats().prefetch_wasted;
                let t = c.flush(server, net, &mut worker.comm);
                worker.breakdown.sparse_write += t;
                worker.clock += t;
                het_trace::span!("trainer", "flush", t.as_nanos());
                if het_trace::enabled() {
                    let wasted = c.cache().stats().prefetch_wasted - waste_before;
                    if wasted > 0 {
                        het_trace::event!("prefetcher", "prefetch_waste", "n" => wasted);
                    }
                }
            }
        }
        let final_metric = self.evaluate_now();
        let total_sim_time = self
            .workers
            .iter()
            .map(|w| w.clock)
            .max()
            .unwrap_or(SimTime::ZERO);

        let mut comm = CommStats::new();
        let mut cache = het_cache::CacheStats::default();
        let mut breakdown = TimeBreakdown::default();
        for worker in &self.workers {
            comm.merge(&worker.comm);
            if let SparseEngine::Cached(c) = &worker.sparse {
                cache.merge(c.cache().stats());
            }
            breakdown.sparse_read += worker.breakdown.sparse_read;
            breakdown.compute += worker.breakdown.compute;
            breakdown.sparse_write += worker.breakdown.sparse_write;
            breakdown.dense_sync += worker.breakdown.dense_sync;
        }
        let examples = self.global_iterations * self.config.batch_size as u64;
        let epochs = examples as f64 / self.dataset.epoch_examples().max(1) as f64;
        // Tiered-store accounting: absent for Mem runs so their reports
        // (and traces) stay byte-identical to the legacy path. Any disk
        // time the final flush left pending has no leg to ride — fold
        // it into the client pool total here.
        let store = match &self.config.store {
            het_ps::StoreSpec::Mem => None,
            het_ps::StoreSpec::Tiered(_) => {
                let stats = self.server.store_stats();
                let client_io_ns = stats.io_ns.saturating_sub(self.server.background_io_ns());
                let summary = crate::report::StoreSummary {
                    client_io_ns,
                    background_io_ns: self.server.background_io_ns(),
                    resident_rows: self.server.resident_rows() as u64,
                    total_rows: self.server.len() as u64,
                    stats,
                };
                // The per-op counters (hot_hits, demotions, …) are
                // emitted by the store itself; only the modelled disk
                // time — which the store accrues silently — is stamped
                // here, split the way the report splits it.
                if het_trace::enabled() {
                    het_trace::counter_add("store", "io_ns", summary.stats.io_ns);
                    het_trace::counter_add("store", "client_io_ns", summary.client_io_ns);
                    het_trace::counter_add("store", "background_io_ns", summary.background_io_ns);
                }
                Some(summary)
            }
        };
        TrainReport {
            system: self.config.system.name.to_string(),
            curve: self.curve.clone(),
            total_sim_time,
            total_iterations: self.global_iterations,
            examples_processed: examples,
            epochs,
            converged_at: self.converged_at,
            final_metric,
            comm,
            cache,
            breakdown,
            resident_keys_per_worker,
            faults: self.fault_stats.clone(),
            fault_events: self.fault_events.clone(),
            prefetch: self.plane.as_ref().map(|p| p.lock().unwrap().summary()),
            store,
        }
    }
}

impl<M: EmbeddingModel, D: Dataset<Batch = M::Batch>> Process for Trainer<M, D> {
    fn on_event(&mut self, t: SimTime, ev: Event, ctx: &mut Ctx<'_>) {
        // Trace scopes and fault-context worker indices use raw worker
        // numbers, so the trainer must own the first member block.
        debug_assert_eq!(
            ctx.member_offset(),
            0,
            "register the trainer before any co-scheduled job"
        );
        let Event::Wake(w) = ev else { return };
        match self.config.system.sync {
            SyncMode::Bsp => self.on_round(ctx),
            SyncMode::Asp => self.on_worker_event(t, w as usize, None, ctx),
            SyncMode::Ssp { staleness } => {
                self.on_worker_event(t, w as usize, Some(staleness), ctx)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SystemPreset;
    use het_data::{CtrConfig, CtrDataset, GraphConfig, NeighborSampler};
    use het_models::{GnnDataset, GraphSage, WideDeep};

    fn ctr_trainer(preset: SystemPreset) -> Trainer<WideDeep, CtrDataset> {
        let dataset = CtrDataset::new(CtrConfig::tiny(7));
        let config = TrainerConfig::tiny(preset);
        Trainer::new(config, dataset, |rng| WideDeep::new(rng, 4, 8, &[16]))
    }

    #[test]
    fn every_preset_runs_to_completion() {
        for preset in [
            SystemPreset::TfPs,
            SystemPreset::TfParallax,
            SystemPreset::HetPs,
            SystemPreset::HetAr,
            SystemPreset::HetHybrid,
            SystemPreset::HetCache { staleness: 10 },
            SystemPreset::Ssp { staleness: 2 },
        ] {
            let report = ctr_trainer(preset).run();
            assert!(report.total_iterations >= 200, "{preset:?}");
            assert!(report.total_sim_time > SimTime::ZERO, "{preset:?}");
            assert!(report.final_metric.is_finite(), "{preset:?}");
            assert!(!report.curve.is_empty(), "{preset:?}");
        }
    }

    #[test]
    fn bsp_workers_share_a_clock() {
        let mut t = ctr_trainer(SystemPreset::HetHybrid);
        let report = t.run();
        // total sim time equals every worker's clock under BSP (flush may
        // nudge cached systems; hybrid has no cache).
        assert!(report.total_sim_time > SimTime::ZERO);
        let clocks: Vec<SimTime> = t.workers.iter().map(|w| w.clock).collect();
        assert!(clocks.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn asp_workers_drift_apart() {
        let mut t = ctr_trainer(SystemPreset::HetPs);
        let _ = t.run();
        let iters: Vec<u64> = t.workers.iter().map(|w| w.iterations).collect();
        let total: u64 = iters.iter().sum();
        assert_eq!(total, t.global_iterations);
    }

    #[test]
    fn ssp_bounds_iteration_spread() {
        let mut t = ctr_trainer(SystemPreset::Ssp { staleness: 2 });
        let _ = t.run();
        let min = t.workers.iter().map(|w| w.iterations).min().unwrap();
        let max = t.workers.iter().map(|w| w.iterations).max().unwrap();
        assert!(max - min <= 3, "SSP spread {min}..{max} exceeds bound");
    }

    #[test]
    fn cache_reduces_embedding_bytes_vs_hybrid() {
        let cached = ctr_trainer(SystemPreset::HetCache { staleness: 100 }).run();
        let hybrid = ctr_trainer(SystemPreset::HetHybrid).run();
        assert!(
            cached.comm.embedding_bytes() < hybrid.comm.embedding_bytes(),
            "cached {} !< hybrid {}",
            cached.comm.embedding_bytes(),
            hybrid.comm.embedding_bytes()
        );
        assert!(cached.cache.hits > 0, "cache must actually hit");
    }

    #[test]
    fn cached_system_is_faster_per_iteration() {
        // The tiny dataset has only 200 keys and 64-key batches, so the
        // paper's 10% cache would thrash; give the cache a working-set
        // sized capacity as the paper's setups do (cache >> batch).
        let dataset = CtrDataset::new(CtrConfig::tiny(7));
        let config = TrainerConfig::tiny(SystemPreset::HetCache { staleness: 100 })
            .with_cache(0.6, het_cache::PolicyKind::light_lfu());
        let cached = Trainer::new(config, dataset, |rng| WideDeep::new(rng, 4, 8, &[16])).run();
        let hybrid = ctr_trainer(SystemPreset::HetHybrid).run();
        let t_cached = cached.total_sim_time.as_secs_f64() / cached.total_iterations as f64;
        let t_hybrid = hybrid.total_sim_time.as_secs_f64() / hybrid.total_iterations as f64;
        assert!(
            t_cached < t_hybrid,
            "cached {t_cached} !< hybrid {t_hybrid}"
        );
    }

    #[test]
    fn gnn_workload_trains() {
        let graph = het_data::Graph::generate(GraphConfig::tiny(3));
        let n_classes = graph.config().n_classes;
        let dataset = GnnDataset::new(graph, NeighborSampler::new(4, 3));
        let config = TrainerConfig::tiny(SystemPreset::HetCache { staleness: 10 });
        let mut trainer = Trainer::new(config, dataset, move |rng| {
            GraphSage::new(rng, 8, 16, n_classes)
        });
        let report = trainer.run();
        assert!(report.total_iterations >= 200);
        assert!(report.final_metric >= 0.0 && report.final_metric <= 1.0);
    }

    #[test]
    fn target_metric_stops_early() {
        let dataset = CtrDataset::new(CtrConfig::tiny(7));
        let mut config = TrainerConfig::tiny(SystemPreset::HetHybrid);
        config.target_metric = Some(0.0); // trivially reached at first eval
        config.max_iterations = 100_000;
        let mut trainer = Trainer::new(config, dataset, |rng| WideDeep::new(rng, 4, 8, &[16]));
        let report = trainer.run();
        assert!(report.converged_at.is_some());
        assert!(report.total_iterations < 100_000);
    }

    #[test]
    fn deterministic_across_runs() {
        let a = ctr_trainer(SystemPreset::HetCache { staleness: 10 }).run();
        let b = ctr_trainer(SystemPreset::HetCache { staleness: 10 }).run();
        assert_eq!(a.total_sim_time, b.total_sim_time);
        assert_eq!(a.comm, b.comm);
        assert_eq!(a.final_metric, b.final_metric);
        let curve_a: Vec<f64> = a.curve.iter().map(|p| p.metric).collect();
        let curve_b: Vec<f64> = b.curve.iter().map(|p| p.metric).collect();
        assert_eq!(curve_a, curve_b);
    }

    #[test]
    fn breakdown_accounts_all_phases() {
        let report = ctr_trainer(SystemPreset::TfParallax).run();
        assert!(report.breakdown.sparse_read > SimDuration::ZERO);
        assert!(report.breakdown.compute > SimDuration::ZERO);
        assert!(report.breakdown.sparse_write > SimDuration::ZERO);
        assert!(report.breakdown.dense_sync > SimDuration::ZERO);
    }

    #[test]
    fn replicated_mode_reads_are_free() {
        let report = ctr_trainer(SystemPreset::HetAr).run();
        assert_eq!(report.breakdown.sparse_read, SimDuration::ZERO);
        assert!(report.comm.bytes(het_simnet::CommCategory::SparseAllGather) > 0);
        assert_eq!(
            report.comm.bytes(het_simnet::CommCategory::EmbeddingFetch),
            0
        );
    }
}
