//! Fault-injection configuration and accounting for the trainer.
//!
//! The schedule itself lives in [`het_simnet::fault`]; this module owns
//! what the *training stack* does about it: the [`FaultConfig`] knob on
//! `TrainerConfig`, the per-run [`FaultStats`] and [`FaultRecord`] event
//! log reported in `TrainReport`, and the [`FaultContext`] the client
//! protocol threads through each communication leg to apply link
//! degradation, deterministic message drops with retry/backoff, and
//! clock-bounded graceful degradation during PS-shard outages.
//!
//! The contract that keeps replay exact: every fault effect is applied
//! *only* when its factor differs from the neutral value, so a run with
//! an empty [`FaultPlan`] takes byte-for-byte the same arithmetic path
//! as a run with injection disabled.

use crate::retry::RetryPolicy;
use het_json::{Json, ToJson};
use het_simnet::{FaultPlan, FaultSpec, SimDuration, SimTime};

/// Fault-injection knobs of one training run.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultConfig {
    /// Master switch; when false the spec is ignored entirely.
    pub enabled: bool,
    /// What to schedule. `n_workers`/`n_shards` are filled in by the
    /// trainer from the cluster shape, so sweeps only set counts.
    pub spec: FaultSpec,
    /// Take a full PS checkpoint every this many global iterations
    /// (0 = only the initial empty checkpoint). Failovers restore the
    /// last checkpoint; everything since is lost and accounted.
    pub checkpoint_every: u64,
    /// Retries after a dropped message before giving up and proceeding
    /// (the message is then treated as delivered — training must make
    /// progress; each retry is charged time and bytes).
    pub max_retries: u32,
    /// Base backoff charged before the first resend; doubles per retry.
    pub retry_backoff: SimDuration,
}

impl FaultConfig {
    /// Injection off — the default for every preset configuration.
    pub fn disabled() -> Self {
        FaultConfig {
            enabled: false,
            spec: FaultSpec::default(),
            checkpoint_every: 50,
            max_retries: 4,
            retry_backoff: SimDuration::from_micros(200),
        }
    }

    /// Injection on with the given schedule spec and default recovery
    /// knobs.
    pub fn with_spec(spec: FaultSpec) -> Self {
        FaultConfig {
            enabled: true,
            spec,
            ..FaultConfig::disabled()
        }
    }

    /// Materialises the plan for a cluster of `n_workers`/`n_shards`,
    /// deterministically from `seed`. Disabled or all-zero specs yield
    /// the empty plan, which the trainer treats as injection-off.
    pub fn plan(&self, seed: u64, n_workers: usize, n_shards: usize) -> FaultPlan {
        if !self.enabled || self.spec.is_zero() {
            return FaultPlan::none();
        }
        let mut spec = self.spec.clone();
        spec.n_workers = n_workers;
        spec.n_shards = n_shards;
        FaultPlan::generate(seed, &spec)
    }

    /// The retry schedule these knobs describe: `retry_backoff` doubling
    /// per attempt for up to `max_retries` attempts, no jitter — the
    /// policy every client protocol leg has always charged.
    pub fn retry_policy(&self) -> RetryPolicy {
        RetryPolicy::exponential(self.retry_backoff, self.max_retries)
    }
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig::disabled()
    }
}

/// Aggregate fault/recovery counters of one run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Worker crash events that fired.
    pub worker_crashes: u64,
    /// Dirty cache entries lost to worker crashes (their pending
    /// gradients never reached the server).
    pub dirty_entries_lost: u64,
    /// Accumulated local clock ticks those lost entries carried.
    pub pending_updates_lost: u64,
    /// PS-shard failovers performed.
    pub shard_failovers: u64,
    /// Rows reinstalled from checkpoints across all failovers.
    pub rows_restored: u64,
    /// Keys lost entirely (never checkpointed) across all failovers.
    pub keys_lost: u64,
    /// Server updates rolled back by failovers (clock regression).
    pub lost_updates: u64,
    /// Reads served stale from cache because the owning shard was down
    /// but the staleness bound still held (graceful degradation).
    pub degraded_reads: u64,
    /// Protocol steps that blocked waiting for a shard to fail over.
    pub blocked_ops: u64,
    /// Message retransmissions after deterministic drops.
    pub retries: u64,
    /// Iterations whose compute ran inside a straggler window.
    pub straggler_slow_iters: u64,
    /// Full PS checkpoints taken.
    pub checkpoints: u64,
}

het_json::impl_to_json!(FaultStats {
    worker_crashes,
    dirty_entries_lost,
    pending_updates_lost,
    shard_failovers,
    rows_restored,
    keys_lost,
    lost_updates,
    degraded_reads,
    blocked_ops,
    retries,
    straggler_slow_iters,
    checkpoints,
});

/// One fault or recovery event as it fired, for the report's event log.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultRecord {
    /// Simulated instant the event took effect.
    pub at: SimTime,
    /// Human-readable description ("worker 3 crashed…", "shard 2 failed
    /// over…").
    pub description: String,
}

impl ToJson for FaultRecord {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("at".to_string(), Json::Num(self.at.as_secs_f64())),
            ("description".to_string(), self.description.to_json()),
        ])
    }
}

/// Per-call fault state a client threads through its protocol legs.
///
/// Created by the trainer once per `read`/`write` with the worker's
/// current clock; holds the plan, the worker's monotone message counter
/// (drop decisions hash it, so the sequence is replay-stable), and the
/// run-wide stats to account into.
pub struct FaultContext<'a> {
    /// The materialised schedule.
    pub plan: &'a FaultPlan,
    /// The worker's simulated clock when the protocol step started.
    pub now: SimTime,
    /// The calling worker's index.
    pub worker: usize,
    /// Backoff schedule charged per dropped message.
    pub retry: RetryPolicy,
    /// The worker's monotone message counter.
    pub ops: &'a mut u64,
    /// Run-wide fault counters.
    pub stats: &'a mut FaultStats,
}

impl FaultContext<'_> {
    /// The next message number for this worker.
    fn next_op(&mut self) -> u64 {
        let op = *self.ops;
        *self.ops += 1;
        op
    }

    /// Applies link degradation and message drops to one communication
    /// leg of base duration `base`. Returns the charged duration; the
    /// caller has already recorded `bytes` once, and this method records
    /// it again per retransmission via `record`.
    ///
    /// With an empty plan this returns `base` untouched — the
    /// bit-identity contract.
    pub fn charge_leg(
        &mut self,
        base: SimDuration,
        mut record: impl FnMut(u64),
        bytes: u64,
    ) -> SimDuration {
        if self.plan.is_empty() {
            return base;
        }
        let mut leg = base;
        let factors = self.plan.link_factors(self.now);
        if !factors.is_neutral() {
            // One multiplier approximates both terms of transfer time
            // (latency + bytes/bandwidth), each inflated by its factor.
            leg = leg * factors.latency.max(1.0 / factors.bandwidth);
        }
        let mut total = leg;
        let mut attempt = 0u32;
        while attempt < self.retry.max_attempts {
            let op = self.next_op();
            if !self.plan.should_drop(self.worker, op) {
                break;
            }
            self.stats.retries += 1;
            het_trace::count!("trainer", "msg_drops");
            record(bytes);
            total += self.retry.delay(attempt) + leg;
            attempt += 1;
        }
        total
    }

    /// If `shard` is down at this step's clock, the wait until its
    /// failover completes. The caller blocks (charges the wait) before
    /// touching the shard.
    pub fn blocked_wait(&mut self, shard: usize) -> Option<SimDuration> {
        if self.plan.is_empty() {
            return None;
        }
        let end = self.plan.shard_outage_end(shard, self.now)?;
        self.stats.blocked_ops += 1;
        let wait = end.since(self.now);
        // The ambient scope is already (self.now, worker) — the trainer
        // sets it at the top of each read/write phase.
        het_trace::event!("trainer", "blocked_wait",
            "shard" => shard, "wait_ns" => wait.as_nanos());
        Some(wait)
    }

    /// True when `shard` is down at this step's clock (without touching
    /// counters — the caller decides whether it degrades or blocks).
    pub fn shard_down(&self, shard: usize) -> bool {
        !self.plan.is_empty() && self.plan.shard_down(shard, self.now)
    }

    /// Counts one gracefully degraded read (stale cache serve during an
    /// outage).
    pub fn record_degraded_read(&mut self) {
        self.stats.degraded_reads += 1;
        het_trace::count!("trainer", "degraded_reads");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use het_simnet::FaultEvent;

    #[test]
    fn disabled_or_zero_spec_plans_are_empty() {
        let cfg = FaultConfig::disabled();
        assert!(cfg.plan(1, 4, 8).is_empty());
        let enabled_zero = FaultConfig {
            enabled: true,
            ..FaultConfig::disabled()
        };
        assert!(enabled_zero.plan(1, 4, 8).is_empty());
        let spec = FaultSpec {
            worker_crashes: 1,
            ..FaultSpec::default()
        };
        assert!(!FaultConfig::with_spec(spec).plan(1, 4, 8).is_empty());
    }

    #[test]
    fn plan_fills_cluster_shape() {
        let spec = FaultSpec {
            worker_crashes: 8,
            shard_outages: 8,
            ..FaultSpec::default()
        };
        let plan = FaultConfig::with_spec(spec).plan(3, 2, 3);
        for e in plan.events() {
            match e {
                FaultEvent::WorkerCrash { worker, .. } => assert!(*worker < 2),
                FaultEvent::PsShardOutage { shard, .. } => assert!(*shard < 3),
                _ => {}
            }
        }
    }

    #[test]
    fn charge_leg_is_identity_on_empty_plan() {
        let plan = FaultPlan::none();
        let mut ops = 0;
        let mut stats = FaultStats::default();
        let mut ctx = FaultContext {
            plan: &plan,
            now: SimTime::ZERO,
            worker: 0,
            retry: RetryPolicy::exponential(SimDuration::from_micros(100), 4),
            ops: &mut ops,
            stats: &mut stats,
        };
        let base = SimDuration::from_nanos(12_345);
        let mut recorded = 0u64;
        let t = ctx.charge_leg(base, |b| recorded += b, 100);
        assert_eq!(t, base, "empty plan must not touch the duration");
        assert_eq!(recorded, 0);
        assert_eq!(ops, 0, "empty plan must not consume message numbers");
    }

    #[test]
    fn degraded_link_inflates_legs() {
        let plan = FaultPlan::scripted(vec![FaultEvent::LinkDegradation {
            from: SimTime::ZERO,
            until: SimTime::from_nanos(1_000),
            latency_factor: 4.0,
            bandwidth_factor: 1.0,
        }]);
        let mut ops = 0;
        let mut stats = FaultStats::default();
        let mut ctx = FaultContext {
            plan: &plan,
            now: SimTime::from_nanos(10),
            worker: 0,
            retry: RetryPolicy::exponential(SimDuration::ZERO, 0),
            ops: &mut ops,
            stats: &mut stats,
        };
        let t = ctx.charge_leg(SimDuration::from_nanos(1_000), |_| {}, 10);
        assert_eq!(t, SimDuration::from_nanos(4_000));
        // Outside the window the leg is untouched.
        ctx.now = SimTime::from_nanos(2_000);
        let t2 = ctx.charge_leg(SimDuration::from_nanos(1_000), |_| {}, 10);
        assert_eq!(t2, SimDuration::from_nanos(1_000));
    }

    #[test]
    fn drops_charge_retries_and_bytes() {
        // drop_prob = 1.0 forces every send to drop until the retry
        // budget runs out.
        let spec = FaultSpec {
            message_drop_prob: 1.0,
            ..FaultSpec::default()
        };
        let plan = FaultPlan::generate(9, &spec);
        let mut ops = 0;
        let mut stats = FaultStats::default();
        let mut ctx = FaultContext {
            plan: &plan,
            now: SimTime::ZERO,
            worker: 1,
            retry: RetryPolicy::exponential(SimDuration::from_nanos(100), 3),
            ops: &mut ops,
            stats: &mut stats,
        };
        let base = SimDuration::from_nanos(1_000);
        let mut extra_bytes = 0u64;
        let t = ctx.charge_leg(base, |b| extra_bytes += b, 50);
        // 3 retries: backoffs 100 + 200 + 400, plus 3 resends.
        assert_eq!(
            t,
            SimDuration::from_nanos(1_000 + 100 + 1_000 + 200 + 1_000 + 400 + 1_000)
        );
        assert_eq!(extra_bytes, 150);
        assert_eq!(stats.retries, 3);
        assert_eq!(ops, 3);
    }

    #[test]
    fn blocked_wait_measures_to_failover_end() {
        let plan = FaultPlan::scripted(vec![FaultEvent::PsShardOutage {
            shard: 1,
            at: SimTime::from_nanos(100),
            failover_delay: SimDuration::from_nanos(400),
        }]);
        let mut ops = 0;
        let mut stats = FaultStats::default();
        let mut ctx = FaultContext {
            plan: &plan,
            now: SimTime::from_nanos(200),
            worker: 0,
            retry: RetryPolicy::exponential(SimDuration::ZERO, 0),
            ops: &mut ops,
            stats: &mut stats,
        };
        assert!(ctx.shard_down(1));
        assert!(!ctx.shard_down(0));
        assert_eq!(ctx.blocked_wait(1), Some(SimDuration::from_nanos(300)));
        assert_eq!(ctx.blocked_wait(0), None);
        assert_eq!(stats.blocked_ops, 1);
    }
}
