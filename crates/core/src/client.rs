//! The HET client: the paper's Algorithms 1–3 with wire-accurate cost
//! accounting.
//!
//! `Het.Read` (Algorithm 2): for each requested key, a cache hit is
//! validated against the two clock bounds of `CheckValid`; condition (1)
//! (`c_c ≤ c_s + s`) is checked locally, condition (2) (`c_g ≤ c_c + s`)
//! requires a clock-only round trip to the server — charged at
//! clock-message size, which is the cheapness the protocol exploits.
//! Invalid entries are synchronised: evicted (pending gradients pushed)
//! and re-fetched. Missing keys are fetched. All transfers are batched
//! per protocol step, mirroring the paper's message-fusion optimisation
//! (§4.2).
//!
//! `Het.Write` (Algorithm 3): gradients are accumulated into the cache
//! (stale writes), per-key clocks advance by one, and only capacity
//! overflow triggers server write-backs.

use crate::fault::FaultContext;
use het_cache::{CacheTable, PolicyKind};
use het_data::Key;
use het_models::{EmbeddingStore, SparseGrads};
use het_ps::PsServer;
use het_simnet::wire::MessageCosts;
use het_simnet::{Collectives, CommCategory, CommStats, SimDuration};

/// The longest stall among the given keys' shards that are mid-failover
/// at the context's clock (each distinct shard counted once). Zero when
/// no context or no outage — protocol steps that must *touch* a down
/// shard block until its failover completes.
fn outage_wait<'a>(
    keys: impl Iterator<Item = &'a Key>,
    server: &PsServer,
    faults: &mut Option<&mut FaultContext<'_>>,
) -> SimDuration {
    let mut wait = SimDuration::ZERO;
    if let Some(f) = faults.as_mut() {
        let mut seen: Vec<usize> = Vec::new();
        for &k in keys {
            let shard = server.shard_index_of(k);
            if !seen.contains(&shard) {
                seen.push(shard);
                if let Some(w) = f.blocked_wait(shard) {
                    wait = wait.max(w);
                }
            }
        }
    }
    wait
}

/// Drains the disk time the server's row store accrued serving the
/// current leg (zero with the flat in-memory store), as a duration to
/// charge into the same span as the leg's wire time — disk time flows
/// into simulated clocks exactly like network time.
fn store_io(server: &PsServer) -> SimDuration {
    SimDuration::from_nanos(server.take_io_ns())
}

/// The cache-enabled embedding client of one worker.
pub struct HetClient {
    cache: CacheTable,
    staleness: u64,
    dim: usize,
    costs: MessageCosts,
    /// Deliberate-breakage knob for the `het-oracle` harness: extra
    /// clock ticks added to the staleness window `CheckValid` admits,
    /// so reads accept entries the protocol should have resynchronised.
    /// 0 (the only value production code ever sets) leaves the protocol
    /// byte-for-byte unchanged. Injected from the harness configuration
    /// — there is no process-global way to flip it.
    extra_staleness: u64,
    /// Write-behind (lookahead runs only): dirty-eviction write-backs
    /// still reach the server at the same protocol point, but their
    /// wire time is parked in `deferred_push` for the trainer to drain
    /// through the prefetch plane's transmit channel instead of
    /// charging it into the write span. Off (the default) reproduces
    /// the legacy synchronous push byte-for-byte and cycle-for-cycle.
    write_behind: bool,
    deferred_push: SimDuration,
}

impl HetClient {
    /// Creates a client with a cache of `capacity` embeddings, staleness
    /// threshold `s`, eviction `policy`, and local update rate `lr`
    /// (must match the server's, so the local view tracks what the
    /// server will compute from the pushed gradients), with fused
    /// messages (§4.2).
    pub fn new(capacity: usize, staleness: u64, policy: PolicyKind, dim: usize, lr: f32) -> Self {
        Self::with_costs(
            capacity,
            staleness,
            policy,
            dim,
            lr,
            MessageCosts { fused: true },
        )
    }

    /// As [`HetClient::new`] with explicit message-cost semantics (the
    /// unfused variant models a runtime without message fusion).
    pub fn with_costs(
        capacity: usize,
        staleness: u64,
        policy: PolicyKind,
        dim: usize,
        lr: f32,
        costs: MessageCosts,
    ) -> Self {
        HetClient {
            cache: CacheTable::new(capacity, policy, lr),
            staleness,
            dim,
            costs,
            extra_staleness: 0,
            write_behind: false,
            deferred_push: SimDuration::ZERO,
        }
    }

    /// Enables write-behind: [`HetClient::write`] defers the wire time
    /// of dirty-eviction pushes (state still applies immediately) and
    /// the trainer drains it via [`HetClient::take_deferred_push`].
    /// Only lookahead runs set this — the deferred time must land on a
    /// background channel or the accounting would simply vanish.
    pub fn set_write_behind(&mut self, on: bool) {
        self.write_behind = on;
    }

    /// Takes (and resets) the wire time of write-backs deferred since
    /// the last call.
    pub fn take_deferred_push(&mut self) -> SimDuration {
        std::mem::replace(&mut self.deferred_push, SimDuration::ZERO)
    }

    /// The staleness threshold `s`.
    pub fn staleness(&self) -> u64 {
        self.staleness
    }

    /// Widens the staleness window `CheckValid` admits by `extra` clock
    /// ticks — the oracle harness's deliberate consistency breakage,
    /// proving the oracle catches a widened window. 0 (the default)
    /// restores the correct protocol. Never set this outside a
    /// correctness harness.
    pub fn set_extra_staleness(&mut self, extra: u64) {
        self.extra_staleness = extra;
    }

    /// The underlying cache table (stats, inspection).
    pub fn cache(&self) -> &CacheTable {
        &self.cache
    }

    /// Mutable access to the cache table (stat resets in harnesses).
    pub fn cache_mut(&mut self) -> &mut CacheTable {
        &mut self.cache
    }

    /// `Het.Read(keys)`: resolves every key through the cache, fetching
    /// and synchronising as the protocol requires. Returns the resolved
    /// embeddings and the simulated communication time spent.
    ///
    /// Fetched entries are added to the cache *temporarily* even past
    /// capacity (Algorithm 2 line 8); the overflow is trimmed by the
    /// `Evict()` pass at the end of the next `Het.Write` (Algorithm 3
    /// line 5), exactly as in the paper.
    ///
    /// With `faults` present the protocol additionally: serves
    /// **gracefully degraded** reads (a resident entry whose shard is
    /// mid-failover is served stale as long as condition (1) of
    /// `CheckValid` holds — the staleness bound the paper already
    /// tolerates); blocks on keys that *must* touch a down shard until
    /// its failover completes; inflates legs crossing degraded links;
    /// and retries deterministically dropped messages with exponential
    /// backoff, charging every retransmission real simulated time and
    /// bytes. `faults: None` (or an empty plan) is the fault-free path
    /// and allocates nothing for fault bookkeeping.
    pub fn read(
        &mut self,
        keys: &[Key],
        server: &PsServer,
        net: &Collectives,
        stats: &mut CommStats,
        mut faults: Option<&mut FaultContext<'_>>,
    ) -> (EmbeddingStore, SimDuration) {
        // The effective staleness window. `extra_staleness` is 0 outside
        // the oracle harness, where it deliberately widens the admitted
        // window to prove the oracle catches the breakage.
        let eff_staleness = self.staleness + self.extra_staleness;
        // Oracle hook: per-read admitted-window observations, emitted as
        // a `client/read_window` event so a trace replay can re-check
        // every accepted entry against the *configured* bound.
        let tracing = het_trace::enabled();
        let mut validated = 0u64; // hits accepted by both CheckValid conditions
        let mut degraded = 0u64; // hits served on condition (1) alone (shard down)
        let mut max_lag = 0u64; // max c_c − c_s over served cache hits
        let mut max_gap = 0u64; // max c_g − c_c over clock-validated hits
        let mut prefetch_hits = 0u64; // hits whose entry a prefetch installed
        let waste_before = self.cache.stats().prefetch_wasted;

        // Partition the request.
        let mut check_candidates: Vec<Key> = Vec::new(); // hit + cond (1) holds
        let mut resync: Vec<Key> = Vec::new(); // must evict + fetch
        let mut missing: Vec<Key> = Vec::new();
        for &k in keys {
            if self.cache.find(k) {
                let entry = self.cache.peek(k).expect("resident entry");
                if entry.within_write_bound(eff_staleness) {
                    // Graceful degradation: condition (1) already holds
                    // locally, so if the key's shard is down we serve the
                    // cached value stale instead of stalling on failover.
                    let degrade = faults
                        .as_mut()
                        .is_some_and(|f| f.shard_down(server.shard_index_of(k)));
                    if degrade {
                        if let Some(f) = faults.as_mut() {
                            f.record_degraded_read();
                        }
                        if tracing {
                            degraded += 1;
                            max_lag = max_lag.max(entry.current_clock - entry.start_clock);
                        }
                        if self.cache.consume_prefetch(k) {
                            prefetch_hits += 1;
                        }
                        self.cache.record_hit();
                    } else {
                        check_candidates.push(k);
                    }
                } else {
                    resync.push(k);
                }
            } else {
                missing.push(k);
            }
        }

        // Keys that cannot be served locally block on any mid-failover
        // shard they must touch.
        let mut time = outage_wait(resync.iter().chain(missing.iter()), server, &mut faults);

        // Phase A — two independent legs issued concurrently (§4.1 async
        // invocation): the clock-only validation round trip for the
        // resident candidates, and the fetch of the keys already known to
        // be missing. The phase costs the slower of the two.
        let mut t_clock = SimDuration::ZERO;
        if !check_candidates.is_empty() {
            let bytes = self.costs.clock_check(check_candidates.len());
            stats.record(CommCategory::ClockSync, bytes);
            t_clock = net.ps_transfer(bytes);
            if let Some(f) = faults.as_mut() {
                t_clock =
                    f.charge_leg(t_clock, |b| stats.record(CommCategory::ClockSync, b), bytes);
            }
            for k in std::mem::take(&mut check_candidates) {
                let global = server.clock_of(k);
                let entry = self.cache.peek(k).expect("resident entry");
                if entry.within_read_bound(global, eff_staleness) {
                    if tracing {
                        validated += 1;
                        max_lag = max_lag.max(entry.current_clock - entry.start_clock);
                        max_gap = max_gap.max(global.saturating_sub(entry.current_clock));
                    }
                    if self.cache.consume_prefetch(k) {
                        prefetch_hits += 1;
                    }
                    self.cache.record_hit();
                } else {
                    resync.push(k);
                }
            }
        }
        let mut t_missing = SimDuration::ZERO;
        if !missing.is_empty() {
            let req = self.costs.fetch_request(missing.len());
            let resp = self.costs.fetch_response(missing.len(), self.dim);
            stats.record(CommCategory::EmbeddingFetch, req + resp);
            t_missing = net.ps_transfer(req) + net.ps_transfer(resp);
            if let Some(f) = faults.as_mut() {
                t_missing = f.charge_leg(
                    t_missing,
                    |b| stats.record(CommCategory::EmbeddingFetch, b),
                    req + resp,
                );
            }
            for &k in &missing {
                self.cache.record_miss();
                let pulled = server.pull(k);
                self.install_fetched(k, pulled.vector, pulled.clock, server);
            }
            t_missing += store_io(server);
        }
        time += t_clock.max(t_missing);

        // Phase B — synchronise entries the validation invalidated:
        // evict (write back the pending gradients) then re-fetch. This
        // leg depends on the clock results, so it is sequential.
        let mut dirty_pushes = 0usize;
        for &k in &resync {
            self.cache.record_invalidation();
            self.cache.record_miss();
            if let Some(ev) = self.cache.evict(k) {
                if ev.dirty {
                    server.push_with_clock(k, &ev.pending_grad, ev.current_clock);
                    dirty_pushes += 1;
                }
            }
        }
        if dirty_pushes > 0 {
            let bytes = self.costs.push(dirty_pushes, self.dim);
            stats.record(CommCategory::EmbeddingPush, bytes);
            time += store_io(server);
            let mut t_push = net.ps_transfer(bytes);
            if let Some(f) = faults.as_mut() {
                t_push = f.charge_leg(
                    t_push,
                    |b| stats.record(CommCategory::EmbeddingPush, b),
                    bytes,
                );
            }
            time += t_push;
        }
        if !resync.is_empty() {
            let req = self.costs.fetch_request(resync.len());
            let resp = self.costs.fetch_response(resync.len(), self.dim);
            stats.record(CommCategory::EmbeddingFetch, req + resp);
            let mut t_refetch = net.ps_transfer(req) + net.ps_transfer(resp);
            if let Some(f) = faults.as_mut() {
                t_refetch = f.charge_leg(
                    t_refetch,
                    |b| stats.record(CommCategory::EmbeddingFetch, b),
                    req + resp,
                );
            }
            time += t_refetch;
            for &k in &resync {
                let pulled = server.pull(k);
                self.install_fetched(k, pulled.vector, pulled.clock, server);
            }
            time += store_io(server);
        }

        // Serve the batch from the cache.
        let mut store = EmbeddingStore::new(self.dim);
        for &k in keys {
            let v = self
                .cache
                .get(k)
                .expect("key resolved by read protocol")
                .to_vec();
            store.insert(k, v);
        }
        if tracing && validated + degraded > 0 {
            het_trace::event!("client", "read_window",
                "validated" => validated,
                "degraded" => degraded,
                "max_lag" => max_lag,
                "max_gap" => max_gap);
        }
        if tracing {
            // Both events exist only on prefetch-enabled runs — a
            // depth-0 trace is byte-identical to the legacy path.
            if prefetch_hits > 0 {
                het_trace::event!("prefetcher", "prefetch_hit", "n" => prefetch_hits);
            }
            let wasted = self.cache.stats().prefetch_wasted - waste_before;
            if wasted > 0 {
                het_trace::event!("prefetcher", "prefetch_waste", "n" => wasted);
            }
        }
        (store, time)
    }

    /// Lands a fetched vector in the cache. Unreachable in the read
    /// protocol's happy path, a dirty resident entry would be displaced;
    /// its pending gradient is pushed rather than dropped.
    fn install_fetched(&mut self, key: Key, vector: Vec<f32>, clock: u64, server: &PsServer) {
        if let Some(ev) = self.cache.install(key, vector, clock) {
            server.push_with_clock(key, &ev.pending_grad, ev.current_clock);
        }
    }

    /// Lands a landed *prefetch* pull in the cache. Returns `false` —
    /// and installs nothing — when the key became resident since the
    /// pull was issued (a demand fetch or an overlapping batch got
    /// there first): overwriting would clobber newer local state with
    /// the older issue-time snapshot. The installed entry carries the
    /// issue-time clocks, so `CheckValid` judges it exactly as strictly
    /// as any other cached entry on the next read.
    pub fn install_prefetch_result(
        &mut self,
        key: Key,
        vector: Vec<f32>,
        clock: u64,
        server: &PsServer,
    ) -> bool {
        if self.cache.find(key) {
            return false;
        }
        if let Some(ev) = self.cache.install_prefetched(key, vector, clock) {
            if ev.dirty {
                server.push_with_clock(key, &ev.pending_grad, ev.current_clock);
            }
        }
        true
    }

    /// `Het.Write(keys, grads)`: stale-writes the gradients into the
    /// cache, bumps per-key clocks, and handles capacity eviction.
    /// Returns the simulated communication time (only evictions cost
    /// anything — this is where the cache wins). Under write-behind
    /// (see [`HetClient::set_write_behind`]) the eviction pushes still
    /// apply to the server here, but the returned time is zero and the
    /// wire time accrues in the deferred-push ledger instead.
    ///
    /// Under fault injection (`faults` present): eviction write-backs
    /// destined for a mid-failover shard block until it recovers, and
    /// the push leg is subject to link degradation and message drops.
    /// Stale writes that stay in the cache are unaffected — that
    /// absorption is exactly why the cache degrades gracefully.
    pub fn write(
        &mut self,
        grads: &SparseGrads,
        server: &PsServer,
        net: &Collectives,
        stats: &mut CommStats,
        mut faults: Option<&mut FaultContext<'_>>,
    ) -> SimDuration {
        let waste_before = self.cache.stats().prefetch_wasted;
        for k in grads.sorted_keys() {
            let g = grads.get(k).expect("key from sorted_keys");
            self.cache.update(k, g);
            self.cache.bump_clock(k);
        }
        let evicted = self.cache.evict_overflow();
        if het_trace::enabled() {
            let wasted = self.cache.stats().prefetch_wasted - waste_before;
            if wasted > 0 {
                het_trace::event!("prefetcher", "prefetch_waste", "n" => wasted);
            }
        }
        let mut dirty_keys: Vec<Key> = Vec::new();
        for (k, ev) in &evicted {
            if ev.dirty {
                server.push_with_clock(*k, &ev.pending_grad, ev.current_clock);
                dirty_keys.push(*k);
            }
        }
        if dirty_keys.is_empty() {
            return SimDuration::ZERO;
        }
        let io = store_io(server);
        let wait = outage_wait(dirty_keys.iter(), server, &mut faults);
        let bytes = self.costs.push(dirty_keys.len(), self.dim);
        stats.record(CommCategory::EmbeddingPush, bytes);
        let mut t = net.ps_transfer(bytes);
        if let Some(f) = faults.as_mut() {
            t = f.charge_leg(t, |b| stats.record(CommCategory::EmbeddingPush, b), bytes);
        }
        if self.write_behind {
            self.deferred_push += wait + t + io;
            SimDuration::ZERO
        } else {
            wait + t + io
        }
    }

    /// Simulates this worker's process dying: the entire cache is lost,
    /// including dirty entries whose pending gradients never reached the
    /// server. Returns `(entries_lost, dirty_lost, pending_update_ticks)`
    /// where the last is the sum over dirty entries of local clock
    /// advances that are now gone (the recovery ledger's lost-update
    /// measure). Statistics counters survive — they belong to the
    /// experiment, not the process.
    pub fn crash_reset(&mut self) -> (u64, u64, u64) {
        let mut dirty_lost = 0u64;
        let mut pending_ticks = 0u64;
        for k in self.cache.keys() {
            if let Some(e) = self.cache.peek(k) {
                if e.dirty {
                    dirty_lost += 1;
                    pending_ticks += e.current_clock.saturating_sub(e.start_clock);
                }
            }
        }
        let lost = self.cache.crash_clear();
        (lost.len() as u64, dirty_lost, pending_ticks)
    }

    /// Flushes every dirty entry to the server (end of training, or the
    /// paper's corner-case discussion after Lemma 1). Returns the
    /// simulated communication time.
    pub fn flush(
        &mut self,
        server: &PsServer,
        net: &Collectives,
        stats: &mut CommStats,
    ) -> SimDuration {
        let drained = self.cache.drain_all();
        let mut dirty = 0usize;
        for (k, ev) in &drained {
            if ev.dirty {
                server.push_with_clock(*k, &ev.pending_grad, ev.current_clock);
                dirty += 1;
            }
        }
        if dirty > 0 {
            let bytes = self.costs.push(dirty, self.dim);
            stats.record(CommCategory::EmbeddingPush, bytes);
            net.ps_transfer(bytes) + store_io(server)
        } else {
            SimDuration::ZERO
        }
    }
}

/// The cache-less sparse path used by the PS baselines: pull everything,
/// push everything, every iteration.
pub struct DirectPsClient {
    dim: usize,
    costs: MessageCosts,
}

impl DirectPsClient {
    /// Creates the pass-through client with fused messages.
    pub fn new(dim: usize) -> Self {
        Self::with_costs(dim, MessageCosts { fused: true })
    }

    /// As [`DirectPsClient::new`] with explicit message-cost semantics.
    pub fn with_costs(dim: usize, costs: MessageCosts) -> Self {
        DirectPsClient { dim, costs }
    }

    /// Pulls the batch's embeddings from the server.
    ///
    /// Under fault injection (`faults` present), with no cache to fall
    /// back on there is no graceful degradation: every key on a
    /// mid-failover shard blocks the pull until recovery — the contrast
    /// the fault sweep measures against the cached client.
    pub fn read(
        &self,
        keys: &[Key],
        server: &PsServer,
        net: &Collectives,
        stats: &mut CommStats,
        mut faults: Option<&mut FaultContext<'_>>,
    ) -> (EmbeddingStore, SimDuration) {
        let wait = outage_wait(keys.iter(), server, &mut faults);
        let req = self.costs.fetch_request(keys.len());
        let resp = self.costs.fetch_response(keys.len(), self.dim);
        stats.record(CommCategory::EmbeddingFetch, req + resp);
        let mut time = net.ps_transfer(req) + net.ps_transfer(resp);
        if let Some(f) = faults.as_mut() {
            time = f.charge_leg(
                time,
                |b| stats.record(CommCategory::EmbeddingFetch, b),
                req + resp,
            );
        }
        let mut store = EmbeddingStore::new(self.dim);
        for &k in keys {
            store.insert(k, server.pull(k).vector);
        }
        (store, wait + time + store_io(server))
    }

    /// Pushes the batch's gradients to the server.
    ///
    /// Under fault injection (`faults` present): pushes to a
    /// mid-failover shard block until recovery, and the push leg is
    /// subject to degradation and drops.
    pub fn write(
        &self,
        grads: &SparseGrads,
        server: &PsServer,
        net: &Collectives,
        stats: &mut CommStats,
        mut faults: Option<&mut FaultContext<'_>>,
    ) -> SimDuration {
        if grads.is_empty() {
            return SimDuration::ZERO;
        }
        let keys = grads.sorted_keys();
        let wait = outage_wait(keys.iter(), server, &mut faults);
        for &k in &keys {
            server.push_inc(k, grads.get(k).expect("key from sorted_keys"));
        }
        let bytes = self.costs.push(grads.len(), self.dim);
        stats.record(CommCategory::EmbeddingPush, bytes);
        let io = store_io(server);
        let mut t = net.ps_transfer(bytes);
        if let Some(f) = faults.as_mut() {
            t = f.charge_leg(t, |b| stats.record(CommCategory::EmbeddingPush, b), bytes);
        }
        wait + t + io
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use het_ps::{PsConfig, ServerOptimizer};
    use het_simnet::ClusterSpec;

    fn setup(capacity: usize, staleness: u64) -> (HetClient, PsServer, Collectives) {
        let client = HetClient::new(capacity, staleness, PolicyKind::Lru, 2, 0.5);
        let server = PsServer::new(PsConfig {
            dim: 2,
            n_shards: 2,
            lr: 0.5,
            seed: 7,
            optimizer: ServerOptimizer::Sgd,
            grad_clip: None,
        });
        let net = ClusterSpec::cluster_a(4, 1).collectives();
        (client, server, net)
    }

    fn grads_for(keys: &[Key], value: f32) -> SparseGrads {
        let mut g = SparseGrads::new(2);
        for &k in keys {
            g.accumulate(k, &[value, value]);
        }
        g
    }

    #[test]
    fn first_read_fetches_everything() {
        let (mut client, server, net) = setup(10, 5);
        let mut stats = CommStats::new();
        let (store, time) = client.read(&[1, 2, 3], &server, &net, &mut stats, None);
        assert_eq!(store.len(), 3);
        assert!(time > SimDuration::ZERO);
        assert_eq!(client.cache().stats().misses, 3);
        assert_eq!(client.cache().stats().hits, 0);
        assert!(stats.bytes(CommCategory::EmbeddingFetch) > 0);
        assert_eq!(
            stats.bytes(CommCategory::ClockSync),
            0,
            "no resident keys to check"
        );
    }

    #[test]
    fn second_read_hits_with_only_clock_traffic() {
        let (mut client, server, net) = setup(10, 5);
        let mut stats = CommStats::new();
        let _ = client.read(&[1, 2], &server, &net, &mut stats, None);
        let fetch_bytes_before = stats.bytes(CommCategory::EmbeddingFetch);
        let (_, time2) = client.read(&[1, 2], &server, &net, &mut stats, None);
        assert_eq!(client.cache().stats().hits, 2);
        assert_eq!(
            stats.bytes(CommCategory::EmbeddingFetch),
            fetch_bytes_before,
            "no new vector fetches on a warm validated cache"
        );
        assert!(
            stats.bytes(CommCategory::ClockSync) > 0,
            "validation is clock-only"
        );
        assert!(time2 > SimDuration::ZERO);
    }

    #[test]
    fn writes_are_stale_until_eviction() {
        let (mut client, server, net) = setup(10, 5);
        let mut stats = CommStats::new();
        let _ = client.read(&[1], &server, &net, &mut stats, None);
        let server_before = server.pull(1).vector;
        let t = client.write(&grads_for(&[1], 1.0), &server, &net, &mut stats, None);
        assert_eq!(t, SimDuration::ZERO, "stale write costs nothing");
        assert_eq!(
            server.pull(1).vector,
            server_before,
            "server unchanged until eviction"
        );
        assert_eq!(stats.bytes(CommCategory::EmbeddingPush), 0);
        // Local view did change (read-my-updates).
        let entry = client.cache().peek(1).unwrap();
        assert!((entry.vector[0] - (server_before[0] - 0.5)).abs() < 1e-6);
        assert_eq!(entry.current_clock, 1);
    }

    #[test]
    fn flush_applies_accumulated_updates_exactly_once() {
        let (mut client, server, net) = setup(10, 100);
        let mut stats = CommStats::new();
        let _ = client.read(&[1], &server, &net, &mut stats, None);
        let before = server.pull(1).vector;
        client.write(&grads_for(&[1], 1.0), &server, &net, &mut stats, None);
        client.write(&grads_for(&[1], 2.0), &server, &net, &mut stats, None);
        let t = client.flush(&server, &net, &mut stats);
        assert!(t > SimDuration::ZERO);
        let after = server.pull(1);
        // Accumulated grad = 3.0, lr = 0.5.
        assert!((after.vector[0] - (before[0] - 1.5)).abs() < 1e-6);
        assert_eq!(after.clock, 2, "two local updates -> c_g = 2");
        assert_eq!(stats.messages(CommCategory::EmbeddingPush), 1);
    }

    #[test]
    fn capacity_overflow_writes_back_dirty_victims() {
        let (mut client, server, net) = setup(2, 100);
        let mut stats = CommStats::new();
        let _ = client.read(&[1, 2], &server, &net, &mut stats, None);
        client.write(&grads_for(&[1, 2], 1.0), &server, &net, &mut stats, None);
        let before1 = server.pull(1).vector;
        // Reading key 3 exceeds capacity after the write's overflow pass:
        // read installs it, the *next write* evicts the LRU victim.
        let (_, _) = client.read(&[3], &server, &net, &mut stats, None);
        let t = client.write(&grads_for(&[3], 1.0), &server, &net, &mut stats, None);
        assert!(t > SimDuration::ZERO, "eviction write-back costs time");
        assert_eq!(client.cache().len(), 2);
        // Key 1 (least recently used) was evicted; its update landed.
        assert!(!client.cache().find(1));
        let after1 = server.pull(1).vector;
        assert!((after1[0] - (before1[0] - 0.5)).abs() < 1e-6);
    }

    #[test]
    fn stale_entry_resyncs_after_other_worker_updates() {
        let (mut client, server, net) = setup(10, 2);
        let mut stats = CommStats::new();
        let _ = client.read(&[1], &server, &net, &mut stats, None);
        // Another worker pushes 5 updates: c_g = 5, our c_c = 0, s = 2 →
        // condition (2) violated.
        for _ in 0..5 {
            server.push_inc(1, &[1.0, 1.0]);
        }
        let (store, _) = client.read(&[1], &server, &net, &mut stats, None);
        assert_eq!(client.cache().stats().invalidations, 1);
        // The resynced entry matches the server.
        assert_eq!(store.get(1), server.pull(1).vector.as_slice());
        let entry = client.cache().peek(1).unwrap();
        assert_eq!(entry.start_clock, 5);
        assert_eq!(entry.current_clock, 5);
    }

    #[test]
    fn local_write_bound_forces_resync_without_clock_message() {
        let (mut client, server, net) = setup(10, 1);
        let mut stats = CommStats::new();
        let _ = client.read(&[1], &server, &net, &mut stats, None);
        // Two local updates: c_c = c_s + 2 > c_s + 1 → condition (1)
        // violated locally.
        client.write(&grads_for(&[1], 1.0), &server, &net, &mut stats, None);
        client.write(&grads_for(&[1], 1.0), &server, &net, &mut stats, None);
        let clock_bytes_before = stats.bytes(CommCategory::ClockSync);
        let _ = client.read(&[1], &server, &net, &mut stats, None);
        assert_eq!(
            stats.bytes(CommCategory::ClockSync),
            clock_bytes_before,
            "condition (1) is local: no clock message for the invalid key"
        );
        assert_eq!(client.cache().stats().invalidations, 1);
        assert!(
            stats.bytes(CommCategory::EmbeddingPush) > 0,
            "dirty eviction pushed"
        );
        // Server received both updates: c_g = 2.
        assert_eq!(server.clock_of(1), 2);
    }

    #[test]
    fn staleness_zero_behaves_like_write_through_reads() {
        let (mut client, server, net) = setup(10, 0);
        let mut stats = CommStats::new();
        let _ = client.read(&[1], &server, &net, &mut stats, None);
        // s = 0 and no updates anywhere: entry still valid (c_g = c_c).
        let _ = client.read(&[1], &server, &net, &mut stats, None);
        assert_eq!(client.cache().stats().hits, 1);
        // One local update at s=0 violates condition (1) immediately.
        client.write(&grads_for(&[1], 1.0), &server, &net, &mut stats, None);
        let _ = client.read(&[1], &server, &net, &mut stats, None);
        assert_eq!(client.cache().stats().invalidations, 1);
        assert_eq!(server.clock_of(1), 1, "update reached the server at once");
    }

    #[test]
    fn oversized_batch_overflows_temporarily_then_trims() {
        let (mut client, server, net) = setup(2, 5);
        let mut stats = CommStats::new();
        let (store, _) = client.read(&[1, 2, 3], &server, &net, &mut stats, None);
        assert_eq!(
            store.len(),
            3,
            "read resolves everything even past capacity"
        );
        assert_eq!(client.cache().len(), 3, "temporary overflow allowed");
        client.write(&grads_for(&[1, 2, 3], 1.0), &server, &net, &mut stats, None);
        assert_eq!(client.cache().len(), 2, "write's Evict() trims to capacity");
    }

    #[test]
    fn direct_client_round_trips_and_costs() {
        let client = DirectPsClient::new(2);
        let server = PsServer::new(PsConfig {
            dim: 2,
            n_shards: 2,
            lr: 0.5,
            seed: 7,
            optimizer: ServerOptimizer::Sgd,
            grad_clip: None,
        });
        let net = ClusterSpec::cluster_a(4, 1).collectives();
        let mut stats = CommStats::new();
        let (store, t_read) = client.read(&[1, 2], &server, &net, &mut stats, None);
        assert_eq!(store.len(), 2);
        assert!(t_read > SimDuration::ZERO);
        let t_write = client.write(&grads_for(&[1, 2], 1.0), &server, &net, &mut stats, None);
        assert!(t_write > SimDuration::ZERO);
        assert_eq!(server.clock_of(1), 1);
        assert!(stats.bytes(CommCategory::EmbeddingFetch) > 0);
        assert!(stats.bytes(CommCategory::EmbeddingPush) > 0);
        assert_eq!(
            client.write(&SparseGrads::new(2), &server, &net, &mut stats, None),
            SimDuration::ZERO
        );
    }

    #[test]
    fn cached_reads_cost_less_than_direct_reads_on_hot_keys() {
        // The crux of the paper: hot-key traffic shrinks to clock-only
        // messages, which are far smaller than embedding vectors at
        // realistic dimensions (§3.1).
        let dim = 64;
        let mut cached = HetClient::new(10, 100, PolicyKind::Lru, dim, 0.5);
        let direct = DirectPsClient::new(dim);
        let server_a = PsServer::new(PsConfig {
            dim,
            n_shards: 2,
            lr: 0.5,
            seed: 7,
            optimizer: ServerOptimizer::Sgd,
            grad_clip: None,
        });
        let server_b = PsServer::new(PsConfig {
            dim,
            n_shards: 2,
            lr: 0.5,
            seed: 7,
            optimizer: ServerOptimizer::Sgd,
            grad_clip: None,
        });
        let net = ClusterSpec::cluster_a(4, 1).collectives();

        let mut stats_cached = CommStats::new();
        let mut stats_direct = CommStats::new();
        for _ in 0..20 {
            let _ = cached.read(&[1, 2, 3], &server_a, &net, &mut stats_cached, None);
            let _ = direct.read(&[1, 2, 3], &server_b, &net, &mut stats_direct, None);
        }
        assert!(
            stats_cached.embedding_bytes() < stats_direct.embedding_bytes() / 2,
            "cached {} vs direct {}",
            stats_cached.embedding_bytes(),
            stats_direct.embedding_bytes()
        );
    }
}
