//! The per-embedding clock-bounded consistency model (paper §3.3) and
//! runtime checkers for its guarantees.
//!
//! **Lemma 1**: for any embedding `x_k` cached on workers `i` and `j`,
//! HET guarantees `|x_k^i.c_c − x_k^j.c_c| ≤ 2s` — at validation points,
//! i.e. immediately after `Het.Read` accepted both replicas. Between a
//! validated read and the next one, each worker may apply the current
//! iteration's single write, so the *any-time* bound observed by an
//! external sampler is `2s + 2` (each side at most one un-validated
//! increment ahead). The checkers below expose both forms; the
//! integration tests sample at read boundaries and assert the tight
//! bound, the property tests assert the any-time bound.

use crate::client::HetClient;
use het_data::Key;
use std::collections::HashMap;

/// The largest pairwise current-clock divergence per key across a set of
/// worker caches, considering only keys resident in at least two caches.
pub fn clock_divergence(clients: &[&HetClient]) -> HashMap<Key, u64> {
    let mut min_max: HashMap<Key, (u64, u64)> = HashMap::new();
    let mut counts: HashMap<Key, usize> = HashMap::new();
    for client in clients {
        let cache = client.cache();
        for k in cache.keys() {
            let c = cache.peek(k).expect("resident key").current_clock;
            let e = min_max.entry(k).or_insert((c, c));
            e.0 = e.0.min(c);
            e.1 = e.1.max(c);
            *counts.entry(k).or_insert(0) += 1;
        }
    }
    min_max
        .into_iter()
        .filter(|(k, _)| counts.get(k).copied().unwrap_or(0) >= 2)
        .map(|(k, (lo, hi))| (k, hi - lo))
        .collect()
}

/// The single largest divergence across all shared keys (0 if no key is
/// shared).
pub fn max_divergence(clients: &[&HetClient]) -> u64 {
    clock_divergence(clients)
        .values()
        .copied()
        .max()
        .unwrap_or(0)
}

/// Checks Lemma 1 at validation points: every shared key's divergence is
/// at most `2s`.
pub fn lemma1_holds_at_validation(clients: &[&HetClient], staleness: u64) -> bool {
    max_divergence(clients) <= 2 * staleness
}

/// Checks the any-time corollary: divergence at most `2s + 2`
/// (one un-validated in-flight write per side).
pub fn lemma1_holds_any_time(clients: &[&HetClient], staleness: u64) -> bool {
    max_divergence(clients) <= 2 * staleness + 2
}

#[cfg(test)]
mod tests {
    use super::*;
    use het_cache::PolicyKind;
    use het_models::SparseGrads;
    use het_ps::{PsConfig, PsServer, ServerOptimizer};
    use het_simnet::{ClusterSpec, CommStats};

    fn client() -> HetClient {
        HetClient::new(16, 3, PolicyKind::Lru, 1, 0.1)
    }

    fn grad(key: u64, v: f32) -> SparseGrads {
        let mut g = SparseGrads::new(1);
        g.accumulate(key, &[v]);
        g
    }

    #[test]
    fn divergence_empty_without_shared_keys() {
        let server = PsServer::new(PsConfig {
            dim: 1,
            n_shards: 1,
            lr: 0.1,
            seed: 1,
            optimizer: ServerOptimizer::Sgd,
            grad_clip: None,
        });
        let net = ClusterSpec::cluster_a(2, 1).collectives();
        let mut stats = CommStats::new();
        let mut a = client();
        let mut b = client();
        let _ = a.read(&[1], &server, &net, &mut stats);
        let _ = b.read(&[2], &server, &net, &mut stats);
        assert!(clock_divergence(&[&a, &b]).is_empty());
        assert_eq!(max_divergence(&[&a, &b]), 0);
    }

    #[test]
    fn divergence_tracks_local_updates() {
        let server = PsServer::new(PsConfig {
            dim: 1,
            n_shards: 1,
            lr: 0.1,
            seed: 1,
            optimizer: ServerOptimizer::Sgd,
            grad_clip: None,
        });
        let net = ClusterSpec::cluster_a(2, 1).collectives();
        let mut stats = CommStats::new();
        let mut a = client();
        let mut b = client();
        let _ = a.read(&[1], &server, &net, &mut stats);
        let _ = b.read(&[1], &server, &net, &mut stats);
        // Worker a updates key 1 twice; b never does.
        a.write(&grad(1, 1.0), &server, &net, &mut stats);
        a.write(&grad(1, 1.0), &server, &net, &mut stats);
        let d = clock_divergence(&[&a, &b]);
        assert_eq!(d.get(&1), Some(&2));
        assert_eq!(max_divergence(&[&a, &b]), 2);
        assert!(lemma1_holds_at_validation(&[&a, &b], 3));
        assert!(lemma1_holds_any_time(&[&a, &b], 0));
    }

    #[test]
    fn bound_enforced_by_read_protocol() {
        // With s = 3, a worker hammering one key while another stays idle
        // must stay within 2s at validation points.
        let server = PsServer::new(PsConfig {
            dim: 1,
            n_shards: 1,
            lr: 0.1,
            seed: 1,
            optimizer: ServerOptimizer::Sgd,
            grad_clip: None,
        });
        let net = ClusterSpec::cluster_a(2, 1).collectives();
        let mut stats = CommStats::new();
        let mut fast = client();
        let mut slow = client();
        for _ in 0..20 {
            // Both workers validate the key every round (Lemma 1 speaks
            // about *observable* embeddings — a replica no worker reads
            // again is exempted by the paper's §3.3 corner-case note).
            let _ = slow.read(&[1], &server, &net, &mut stats);
            let _ = fast.read(&[1], &server, &net, &mut stats);
            fast.write(&grad(1, 0.1), &server, &net, &mut stats);
            assert!(
                lemma1_holds_any_time(&[&fast, &slow], 3),
                "divergence {} exceeded any-time bound",
                max_divergence(&[&fast, &slow])
            );
        }
        // Right after both validate, the tight bound applies.
        let _ = slow.read(&[1], &server, &net, &mut stats);
        let _ = fast.read(&[1], &server, &net, &mut stats);
        assert!(
            lemma1_holds_at_validation(&[&fast, &slow], 3),
            "divergence {} exceeded 2s at validation",
            max_divergence(&[&fast, &slow])
        );
    }
}
