//! The per-embedding clock-bounded consistency model (paper §3.3) and
//! runtime checkers for its guarantees.
//!
//! **Lemma 1**: for any embedding `x_k` cached on workers `i` and `j`,
//! HET guarantees `|x_k^i.c_c − x_k^j.c_c| ≤ 2s` — at validation points,
//! i.e. immediately after `Het.Read` accepted both replicas. Between a
//! validated read and the next one, each worker may apply the current
//! iteration's single write, so the *any-time* bound observed by an
//! external sampler is `2s + 2` (each side at most one un-validated
//! increment ahead).
//!
//! [`ConsistencyBound`] folds all the divergence guarantees this
//! codebase makes — per-sync-mode worker-clock bounds (BSP 0, SSP ≤ s,
//! ASP unbounded) and the per-embedding cache-clock Lemma 1 bound —
//! into one checker shared by the unit tests, `tests/consistency.rs`,
//! and the `het-oracle` replay checker.

use crate::client::HetClient;
use crate::config::SyncMode;
use het_data::Key;
use std::collections::HashMap;

/// A per-sync-mode divergence bound, checkable both at validation
/// points (barriers / accepted reads) and at arbitrary sample points.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ConsistencyBound {
    /// BSP: workers advance in lock-step rounds; divergence is 0 at
    /// every barrier and at most 1 mid-round.
    Bsp,
    /// SSP worker clocks: the fastest worker leads the slowest by at
    /// most `s` at iteration start, `s + 1` while its own iteration is
    /// in flight.
    Ssp {
        /// The admitted worker-clock staleness `s`.
        staleness: u64,
    },
    /// ASP: no divergence bound (progress must still be monotone).
    Asp,
    /// Per-embedding cache clocks, Lemma 1: divergence at most `2s` at
    /// validation, `2s + 2` any time.
    CacheClock {
        /// The admitted per-embedding staleness `s`.
        staleness: u64,
    },
}

impl ConsistencyBound {
    /// The worker-clock bound implied by a training sync mode.
    pub fn for_sync(sync: SyncMode) -> ConsistencyBound {
        match sync {
            SyncMode::Bsp => ConsistencyBound::Bsp,
            SyncMode::Asp => ConsistencyBound::Asp,
            SyncMode::Ssp { staleness } => ConsistencyBound::Ssp { staleness },
        }
    }

    /// The Lemma 1 cache-clock bound for an admitted staleness `s`.
    pub fn cache_clock(staleness: u64) -> ConsistencyBound {
        ConsistencyBound::CacheClock { staleness }
    }

    /// Maximum divergence admitted at a validation point (`None` =
    /// unbounded).
    pub fn validation_bound(&self) -> Option<u64> {
        match *self {
            ConsistencyBound::Bsp => Some(0),
            ConsistencyBound::Ssp { staleness } => Some(staleness),
            ConsistencyBound::Asp => None,
            ConsistencyBound::CacheClock { staleness } => Some(2 * staleness),
        }
    }

    /// Maximum divergence admitted at an arbitrary sample point
    /// (`None` = unbounded).
    pub fn any_time_bound(&self) -> Option<u64> {
        match *self {
            ConsistencyBound::Bsp => Some(1),
            ConsistencyBound::Ssp { staleness } => Some(staleness + 1),
            ConsistencyBound::Asp => None,
            ConsistencyBound::CacheClock { staleness } => Some(2 * staleness + 2),
        }
    }

    /// Does an observed divergence satisfy the validation-point bound?
    pub fn holds_at_validation(&self, observed: u64) -> bool {
        self.validation_bound().map_or(true, |b| observed <= b)
    }

    /// Does an observed divergence satisfy the any-time bound?
    pub fn holds_any_time(&self, observed: u64) -> bool {
        self.any_time_bound().map_or(true, |b| observed <= b)
    }
}

/// The largest pairwise current-clock divergence per key across a set of
/// worker caches, considering only keys resident in at least two caches.
pub fn clock_divergence(clients: &[&HetClient]) -> HashMap<Key, u64> {
    let mut min_max: HashMap<Key, (u64, u64)> = HashMap::new();
    let mut counts: HashMap<Key, usize> = HashMap::new();
    for client in clients {
        let cache = client.cache();
        for k in cache.keys() {
            let c = cache.peek(k).expect("resident key").current_clock;
            let e = min_max.entry(k).or_insert((c, c));
            e.0 = e.0.min(c);
            e.1 = e.1.max(c);
            *counts.entry(k).or_insert(0) += 1;
        }
    }
    min_max
        .into_iter()
        .filter(|(k, _)| counts.get(k).copied().unwrap_or(0) >= 2)
        .map(|(k, (lo, hi))| (k, hi - lo))
        .collect()
}

/// The single largest divergence across all shared keys (0 if no key is
/// shared).
pub fn max_divergence(clients: &[&HetClient]) -> u64 {
    clock_divergence(clients)
        .values()
        .copied()
        .max()
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use het_cache::PolicyKind;
    use het_models::SparseGrads;
    use het_ps::{PsConfig, PsServer, ServerOptimizer};
    use het_simnet::{ClusterSpec, CommStats};

    fn client() -> HetClient {
        HetClient::new(16, 3, PolicyKind::Lru, 1, 0.1)
    }

    fn grad(key: u64, v: f32) -> SparseGrads {
        let mut g = SparseGrads::new(1);
        g.accumulate(key, &[v]);
        g
    }

    #[test]
    fn divergence_empty_without_shared_keys() {
        let server = PsServer::new(PsConfig {
            dim: 1,
            n_shards: 1,
            lr: 0.1,
            seed: 1,
            optimizer: ServerOptimizer::Sgd,
            grad_clip: None,
        });
        let net = ClusterSpec::cluster_a(2, 1).collectives();
        let mut stats = CommStats::new();
        let mut a = client();
        let mut b = client();
        let _ = a.read(&[1], &server, &net, &mut stats, None);
        let _ = b.read(&[2], &server, &net, &mut stats, None);
        assert!(clock_divergence(&[&a, &b]).is_empty());
        assert_eq!(max_divergence(&[&a, &b]), 0);
    }

    #[test]
    fn divergence_tracks_local_updates() {
        let server = PsServer::new(PsConfig {
            dim: 1,
            n_shards: 1,
            lr: 0.1,
            seed: 1,
            optimizer: ServerOptimizer::Sgd,
            grad_clip: None,
        });
        let net = ClusterSpec::cluster_a(2, 1).collectives();
        let mut stats = CommStats::new();
        let mut a = client();
        let mut b = client();
        let _ = a.read(&[1], &server, &net, &mut stats, None);
        let _ = b.read(&[1], &server, &net, &mut stats, None);
        // Worker a updates key 1 twice; b never does.
        a.write(&grad(1, 1.0), &server, &net, &mut stats, None);
        a.write(&grad(1, 1.0), &server, &net, &mut stats, None);
        let d = clock_divergence(&[&a, &b]);
        assert_eq!(d.get(&1), Some(&2));
        assert_eq!(max_divergence(&[&a, &b]), 2);
        assert!(ConsistencyBound::cache_clock(3).holds_at_validation(max_divergence(&[&a, &b])));
        assert!(ConsistencyBound::cache_clock(0).holds_any_time(max_divergence(&[&a, &b])));
    }

    #[test]
    fn bound_enforced_by_read_protocol() {
        // With s = 3, a worker hammering one key while another stays idle
        // must stay within 2s at validation points.
        let server = PsServer::new(PsConfig {
            dim: 1,
            n_shards: 1,
            lr: 0.1,
            seed: 1,
            optimizer: ServerOptimizer::Sgd,
            grad_clip: None,
        });
        let net = ClusterSpec::cluster_a(2, 1).collectives();
        let mut stats = CommStats::new();
        let mut fast = client();
        let mut slow = client();
        for _ in 0..20 {
            // Both workers validate the key every round (Lemma 1 speaks
            // about *observable* embeddings — a replica no worker reads
            // again is exempted by the paper's §3.3 corner-case note).
            let _ = slow.read(&[1], &server, &net, &mut stats, None);
            let _ = fast.read(&[1], &server, &net, &mut stats, None);
            fast.write(&grad(1, 0.1), &server, &net, &mut stats, None);
            assert!(
                ConsistencyBound::cache_clock(3).holds_any_time(max_divergence(&[&fast, &slow])),
                "divergence {} exceeded any-time bound",
                max_divergence(&[&fast, &slow])
            );
        }
        // Right after both validate, the tight bound applies.
        let _ = slow.read(&[1], &server, &net, &mut stats, None);
        let _ = fast.read(&[1], &server, &net, &mut stats, None);
        assert!(
            ConsistencyBound::cache_clock(3).holds_at_validation(max_divergence(&[&fast, &slow])),
            "divergence {} exceeded 2s at validation",
            max_divergence(&[&fast, &slow])
        );
    }

    #[test]
    fn per_mode_bounds() {
        use crate::config::SyncMode;
        let bsp = ConsistencyBound::for_sync(SyncMode::Bsp);
        assert_eq!(bsp.validation_bound(), Some(0));
        assert_eq!(bsp.any_time_bound(), Some(1));
        assert!(bsp.holds_at_validation(0) && !bsp.holds_at_validation(1));

        let ssp = ConsistencyBound::for_sync(SyncMode::Ssp { staleness: 2 });
        assert_eq!(ssp.validation_bound(), Some(2));
        assert_eq!(ssp.any_time_bound(), Some(3));
        assert!(ssp.holds_any_time(3) && !ssp.holds_any_time(4));

        let asp = ConsistencyBound::for_sync(SyncMode::Asp);
        assert_eq!(asp.validation_bound(), None);
        assert!(asp.holds_at_validation(u64::MAX) && asp.holds_any_time(u64::MAX));

        let lemma1 = ConsistencyBound::cache_clock(5);
        assert_eq!(lemma1.validation_bound(), Some(10));
        assert_eq!(lemma1.any_time_bound(), Some(12));
        assert!(!lemma1.holds_any_time(13));
    }
}
