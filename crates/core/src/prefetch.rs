//! Lookahead prefetching: §4.2's pre-fetching optimisation made *exact*
//! by the deterministic data cursor.
//!
//! Because every worker's batch sequence is a pure function of
//! `(worker, iteration)` (see `Trainer::data_cursor`), the trainer can
//! walk the cursor `lookahead_depth` batches ahead of each worker and
//! know — not guess — the precise key set of a future read. The
//! [`Prefetcher`] is a first-class [`Process`] on the shared
//! [`het_runtime::ClusterRuntime`]: the trainer plans per-target
//! [`PrefetchOrder`]s (deduplicated against resident and in-flight
//! keys) and wakes the prefetcher at the issuing iteration's start, so
//! the pulls' transfer time overlaps the compute span instead of
//! serialising into the read phase. A read that arrives before a needed
//! pull has landed *waits* for it — the stall is charged into the read
//! time, which is exactly the "overlap credited only up to the compute
//! span" rule of the cost model.
//!
//! Correctness rides on the unchanged cache protocol: a prefetched
//! entry is installed with the clocks the server held at pull time, so
//! it can only be *older* than a demand fetch at the read instant, and
//! it still passes through `CheckValid` on every read. Prefetching can
//! therefore never widen the coherence window — it can only turn a
//! fetch into a (clock-validated) hit. The `het-oracle` prefetch cell
//! re-checks this on every fuzzed schedule.
//!
//! Accounting obeys the **prefetch ledger**: every key a plan issues is
//! eventually pulled or cancelled; every pulled key is installed or
//! cancelled (superseded by a demand fetch, dropped on crash, or
//! stranded at shutdown); every install surfaces as a prefetch hit or
//! accounted waste ([`het_cache::CacheStats`]).
//!
//! Bandwidth honesty rides on two per-worker **background channels**
//! modelling the full-duplex worker↔PS link: prefetch pulls serialise
//! on the receive channel (a pull issued while an earlier one is still
//! streaming queues behind it — `ready_at` reflects the queueing), and
//! dirty-eviction write-backs serialise on the transmit channel (the
//! trainer's write-behind: server state updates at the same protocol
//! point as the legacy path, only the wire time drains concurrently
//! with later spans). Neither channel can hide more than the link can
//! actually carry: if background work outruns compute, `ready_at`
//! slips, reads stall, and the cycle time converges to the link's real
//! per-iteration byte load. At shutdown the transmit channel is drained
//! into the final worker clocks, so deferred pushes never make a run
//! look faster than its wire traffic allows.

use std::collections::{HashSet, VecDeque};
use std::sync::{Arc, Mutex};

use het_data::Key;
use het_json::{Json, ToJson};
use het_ps::ServerHandle;
use het_runtime::{Ctx, Event, Process};
use het_simnet::wire::MessageCosts;
use het_simnet::{Collectives, FaultPlan, SimDuration, SimTime};

/// One planned pull: the exact deduplicated keys worker `worker` will
/// read at `target_iteration` that are neither resident nor already in
/// flight at plan time.
#[derive(Clone, Debug)]
pub struct PrefetchOrder {
    /// The worker whose cache the pull warms.
    pub worker: usize,
    /// The iteration whose read this pull serves.
    pub target_iteration: u64,
    /// Sorted keys to pull.
    pub keys: Vec<Key>,
}

/// A pulled embedding travelling toward a worker's cache: the value and
/// clock are frozen at issue time, the transfer lands at `ready_at`.
#[derive(Clone, Debug)]
pub struct ReadyResult {
    /// The embedding key.
    pub key: Key,
    /// The vector pulled from the server at issue time.
    pub vector: Vec<f32>,
    /// The server's global clock for the key at issue time.
    pub clock: u64,
    /// When the simulated transfer completes.
    pub ready_at: SimTime,
}

/// One plan decision, recorded when audit mode is on (test harnesses):
/// how the target batch's key set was partitioned.
#[derive(Clone, Debug)]
pub struct PrefetchAudit {
    /// The worker planned for.
    pub worker: usize,
    /// The future iteration planned.
    pub target_iteration: u64,
    /// The batch's full deduplicated key set.
    pub planned: Vec<Key>,
    /// Keys handed to the prefetcher.
    pub issued: Vec<Key>,
    /// Keys skipped because they were cache-resident at plan time.
    pub skipped_resident: Vec<Key>,
    /// Keys skipped because an earlier order already covers them.
    pub skipped_inflight: Vec<Key>,
}

/// Aggregate prefetch accounting for a [`crate::TrainReport`]. `None`
/// in the report ⇔ the run had no prefetcher (depth 0), keeping the
/// serialized report byte-identical to the legacy path.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PrefetchSummary {
    /// The configured lookahead depth.
    pub depth: u64,
    /// Keys actually pulled by the prefetcher.
    pub issued_keys: u64,
    /// Pulled keys installed into a worker cache.
    pub installed_keys: u64,
    /// Keys that never reached a cache: skipped for a shard outage,
    /// dropped by a worker crash, superseded by a demand fetch, or
    /// stranded in flight at shutdown.
    pub cancelled_keys: u64,
    /// Total simulated transfer time of issued pulls (what the demand
    /// path would otherwise have serialised into reads).
    pub transfer_ns: u64,
    /// Time reads actually waited on in-flight pulls (the part of the
    /// transfer the compute span could not hide).
    pub stall_ns: u64,
    /// Wire bytes moved by prefetch pulls.
    pub bytes: u64,
    /// Wire messages (request + response per order).
    pub messages: u64,
    /// Dirty-eviction write-back time drained through the transmit
    /// channel instead of the write span (the write-behind saving).
    pub writeback_ns: u64,
}

impl PrefetchSummary {
    /// Transfer time hidden behind compute: issued transfer minus the
    /// stalls reads paid — the overlap saving the bench sweeps report.
    pub fn hidden_ns(&self) -> u64 {
        self.transfer_ns.saturating_sub(self.stall_ns)
    }
}

impl ToJson for PrefetchSummary {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("depth".to_string(), Json::UInt(self.depth)),
            ("issued_keys".to_string(), Json::UInt(self.issued_keys)),
            (
                "installed_keys".to_string(),
                Json::UInt(self.installed_keys),
            ),
            (
                "cancelled_keys".to_string(),
                Json::UInt(self.cancelled_keys),
            ),
            ("transfer_ns".to_string(), Json::UInt(self.transfer_ns)),
            ("stall_ns".to_string(), Json::UInt(self.stall_ns)),
            ("hidden_ns".to_string(), Json::UInt(self.hidden_ns())),
            ("bytes".to_string(), Json::UInt(self.bytes)),
            ("messages".to_string(), Json::UInt(self.messages)),
            ("writeback_ns".to_string(), Json::UInt(self.writeback_ns)),
        ])
    }
}

/// Shared state between the trainer (planner/consumer) and the
/// [`Prefetcher`] process (issuer): per-worker order queues, landed
/// results awaiting install, and the in-flight key sets that make
/// deduplication exact.
pub(crate) struct PrefetchPlane {
    depth: u64,
    /// Planned orders not yet issued, per worker.
    orders: Vec<VecDeque<PrefetchOrder>>,
    /// Issued pulls awaiting install, per worker, in issue order.
    ready: Vec<Vec<ReadyResult>>,
    /// Keys planned or issued but not yet installed/cancelled, per
    /// worker — the "already covered" half of the dedup rule.
    inflight: Vec<HashSet<Key>>,
    /// First target iteration not yet planned, per worker.
    planned_until: Vec<u64>,
    /// Receive-channel occupancy per worker: when the last queued
    /// prefetch pull finishes streaming in.
    busy_rx: Vec<SimTime>,
    /// Transmit-channel occupancy per worker: when the last deferred
    /// write-back finishes streaming out.
    busy_tx: Vec<SimTime>,
    summary: PrefetchSummary,
    audit: Option<Vec<PrefetchAudit>>,
}

impl PrefetchPlane {
    pub(crate) fn new(n_workers: usize, depth: u64) -> Self {
        PrefetchPlane {
            depth,
            orders: (0..n_workers).map(|_| VecDeque::new()).collect(),
            ready: (0..n_workers).map(|_| Vec::new()).collect(),
            inflight: (0..n_workers).map(|_| HashSet::new()).collect(),
            planned_until: vec![0; n_workers],
            busy_rx: vec![SimTime::ZERO; n_workers],
            busy_tx: vec![SimTime::ZERO; n_workers],
            summary: PrefetchSummary {
                depth,
                ..PrefetchSummary::default()
            },
            audit: None,
        }
    }

    pub(crate) fn depth(&self) -> u64 {
        self.depth
    }

    pub(crate) fn planned_until(&self, w: usize) -> u64 {
        self.planned_until[w]
    }

    pub(crate) fn set_planned_until(&mut self, w: usize, until: u64) {
        self.planned_until[w] = until;
    }

    pub(crate) fn is_inflight(&self, w: usize, key: Key) -> bool {
        self.inflight[w].contains(&key)
    }

    /// Queues an order; its keys become in-flight for dedup purposes.
    pub(crate) fn push_order(&mut self, order: PrefetchOrder) {
        let w = order.worker;
        for &k in &order.keys {
            self.inflight[w].insert(k);
        }
        self.orders[w].push_back(order);
    }

    fn pop_order(&mut self, w: usize) -> Option<PrefetchOrder> {
        self.orders[w].pop_front()
    }

    /// Records audit-mode plan decisions.
    pub(crate) fn record_audit(&mut self, audit: PrefetchAudit) {
        if let Some(log) = &mut self.audit {
            log.push(audit);
        }
    }

    pub(crate) fn enable_audit(&mut self) {
        self.audit.get_or_insert_with(Vec::new);
    }

    pub(crate) fn audit_clone(&self) -> Option<Vec<PrefetchAudit>> {
        self.audit.clone()
    }

    pub(crate) fn audit_enabled(&self) -> bool {
        self.audit.is_some()
    }

    fn drop_inflight(&mut self, w: usize, key: Key) {
        self.inflight[w].remove(&key);
    }

    /// Serialises a pull of duration `dur` onto worker `w`'s receive
    /// channel: it starts when the channel frees up (never before
    /// `issue_at`) and occupies it until completion. Returns
    /// `(start, completion)`.
    pub(crate) fn rx_transfer(
        &mut self,
        w: usize,
        issue_at: SimTime,
        dur: SimDuration,
    ) -> (SimTime, SimTime) {
        let start = self.busy_rx[w].max(issue_at);
        let done = start + dur;
        self.busy_rx[w] = done;
        (start, done)
    }

    /// Serialises a deferred write-back of duration `dur` onto worker
    /// `w`'s transmit channel and records it in the summary. Returns
    /// `(start, completion)`.
    pub(crate) fn tx_transfer(
        &mut self,
        w: usize,
        issue_at: SimTime,
        dur: SimDuration,
    ) -> (SimTime, SimTime) {
        let start = self.busy_tx[w].max(issue_at);
        let done = start + dur;
        self.busy_tx[w] = done;
        self.summary.writeback_ns += dur.as_nanos();
        (start, done)
    }

    /// When worker `w`'s transmit channel goes idle — the trainer folds
    /// this into the final worker clock so deferred write-backs are
    /// fully paid before the run ends.
    pub(crate) fn tx_drain(&self, w: usize) -> SimTime {
        self.busy_tx[w]
    }

    fn note_issue(&mut self, keys: u64, transfer: SimDuration, bytes: u64, messages: u64) {
        self.summary.issued_keys += keys;
        self.summary.transfer_ns += transfer.as_nanos();
        self.summary.bytes += bytes;
        self.summary.messages += messages;
    }

    pub(crate) fn note_cancelled(&mut self, keys: u64) {
        self.summary.cancelled_keys += keys;
    }

    pub(crate) fn note_install(&mut self, keys: u64, stall: SimDuration) {
        self.summary.installed_keys += keys;
        self.summary.stall_ns += stall.as_nanos();
    }

    /// Takes every landed result for worker `w`'s read at `now`. If the
    /// read's `batch_keys` (sorted) include pulls still in flight, the
    /// read waits for the last of them: the returned stall is the part
    /// of the prefetch transfer the compute span failed to hide, and
    /// everything landed by `now + stall` is taken along.
    pub(crate) fn take_for_read(
        &mut self,
        w: usize,
        now: SimTime,
        batch_keys: &[Key],
    ) -> (Vec<ReadyResult>, SimDuration) {
        let mut stall = SimDuration::ZERO;
        for r in &self.ready[w] {
            if r.ready_at > now && batch_keys.binary_search(&r.key).is_ok() {
                stall = stall.max(r.ready_at.since(now));
            }
        }
        let effective = now + stall;
        let mut landed = Vec::new();
        let mut pending = Vec::new();
        for r in self.ready[w].drain(..) {
            if r.ready_at <= effective {
                landed.push(r);
            } else {
                pending.push(r);
            }
        }
        self.ready[w] = pending;
        for r in &landed {
            self.inflight[w].remove(&r.key);
        }
        (landed, stall)
    }

    /// Drops everything queued or in flight for worker `w` (crash
    /// routing). Returns the number of keys cancelled.
    pub(crate) fn cancel_worker(&mut self, w: usize) -> u64 {
        let mut n = 0u64;
        for order in self.orders[w].drain(..) {
            n += order.keys.len() as u64;
        }
        n += self.ready[w].len() as u64;
        self.ready[w].clear();
        self.inflight[w].clear();
        self.planned_until[w] = 0;
        // Cancelled pulls stop streaming, so the receive channel frees;
        // deferred write-backs already reached the server, so the
        // transmit channel keeps its occupancy — that wire time is
        // still owed at drain.
        self.busy_rx[w] = SimTime::ZERO;
        self.summary.cancelled_keys += n;
        n
    }

    /// Drops everything for every worker (trainer shutdown), so
    /// residual prefetcher wake-ups find empty queues and stay silent.
    pub(crate) fn cancel_all(&mut self) -> u64 {
        (0..self.orders.len()).map(|w| self.cancel_worker(w)).sum()
    }

    /// The run's aggregate accounting.
    pub(crate) fn summary(&self) -> PrefetchSummary {
        self.summary
    }
}

/// The prefetch process: executes queued [`PrefetchOrder`]s when the
/// trainer wakes it. Each order is its own request/response exchange
/// (the asynchronous pipeline of §4.1/§4.2), but the exchanges stream
/// over the worker's receive channel in issue order — a pull queued
/// while an earlier one is still in flight starts when the channel
/// frees. An order issued during iteration `i` for target `i + d` has
/// `d` compute spans to land before its read.
pub struct Prefetcher {
    plane: Arc<Mutex<PrefetchPlane>>,
    server: ServerHandle,
    net: Collectives,
    costs: MessageCosts,
    dim: usize,
    plan: FaultPlan,
}

impl Prefetcher {
    pub(crate) fn new(
        plane: Arc<Mutex<PrefetchPlane>>,
        server: ServerHandle,
        net: Collectives,
        costs: MessageCosts,
        dim: usize,
        plan: FaultPlan,
    ) -> Self {
        Prefetcher {
            plane,
            server,
            net,
            costs,
            dim,
            plan,
        }
    }

    fn execute(&mut self, t: SimTime, w: usize) {
        let tracing = het_trace::enabled();
        if tracing {
            // The trainer owns cluster members 0..n_workers, so the
            // prefetcher attributes its spans to the raw worker index
            // (deliberately not `Ctx::scope_at`, which would add this
            // process's member offset).
            het_trace::set_scope(t.as_nanos(), Some(w as u64));
        }
        loop {
            let Some(order) = self.plane.lock().unwrap().pop_order(w) else {
                break;
            };
            // Fault routing: keys on a shard that is mid-failover at
            // issue time are cancelled, not pulled — the demand path
            // will resolve them with its own outage handling.
            let mut live = Vec::with_capacity(order.keys.len());
            let mut down = 0u64;
            {
                let mut plane = self.plane.lock().unwrap();
                for &k in &order.keys {
                    if !self.plan.is_empty()
                        && self.plan.shard_down(self.server.shard_index_of(k), t)
                    {
                        plane.drop_inflight(w, k);
                        down += 1;
                    } else {
                        live.push(k);
                    }
                }
                if down > 0 {
                    plane.note_cancelled(down);
                }
            }
            if down > 0 {
                if tracing {
                    het_trace::event!("prefetcher", "prefetch_cancel",
                        "target_iter" => order.target_iteration,
                        "keys" => down,
                        "reason" => "shard_outage");
                }
                het_trace::counter_add("prefetcher", "cancelled_keys", down);
            }
            if live.is_empty() {
                continue;
            }
            let req = self.costs.fetch_request(live.len());
            let resp = self.costs.fetch_response(live.len(), self.dim);
            // Pull before pricing the exchange: if the server has to
            // promote cold rows to answer, that disk time lengthens the
            // prefetch transfer (it is still off the critical path
            // unless the read catches up to it).
            let pulled: Vec<_> = live.iter().map(|&k| (k, self.server.pull(k))).collect();
            let io = SimDuration::from_nanos(self.server.take_io_ns());
            let transfer = self.net.ps_transfer(req) + self.net.ps_transfer(resp) + io;
            let (start, ready_at) = self.plane.lock().unwrap().rx_transfer(w, t, transfer);
            let n = live.len() as u64;
            {
                let mut plane = self.plane.lock().unwrap();
                for (k, p) in pulled {
                    plane.ready[w].push(ReadyResult {
                        key: k,
                        vector: p.vector,
                        clock: p.clock,
                        ready_at,
                    });
                }
                plane.note_issue(n, transfer, req + resp, 2);
            }
            if tracing {
                // Scope the span at the queued start, so the Chrome
                // export shows pulls back-to-back on the channel rather
                // than stacked at the wake instant.
                het_trace::set_scope(start.as_nanos(), Some(w as u64));
            }
            het_trace::span!("prefetcher", "prefetch_issue", transfer.as_nanos(),
                "target_iter" => order.target_iteration,
                "keys" => n);
            het_trace::counter_add("prefetcher", "issued_keys", n);
        }
    }
}

impl Process for Prefetcher {
    fn on_event(&mut self, t: SimTime, ev: Event, _ctx: &mut Ctx<'_>) {
        let Event::Wake(w) = ev else { return };
        self.execute(t, w as usize);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_for_read_stalls_only_on_needed_inflight_keys() {
        let mut plane = PrefetchPlane::new(1, 2);
        plane.push_order(PrefetchOrder {
            worker: 0,
            target_iteration: 1,
            keys: vec![3, 7, 9],
        });
        let order = plane.pop_order(0).unwrap();
        for &k in &order.keys {
            plane.ready[0].push(ReadyResult {
                key: k,
                vector: vec![0.0],
                clock: 0,
                ready_at: SimTime::from_nanos(if k == 9 { 500 } else { 100 }),
            });
        }
        // Read at t=200 needing {3, 7}: both landed, no stall; key 9
        // stays in flight.
        let (landed, stall) = plane.take_for_read(0, SimTime::from_nanos(200), &[3, 7]);
        assert_eq!(stall, SimDuration::ZERO);
        assert_eq!(landed.len(), 2);
        assert!(plane.is_inflight(0, 9));
        assert!(!plane.is_inflight(0, 3));
        // Read at t=300 needing {9}: stalls 200 ns for the transfer.
        let (landed, stall) = plane.take_for_read(0, SimTime::from_nanos(300), &[9]);
        assert_eq!(stall, SimDuration::from_nanos(200));
        assert_eq!(landed.len(), 1);
        assert!(!plane.is_inflight(0, 9));
        assert_eq!(plane.summary().cancelled_keys, 0);
    }

    #[test]
    fn cancel_worker_clears_orders_ready_and_inflight() {
        let mut plane = PrefetchPlane::new(2, 4);
        plane.push_order(PrefetchOrder {
            worker: 0,
            target_iteration: 2,
            keys: vec![1, 2],
        });
        plane.push_order(PrefetchOrder {
            worker: 1,
            target_iteration: 2,
            keys: vec![5],
        });
        let order = plane.pop_order(0).unwrap();
        plane.ready[0].push(ReadyResult {
            key: order.keys[0],
            vector: vec![0.0],
            clock: 0,
            ready_at: SimTime::from_nanos(10),
        });
        plane.set_planned_until(0, 6);
        let n = plane.cancel_worker(0);
        // One ready result + zero queued orders for worker 0 remain at
        // cancel time (the popped order's other key was never re-queued).
        assert_eq!(n, 1);
        assert_eq!(plane.planned_until(0), 0);
        assert!(!plane.is_inflight(0, 1));
        assert!(plane.is_inflight(1, 5), "other workers untouched");
        assert_eq!(plane.summary().cancelled_keys, 1);
    }

    #[test]
    fn summary_hidden_time_is_transfer_minus_stall() {
        let mut plane = PrefetchPlane::new(1, 1);
        plane.note_issue(4, SimDuration::from_nanos(1_000), 256, 2);
        plane.note_install(4, SimDuration::from_nanos(300));
        let s = plane.summary();
        assert_eq!(s.transfer_ns, 1_000);
        assert_eq!(s.stall_ns, 300);
        assert_eq!(s.hidden_ns(), 700);
        assert_eq!(s.issued_keys, 4);
        assert_eq!(s.installed_keys, 4);
    }
}
