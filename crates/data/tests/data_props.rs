//! Property-based tests of the workload generators.

use het_data::{CtrConfig, CtrDataset, Graph, GraphConfig, NeighborSampler, ZipfSampler};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

proptest! {
    /// Zipf PMF sums to one and is monotone for any exponent/support.
    #[test]
    fn zipf_pmf_is_a_distribution(n in 1usize..500, exp in 0.0f64..3.0) {
        let z = ZipfSampler::new(n, exp);
        let total: f64 = (0..n).map(|k| z.pmf(k)).sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
        for k in 1..n {
            prop_assert!(z.pmf(k) <= z.pmf(k - 1) + 1e-12);
        }
    }

    /// Samples always fall inside the support.
    #[test]
    fn zipf_samples_in_support(n in 1usize..200, exp in 0.0f64..2.5, seed in 0u64..1000) {
        let z = ZipfSampler::new(n, exp);
        let mut rng = SmallRng::seed_from_u64(seed);
        for _ in 0..100 {
            prop_assert!(z.sample(&mut rng) < n);
        }
    }

    /// CTR examples are pure functions of (seed, index, split) and every
    /// key lands inside its field range.
    #[test]
    fn ctr_examples_deterministic_and_ranged(seed in 0u64..1000, idx in 0u64..10_000) {
        let ds = CtrDataset::new(CtrConfig::tiny(seed));
        let a = ds.example(idx, false);
        let b = ds.example(idx, false);
        prop_assert_eq!(&a, &b);
        for (f, &k) in a.0.iter().enumerate() {
            prop_assert!(ds.field_range(f).contains(&k));
        }
        prop_assert!(a.1 == 0.0 || a.1 == 1.0);
    }

    /// Batch unique keys are sorted, deduplicated, and cover exactly the
    /// batch's key multiset.
    #[test]
    fn ctr_unique_keys_invariants(seed in 0u64..200, start in 0u64..5000, n in 1usize..40) {
        let ds = CtrDataset::new(CtrConfig::tiny(seed));
        let batch = ds.train_batch(start, n);
        let uniq = batch.unique_keys();
        prop_assert!(uniq.windows(2).all(|w| w[0] < w[1]));
        for &k in &batch.keys {
            prop_assert!(uniq.binary_search(&k).is_ok());
        }
    }

    /// Graph generation yields a simple symmetric graph for any small
    /// configuration.
    #[test]
    fn graph_is_simple_and_symmetric(
        n in 20usize..120,
        m in 2usize..6,
        homophily in 0.0f64..1.0,
        seed in 0u64..100,
    ) {
        let g = Graph::generate(GraphConfig {
            n_nodes: n,
            attach_m: m,
            n_classes: 4,
            homophily,
            hub_bias: 0.4,
            hub_zipf: 1.0,
            rich_club_fraction: 0.05,
            rich_club_links: 4,
            test_fraction: 0.2,
            seed,
        });
        for v in 0..n as u32 {
            let nbrs = g.neighbors_of(v);
            prop_assert!(!nbrs.contains(&v), "self loop at {v}");
            let mut sorted = nbrs.to_vec();
            sorted.sort_unstable();
            sorted.dedup();
            prop_assert_eq!(sorted.len(), nbrs.len(), "parallel edge at {}", v);
            for &u in nbrs {
                prop_assert!(g.neighbors_of(u).contains(&v));
            }
        }
    }

    /// Neighbour samples have exact rectangular shapes and only contain
    /// real neighbours (or self-loops for isolated nodes).
    #[test]
    fn sampler_shapes(f1 in 1usize..6, f2 in 1usize..5, batch in 1usize..20, cursor in 0u64..100) {
        let g = Graph::generate(GraphConfig::tiny(5));
        let s = NeighborSampler::new(f1, f2);
        let b = s.train_batch(&g, cursor, batch);
        prop_assert_eq!(b.targets.len(), batch);
        prop_assert_eq!(b.hop1.len(), batch * f1);
        prop_assert_eq!(b.hop2_targets.len(), batch * f2);
        prop_assert_eq!(b.hop2_hop1.len(), batch * f1 * f2);
        for (i, &t) in b.targets.iter().enumerate() {
            for &u in &b.hop1[i * f1..(i + 1) * f1] {
                prop_assert!(u == t || g.neighbors_of(t).contains(&u));
            }
        }
    }

    /// AUC is invariant under strictly monotone score transforms.
    #[test]
    fn auc_invariant_under_monotone_transform(
        scores in proptest::collection::vec(-10.0f32..10.0, 2..50),
        labels_bits in proptest::collection::vec(any::<bool>(), 2..50),
    ) {
        let n = scores.len().min(labels_bits.len());
        let scores = &scores[..n];
        let labels: Vec<f32> = labels_bits[..n].iter().map(|&b| if b { 1.0 } else { 0.0 }).collect();
        let base = het_data::auc(scores, &labels);
        let transformed: Vec<f32> = scores.iter().map(|&s| (s * 0.3).tanh() * 5.0 + 1.0).collect();
        let t = het_data::auc(&transformed, &labels);
        prop_assert!((base - t).abs() < 1e-9);
    }
}
