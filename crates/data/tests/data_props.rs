//! Property-style tests of the workload generators, driven by a seeded
//! in-tree generator so runs are deterministic and hermetic.

use het_data::{CtrConfig, CtrDataset, Graph, GraphConfig, NeighborSampler, ZipfSampler};
use het_rng::rngs::{SmallRng, StdRng};
use het_rng::{Rng, SeedableRng};

const CASES: usize = 96;

/// Zipf PMF sums to one and is monotone for any exponent/support.
#[test]
fn zipf_pmf_is_a_distribution() {
    let mut rng = StdRng::seed_from_u64(0xDA7A_0001);
    for _ in 0..CASES {
        let n = rng.gen_range(1usize..500);
        let exp = rng.gen_range(0.0f64..3.0);
        let z = ZipfSampler::new(n, exp);
        let total: f64 = (0..n).map(|k| z.pmf(k)).sum();
        assert!((total - 1.0).abs() < 1e-9);
        for k in 1..n {
            assert!(z.pmf(k) <= z.pmf(k - 1) + 1e-12);
        }
    }
}

/// Samples always fall inside the support.
#[test]
fn zipf_samples_in_support() {
    let mut rng = StdRng::seed_from_u64(0xDA7A_0002);
    for _ in 0..CASES {
        let n = rng.gen_range(1usize..200);
        let exp = rng.gen_range(0.0f64..2.5);
        let seed = rng.gen_range(0u64..1000);
        let z = ZipfSampler::new(n, exp);
        let mut sample_rng = SmallRng::seed_from_u64(seed);
        for _ in 0..100 {
            assert!(z.sample(&mut sample_rng) < n);
        }
    }
}

/// CTR examples are pure functions of (seed, index, split) and every
/// key lands inside its field range.
#[test]
fn ctr_examples_deterministic_and_ranged() {
    let mut rng = StdRng::seed_from_u64(0xDA7A_0003);
    for _ in 0..CASES {
        let seed = rng.gen_range(0u64..1000);
        let idx = rng.gen_range(0u64..10_000);
        let ds = CtrDataset::new(CtrConfig::tiny(seed));
        let a = ds.example(idx, false);
        let b = ds.example(idx, false);
        assert_eq!(&a, &b);
        for (f, &k) in a.0.iter().enumerate() {
            assert!(ds.field_range(f).contains(&k));
        }
        assert!(a.1 == 0.0 || a.1 == 1.0);
    }
}

/// Batch unique keys are sorted, deduplicated, and cover exactly the
/// batch's key multiset.
#[test]
fn ctr_unique_keys_invariants() {
    let mut rng = StdRng::seed_from_u64(0xDA7A_0004);
    for _ in 0..CASES {
        let seed = rng.gen_range(0u64..200);
        let start = rng.gen_range(0u64..5000);
        let n = rng.gen_range(1usize..40);
        let ds = CtrDataset::new(CtrConfig::tiny(seed));
        let batch = ds.train_batch(start, n);
        let uniq = batch.unique_keys();
        assert!(uniq.windows(2).all(|w| w[0] < w[1]));
        for &k in &batch.keys {
            assert!(uniq.binary_search(&k).is_ok());
        }
    }
}

/// Graph generation yields a simple symmetric graph for any small
/// configuration.
#[test]
fn graph_is_simple_and_symmetric() {
    let mut rng = StdRng::seed_from_u64(0xDA7A_0005);
    for _ in 0..24 {
        let n = rng.gen_range(20usize..120);
        let m = rng.gen_range(2usize..6);
        let homophily = rng.gen_range(0.0f64..1.0);
        let seed = rng.gen_range(0u64..100);
        let g = Graph::generate(GraphConfig {
            n_nodes: n,
            attach_m: m,
            n_classes: 4,
            homophily,
            hub_bias: 0.4,
            hub_zipf: 1.0,
            rich_club_fraction: 0.05,
            rich_club_links: 4,
            test_fraction: 0.2,
            seed,
        });
        for v in 0..n as u32 {
            let nbrs = g.neighbors_of(v);
            assert!(!nbrs.contains(&v), "self loop at {v}");
            let mut sorted = nbrs.to_vec();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), nbrs.len(), "parallel edge at {v}");
            for &u in nbrs {
                assert!(g.neighbors_of(u).contains(&v));
            }
        }
    }
}

/// Neighbour samples have exact rectangular shapes and only contain
/// real neighbours (or self-loops for isolated nodes).
#[test]
fn sampler_shapes() {
    let mut rng = StdRng::seed_from_u64(0xDA7A_0006);
    let g = Graph::generate(GraphConfig::tiny(5));
    for _ in 0..CASES {
        let f1 = rng.gen_range(1usize..6);
        let f2 = rng.gen_range(1usize..5);
        let batch = rng.gen_range(1usize..20);
        let cursor = rng.gen_range(0u64..100);
        let s = NeighborSampler::new(f1, f2);
        let b = s.train_batch(&g, cursor, batch);
        assert_eq!(b.targets.len(), batch);
        assert_eq!(b.hop1.len(), batch * f1);
        assert_eq!(b.hop2_targets.len(), batch * f2);
        assert_eq!(b.hop2_hop1.len(), batch * f1 * f2);
        for (i, &t) in b.targets.iter().enumerate() {
            for &u in &b.hop1[i * f1..(i + 1) * f1] {
                assert!(u == t || g.neighbors_of(t).contains(&u));
            }
        }
    }
}

/// AUC is invariant under strictly monotone score transforms.
#[test]
fn auc_invariant_under_monotone_transform() {
    let mut rng = StdRng::seed_from_u64(0xDA7A_0007);
    for _ in 0..CASES {
        let n = rng.gen_range(2usize..50);
        let scores: Vec<f32> = (0..n).map(|_| rng.gen_range(-10.0f32..10.0)).collect();
        let labels: Vec<f32> = (0..n)
            .map(|_| if rng.gen_bool(0.5) { 1.0 } else { 0.0 })
            .collect();
        let base = het_data::auc(&scores, &labels);
        let transformed: Vec<f32> = scores
            .iter()
            .map(|&s| (s * 0.3).tanh() * 5.0 + 1.0)
            .collect();
        let t = het_data::auc(&transformed, &labels);
        assert!((base - t).abs() < 1e-9);
    }
}
