//! SpaceSaving heavy-hitter tracking (Metwally, Agrawal, El Abbadi 2005).
//!
//! HET's whole design rests on knowing that a small set of embeddings
//! receives most updates (Fig. 3). In production the hot set must be
//! discovered *online* with bounded memory — exactly the heavy-hitters
//! problem. This is the standard counter-based sketch for it: `k`
//! monitored keys; an unmonitored arrival replaces the minimum-count key
//! and inherits its count (as the overestimation bound). Guarantees:
//! any key with true frequency > N/k is monitored, and every estimate
//! overshoots by at most `min_count`.

use crate::Key;
use std::collections::{BTreeSet, HashMap};

/// A SpaceSaving sketch over embedding keys.
pub struct SpaceSaving {
    capacity: usize,
    /// key → (estimated count, overestimation).
    counters: HashMap<Key, (u64, u64)>,
    /// (count, key) ordered set for O(log k) minimum lookups.
    order: BTreeSet<(u64, Key)>,
    total: u64,
}

impl SpaceSaving {
    /// Creates a sketch monitoring at most `capacity` keys.
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "sketch capacity must be positive");
        SpaceSaving {
            capacity,
            counters: HashMap::with_capacity(capacity + 1),
            order: BTreeSet::new(),
            total: 0,
        }
    }

    /// Number of keys currently monitored.
    pub fn len(&self) -> usize {
        self.counters.len()
    }

    /// True when nothing has been observed.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
    }

    /// Total observations so far.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Records one observation of `key`.
    pub fn observe(&mut self, key: Key) {
        self.total += 1;
        if let Some(&(count, over)) = self.counters.get(&key) {
            self.order.remove(&(count, key));
            self.counters.insert(key, (count + 1, over));
            self.order.insert((count + 1, key));
            return;
        }
        if self.counters.len() < self.capacity {
            self.counters.insert(key, (1, 0));
            self.order.insert((1, key));
            return;
        }
        // Replace the minimum: the newcomer inherits its count as the
        // overestimation bound.
        let &(min_count, min_key) = self.order.iter().next().expect("non-empty at capacity");
        self.order.remove(&(min_count, min_key));
        self.counters.remove(&min_key);
        self.counters.insert(key, (min_count + 1, min_count));
        self.order.insert((min_count + 1, key));
    }

    /// The estimated count of a key, with its overestimation bound;
    /// `None` if the key is not monitored.
    pub fn estimate(&self, key: Key) -> Option<(u64, u64)> {
        self.counters.get(&key).copied()
    }

    /// The monitored keys sorted by estimated count, descending.
    pub fn top(&self, n: usize) -> Vec<(Key, u64)> {
        self.order
            .iter()
            .rev()
            .take(n)
            .map(|&(count, key)| (key, count))
            .collect()
    }

    /// Keys *guaranteed* to have true frequency above `threshold`
    /// (estimate − overestimation > threshold).
    pub fn guaranteed_above(&self, threshold: u64) -> Vec<Key> {
        let mut keys: Vec<Key> = self
            .counters
            .iter()
            .filter(|(_, &(count, over))| count - over > threshold)
            .map(|(&k, _)| k)
            .collect();
        keys.sort_unstable();
        keys
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zipf::ZipfSampler;
    use het_rng::rngs::SmallRng;
    use het_rng::SeedableRng;

    #[test]
    fn exact_when_under_capacity() {
        let mut s = SpaceSaving::new(8);
        for _ in 0..5 {
            s.observe(1);
        }
        for _ in 0..3 {
            s.observe(2);
        }
        assert_eq!(s.estimate(1), Some((5, 0)));
        assert_eq!(s.estimate(2), Some((3, 0)));
        assert_eq!(s.estimate(9), None);
        assert_eq!(s.total(), 8);
        assert_eq!(s.top(1), vec![(1, 5)]);
        assert_eq!(s.guaranteed_above(2), vec![1, 2]);
        assert_eq!(s.guaranteed_above(4), vec![1]);
    }

    #[test]
    fn replacement_keeps_capacity_and_inherits_count() {
        let mut s = SpaceSaving::new(2);
        s.observe(1);
        s.observe(1);
        s.observe(2);
        s.observe(3); // evicts key 2 (count 1), inherits 1 -> (2, 1)
        assert_eq!(s.len(), 2);
        assert_eq!(s.estimate(2), None);
        assert_eq!(s.estimate(3), Some((2, 1)));
        // Key 3's guaranteed count is 2-1=1: not guaranteed above 1.
        assert_eq!(s.guaranteed_above(1), vec![1]);
    }

    #[test]
    fn estimates_never_undercount() {
        // SpaceSaving invariant: estimate >= true count for monitored
        // keys.
        let mut s = SpaceSaving::new(16);
        let z = ZipfSampler::new(200, 1.2);
        let mut rng = SmallRng::seed_from_u64(9);
        let mut truth = std::collections::HashMap::new();
        for _ in 0..20_000 {
            let k = z.sample(&mut rng) as Key;
            *truth.entry(k).or_insert(0u64) += 1;
            s.observe(k);
        }
        for (k, (est, over)) in s.counters.iter().map(|(&k, &v)| (k, v)) {
            let t = truth.get(&k).copied().unwrap_or(0);
            assert!(est >= t, "estimate {est} under-counts true {t} for key {k}");
            assert!(est - over <= t, "guaranteed bound must not exceed truth");
        }
    }

    #[test]
    fn hot_keys_of_a_zipf_stream_are_captured() {
        let mut s = SpaceSaving::new(32);
        let z = ZipfSampler::new(10_000, 1.2);
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..100_000 {
            s.observe(z.sample(&mut rng) as Key);
        }
        let top: Vec<Key> = s.top(10).into_iter().map(|(k, _)| k).collect();
        // The five most popular Zipf ranks must all be monitored in the
        // top 10.
        for hot in 0..5 {
            assert!(
                top.contains(&(hot as Key)),
                "rank {hot} missing from {top:?}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = SpaceSaving::new(0);
    }
}
