//! Synthetic workload generators for the HET reproduction.
//!
//! The paper evaluates on Criteo (CTR prediction) and three large graphs
//! (Reddit, Amazon, ogbn-mag). Those datasets are not available here, so
//! this crate generates synthetic equivalents that preserve the two
//! properties every HET experiment depends on:
//!
//! 1. **Skewed key popularity** (paper Fig. 3): categorical features are
//!    drawn from Zipf distributions, graphs from preferential attachment,
//!    so a small fraction of embeddings receives most updates.
//! 2. **Learnability**: labels are generated from a planted ground-truth
//!    model (logistic weights for CTR, homophilous communities for
//!    graphs), so AUC/accuracy rises during training and "time to reach a
//!    quality threshold" — the paper's main metric — is well defined.
//!
//! Both generators are deterministic functions of `(seed, index)`, so a
//! dataset is O(1) memory no matter how many examples the trainer draws,
//! and every simulated worker sees a disjoint shard by striding.

#![warn(missing_docs)]

pub mod ctr;
pub mod graph;
pub mod metrics;
pub mod topk;
pub mod zipf;

pub use ctr::{CtrBatch, CtrConfig, CtrDataset};
pub use graph::{GnnBatch, Graph, GraphConfig, NeighborSampler};
pub use metrics::{auc, log_loss, LatencyHistogram};
pub use topk::SpaceSaving;
pub use zipf::ZipfSampler;

/// An embedding key: a feature ID in the global embedding table.
pub type Key = u64;
