//! Zipf-distributed sampling over `{0, 1, …, n−1}`.
//!
//! `P(k) ∝ 1/(k+1)^s`. The paper observes that embedding updates follow
//! power-law distributions (Fig. 3: the top 10 % of Criteo embeddings
//! receive ~90 % of updates); this sampler is how the CTR generator
//! reproduces that skew. Implementation: inverse-CDF over a precomputed
//! cumulative table with binary search — O(n) setup, O(log n) per draw,
//! exact for any exponent including s = 0 (uniform).

use het_rng::Rng;

/// Samples ranks from a Zipf distribution with exponent `s` over `n`
/// items, rank 0 being the most popular.
#[derive(Clone, Debug)]
pub struct ZipfSampler {
    cdf: Vec<f64>,
}

impl ZipfSampler {
    /// Creates a sampler over `n` items with exponent `exponent ≥ 0`.
    ///
    /// # Panics
    /// Panics if `n == 0` or the exponent is negative/non-finite.
    pub fn new(n: usize, exponent: f64) -> Self {
        assert!(n > 0, "Zipf support must be non-empty");
        assert!(
            exponent >= 0.0 && exponent.is_finite(),
            "Zipf exponent must be a non-negative finite number"
        );
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for k in 0..n {
            acc += 1.0 / ((k + 1) as f64).powf(exponent);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        // Guard against floating-point round-off leaving the last entry
        // fractionally below 1.0.
        if let Some(last) = cdf.last_mut() {
            *last = 1.0;
        }
        ZipfSampler { cdf }
    }

    /// Number of items in the support.
    pub fn n(&self) -> usize {
        self.cdf.len()
    }

    /// Draws one rank.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }

    /// Probability mass of rank `k`.
    pub fn pmf(&self, k: usize) -> f64 {
        if k >= self.cdf.len() {
            return 0.0;
        }
        if k == 0 {
            self.cdf[0]
        } else {
            self.cdf[k] - self.cdf[k - 1]
        }
    }

    /// Cumulative mass of the top `k` ranks (the paper's Fig. 3 x-axis is
    /// "top x % of embeddings", its y-axis is this value).
    pub fn top_k_mass(&self, k: usize) -> f64 {
        if k == 0 {
            0.0
        } else {
            self.cdf[(k - 1).min(self.cdf.len() - 1)]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use het_rng::rngs::StdRng;
    use het_rng::SeedableRng;

    #[test]
    fn uniform_when_exponent_zero() {
        let z = ZipfSampler::new(4, 0.0);
        for k in 0..4 {
            assert!((z.pmf(k) - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn mass_is_monotone_decreasing_in_rank() {
        let z = ZipfSampler::new(100, 1.1);
        for k in 1..100 {
            assert!(z.pmf(k) <= z.pmf(k - 1) + 1e-15);
        }
    }

    #[test]
    fn cdf_terminates_at_one() {
        let z = ZipfSampler::new(10, 1.5);
        assert!((z.top_k_mass(10) - 1.0).abs() < 1e-12);
        assert_eq!(z.pmf(10), 0.0);
        assert_eq!(z.top_k_mass(0), 0.0);
    }

    #[test]
    fn empirical_distribution_matches_pmf() {
        let z = ZipfSampler::new(50, 1.0);
        let mut rng = StdRng::seed_from_u64(42);
        let mut counts = vec![0usize; 50];
        let draws = 200_000;
        for _ in 0..draws {
            counts[z.sample(&mut rng)] += 1;
        }
        for k in [0usize, 1, 5, 20] {
            let emp = counts[k] as f64 / draws as f64;
            let expect = z.pmf(k);
            assert!(
                (emp - expect).abs() < 0.01,
                "rank {k}: empirical {emp} vs pmf {expect}"
            );
        }
    }

    #[test]
    fn skew_matches_paper_figure3_shape() {
        // With ~10^5 keys and exponent ≈ 1.1, the top 10 % of keys should
        // hold the large majority of the mass — the paper's Criteo
        // observation (top 10 % ≈ 90 % of updates).
        let n = 100_000;
        let z = ZipfSampler::new(n, 1.1);
        let top10 = z.top_k_mass(n / 10);
        assert!(top10 > 0.8, "top-10% mass {top10} should dominate");
    }

    #[test]
    #[should_panic(expected = "support must be non-empty")]
    fn empty_support_rejected() {
        let _ = ZipfSampler::new(0, 1.0);
    }

    #[test]
    #[should_panic(expected = "exponent must be")]
    fn negative_exponent_rejected() {
        let _ = ZipfSampler::new(4, -1.0);
    }

    #[test]
    fn samples_cover_support_edges() {
        let z = ZipfSampler::new(3, 2.0);
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 3];
        for _ in 0..10_000 {
            seen[z.sample(&mut rng)] = true;
        }
        assert!(
            seen.iter().all(|&s| s),
            "all ranks should eventually appear"
        );
    }
}
