//! Evaluation metrics: ROC AUC (the paper's Criteo quality metric,
//! thresholds around 0.80 in §5) and log loss.

/// Area under the ROC curve for scores against {0,1} labels, computed by
/// the rank-sum (Mann–Whitney U) method with average ranks for ties.
/// Returns 0.5 when either class is absent.
///
/// # Panics
/// Panics if lengths differ.
pub fn auc(scores: &[f32], labels: &[f32]) -> f64 {
    assert_eq!(scores.len(), labels.len(), "scores/labels length mismatch");
    let n = scores.len();
    let n_pos = labels.iter().filter(|&&y| y > 0.5).count();
    let n_neg = n - n_pos;
    if n_pos == 0 || n_neg == 0 {
        return 0.5;
    }
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| {
        scores[a]
            .partial_cmp(&scores[b])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    // Average ranks over tied score groups.
    let mut rank_sum_pos = 0.0f64;
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && scores[order[j + 1]] == scores[order[i]] {
            j += 1;
        }
        // Ranks are 1-based; all of i..=j share the average rank.
        let avg_rank = (i + j + 2) as f64 / 2.0;
        for &idx in &order[i..=j] {
            if labels[idx] > 0.5 {
                rank_sum_pos += avg_rank;
            }
        }
        i = j + 1;
    }
    let u = rank_sum_pos - (n_pos * (n_pos + 1)) as f64 / 2.0;
    u / (n_pos as f64 * n_neg as f64)
}

/// Mean binary log loss of probability scores against {0,1} labels, with
/// probability clamping for numerical safety.
///
/// # Panics
/// Panics if lengths differ.
pub fn log_loss(probs: &[f32], labels: &[f32]) -> f64 {
    assert_eq!(probs.len(), labels.len(), "probs/labels length mismatch");
    if probs.is_empty() {
        return 0.0;
    }
    let eps = 1e-7f64;
    let total: f64 = probs
        .iter()
        .zip(labels)
        .map(|(&p, &y)| {
            let p = (p as f64).clamp(eps, 1.0 - eps);
            if y > 0.5 {
                -p.ln()
            } else {
                -(1.0 - p).ln()
            }
        })
        .sum();
    total / probs.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_ranking_gives_one() {
        let scores = [0.1, 0.2, 0.8, 0.9];
        let labels = [0.0, 0.0, 1.0, 1.0];
        assert!((auc(&scores, &labels) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn inverted_ranking_gives_zero() {
        let scores = [0.9, 0.8, 0.2, 0.1];
        let labels = [0.0, 0.0, 1.0, 1.0];
        assert!(auc(&scores, &labels).abs() < 1e-12);
    }

    #[test]
    fn constant_scores_give_half() {
        let scores = [0.5, 0.5, 0.5, 0.5];
        let labels = [0.0, 1.0, 0.0, 1.0];
        assert!((auc(&scores, &labels) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn single_class_gives_half() {
        assert_eq!(auc(&[0.3, 0.7], &[1.0, 1.0]), 0.5);
        assert_eq!(auc(&[0.3, 0.7], &[0.0, 0.0]), 0.5);
    }

    #[test]
    fn hand_computed_case() {
        // scores: pos {0.8, 0.4}, neg {0.6, 0.2}.
        // Pairs: (0.8>0.6) (0.8>0.2) (0.4<0.6) (0.4>0.2) -> 3/4.
        let scores = [0.8, 0.4, 0.6, 0.2];
        let labels = [1.0, 1.0, 0.0, 0.0];
        assert!((auc(&scores, &labels) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn ties_between_classes_count_half() {
        // One pos and one neg with identical scores -> AUC 0.5.
        let scores = [0.5, 0.5];
        let labels = [1.0, 0.0];
        assert!((auc(&scores, &labels) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn log_loss_confident_correct_is_small() {
        let l = log_loss(&[0.999, 0.001], &[1.0, 0.0]);
        assert!(l < 0.01);
        let bad = log_loss(&[0.001, 0.999], &[1.0, 0.0]);
        assert!(bad > 4.0);
    }

    #[test]
    fn log_loss_clamps_extremes() {
        let l = log_loss(&[1.0, 0.0], &[0.0, 1.0]);
        assert!(l.is_finite());
    }

    #[test]
    fn log_loss_empty_is_zero() {
        assert_eq!(log_loss(&[], &[]), 0.0);
    }
}
