//! Evaluation metrics: ROC AUC (the paper's Criteo quality metric,
//! thresholds around 0.80 in §5), log loss, and a deterministic
//! streaming latency histogram for the serving path.

/// Area under the ROC curve for scores against {0,1} labels, computed by
/// the rank-sum (Mann–Whitney U) method with average ranks for ties.
/// Returns 0.5 when either class is absent.
///
/// # Panics
/// Panics if lengths differ.
pub fn auc(scores: &[f32], labels: &[f32]) -> f64 {
    assert_eq!(scores.len(), labels.len(), "scores/labels length mismatch");
    let n = scores.len();
    let n_pos = labels.iter().filter(|&&y| y > 0.5).count();
    let n_neg = n - n_pos;
    if n_pos == 0 || n_neg == 0 {
        return 0.5;
    }
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| {
        scores[a]
            .partial_cmp(&scores[b])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    // Average ranks over tied score groups.
    let mut rank_sum_pos = 0.0f64;
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && scores[order[j + 1]] == scores[order[i]] {
            j += 1;
        }
        // Ranks are 1-based; all of i..=j share the average rank.
        let avg_rank = (i + j + 2) as f64 / 2.0;
        for &idx in &order[i..=j] {
            if labels[idx] > 0.5 {
                rank_sum_pos += avg_rank;
            }
        }
        i = j + 1;
    }
    let u = rank_sum_pos - (n_pos * (n_pos + 1)) as f64 / 2.0;
    u / (n_pos as f64 * n_neg as f64)
}

/// Mean binary log loss of probability scores against {0,1} labels, with
/// probability clamping for numerical safety.
///
/// # Panics
/// Panics if lengths differ.
pub fn log_loss(probs: &[f32], labels: &[f32]) -> f64 {
    assert_eq!(probs.len(), labels.len(), "probs/labels length mismatch");
    if probs.is_empty() {
        return 0.0;
    }
    let eps = 1e-7f64;
    let total: f64 = probs
        .iter()
        .zip(labels)
        .map(|(&p, &y)| {
            let p = (p as f64).clamp(eps, 1.0 - eps);
            if y > 0.5 {
                -p.ln()
            } else {
                -(1.0 - p).ln()
            }
        })
        .sum();
    total / probs.len() as f64
}

/// Sub-bucket resolution of [`LatencyHistogram`]: each power-of-two
/// range is split into `2^SUB_BITS` equal bins, bounding the relative
/// quantile error by `2^-SUB_BITS` (6.25 %).
const SUB_BITS: u32 = 4;
const SUB: usize = 1 << SUB_BITS;
/// Bucket count covering the full `u64` range at `SUB_BITS` resolution.
const BUCKETS: usize = (64 - SUB_BITS as usize) * SUB + 1;

/// A deterministic streaming quantile estimator: a fixed-bin log-scale
/// histogram over `u64` values (latencies in nanoseconds).
///
/// Values below `2^SUB_BITS` land in exact unit-width bins; above that,
/// each power-of-two range is split into `2^SUB_BITS` sub-bins, so a
/// quantile read back from the histogram overshoots the true sample
/// quantile by at most one part in `2^SUB_BITS` (6.25 %). Everything is
/// integer arithmetic over a fixed layout — the same stream of `record`
/// calls always produces the same bytes, which is what the serving
/// report's byte-identity contract needs. O(1) per record, O(buckets)
/// per quantile, ~8 KiB of state.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LatencyHistogram {
    counts: Vec<u64>,
    total: u64,
    max: u64,
    sum: u128,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            counts: vec![0; BUCKETS],
            total: 0,
            max: 0,
            sum: 0,
        }
    }

    /// The bucket index of `v`: exact below `2^SUB_BITS`, log-scale with
    /// `2^SUB_BITS` sub-bins per octave above.
    fn bucket_of(v: u64) -> usize {
        if v < SUB as u64 {
            return v as usize;
        }
        let msb = 63 - v.leading_zeros();
        let shift = msb - SUB_BITS;
        (shift as usize) * SUB + (v >> shift) as usize
    }

    /// The largest value that maps to bucket `b` (inclusive upper bound).
    fn upper_of(b: usize) -> u64 {
        if b < SUB {
            return b as u64;
        }
        let shift = (b / SUB - 1) as u32;
        let sub = (b % SUB + SUB) as u128;
        // The very top bucket's bound exceeds u64; saturate.
        (((sub + 1) << shift) - 1).min(u64::MAX as u128) as u64
    }

    /// Records one observation.
    pub fn record(&mut self, v: u64) {
        self.counts[Self::bucket_of(v)] += 1;
        self.total += 1;
        self.max = self.max.max(v);
        self.sum += v as u128;
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// The largest recorded observation (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of the recorded observations (exact, from the running sum).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// The `q`-quantile (`0 < q ≤ 1`): the upper bound of the bucket
    /// holding the sample of rank `⌈q·n⌉`, capped at the recorded
    /// maximum. Guaranteed `≥` the true sample quantile and within one
    /// sub-bin width (`2^-SUB_BITS` relative) above it. Returns 0 when
    /// empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let rank = ((q * self.total as f64).ceil() as u64).clamp(1, self.total);
        let mut seen = 0u64;
        for (b, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Self::upper_of(b).min(self.max);
            }
        }
        self.max
    }

    /// Folds another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.max = self.max.max(other.max);
        self.sum += other.sum;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_ranking_gives_one() {
        let scores = [0.1, 0.2, 0.8, 0.9];
        let labels = [0.0, 0.0, 1.0, 1.0];
        assert!((auc(&scores, &labels) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn inverted_ranking_gives_zero() {
        let scores = [0.9, 0.8, 0.2, 0.1];
        let labels = [0.0, 0.0, 1.0, 1.0];
        assert!(auc(&scores, &labels).abs() < 1e-12);
    }

    #[test]
    fn constant_scores_give_half() {
        let scores = [0.5, 0.5, 0.5, 0.5];
        let labels = [0.0, 1.0, 0.0, 1.0];
        assert!((auc(&scores, &labels) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn single_class_gives_half() {
        assert_eq!(auc(&[0.3, 0.7], &[1.0, 1.0]), 0.5);
        assert_eq!(auc(&[0.3, 0.7], &[0.0, 0.0]), 0.5);
    }

    #[test]
    fn hand_computed_case() {
        // scores: pos {0.8, 0.4}, neg {0.6, 0.2}.
        // Pairs: (0.8>0.6) (0.8>0.2) (0.4<0.6) (0.4>0.2) -> 3/4.
        let scores = [0.8, 0.4, 0.6, 0.2];
        let labels = [1.0, 1.0, 0.0, 0.0];
        assert!((auc(&scores, &labels) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn ties_between_classes_count_half() {
        // One pos and one neg with identical scores -> AUC 0.5.
        let scores = [0.5, 0.5];
        let labels = [1.0, 0.0];
        assert!((auc(&scores, &labels) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn log_loss_confident_correct_is_small() {
        let l = log_loss(&[0.999, 0.001], &[1.0, 0.0]);
        assert!(l < 0.01);
        let bad = log_loss(&[0.001, 0.999], &[1.0, 0.0]);
        assert!(bad > 4.0);
    }

    #[test]
    fn log_loss_clamps_extremes() {
        let l = log_loss(&[1.0, 0.0], &[0.0, 1.0]);
        assert!(l.is_finite());
    }

    #[test]
    fn log_loss_empty_is_zero() {
        assert_eq!(log_loss(&[], &[]), 0.0);
    }

    /// Exact sample quantile (rank ⌈q·n⌉) from a sorted slice.
    fn true_quantile(sorted: &[u64], q: f64) -> u64 {
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        sorted[rank - 1]
    }

    fn check_against_ground_truth(values: &[u64]) {
        let mut h = LatencyHistogram::new();
        for &v in values {
            h.record(v);
        }
        let mut sorted = values.to_vec();
        sorted.sort_unstable();
        assert_eq!(h.count(), values.len() as u64);
        assert_eq!(h.max(), *sorted.last().unwrap());
        for q in [0.5, 0.95, 0.99, 1.0] {
            let truth = true_quantile(&sorted, q);
            let est = h.quantile(q);
            // Never below the true quantile, never more than one
            // sub-bin (1/16 relative) above it.
            assert!(est >= truth, "q={q}: est {est} < truth {truth}");
            assert!(
                est <= truth + truth / 16 + 1,
                "q={q}: est {est} too far above truth {truth}"
            );
        }
    }

    #[test]
    fn histogram_matches_sorted_sample_small_values() {
        check_against_ground_truth(&[3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 0, 7, 15, 12]);
    }

    #[test]
    fn histogram_matches_sorted_sample_wide_range() {
        // Latency-like spread: sub-µs to seconds, in nanoseconds.
        let mut values = Vec::new();
        let mut x = 0x9e3779b97f4a7c15u64;
        for _ in 0..5000 {
            // Cheap deterministic pseudo-random walk over 10 orders
            // of magnitude.
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            values.push(100 + x % 10_000_000_000);
        }
        check_against_ground_truth(&values);
    }

    #[test]
    fn histogram_matches_sorted_sample_heavy_ties() {
        let mut values = vec![250_000u64; 900];
        values.extend(std::iter::repeat_n(4_000_000u64, 95));
        values.extend(std::iter::repeat_n(60_000_000u64, 5));
        check_against_ground_truth(&values);
    }

    #[test]
    fn histogram_empty_returns_zero() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.quantile(0.99), 0);
    }

    #[test]
    fn histogram_merge_equals_combined_stream() {
        let stream_a = [5u64, 900, 44_000, 1_000_000, 17];
        let stream_b = [123u64, 123, 9_999_999, 2];
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        let mut combined = LatencyHistogram::new();
        for &v in &stream_a {
            a.record(v);
            combined.record(v);
        }
        for &v in &stream_b {
            b.record(v);
            combined.record(v);
        }
        a.merge(&b);
        assert_eq!(a, combined);
        assert_eq!(a.quantile(0.5), combined.quantile(0.5));
        assert_eq!(a.mean(), combined.mean());
    }

    #[test]
    fn histogram_bucket_bounds_are_consistent() {
        // Every value maps to a bucket whose upper bound contains it
        // and whose predecessor's upper bound does not.
        for v in (0u64..4096).chain([u64::MAX, u64::MAX - 1, 1 << 40, (1 << 40) + 1]) {
            let b = LatencyHistogram::bucket_of(v);
            assert!(v <= LatencyHistogram::upper_of(b), "v={v} b={b}");
            if b > 0 {
                assert!(v > LatencyHistogram::upper_of(b - 1), "v={v} b={b}");
            }
        }
    }
}
