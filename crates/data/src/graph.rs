//! Synthetic power-law graphs with planted communities, plus the
//! GraphSAGE neighbour sampler.
//!
//! The paper's GNN workloads (Reddit, Amazon, ogbn-mag) share two
//! properties this generator reproduces: a heavy-tailed degree
//! distribution (hub nodes = hot embeddings, which is what makes the HET
//! cache effective) and label structure recoverable from the topology
//! (so node classification is learnable). We use preferential attachment
//! for the power law and class-biased (homophilous) edge targets for the
//! label signal. Node-id embeddings are the only input features, exactly
//! like the paper's note about Reddit (§5.1).

use crate::Key;
use het_rng::rngs::SmallRng;
use het_rng::seq::SliceRandom;
use het_rng::{Rng, SeedableRng};

/// Configuration of the synthetic graph.
#[derive(Clone, Debug)]
pub struct GraphConfig {
    /// Number of nodes (= number of embedding keys).
    pub n_nodes: usize,
    /// Edges attached per new node (preferential attachment parameter).
    pub attach_m: usize,
    /// Number of node classes.
    pub n_classes: usize,
    /// Probability an edge endpoint is drawn from the same class
    /// (homophily — the label signal).
    pub homophily: f64,
    /// Probability an edge endpoint is drawn from the planted-hub Zipf
    /// distribution instead of the degree-proportional pool. Plain
    /// preferential attachment yields a degree exponent of ~3, whose
    /// hubs are much lighter than real social/citation graphs (Reddit's
    /// top communities, ogbn-mag's venue hubs); the planted-hub mix
    /// reproduces the heavy access concentration the paper's Fig. 3/8
    /// rely on.
    pub hub_bias: f64,
    /// Zipf exponent of the planted-hub distribution over node IDs.
    pub hub_zipf: f64,
    /// Fraction of the lowest-ID (hub) nodes forming a densely
    /// interconnected core — the *rich-club* structure real social and
    /// citation networks exhibit. Without it, a hub's neighbourhood is a
    /// uniform spray over the tail and 2-hop sampling never
    /// concentrates; with it, walks fold back into the cacheable core
    /// (this is what gives the paper's Fig. 8 its 85–97 % hit rates).
    pub rich_club_fraction: f64,
    /// Core-to-core edges added per rich-club member.
    pub rich_club_links: usize,
    /// Fraction of nodes held out for testing, in (0, 1).
    pub test_fraction: f64,
    /// Master seed.
    pub seed: u64,
}

impl Default for GraphConfig {
    fn default() -> Self {
        GraphConfig {
            n_nodes: 20_000,
            attach_m: 8,
            n_classes: 16,
            homophily: 0.8,
            hub_bias: 0.85,
            hub_zipf: 1.05,
            rich_club_fraction: 0.08,
            rich_club_links: 64,
            test_fraction: 0.2,
            seed: 0x6EA9,
        }
    }
}

impl GraphConfig {
    /// Scaled-down stand-in for Reddit (dense, medium-sized).
    pub fn reddit_like(seed: u64) -> Self {
        GraphConfig {
            n_nodes: 24_000,
            attach_m: 15,
            n_classes: 16,
            seed,
            ..Default::default()
        }
    }

    /// Scaled-down stand-in for the Amazon co-purchasing graph (large,
    /// sparser).
    pub fn amazon_like(seed: u64) -> Self {
        GraphConfig {
            n_nodes: 60_000,
            attach_m: 6,
            n_classes: 16,
            seed,
            ..Default::default()
        }
    }

    /// Scaled-down stand-in for ogbn-mag (large citation graph).
    pub fn ogbn_mag_like(seed: u64) -> Self {
        GraphConfig {
            n_nodes: 50_000,
            attach_m: 5,
            n_classes: 16,
            seed,
            ..Default::default()
        }
    }

    /// A tiny configuration for unit tests.
    pub fn tiny(seed: u64) -> Self {
        GraphConfig {
            n_nodes: 300,
            attach_m: 4,
            n_classes: 4,
            seed,
            ..Default::default()
        }
    }
}

/// An undirected graph in CSR form with node labels and a train/test
/// node split.
#[derive(Clone, Debug)]
pub struct Graph {
    config: GraphConfig,
    offsets: Vec<u64>,
    neighbors: Vec<u32>,
    /// Per-adjacency-entry prefix sums of neighbour degrees, aligned with
    /// `neighbors`; powers degree-biased neighbour sampling.
    degree_prefix: Vec<u64>,
    labels: Vec<u16>,
    train_nodes: Vec<u32>,
    test_nodes: Vec<u32>,
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

impl Graph {
    /// Generates the graph from its configuration. Deterministic per
    /// seed.
    ///
    /// # Panics
    /// Panics on degenerate configurations (too few nodes/classes).
    pub fn generate(config: GraphConfig) -> Self {
        assert!(
            config.n_nodes > config.attach_m + 1,
            "need more nodes than attach_m"
        );
        assert!(config.n_classes >= 2, "need at least two classes");
        assert!(
            (0.0..=1.0).contains(&config.homophily),
            "homophily must be a probability"
        );
        assert!(
            config.test_fraction > 0.0 && config.test_fraction < 1.0,
            "test fraction must be in (0,1)"
        );
        assert!(
            (0.0..=1.0).contains(&config.hub_bias),
            "hub bias must be a probability"
        );
        let n = config.n_nodes;
        let m = config.attach_m;
        // The hub set is the rich-club core: hub-biased edges land inside
        // it (Zipf-ranked), and the core is densely interconnected below.
        let core = ((n as f64 * config.rich_club_fraction).round() as usize).clamp(
            if config.rich_club_fraction > 0.0 {
                2
            } else {
                0
            },
            n,
        );
        let hub_sampler = crate::zipf::ZipfSampler::new(core.max(m + 1), config.hub_zipf);
        let mut rng = SmallRng::seed_from_u64(config.seed);

        let labels: Vec<u16> = (0..n)
            .map(|_| rng.gen_range(0..config.n_classes) as u16)
            .collect();

        // Per-class views of the core (IDs in popularity order) with
        // matching Zipf samplers, so homophilous hub edges can target the
        // popular hubs *of the right class* directly.
        let core_span = core.max(m + 1).min(n);
        let mut class_core: Vec<Vec<u32>> = vec![Vec::new(); config.n_classes];
        for v in 0..core_span as u32 {
            class_core[labels[v as usize] as usize].push(v);
        }
        let class_hub_samplers: Vec<Option<crate::zipf::ZipfSampler>> = class_core
            .iter()
            .map(|ids| {
                if ids.is_empty() {
                    None
                } else {
                    Some(crate::zipf::ZipfSampler::new(ids.len(), config.hub_zipf))
                }
            })
            .collect();

        let mut adj: Vec<Vec<u32>> = vec![Vec::new(); n];
        // Endpoint pools for preferential attachment: every edge endpoint
        // appended once, so sampling uniformly from the pool is sampling
        // proportional to degree.
        let mut global_pool: Vec<u32> = Vec::with_capacity(2 * n * m);
        let mut class_pool: Vec<Vec<u32>> = vec![Vec::new(); config.n_classes];

        let add_edge = |adj: &mut Vec<Vec<u32>>,
                        global_pool: &mut Vec<u32>,
                        class_pool: &mut Vec<Vec<u32>>,
                        u: u32,
                        v: u32| {
            adj[u as usize].push(v);
            adj[v as usize].push(u);
            global_pool.push(u);
            global_pool.push(v);
            class_pool[labels[u as usize] as usize].push(u);
            class_pool[labels[v as usize] as usize].push(v);
        };

        // Seed clique over the first m+1 nodes.
        for u in 0..=(m as u32) {
            for v in (u + 1)..=(m as u32) {
                add_edge(&mut adj, &mut global_pool, &mut class_pool, u, v);
            }
        }

        for u in (m + 1)..n {
            let u = u as u32;
            let cls = labels[u as usize] as usize;
            let mut attached = 0usize;
            let mut attempts = 0usize;
            while attached < m && attempts < m * 20 {
                attempts += 1;
                // Hub edges follow the Zipf popularity over the core,
                // preferring same-class hubs with probability
                // `homophily` (nodes join the popular communities of
                // their own class); the remainder is class-biased
                // preferential attachment.
                let v = if rng.gen_bool(config.hub_bias) {
                    let candidate = if rng.gen_bool(config.homophily) {
                        match &class_hub_samplers[cls] {
                            Some(z) => class_core[cls][z.sample(&mut rng)],
                            None => hub_sampler.sample(&mut rng) as u32,
                        }
                    } else {
                        hub_sampler.sample(&mut rng) as u32
                    };
                    if candidate >= u {
                        // Hub not born yet: fall back to the pool.
                        global_pool[rng.gen_range(0..global_pool.len())]
                    } else {
                        candidate
                    }
                } else if rng.gen_bool(config.homophily) && !class_pool[cls].is_empty() {
                    class_pool[cls][rng.gen_range(0..class_pool[cls].len())]
                } else {
                    global_pool[rng.gen_range(0..global_pool.len())]
                };
                if v == u || adj[u as usize].contains(&v) {
                    continue;
                }
                add_edge(&mut adj, &mut global_pool, &mut class_pool, u, v);
                attached += 1;
            }
        }

        // Rich club: densely interconnect the lowest-ID (hub) nodes so
        // 2-hop walks concentrate instead of spraying over the tail.
        if core >= 2 {
            for u in 0..core as u32 {
                let mut added = 0usize;
                let mut attempts = 0usize;
                while added < config.rich_club_links && attempts < config.rich_club_links * 10 {
                    attempts += 1;
                    let v = rng.gen_range(0..core as u32);
                    if v == u || adj[u as usize].contains(&v) {
                        continue;
                    }
                    add_edge(&mut adj, &mut global_pool, &mut class_pool, u, v);
                    added += 1;
                }
            }
        }

        // CSR conversion.
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0u64);
        let mut neighbors = Vec::with_capacity(adj.iter().map(Vec::len).sum());
        for list in &adj {
            neighbors.extend_from_slice(list);
            offsets.push(neighbors.len() as u64);
        }
        // Per-node prefix sums of neighbour importance for degree-biased
        // sampling. The weight of neighbour w is √deg(w): enough bias to
        // concentrate walks on the hub core (cache-friendliness), damped
        // enough that a single global hub cannot drown out the
        // class-homophilous neighbours that carry the label signal.
        let mut degree_prefix = Vec::with_capacity(neighbors.len());
        for v in 0..n {
            let lo = offsets[v] as usize;
            let hi = offsets[v + 1] as usize;
            let mut acc = 0u64;
            for &w in &neighbors[lo..hi] {
                acc += (adj[w as usize].len() as f64).sqrt().ceil() as u64;
                degree_prefix.push(acc);
            }
        }

        // Train/test split by hashed node ID, then shuffle the train
        // order once so consecutive batches are not ID-correlated.
        let mut train_nodes = Vec::new();
        let mut test_nodes = Vec::new();
        let threshold = (config.test_fraction * u64::MAX as f64) as u64;
        for v in 0..n as u32 {
            if splitmix64(v as u64 ^ config.seed ^ 0x5917) < threshold {
                test_nodes.push(v);
            } else {
                train_nodes.push(v);
            }
        }
        train_nodes.shuffle(&mut rng);

        Graph {
            config,
            offsets,
            neighbors,
            degree_prefix,
            labels,
            train_nodes,
            test_nodes,
        }
    }

    /// The configuration this graph was generated from.
    pub fn config(&self) -> &GraphConfig {
        &self.config
    }

    /// Number of nodes.
    pub fn n_nodes(&self) -> usize {
        self.config.n_nodes
    }

    /// Number of (directed) adjacency entries, i.e. 2× undirected edges.
    pub fn n_adjacency(&self) -> usize {
        self.neighbors.len()
    }

    /// Neighbour list of one node.
    pub fn neighbors_of(&self, v: u32) -> &[u32] {
        let lo = self.offsets[v as usize] as usize;
        let hi = self.offsets[v as usize + 1] as usize;
        &self.neighbors[lo..hi]
    }

    /// Degree of one node.
    pub fn degree(&self, v: u32) -> usize {
        self.neighbors_of(v).len()
    }

    /// Samples one neighbour of `v` with probability proportional to the
    /// neighbour's degree (FastGCN-style importance sampling; also the
    /// stationary visit distribution of an unbiased random walk).
    /// Returns `None` for isolated nodes.
    pub fn sample_neighbor_degree_biased<R: Rng>(&self, v: u32, rng: &mut R) -> Option<u32> {
        let lo = self.offsets[v as usize] as usize;
        let hi = self.offsets[v as usize + 1] as usize;
        if lo == hi {
            return None;
        }
        let prefix = &self.degree_prefix[lo..hi];
        let total = *prefix.last().expect("non-empty adjacency");
        let draw = rng.gen_range(0..total);
        let idx = prefix.partition_point(|&p| p <= draw);
        Some(self.neighbors[lo + idx.min(hi - lo - 1)])
    }

    /// Class label of one node.
    pub fn label(&self, v: u32) -> usize {
        self.labels[v as usize] as usize
    }

    /// Training node IDs (shuffled once at generation).
    pub fn train_nodes(&self) -> &[u32] {
        &self.train_nodes
    }

    /// Held-out test node IDs.
    pub fn test_nodes(&self) -> &[u32] {
        &self.test_nodes
    }
}

/// One GraphSAGE mini-batch: targets plus 2-hop sampled neighbourhoods,
/// flattened with fixed fanouts (sampling with replacement).
#[derive(Clone, Debug)]
pub struct GnnBatch {
    /// Target nodes, length B.
    pub targets: Vec<u32>,
    /// Class labels of the targets.
    pub labels: Vec<usize>,
    /// Hop-1 neighbours of targets, length `B·f1`.
    pub hop1: Vec<u32>,
    /// Hop-2 neighbours of the targets themselves, length `B·f2`
    /// (needed for the targets' own layer-1 representations).
    pub hop2_targets: Vec<u32>,
    /// Hop-2 neighbours of the hop-1 nodes, length `B·f1·f2`.
    pub hop2_hop1: Vec<u32>,
    /// Fanout at hop 1.
    pub fanout1: usize,
    /// Fanout at hop 2.
    pub fanout2: usize,
}

impl GnnBatch {
    /// Number of target examples.
    pub fn len(&self) -> usize {
        self.targets.len()
    }

    /// True when the batch has no targets.
    pub fn is_empty(&self) -> bool {
        self.targets.is_empty()
    }

    /// Sorted, deduplicated set of every node appearing anywhere in the
    /// batch — the embedding keys `Het.Read` receives.
    pub fn unique_keys(&self) -> Vec<Key> {
        let mut keys: Vec<Key> = self
            .targets
            .iter()
            .chain(&self.hop1)
            .chain(&self.hop2_targets)
            .chain(&self.hop2_hop1)
            .map(|&v| v as Key)
            .collect();
        keys.sort_unstable();
        keys.dedup();
        keys
    }
}

/// Deterministic fixed-fanout neighbour sampler for 2-layer GraphSAGE.
#[derive(Clone, Debug)]
pub struct NeighborSampler {
    /// Fanout at hop 1.
    pub fanout1: usize,
    /// Fanout at hop 2.
    pub fanout2: usize,
    /// Sample neighbours with probability ∝ their degree instead of
    /// uniformly (FastGCN-style importance sampling). This matches the
    /// hub-concentrated access patterns the paper observes on its real
    /// graphs.
    pub degree_biased: bool,
}

impl NeighborSampler {
    /// Creates a uniform-neighbour sampler with the given fanouts.
    pub fn new(fanout1: usize, fanout2: usize) -> Self {
        assert!(fanout1 > 0 && fanout2 > 0, "fanouts must be positive");
        NeighborSampler {
            fanout1,
            fanout2,
            degree_biased: false,
        }
    }

    /// Creates a degree-biased (importance) sampler.
    pub fn degree_biased(fanout1: usize, fanout2: usize) -> Self {
        NeighborSampler {
            degree_biased: true,
            ..Self::new(fanout1, fanout2)
        }
    }

    /// Samples a training batch of `batch_size` targets starting at
    /// cursor `start` (wrapping over the shuffled train node order).
    pub fn train_batch(&self, graph: &Graph, start: u64, batch_size: usize) -> GnnBatch {
        let nodes = graph.train_nodes();
        self.batch_from(graph, nodes, start, batch_size, 0x7121)
    }

    /// Samples a test batch of `batch_size` targets starting at `start`.
    pub fn test_batch(&self, graph: &Graph, start: u64, batch_size: usize) -> GnnBatch {
        let nodes = graph.test_nodes();
        self.batch_from(graph, nodes, start, batch_size, 0x7E57)
    }

    fn batch_from(
        &self,
        graph: &Graph,
        nodes: &[u32],
        start: u64,
        batch_size: usize,
        salt: u64,
    ) -> GnnBatch {
        assert!(!nodes.is_empty(), "node split is empty");
        let mut rng = SmallRng::seed_from_u64(splitmix64(
            graph.config().seed ^ salt ^ start.wrapping_mul(0x6C62_272E_07BB_0142),
        ));
        let mut targets = Vec::with_capacity(batch_size);
        let mut labels = Vec::with_capacity(batch_size);
        for i in 0..batch_size as u64 {
            let v = nodes[((start + i) % nodes.len() as u64) as usize];
            targets.push(v);
            labels.push(graph.label(v));
        }
        let hop1 = self.sample_layer(graph, &targets, self.fanout1, &mut rng);
        let hop2_targets = self.sample_layer(graph, &targets, self.fanout2, &mut rng);
        let hop2_hop1 = self.sample_layer(graph, &hop1, self.fanout2, &mut rng);
        GnnBatch {
            targets,
            labels,
            hop1,
            hop2_targets,
            hop2_hop1,
            fanout1: self.fanout1,
            fanout2: self.fanout2,
        }
    }

    fn sample_layer(
        &self,
        graph: &Graph,
        parents: &[u32],
        fanout: usize,
        rng: &mut SmallRng,
    ) -> Vec<u32> {
        let mut out = Vec::with_capacity(parents.len() * fanout);
        for &p in parents {
            let nbrs = graph.neighbors_of(p);
            for _ in 0..fanout {
                if nbrs.is_empty() {
                    // Isolated node: fall back to self-loops so shapes
                    // stay rectangular.
                    out.push(p);
                } else if self.degree_biased {
                    out.push(graph.sample_neighbor_degree_biased(p, rng).unwrap_or(p));
                } else {
                    out.push(nbrs[rng.gen_range(0..nbrs.len())]);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_graph() -> Graph {
        Graph::generate(GraphConfig::tiny(42))
    }

    #[test]
    fn generation_is_deterministic() {
        let a = Graph::generate(GraphConfig::tiny(7));
        let b = Graph::generate(GraphConfig::tiny(7));
        assert_eq!(a.neighbors_of(5), b.neighbors_of(5));
        assert_eq!(a.train_nodes(), b.train_nodes());
        let c = Graph::generate(GraphConfig::tiny(8));
        assert_ne!(a.train_nodes(), c.train_nodes());
    }

    #[test]
    fn adjacency_is_symmetric() {
        let g = tiny_graph();
        for v in 0..g.n_nodes() as u32 {
            for &u in g.neighbors_of(v) {
                assert!(
                    g.neighbors_of(u).contains(&v),
                    "edge {v}->{u} missing its reverse"
                );
            }
        }
    }

    #[test]
    fn no_self_loops_or_duplicate_edges() {
        let g = tiny_graph();
        for v in 0..g.n_nodes() as u32 {
            let nbrs = g.neighbors_of(v);
            assert!(!nbrs.contains(&v), "self loop at {v}");
            let mut sorted = nbrs.to_vec();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), nbrs.len(), "duplicate edge at {v}");
        }
    }

    #[test]
    fn every_node_has_minimum_degree() {
        let g = tiny_graph();
        for v in 0..g.n_nodes() as u32 {
            assert!(g.degree(v) >= 1, "node {v} is isolated");
        }
    }

    #[test]
    fn degree_distribution_is_heavy_tailed() {
        let g = Graph::generate(GraphConfig {
            n_nodes: 5_000,
            ..GraphConfig::tiny(3)
        });
        let mut degrees: Vec<usize> = (0..g.n_nodes() as u32).map(|v| g.degree(v)).collect();
        degrees.sort_unstable_by(|a, b| b.cmp(a));
        let total: usize = degrees.iter().sum();
        let top1pct: usize = degrees.iter().take(g.n_nodes() / 100).sum();
        assert!(
            top1pct as f64 / total as f64 > 0.05,
            "hubs should carry disproportionate degree (got {})",
            top1pct as f64 / total as f64
        );
    }

    #[test]
    fn homophily_is_visible_in_edges() {
        // Hub and rich-club edges connect across classes by design, so
        // isolate the homophilous attachment path.
        let g = Graph::generate(GraphConfig {
            homophily: 0.9,
            hub_bias: 0.0,
            rich_club_fraction: 0.0,
            ..GraphConfig::tiny(5)
        });
        let mut same = 0usize;
        let mut total = 0usize;
        for v in 0..g.n_nodes() as u32 {
            for &u in g.neighbors_of(v) {
                total += 1;
                if g.label(u) == g.label(v) {
                    same += 1;
                }
            }
        }
        let frac = same as f64 / total as f64;
        // 4 classes, random baseline 0.25.
        assert!(
            frac > 0.5,
            "same-class edge fraction {frac} should beat random 0.25"
        );
    }

    #[test]
    fn split_partitions_all_nodes() {
        let g = tiny_graph();
        assert_eq!(g.train_nodes().len() + g.test_nodes().len(), g.n_nodes());
        assert!(!g.train_nodes().is_empty());
        assert!(!g.test_nodes().is_empty());
        let mut all: Vec<u32> = g
            .train_nodes()
            .iter()
            .chain(g.test_nodes())
            .copied()
            .collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), g.n_nodes());
    }

    #[test]
    fn sampler_shapes_are_rectangular() {
        let g = tiny_graph();
        let s = NeighborSampler::new(5, 3);
        let b = s.train_batch(&g, 0, 8);
        assert_eq!(b.len(), 8);
        assert!(!b.is_empty());
        assert_eq!(b.hop1.len(), 8 * 5);
        assert_eq!(b.hop2_targets.len(), 8 * 3);
        assert_eq!(b.hop2_hop1.len(), 8 * 5 * 3);
        assert_eq!(b.labels.len(), 8);
    }

    #[test]
    fn sampled_neighbors_are_real_neighbors() {
        let g = tiny_graph();
        let s = NeighborSampler::new(4, 2);
        let b = s.train_batch(&g, 0, 16);
        for (i, &t) in b.targets.iter().enumerate() {
            for &u in &b.hop1[i * 4..(i + 1) * 4] {
                assert!(
                    g.neighbors_of(t).contains(&u) || u == t,
                    "{u} is not a neighbor of target {t}"
                );
            }
        }
    }

    #[test]
    fn sampler_is_deterministic_per_cursor() {
        let g = tiny_graph();
        let s = NeighborSampler::new(4, 2);
        let a = s.train_batch(&g, 10, 8);
        let b = s.train_batch(&g, 10, 8);
        assert_eq!(a.hop1, b.hop1);
        assert_eq!(a.hop2_hop1, b.hop2_hop1);
        let c = s.train_batch(&g, 11, 8);
        assert_ne!(a.hop1, c.hop1);
    }

    #[test]
    fn unique_keys_sorted_and_deduped() {
        let g = tiny_graph();
        let s = NeighborSampler::new(4, 2);
        let b = s.train_batch(&g, 0, 8);
        let keys = b.unique_keys();
        assert!(keys.windows(2).all(|w| w[0] < w[1]));
        assert!(keys.iter().all(|&k| k < g.n_nodes() as Key));
    }

    #[test]
    fn labels_match_graph() {
        let g = tiny_graph();
        let s = NeighborSampler::new(2, 2);
        let b = s.test_batch(&g, 0, 8);
        for (i, &t) in b.targets.iter().enumerate() {
            assert_eq!(b.labels[i], g.label(t));
        }
    }
}
