//! Synthetic Criteo-like click-through-rate stream.
//!
//! Each example has `n_fields` categorical features; field `f`'s category
//! is drawn from a Zipf distribution and mapped through a per-field
//! pseudo-random permutation (so hot categories land on different raw IDs
//! per field). The label comes from a planted logistic model: every
//! (field, category) pair carries a hidden weight, the click probability
//! is `σ(Σ_f w(f, c_f) + bias)`, and `y ~ Bernoulli(p)`. A trainable
//! embedding model can therefore push AUC well above 0.5, which gives the
//! convergence experiments their quality thresholds.
//!
//! Examples are pure functions of `(seed, index)`: nothing is stored, and
//! any worker can random-access its shard.

use crate::zipf::ZipfSampler;
use crate::Key;
use het_rng::rngs::SmallRng;
use het_rng::SeedableRng;

/// The per-field vocabulary sizes of the Criteo Kaggle dataset (26
/// categorical fields) — wildly heterogeneous: a few fields have
/// multi-million vocabularies, many have a handful of categories. The
/// heterogeneity matters: the small fields are fully cacheable, which is
/// a large part of why embedding caches work so well on Criteo.
pub const CRITEO_FIELD_VOCABS: [u64; 26] = [
    1_460, 583, 10_131_227, 2_202_608, 305, 24, 12_517, 633, 3, 93_145, 5_683, 8_351_593, 3_194,
    27, 14_992, 5_461_306, 10, 5_652, 2_173, 4, 7_046_547, 18, 15, 286_181, 105, 142_572,
];

/// Scales the real Criteo vocabulary profile down so the total key count
/// is approximately `total_keys`, preserving the field-size ratios
/// (minimum 3 categories per field).
pub fn scaled_criteo_vocabs(total_keys: usize) -> Vec<usize> {
    let sum: u64 = CRITEO_FIELD_VOCABS.iter().sum();
    CRITEO_FIELD_VOCABS
        .iter()
        .map(|&v| (((v as f64) * total_keys as f64 / sum as f64).round() as usize).max(3))
        .collect()
}

/// Configuration of the synthetic CTR stream.
#[derive(Clone, Debug)]
pub struct CtrConfig {
    /// Number of categorical fields (Criteo has 26).
    pub n_fields: usize,
    /// Vocabulary size per field when `vocab_sizes` is `None`.
    pub vocab_per_field: usize,
    /// Optional heterogeneous per-field vocabulary sizes (overrides
    /// `vocab_per_field`; length must equal `n_fields`). The
    /// [`CtrConfig::criteo_like`] preset fills this with the real
    /// Criteo field-size profile, scaled down.
    pub vocab_sizes: Option<Vec<usize>>,
    /// Zipf exponent of category popularity. The default 1.25 calibrates
    /// the per-field vocabulary of 4 000 to the paper's Fig. 3
    /// observation: the top 10 % of embeddings receive ≈90 % of updates.
    pub zipf_exponent: f64,
    /// Number of training examples (one epoch).
    pub n_train: usize,
    /// Number of held-out test examples.
    pub n_test: usize,
    /// Std-dev of the planted per-(field,category) logistic weights.
    pub weight_scale: f64,
    /// Bias of the planted model (negative values skew toward non-clicks,
    /// like real CTR data).
    pub bias: f64,
    /// Popularity drift period, in examples: every `drift_period`
    /// examples the rank→category mapping of each field is re-permuted,
    /// so the hot set moves (0 disables drift). Real CTR traffic drifts
    /// with trends/campaigns; drift is what distinguishes recency-based
    /// (LRU/CLOCK) from frequency-based (LFU) cache policies.
    pub drift_period: u64,
    /// Master seed.
    pub seed: u64,
}

impl Default for CtrConfig {
    fn default() -> Self {
        CtrConfig {
            n_fields: 26,
            vocab_per_field: 4_000,
            vocab_sizes: None,
            zipf_exponent: 1.25,
            n_train: 100_000,
            n_test: 10_000,
            weight_scale: 0.35,
            bias: -0.6,
            drift_period: 0,
            seed: 0xC71E0,
        }
    }
}

impl CtrConfig {
    /// A laptop-scale stand-in for the paper's Criteo workload: 26
    /// fields with the *real Criteo heterogeneous vocabulary profile*
    /// scaled to ~10^5 total embedding keys, Zipf-skewed within each
    /// field.
    pub fn criteo_like(seed: u64) -> Self {
        let base = CtrConfig::default();
        let vocab_sizes = Some(scaled_criteo_vocabs(base.n_fields * base.vocab_per_field));
        CtrConfig {
            seed,
            vocab_sizes,
            ..base
        }
    }

    /// A tiny configuration for unit tests.
    pub fn tiny(seed: u64) -> Self {
        CtrConfig {
            n_fields: 4,
            vocab_per_field: 50,
            n_train: 2_000,
            n_test: 500,
            // With only 4 fields, stronger planted weights keep the
            // oracle AUC well above chance.
            weight_scale: 0.9,
            seed,
            ..CtrConfig::default()
        }
    }

    /// Per-field vocabulary sizes after resolving the profile.
    pub fn field_vocabs(&self) -> Vec<usize> {
        match &self.vocab_sizes {
            Some(sizes) => {
                assert_eq!(
                    sizes.len(),
                    self.n_fields,
                    "vocab_sizes length must equal n_fields"
                );
                sizes.clone()
            }
            None => vec![self.vocab_per_field; self.n_fields],
        }
    }

    /// Total number of distinct embedding keys.
    pub fn total_keys(&self) -> usize {
        self.field_vocabs().iter().sum()
    }
}

/// One mini-batch of CTR examples.
#[derive(Clone, Debug)]
pub struct CtrBatch {
    /// Embedding keys, row-major `(batch × n_fields)`.
    pub keys: Vec<Key>,
    /// Click labels in {0.0, 1.0}.
    pub labels: Vec<f32>,
    /// Number of fields per example.
    pub n_fields: usize,
}

impl CtrBatch {
    /// Number of examples in the batch.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// True when the batch is empty.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// The keys of one example.
    pub fn example_keys(&self, i: usize) -> &[Key] {
        &self.keys[i * self.n_fields..(i + 1) * self.n_fields]
    }

    /// Sorted, deduplicated key set of the whole batch — what
    /// `Het.Read` receives (the paper's "unique" optimisation, §5.1).
    pub fn unique_keys(&self) -> Vec<Key> {
        let mut keys = self.keys.clone();
        keys.sort_unstable();
        keys.dedup();
        keys
    }
}

/// The synthetic CTR dataset: a deterministic example generator plus the
/// planted ground-truth model.
#[derive(Clone, Debug)]
pub struct CtrDataset {
    config: CtrConfig,
    field_vocabs: Vec<usize>,
    /// Cumulative key offsets; `offsets[f]..offsets[f+1]` is field `f`'s
    /// key range.
    offsets: Vec<u64>,
    /// One Zipf sampler per field (fields may have different vocabs).
    zipfs: Vec<ZipfSampler>,
}

const FIELD_PERM_SALT: u64 = 0x9E37_79B9_7F4A_7C15;
const LABEL_SALT: u64 = 0xD1B5_4A32_D192_ED03;
const WEIGHT_SALT: u64 = 0x2545_F491_4F6C_DD1D;

/// SplitMix64 — the classic 64-bit finaliser; used to derive per-field
/// permutations and planted weights from hashes.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

impl CtrDataset {
    /// Builds the dataset (precomputes per-field Zipf CDFs).
    pub fn new(config: CtrConfig) -> Self {
        assert!(config.n_fields > 0, "need at least one field");
        assert!(config.vocab_per_field > 0, "vocabulary must be non-empty");
        let field_vocabs = config.field_vocabs();
        let mut offsets = Vec::with_capacity(field_vocabs.len() + 1);
        offsets.push(0u64);
        for &v in &field_vocabs {
            assert!(v > 0, "every field needs a non-empty vocabulary");
            offsets.push(offsets.last().unwrap() + v as u64);
        }
        let zipfs = field_vocabs
            .iter()
            .map(|&v| ZipfSampler::new(v, config.zipf_exponent))
            .collect();
        CtrDataset {
            config,
            field_vocabs,
            offsets,
            zipfs,
        }
    }

    /// The configuration this dataset was built with.
    pub fn config(&self) -> &CtrConfig {
        &self.config
    }

    /// Total number of distinct embedding keys.
    pub fn total_keys(&self) -> usize {
        *self.offsets.last().expect("offsets non-empty") as usize
    }

    /// The key range of one field.
    pub fn field_range(&self, field: usize) -> std::ops::Range<Key> {
        self.offsets[field]..self.offsets[field + 1]
    }

    /// The embedding key of category `cat` in field `field`.
    pub fn key_of(&self, field: usize, cat: usize) -> Key {
        debug_assert!(cat < self.field_vocabs[field]);
        self.offsets[field] + cat as Key
    }

    /// The planted logistic weight of a key — deterministic, approximately
    /// N(0, weight_scale²) via a hash → Irwin-Hall(4) transform.
    pub fn planted_weight(&self, key: Key) -> f64 {
        let mut acc = 0.0f64;
        for i in 0..4u64 {
            let h = splitmix64(key ^ WEIGHT_SALT ^ (i.wrapping_mul(0xA24B_AED4_963E_E407)));
            acc += (h >> 11) as f64 / (1u64 << 53) as f64;
        }
        // Irwin-Hall(4): mean 2, variance 4/12 -> standardise.
        (acc - 2.0) / (1.0 / 3.0f64).sqrt() * self.config.weight_scale
    }

    /// Generates the `index`-th example of a split (`test=false` for
    /// training). Returns `(keys, label)`.
    pub fn example(&self, index: u64, test: bool) -> (Vec<Key>, f32) {
        let split_salt: u64 = if test { 0x7E57_DA7A_5EED_0001 } else { 0 };
        let mut rng = SmallRng::seed_from_u64(splitmix64(
            self.config.seed ^ index.wrapping_mul(0x6C62_272E_07BB_0142) ^ split_salt,
        ));
        let mut keys = Vec::with_capacity(self.config.n_fields);
        let mut logit = self.config.bias;
        // Popularity drift: the rank→category permutation is salted by
        // the drift phase, moving the hot set every `drift_period`
        // examples.
        let drift_phase = if self.config.drift_period > 0 && !test {
            index / self.config.drift_period
        } else {
            0
        };
        for f in 0..self.config.n_fields {
            let rank = self.zipfs[f].sample(&mut rng);
            // Per-field permutation of ranks to raw category IDs, so the
            // hot category of each field is a different raw ID.
            let cat = (splitmix64(
                rank as u64
                    ^ (f as u64).wrapping_mul(FIELD_PERM_SALT)
                    ^ drift_phase.wrapping_mul(0xD81F_7D81_F7D8_1F7D),
            ) % self.field_vocabs[f] as u64) as usize;
            let key = self.key_of(f, cat);
            logit += self.planted_weight(key);
            keys.push(key);
        }
        let p = 1.0 / (1.0 + (-logit).exp());
        let label_draw = (splitmix64(self.config.seed ^ LABEL_SALT ^ index ^ split_salt) >> 11)
            as f64
            / (1u64 << 53) as f64;
        let y = if label_draw < p { 1.0 } else { 0.0 };
        (keys, y)
    }

    /// Builds a mini-batch of `batch_size` consecutive training examples
    /// starting at example `start` (wrapping at `n_train`, i.e. examples
    /// recycle across epochs).
    pub fn train_batch(&self, start: u64, batch_size: usize) -> CtrBatch {
        self.batch_impl(start, batch_size, false, self.config.n_train as u64)
    }

    /// Builds a mini-batch from the held-out test split.
    pub fn test_batch(&self, start: u64, batch_size: usize) -> CtrBatch {
        self.batch_impl(start, batch_size, true, self.config.n_test as u64)
    }

    fn batch_impl(&self, start: u64, batch_size: usize, test: bool, split_len: u64) -> CtrBatch {
        let mut keys = Vec::with_capacity(batch_size * self.config.n_fields);
        let mut labels = Vec::with_capacity(batch_size);
        for i in 0..batch_size as u64 {
            let idx = (start + i) % split_len.max(1);
            let (ks, y) = self.example(idx, test);
            keys.extend_from_slice(&ks);
            labels.push(y);
        }
        CtrBatch {
            keys,
            labels,
            n_fields: self.config.n_fields,
        }
    }

    /// The Bayes-optimal prediction for a batch under the planted model —
    /// an upper bound oracle used by tests.
    pub fn oracle_scores(&self, batch: &CtrBatch) -> Vec<f32> {
        (0..batch.len())
            .map(|i| {
                let logit: f64 = self.config.bias
                    + batch
                        .example_keys(i)
                        .iter()
                        .map(|&k| self.planted_weight(k))
                        .sum::<f64>();
                (1.0 / (1.0 + (-logit).exp())) as f32
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::auc;

    #[test]
    fn examples_are_deterministic() {
        let ds = CtrDataset::new(CtrConfig::tiny(7));
        let a = ds.example(5, false);
        let b = ds.example(5, false);
        assert_eq!(a, b);
        let c = ds.example(6, false);
        assert_ne!(a.0, c.0, "different indices should (almost surely) differ");
    }

    #[test]
    fn train_and_test_splits_differ() {
        let ds = CtrDataset::new(CtrConfig::tiny(7));
        let a = ds.example(5, false);
        let b = ds.example(5, true);
        assert_ne!(a.0, b.0);
    }

    #[test]
    fn keys_stay_in_field_ranges() {
        for ds in [
            CtrDataset::new(CtrConfig::tiny(3)),
            CtrDataset::new(CtrConfig::criteo_like(3)),
        ] {
            for idx in 0..200 {
                let (keys, _) = ds.example(idx, false);
                for (f, &k) in keys.iter().enumerate() {
                    let range = ds.field_range(f);
                    assert!(
                        range.contains(&k),
                        "key {k} outside field {f} range {range:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn criteo_profile_is_heterogeneous_and_scaled() {
        let vocabs = scaled_criteo_vocabs(104_000);
        assert_eq!(vocabs.len(), 26);
        let total: usize = vocabs.iter().sum();
        assert!(
            (total as i64 - 104_000).abs() < 1_000,
            "total {total} ≈ requested"
        );
        let max = *vocabs.iter().max().unwrap();
        let min = *vocabs.iter().min().unwrap();
        assert!(max > 1_000 * min, "profile must be strongly heterogeneous");
        // Tiny fields are preserved at the floor.
        assert!(vocabs.iter().filter(|&&v| v <= 10).count() >= 4);
    }

    #[test]
    fn criteo_like_dataset_uses_profile() {
        let ds = CtrDataset::new(CtrConfig::criteo_like(9));
        // Field 2 is the giant one in the Criteo profile.
        let giant = ds.field_range(2);
        let tiny = ds.field_range(8); // real vocab 3
        assert!(giant.end - giant.start > 10_000);
        assert_eq!(tiny.end - tiny.start, 3);
        assert_eq!(ds.total_keys() as u64, ds.field_range(25).end);
    }

    #[test]
    fn batch_layout_and_unique_keys() {
        let ds = CtrDataset::new(CtrConfig::tiny(1));
        let b = ds.train_batch(0, 8);
        assert_eq!(b.len(), 8);
        assert!(!b.is_empty());
        assert_eq!(b.keys.len(), 8 * 4);
        assert_eq!(b.example_keys(3).len(), 4);
        let uniq = b.unique_keys();
        assert!(
            uniq.windows(2).all(|w| w[0] < w[1]),
            "unique keys sorted strictly"
        );
        assert!(uniq.len() <= b.keys.len());
    }

    #[test]
    fn batches_wrap_around_the_epoch() {
        let cfg = CtrConfig {
            n_train: 10,
            ..CtrConfig::tiny(2)
        };
        let ds = CtrDataset::new(cfg);
        let a = ds.train_batch(0, 4);
        let b = ds.train_batch(10, 4); // same indices modulo n_train
        assert_eq!(a.keys, b.keys);
        assert_eq!(a.labels, b.labels);
    }

    #[test]
    fn labels_correlate_with_planted_model() {
        // The oracle using planted weights must score well above random —
        // this is what guarantees the task is learnable.
        let ds = CtrDataset::new(CtrConfig::tiny(11));
        let batch = ds.test_batch(0, 500);
        let scores = ds.oracle_scores(&batch);
        let oracle_auc = auc(&scores, &batch.labels);
        assert!(
            oracle_auc > 0.75,
            "oracle AUC {oracle_auc} should be far above 0.5"
        );
    }

    #[test]
    fn planted_weights_are_roughly_centered() {
        let ds = CtrDataset::new(CtrConfig::tiny(5));
        let n = 2_000;
        let mean: f64 = (0..n).map(|k| ds.planted_weight(k as Key)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn drift_moves_the_hot_set() {
        let mut cfg = CtrConfig::tiny(61);
        cfg.drift_period = 1_000;
        let ds = CtrDataset::new(cfg);
        let hot_keys = |lo: u64, hi: u64| {
            let mut counts = std::collections::HashMap::new();
            for i in lo..hi {
                for k in ds.example(i, false).0 {
                    *counts.entry(k).or_insert(0u64) += 1;
                }
            }
            let mut v: Vec<(u64, u64)> = counts.into_iter().collect();
            v.sort_by_key(|&(_, c)| std::cmp::Reverse(c));
            v.into_iter()
                .take(8)
                .map(|(k, _)| k)
                .collect::<std::collections::HashSet<_>>()
        };
        let phase0 = hot_keys(0, 900);
        let phase1 = hot_keys(1_000, 1_900);
        let overlap = phase0.intersection(&phase1).count();
        assert!(
            overlap < phase0.len(),
            "hot set must move across drift phases (overlap {overlap}/{})",
            phase0.len()
        );
        // Zero drift: hot set is stable across the same windows.
        let stable = CtrDataset::new(CtrConfig::tiny(61));
        let hot_stable = |lo: u64, hi: u64| {
            let mut counts = std::collections::HashMap::new();
            for i in lo..hi {
                for k in stable.example(i, false).0 {
                    *counts.entry(k).or_insert(0u64) += 1;
                }
            }
            let mut v: Vec<(u64, u64)> = counts.into_iter().collect();
            v.sort_by_key(|&(_, c)| std::cmp::Reverse(c));
            v.into_iter()
                .take(8)
                .map(|(k, _)| k)
                .collect::<std::collections::HashSet<_>>()
        };
        let s0 = hot_stable(0, 900);
        let s1 = hot_stable(1_000, 1_900);
        assert!(
            s0.intersection(&s1).count() >= 6,
            "no-drift hot set must be stable"
        );
    }

    #[test]
    fn key_popularity_is_skewed() {
        let ds = CtrDataset::new(CtrConfig::criteo_like(13));
        let mut counts = std::collections::HashMap::new();
        for idx in 0..2_000u64 {
            let (keys, _) = ds.example(idx, false);
            for k in keys {
                *counts.entry(k).or_insert(0u64) += 1;
            }
        }
        let mut freqs: Vec<u64> = counts.values().copied().collect();
        freqs.sort_unstable_by(|a, b| b.cmp(a));
        let total: u64 = freqs.iter().sum();
        let top10pct: u64 = freqs.iter().take(freqs.len().div_ceil(10)).sum();
        assert!(
            top10pct as f64 / total as f64 > 0.5,
            "top 10% of observed keys should account for most accesses"
        );
    }
}
