//! The serving run's output: throughput, the latency distribution, and
//! per-replica cache behaviour.

use het_cache::CacheStats;
use het_core::FaultStats;
use het_json::{Json, ToJson};

/// Per-replica outcome of a serving run.
#[derive(Clone, Debug)]
pub struct ReplicaReport {
    /// Replica index.
    pub replica: usize,
    /// Requests this replica served.
    pub requests: u64,
    /// Micro-batches this replica executed.
    pub batches: u64,
    /// Crash/restart cycles this replica went through.
    pub crashes: u64,
    /// Final cache counters.
    pub cache: CacheStats,
    /// p99 latency of this replica's requests, in nanoseconds.
    pub p99_ns: u64,
}

impl ToJson for ReplicaReport {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("replica".to_string(), Json::UInt(self.replica as u64)),
            ("requests".to_string(), Json::UInt(self.requests)),
            ("batches".to_string(), Json::UInt(self.batches)),
            ("crashes".to_string(), Json::UInt(self.crashes)),
            ("hits".to_string(), Json::UInt(self.cache.hits)),
            ("misses".to_string(), Json::UInt(self.cache.misses)),
            (
                "invalidations".to_string(),
                Json::UInt(self.cache.invalidations),
            ),
            (
                "capacity_evictions".to_string(),
                Json::UInt(self.cache.capacity_evictions),
            ),
            ("miss_rate".to_string(), Json::Num(self.cache.miss_rate())),
            ("p99_ns".to_string(), Json::UInt(self.p99_ns)),
        ])
    }
}

/// The result of one serving run. Latency percentiles are kept in
/// nanoseconds as exact integers so the JSON encoding is byte-stable.
#[derive(Clone, Debug)]
pub struct ServeReport {
    /// Run seed (config echo).
    pub seed: u64,
    /// Replica count (config echo).
    pub n_replicas: usize,
    /// Per-replica cache capacity (config echo).
    pub cache_capacity: usize,
    /// Staleness window `s` (config echo).
    pub staleness: u64,
    /// Eviction policy name (config echo).
    pub policy: String,
    /// Requests served (all of them — the run drains the schedule).
    pub requests: u64,
    /// Micro-batches executed across replicas.
    pub batches: u64,
    /// Instant the last batch completed.
    pub sim_time_ns: u64,
    /// Served requests per second of simulated time.
    pub throughput_rps: f64,
    /// Mean requests per micro-batch.
    pub mean_batch_size: f64,
    /// End-to-end latency percentiles (arrival → batch completion).
    pub latency_p50_ns: u64,
    /// 95th percentile latency.
    pub latency_p95_ns: u64,
    /// 99th percentile latency.
    pub latency_p99_ns: u64,
    /// Worst-case latency.
    pub latency_max_ns: u64,
    /// Mean latency.
    pub latency_mean_ns: f64,
    /// Total time requests spent queued before their batch started.
    pub queue_wait_ns: u64,
    /// Total time spent in cache/PS embedding resolution.
    pub lookup_ns: u64,
    /// Total time spent in model forward passes.
    pub infer_ns: u64,
    /// Cache counters merged across replicas.
    pub cache: CacheStats,
    /// Keys pre-installed per replica by SpaceSaving warmup.
    pub warmed_keys: u64,
    /// Keys installed by drift-triggered respawn prefetch (0 unless
    /// `supervision.drift_prefetch`).
    pub drift_prefetched_keys: u64,
    /// PS updates applied before serving started.
    pub pretrain_updates: u64,
    /// Mean model score over all served examples (a cheap fingerprint
    /// that the forward pass actually consumed the embeddings).
    pub score_mean: f64,
    /// Fault accounting (replica crashes, degraded reads, …).
    pub faults: FaultStats,
    /// Supervisor crash detections (0 when supervision is off).
    pub detections: u64,
    /// Supervised replica respawns applied by the fleet.
    pub respawns: u64,
    /// Batches deferred by the outage-retry schedule.
    pub retry_waits: u64,
    /// Autoscaler scale-up actions (0 when autoscaling is off).
    pub scale_ups: u64,
    /// Autoscaler scale-down actions.
    pub scale_downs: u64,
    /// Keys moved by a supervisor-driven live shard split.
    pub migrated_keys: u64,
    /// True once a planned live split fully completed during the run.
    pub split_done: bool,
    /// Worst detection→respawn gap, in nanoseconds (recovery-time
    /// objective).
    pub max_recovery_ns: u64,
    /// Per-replica breakdown.
    pub replicas: Vec<ReplicaReport>,
}

impl ToJson for ServeReport {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("seed".to_string(), Json::UInt(self.seed)),
            ("n_replicas".to_string(), Json::UInt(self.n_replicas as u64)),
            (
                "cache_capacity".to_string(),
                Json::UInt(self.cache_capacity as u64),
            ),
            ("staleness".to_string(), Json::UInt(self.staleness)),
            ("policy".to_string(), Json::Str(self.policy.clone())),
            ("requests".to_string(), Json::UInt(self.requests)),
            ("batches".to_string(), Json::UInt(self.batches)),
            ("sim_time_ns".to_string(), Json::UInt(self.sim_time_ns)),
            ("throughput_rps".to_string(), Json::Num(self.throughput_rps)),
            (
                "mean_batch_size".to_string(),
                Json::Num(self.mean_batch_size),
            ),
            (
                "latency_p50_ns".to_string(),
                Json::UInt(self.latency_p50_ns),
            ),
            (
                "latency_p95_ns".to_string(),
                Json::UInt(self.latency_p95_ns),
            ),
            (
                "latency_p99_ns".to_string(),
                Json::UInt(self.latency_p99_ns),
            ),
            (
                "latency_max_ns".to_string(),
                Json::UInt(self.latency_max_ns),
            ),
            (
                "latency_mean_ns".to_string(),
                Json::Num(self.latency_mean_ns),
            ),
            ("queue_wait_ns".to_string(), Json::UInt(self.queue_wait_ns)),
            ("lookup_ns".to_string(), Json::UInt(self.lookup_ns)),
            ("infer_ns".to_string(), Json::UInt(self.infer_ns)),
            ("hits".to_string(), Json::UInt(self.cache.hits)),
            ("misses".to_string(), Json::UInt(self.cache.misses)),
            (
                "invalidations".to_string(),
                Json::UInt(self.cache.invalidations),
            ),
            (
                "capacity_evictions".to_string(),
                Json::UInt(self.cache.capacity_evictions),
            ),
            ("miss_rate".to_string(), Json::Num(self.cache.miss_rate())),
            ("warmed_keys".to_string(), Json::UInt(self.warmed_keys)),
            (
                "drift_prefetched_keys".to_string(),
                Json::UInt(self.drift_prefetched_keys),
            ),
            (
                "pretrain_updates".to_string(),
                Json::UInt(self.pretrain_updates),
            ),
            ("score_mean".to_string(), Json::Num(self.score_mean)),
            ("faults".to_string(), self.faults.to_json()),
            ("detections".to_string(), Json::UInt(self.detections)),
            ("respawns".to_string(), Json::UInt(self.respawns)),
            ("retry_waits".to_string(), Json::UInt(self.retry_waits)),
            ("scale_ups".to_string(), Json::UInt(self.scale_ups)),
            ("scale_downs".to_string(), Json::UInt(self.scale_downs)),
            ("migrated_keys".to_string(), Json::UInt(self.migrated_keys)),
            ("split_done".to_string(), Json::Bool(self.split_done)),
            (
                "max_recovery_ns".to_string(),
                Json::UInt(self.max_recovery_ns),
            ),
            (
                "replicas".to_string(),
                Json::Arr(self.replicas.iter().map(|r| r.to_json()).collect()),
            ),
        ])
    }
}
