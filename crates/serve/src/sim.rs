//! The discrete-event serving simulator.
//!
//! N replicas, each a [`HetClient`] read path in front of a trained
//! model, drain an open-loop request schedule under join-shortest-queue
//! routing and per-replica micro-batching. The fleet is a
//! [`Process`] scheduled by the shared [`ClusterRuntime`] event loop —
//! request arrivals are primed as `Arrive` events, replica wake-ups are
//! self-scheduled `Wake` events, and replica crashes arrive through the
//! runtime's centralized fault delivery — so a run is a pure function
//! of its [`ServeConfig`], and the same fleet can be co-scheduled with
//! a live trainer against one PS fabric (see [`crate::colocate`]).

use crate::config::ServeConfig;
use crate::report::{ReplicaReport, ServeReport};
use crate::supervise::{Autoscaler, ControlPlane, Supervisor, CONTROL_WAKE, HEARTBEAT_WAKE};
use crate::workload::{generate_requests, key_of, pretrain, warmup_seed, Request};
use het_core::fault::{FaultContext, FaultStats};
use het_core::HetClient;
use het_data::{CtrBatch, Key, LatencyHistogram, SpaceSaving, ZipfSampler};
use het_models::{EmbeddingModel, ModelBatch};
use het_ps::{PsConfig, PsServer, ServerHandle, ServerOptimizer};
use het_rng::rngs::StdRng;
use het_rng::SeedableRng;
use het_runtime::{ClusterRuntime, Ctx, Event, Process, ProcessId};
use het_simnet::{Collectives, CommStats, FaultPlan, SimDuration, SimTime, TieBreak};
use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

/// Serving is forward-only; the models estimate forward+backward FLOPs,
/// of which the forward pass is roughly a third (one matmul sweep
/// instead of three). Fixed so reports are comparable across runs.
const FORWARD_FLOP_FRACTION: f64 = 1.0 / 3.0;

struct Replica<M> {
    client: HetClient,
    model: M,
    queue: VecDeque<usize>,
    busy_until: SimTime,
    comm: CommStats,
    ops: u64,
    hist: LatencyHistogram,
    requests: u64,
    batches: u64,
    crash_count: u64,
}

/// A deterministic online-inference run: request generation, replica
/// micro-batching, staleness-bounded embedding reads against a live PS,
/// and fault injection, accounted into a [`ServeReport`].
pub struct ServeSim<M: EmbeddingModel<Batch = CtrBatch>> {
    cfg: ServeConfig,
    server: ServerHandle,
    net: Collectives,
    replicas: Vec<Replica<M>>,
    plan: FaultPlan,
    /// First cluster-member index of this fleet in the fault plan
    /// (non-zero when co-scheduled after a trainer).
    member_offset: usize,
    fault_stats: FaultStats,
    /// Updates applied to the PS before serving started.
    pretrained: u64,
    requests: Vec<Request>,
    hist: LatencyHistogram,
    queue_wait_ns: u64,
    lookup_ns: u64,
    infer_ns: u64,
    score_sum: f64,
    score_count: u64,
    warmed_keys: u64,
    end_time: SimTime,
    // --- supervision / elasticity (all inert when `control` is None) ---
    /// Shared state with the supervisor/autoscaler; `None` when both
    /// are disabled, in which case the run takes the legacy path
    /// byte-for-byte.
    control: Option<Rc<RefCell<ControlPlane>>>,
    /// Replicas currently crashed and awaiting a supervised respawn.
    down: Vec<bool>,
    /// Replicas that have served at least once (admit-warming skips
    /// them: their caches are already warm).
    ever_admitted: Vec<bool>,
    /// Live popularity sketch over arrived request keys, used to warm
    /// respawned and newly admitted replicas.
    sketch: Option<SpaceSaving>,
    /// Short-window popularity sketch for drift-triggered respawn
    /// prefetch; `None` unless `supervision.drift_prefetch`.
    recent_sketch: Option<SpaceSaving>,
    /// The previous full short window, so a rotation boundary never
    /// blinds the drift detector.
    prev_sketch: Option<SpaceSaving>,
    /// Start of the current short window.
    recent_since: SimTime,
    /// Keys installed by drift-triggered respawn prefetch.
    drift_prefetched: u64,
    served_total: u64,
    respawns: u64,
    retry_waits: u64,
}

impl<M: EmbeddingModel<Batch = CtrBatch>> ServeSim<M> {
    /// Builds the simulator over a private PS fabric. `model_fn`
    /// constructs one replica's model from a seeded RNG; every replica
    /// gets an identically seeded RNG, so the fleet serves the same
    /// model.
    pub fn new(cfg: ServeConfig, model_fn: impl Fn(&mut StdRng) -> M) -> Self {
        let fleet = if cfg.autoscale.enabled {
            cfg.autoscale.max_replicas
        } else {
            cfg.n_replicas
        };
        let plan = cfg.faults.plan(cfg.seed, fleet, cfg.n_shards);
        Self::with_plan(cfg, plan, model_fn)
    }

    /// Like [`ServeSim::new`], but with an explicit fault plan (e.g.
    /// scripted, or loaded from a `--fault-plan` file) instead of the
    /// one `cfg.faults` would generate. Plan member indices address the
    /// fleet directly (replica `r` is member `r`).
    pub fn with_plan(
        cfg: ServeConfig,
        plan: FaultPlan,
        model_fn: impl Fn(&mut StdRng) -> M,
    ) -> Self {
        cfg.validate();
        // A planned live split needs a spare physical shard to split
        // into; an unused spare changes nothing about routing.
        let spares = usize::from(cfg.supervision.reshard.is_some());
        let server = ServerHandle::new(PsServer::with_store(
            PsConfig {
                dim: cfg.dim,
                n_shards: cfg.n_shards,
                lr: cfg.lr,
                seed: cfg.seed,
                optimizer: ServerOptimizer::Sgd,
                grad_clip: None,
            },
            spares,
            &cfg.store,
        ));
        Self::assemble(cfg, server, plan, 0, model_fn)
    }

    /// Builds the simulator over a *shared* PS fabric for co-scheduling
    /// with another job on one [`ClusterRuntime`]. The cluster's fault
    /// plan replaces the one `cfg.faults` would generate (the shared
    /// cluster owns fault injection), and `member_offset` is the
    /// fleet's first member index within that plan — register the fleet
    /// on the runtime at the same offset.
    pub fn with_shared(
        cfg: ServeConfig,
        server: ServerHandle,
        plan: FaultPlan,
        member_offset: usize,
        model_fn: impl Fn(&mut StdRng) -> M,
    ) -> Self {
        cfg.validate();
        assert_eq!(
            server.dim(),
            cfg.dim,
            "shared PS fabric dim must match the serve config"
        );
        Self::assemble(cfg, server, plan, member_offset, model_fn)
    }

    fn assemble(
        cfg: ServeConfig,
        server: ServerHandle,
        plan: FaultPlan,
        member_offset: usize,
        model_fn: impl Fn(&mut StdRng) -> M,
    ) -> Self {
        // Elastic fleets are built at their ceiling; only the admitted
        // prefix takes traffic until the autoscaler grows the pool.
        let fleet = if cfg.autoscale.enabled {
            cfg.autoscale.max_replicas
        } else {
            cfg.n_replicas
        };
        let supervised = cfg.supervision.enabled || cfg.autoscale.enabled;
        let replicas = (0..fleet)
            .map(|_| {
                let mut client = HetClient::new(
                    cfg.cache_capacity,
                    cfg.staleness,
                    cfg.policy,
                    cfg.dim,
                    cfg.lr,
                );
                // A serving replica must never dirty an entry — enforce
                // it at the table level, not by convention.
                client.cache_mut().set_read_only(true);
                let mut model_rng = StdRng::seed_from_u64(cfg.seed);
                let model = model_fn(&mut model_rng);
                assert_eq!(
                    model.embedding_dim(),
                    cfg.dim,
                    "model embedding dim must match the config"
                );
                Replica {
                    client,
                    model,
                    queue: VecDeque::new(),
                    busy_until: SimTime::ZERO,
                    comm: CommStats::default(),
                    ops: 0,
                    hist: LatencyHistogram::new(),
                    requests: 0,
                    batches: 0,
                    crash_count: 0,
                }
            })
            .collect();
        let requests = generate_requests(&cfg);
        let control = supervised.then(|| {
            let cp = ControlPlane::new(fleet, cfg.n_replicas);
            cp.borrow_mut().total = requests.len() as u64;
            cp
        });
        ServeSim {
            net: cfg.cluster.collectives(),
            server,
            down: vec![false; fleet],
            ever_admitted: (0..fleet).map(|r| r < cfg.n_replicas).collect(),
            sketch: supervised.then(|| SpaceSaving::new(cfg.cache_capacity)),
            recent_sketch: (supervised && cfg.supervision.drift_prefetch)
                .then(|| SpaceSaving::new(cfg.cache_capacity)),
            prev_sketch: None,
            recent_since: SimTime::ZERO,
            drift_prefetched: 0,
            control,
            replicas,
            plan,
            member_offset,
            fault_stats: FaultStats::default(),
            pretrained: 0,
            requests,
            hist: LatencyHistogram::new(),
            queue_wait_ns: 0,
            lookup_ns: 0,
            infer_ns: 0,
            score_sum: 0.0,
            score_count: 0,
            warmed_keys: 0,
            end_time: SimTime::ZERO,
            served_total: 0,
            respawns: 0,
            retry_waits: 0,
            cfg,
        }
    }

    /// The shared control plane, present when supervision or
    /// autoscaling is enabled. Co-scheduled setups hand clones to the
    /// [`Supervisor`] and [`Autoscaler`] they register alongside the
    /// fleet.
    pub fn control_plane(&self) -> Option<Rc<RefCell<ControlPlane>>> {
        self.control.clone()
    }

    /// SpaceSaving warmup: replays the popularity distribution through
    /// the sketch offline, then pre-installs its top keys into every
    /// replica cache before the first request lands.
    fn warm_replicas(&mut self) {
        if self.cfg.warmup_requests == 0 {
            return;
        }
        let mut rng = StdRng::seed_from_u64(warmup_seed(&self.cfg));
        let zipf = ZipfSampler::new(self.cfg.n_keys as usize, self.cfg.zipf_exponent);
        let mut sketch = SpaceSaving::new(self.cfg.cache_capacity);
        for _ in 0..self.cfg.warmup_requests * self.cfg.n_fields {
            let rank = zipf.sample(&mut rng) as u64;
            sketch.observe(key_of(rank, SimTime::ZERO, &self.cfg));
        }
        let top: Vec<(Key, u64)> = sketch.top(self.cfg.cache_capacity);
        self.warmed_keys = top.len() as u64;
        for (r, replica) in self.replicas.iter_mut().enumerate() {
            het_trace::set_scope(0, Some((self.member_offset + r) as u64));
            for &(k, _) in &top {
                let pulled = self.server.pull(k);
                let displaced = replica
                    .client
                    .cache_mut()
                    .install(k, pulled.vector, pulled.clock);
                debug_assert!(displaced.is_none(), "warmup installs into an empty cache");
            }
            het_trace::counter_add("serve", "warmed_keys", top.len() as u64);
        }
        // Warmup runs before the first request; its cold fetches must
        // not surface in request latency.
        self.server.reclassify_pending_io();
    }

    /// Join-shortest-queue over `cand`, ties to the earliest-free then
    /// lowest index.
    fn best_of(&self, cand: impl IntoIterator<Item = usize>) -> Option<usize> {
        let mut best: Option<usize> = None;
        for r in cand {
            best = Some(match best {
                None => r,
                Some(b) => {
                    let (a, p) = (&self.replicas[r], &self.replicas[b]);
                    if (a.queue.len(), a.busy_until, r) < (p.queue.len(), p.busy_until, b) {
                        r
                    } else {
                        b
                    }
                }
            });
        }
        best
    }

    /// Routes a request: JSQ over admitted, live replicas; falls back
    /// to admitted-but-down replicas (the balancer holds their queues
    /// through a supervised respawn), then to the whole fleet.
    fn route(&self) -> usize {
        let n = self.replicas.len();
        let Some(cp) = self.control.as_ref() else {
            return self.best_of(0..n).expect("non-empty fleet");
        };
        let cp = cp.borrow();
        self.best_of((0..n).filter(|&r| cp.admitted[r] && !self.down[r]))
            .or_else(|| self.best_of((0..n).filter(|&r| cp.admitted[r])))
            .unwrap_or_else(|| self.best_of(0..n).expect("non-empty fleet"))
    }

    /// Applies every crash the runtime's fault delivery has due for
    /// replica `r` at or before `t`.
    fn apply_crashes(&mut self, r: usize, t: SimTime, ctx: &mut Ctx<'_>) {
        while let Some((at, restart)) = ctx.take_crash(r, t) {
            self.apply_one_crash(r, at, restart);
        }
    }

    /// One crash: the cache is lost cold and the replica is out until
    /// the restart delay elapses. Queued requests survive (the balancer
    /// holds them), which is how the latency cost of a crash surfaces.
    fn apply_one_crash(&mut self, r: usize, at: SimTime, restart: SimDuration) {
        let replica = &mut self.replicas[r];
        het_trace::set_scope(at.as_nanos(), Some((self.member_offset + r) as u64));
        let (lost, dirty_lost, _) = replica.client.crash_reset();
        debug_assert_eq!(dirty_lost, 0, "read-only caches hold no dirty entries");
        replica.busy_until = replica.busy_until.max(at + restart);
        replica.crash_count += 1;
        self.fault_stats.worker_crashes += 1;
        self.fault_stats.keys_lost += lost;
        het_trace::emit_at(
            "serve",
            "replica_crash",
            at.as_nanos(),
            Some(restart.as_nanos()),
            vec![("keys_lost", het_trace::Value::from(lost))],
        );
    }

    /// Supervised-mode crash application: the replica goes *down
    /// indefinitely* — the scripted restart delay is ignored, because
    /// recovery is now the supervisor's job (detection via heartbeat
    /// age, respawn via the control plane).
    fn apply_supervised_crashes(&mut self, r: usize, t: SimTime, ctx: &mut Ctx<'_>) {
        while let Some((at, _restart)) = ctx.take_crash(r, t) {
            self.apply_supervised_crash(r, at);
        }
    }

    fn apply_supervised_crash(&mut self, r: usize, at: SimTime) {
        let replica = &mut self.replicas[r];
        het_trace::set_scope(at.as_nanos(), Some((self.member_offset + r) as u64));
        let (lost, dirty_lost, _) = replica.client.crash_reset();
        debug_assert_eq!(dirty_lost, 0, "read-only caches hold no dirty entries");
        self.down[r] = true;
        replica.crash_count += 1;
        self.fault_stats.worker_crashes += 1;
        self.fault_stats.keys_lost += lost;
        het_trace::emit_at(
            "serve",
            "replica_crash",
            at.as_nanos(),
            None,
            vec![("keys_lost", het_trace::Value::from(lost))],
        );
    }

    /// If the batch replica `r` would launch at `t` needs a PS shard
    /// that is mid-outage, returns the shard and how long the retry
    /// schedule backs off to outlast the outage. `None` when no needed
    /// shard is down — or when the retry budget cannot cover the
    /// outage, in which case the read proceeds on the degraded path
    /// (resident entries served stale).
    fn outage_retry_wait(&self, r: usize, t: SimTime) -> Option<(usize, SimDuration)> {
        if self.plan.is_empty() {
            return None;
        }
        let replica = &self.replicas[r];
        let n_take = replica.queue.len().min(self.cfg.max_batch);
        let mut worst: Option<(usize, SimTime)> = None;
        for &i in replica.queue.iter().take(n_take) {
            for &k in &self.requests[i].keys {
                let shard = self.server.shard_index_of(k);
                if let Some(end) = self.plan.shard_outage_end(shard, t) {
                    match worst {
                        Some((_, e)) if end <= e => {}
                        _ => worst = Some((shard, end)),
                    }
                }
            }
        }
        let (shard, end) = worst?;
        let wait = self.cfg.supervision.retry.time_to_reach(end.since(t))?;
        Some((shard, wait))
    }

    /// One scheduling step for replica `r` at time `t`: either launch a
    /// micro-batch, or schedule the wake-up that will.
    fn step(&mut self, r: usize, t: SimTime, ctx: &mut Ctx<'_>) {
        if self.cfg.supervision.enabled {
            self.apply_supervised_crashes(r, t, ctx);
            if self.down[r] {
                // Queued requests wait for the supervised respawn.
                return;
            }
        } else {
            self.apply_crashes(r, t, ctx);
        }
        let replica = &self.replicas[r];
        if replica.queue.is_empty() {
            return;
        }
        if t < replica.busy_until {
            ctx.schedule(replica.busy_until, Event::Wake(r as u64));
            return;
        }
        let oldest = self.requests[*replica.queue.front().expect("non-empty")].at;
        let deadline = oldest + self.cfg.max_queue_delay;
        if replica.queue.len() < self.cfg.max_batch && t < deadline {
            ctx.schedule(deadline, Event::Wake(r as u64));
            return;
        }
        if self.cfg.supervision.enabled {
            if let Some((shard, wait)) = self.outage_retry_wait(r, t) {
                het_trace::set_scope(t.as_nanos(), Some((self.member_offset + r) as u64));
                self.replicas[r].busy_until = t + wait;
                self.retry_waits += 1;
                het_trace::emit_at(
                    "serve",
                    "retry_wait",
                    t.as_nanos(),
                    Some(wait.as_nanos()),
                    vec![("shard", het_trace::Value::from(shard))],
                );
                het_trace::count!("serve", "retry_waits");
                ctx.schedule(t + wait, Event::Wake(r as u64));
                return;
            }
        }
        self.execute_batch(r, t, ctx);
    }

    /// Heartbeat period of the fleet: supervision's heartbeat when
    /// enabled, otherwise the autoscaler's evaluation period (the
    /// control plane still needs fresh queue depths).
    fn heartbeat_period(&self) -> SimDuration {
        if self.cfg.supervision.enabled {
            self.cfg.supervision.heartbeat_every
        } else {
            self.cfg.autoscale.evaluate_every
        }
    }

    /// One heartbeat tick: apply any crashes due (so a crashed replica
    /// stops heartbeating *from its crash instant*, which is what the
    /// supervisor detects), then post liveness and queue depth into the
    /// control plane.
    fn on_heartbeat(&mut self, t: SimTime, ctx: &mut Ctx<'_>) {
        if self.cfg.supervision.enabled {
            for r in 0..self.replicas.len() {
                self.apply_supervised_crashes(r, t, ctx);
            }
        }
        // Rotate the drift detector's short window on heartbeat ticks;
        // each completed window triggers a prefetch round that installs
        // its newly-hot keys into every live admitted replica.
        let mut rotated = false;
        if let Some(recent) = self.recent_sketch.as_mut() {
            if t.since(self.recent_since) >= self.cfg.supervision.drift_window {
                let fresh = SpaceSaving::new(self.cfg.cache_capacity);
                self.prev_sketch = Some(std::mem::replace(recent, fresh));
                self.recent_since = t;
                rotated = true;
            }
        }
        if rotated {
            let live: Vec<usize> = {
                let cp = self.control.as_ref().expect("heartbeat implies control");
                let cp = cp.borrow();
                (0..self.replicas.len())
                    .filter(|&r| cp.admitted[r] && !self.down[r])
                    .collect()
            };
            for r in live {
                self.prefetch_drifted(r, t);
            }
        }
        let done = self.served_total == self.requests.len() as u64;
        let cp = self.control.clone().expect("heartbeat implies control");
        {
            let mut cp = cp.borrow_mut();
            for r in 0..self.replicas.len() {
                if !self.down[r] {
                    cp.last_heartbeat[r] = t;
                }
                cp.queue_depth[r] = self.replicas[r].queue.len();
            }
            cp.served = self.served_total;
            cp.done = done;
        }
        if !done {
            ctx.schedule(t + self.heartbeat_period(), Event::Wake(HEARTBEAT_WAKE));
        }
    }

    /// Applies control-plane commands that have come due: supervised
    /// respawns and autoscaler admissions.
    fn on_control(&mut self, t: SimTime, ctx: &mut Ctx<'_>) {
        let cp = self.control.clone().expect("control wake implies control");
        let mut respawn = Vec::new();
        let mut admit = Vec::new();
        {
            let mut cp = cp.borrow_mut();
            for r in 0..self.replicas.len() {
                if cp.respawn_at[r].is_some_and(|at| at <= t) {
                    cp.respawn_at[r] = None;
                    // Stamp the heartbeat so the supervisor sees the
                    // replica recover instead of re-detecting it.
                    cp.last_heartbeat[r] = t;
                    respawn.push(r);
                }
                if cp.admit_at[r].is_some_and(|at| at <= t) {
                    cp.admit_at[r] = None;
                    cp.admitted[r] = true;
                    admit.push(r);
                }
            }
        }
        for r in respawn {
            self.respawn_replica(r, t);
            self.step(r, t, ctx);
        }
        for r in admit {
            self.admit_replica(r, t);
            self.step(r, t, ctx);
        }
    }

    /// Brings a crashed replica back: cache warmed from the live
    /// popularity sketch, queue intact (the balancer held it).
    fn respawn_replica(&mut self, r: usize, t: SimTime) {
        het_trace::set_scope(t.as_nanos(), Some((self.member_offset + r) as u64));
        self.down[r] = false;
        self.replicas[r].busy_until = self.replicas[r].busy_until.max(t);
        let warmed = self.warm_one_from_sketch(r);
        let prefetched = self.prefetch_drifted(r, t);
        self.respawns += 1;
        het_trace::emit_at(
            "serve",
            "replica_respawn",
            t.as_nanos(),
            None,
            vec![
                ("keys_warmed", het_trace::Value::from(warmed)),
                ("keys_prefetched", het_trace::Value::from(prefetched)),
            ],
        );
    }

    /// Admits a scaled-up replica into the JSQ pool, warming its cache
    /// first if it has never served (replicas pre-warmed at startup by
    /// `warmup_requests` are already hot).
    fn admit_replica(&mut self, r: usize, t: SimTime) {
        het_trace::set_scope(t.as_nanos(), Some((self.member_offset + r) as u64));
        let mut warmed = 0;
        if !self.ever_admitted[r] {
            self.ever_admitted[r] = true;
            if self.cfg.warmup_requests == 0 {
                warmed = self.warm_one_from_sketch(r);
            }
        }
        het_trace::emit_at(
            "serve",
            "replica_admit",
            t.as_nanos(),
            None,
            vec![("keys_warmed", het_trace::Value::from(warmed))],
        );
    }

    /// Installs the live sketch's top keys into replica `r`'s (empty)
    /// cache. Returns the number of keys installed.
    fn warm_one_from_sketch(&mut self, r: usize) -> u64 {
        let Some(sketch) = self.sketch.as_ref() else {
            return 0;
        };
        let top: Vec<(Key, u64)> = sketch.top(self.cfg.cache_capacity);
        let replica = &mut self.replicas[r];
        for &(k, _) in &top {
            let pulled = self.server.pull(k);
            let _ = replica
                .client
                .cache_mut()
                .install(k, pulled.vector, pulled.clock);
        }
        self.server.reclassify_pending_io();
        het_trace::counter_add("serve", "warmed_keys", top.len() as u64);
        top.len() as u64
    }

    /// Drift-triggered prefetch into replica `r`: pulls the keys that
    /// are hot in the *recent* window (plus the previous one, so a
    /// rotation boundary never blinds it) but not resident — exactly
    /// the hot-set drift a snapshot-warmed cache lags behind — and
    /// lands them as prefetched entries, so their first hits show up in
    /// `prefetch_hits`. Runs on every window rotation for live admitted
    /// replicas and once more inside a supervised respawn, right after
    /// the lifetime-sketch warmup. Capped at a quarter of the cache per
    /// round so a mistaken drift signal cannot flush the resident hot
    /// set. Returns the number of keys installed.
    fn prefetch_drifted(&mut self, r: usize, t: SimTime) -> u64 {
        if !self.cfg.supervision.drift_prefetch {
            return 0;
        }
        het_trace::set_scope(t.as_nanos(), Some((self.member_offset + r) as u64));
        let mut candidates: Vec<Key> = Vec::new();
        for sketch in [self.recent_sketch.as_ref(), self.prev_sketch.as_ref()]
            .into_iter()
            .flatten()
        {
            for (k, _) in sketch.top(self.cfg.cache_capacity) {
                if !candidates.contains(&k) {
                    candidates.push(k);
                }
            }
        }
        // The budget also bounds the *total* staging region: pins from
        // earlier rotations that never hit count against it, so a churny
        // workload cannot accumulate unconsumed pins without limit.
        let replica = &mut self.replicas[r];
        let budget = ((self.cfg.cache_capacity / 4).max(1) as u64)
            .saturating_sub(replica.client.cache().pinned_len() as u64);
        let mut installed = 0u64;
        for k in candidates {
            if installed == budget {
                break;
            }
            if replica.client.cache().find(k) {
                continue;
            }
            let pulled = self.server.pull(k);
            let displaced =
                replica
                    .client
                    .cache_mut()
                    .install_prefetched(k, pulled.vector, pulled.clock);
            debug_assert!(
                displaced.is_none(),
                "read-only caches hold no dirty entries"
            );
            installed += 1;
        }
        // Drift prefetch is asynchronous background work; its cold
        // fetches hide behind serving, like the trainer's prefetcher.
        self.server.reclassify_pending_io();
        if installed > 0 {
            self.drift_prefetched += installed;
            het_trace::event!("serve", "drift_prefetch",
                "replica" => r, "keys" => installed);
            het_trace::count!("serve", "drift_prefetched_keys", installed);
        }
        installed
    }

    fn execute_batch(&mut self, r: usize, t: SimTime, ctx: &mut Ctx<'_>) {
        het_trace::set_scope(t.as_nanos(), Some((self.member_offset + r) as u64));

        let replica = &mut self.replicas[r];
        let n_take = replica.queue.len().min(self.cfg.max_batch);
        let idxs: Vec<usize> = replica.queue.drain(..n_take).collect();
        let depth_after = replica.queue.len();

        // Staleness-bounded embedding resolution over the batch's
        // unique keys (the micro-batch analogue of the trainer's read).
        let mut unique: Vec<Key> = idxs
            .iter()
            .flat_map(|&i| self.requests[i].keys.iter().copied())
            .collect();
        unique.sort_unstable();
        unique.dedup();
        let degraded_before = self.fault_stats.degraded_reads;
        let mut fctx = (!self.plan.is_empty()).then_some(FaultContext {
            plan: &self.plan,
            now: t,
            worker: self.member_offset + r,
            retry: self.cfg.faults.retry_policy(),
            ops: &mut replica.ops,
            stats: &mut self.fault_stats,
        });
        let (store, t_lookup) = replica.client.read(
            &unique,
            &self.server,
            &self.net,
            &mut replica.comm,
            fctx.as_mut(),
        );
        // `Het.Read` installs fetched entries past capacity; training
        // trims the overflow in `Het.Write`, which serving never calls,
        // so trim here. Read-only entries are always clean.
        let evicted = replica.client.cache_mut().evict_overflow();
        debug_assert!(
            evicted.iter().all(|(_, e)| !e.dirty),
            "read-only cache evicted a dirty entry"
        );

        // Forward pass over the batch.
        let batch = CtrBatch {
            keys: idxs
                .iter()
                .flat_map(|&i| self.requests[i].keys.iter().copied())
                .collect(),
            labels: vec![0.0; idxs.len()],
            n_fields: self.cfg.n_fields,
        };
        let chunk = replica.model.evaluate(&batch, &store);
        self.score_sum += chunk.scores.iter().map(|&s| s as f64).sum::<f64>();
        self.score_count += chunk.scores.len() as u64;
        let t_infer = self.cfg.cluster.compute_time(
            replica.model.flops_per_batch(batch.n_examples()) * FORWARD_FLOP_FRACTION,
        );
        let service = t_lookup + t_infer;
        let done = t + service;
        replica.busy_until = done;
        replica.batches += 1;
        replica.requests += idxs.len() as u64;
        self.served_total += idxs.len() as u64;

        // Accounting + trace.
        self.lookup_ns += t_lookup.as_nanos();
        self.infer_ns += t_infer.as_nanos();
        het_trace::span!("serve", "lookup", t_lookup.as_nanos(), "keys" => unique.len());
        het_trace::span!("serve", "infer", t_infer.as_nanos(), "examples" => idxs.len());
        het_trace::span!("serve", "batch", service.as_nanos(),
            "n" => idxs.len(), "depth_after" => depth_after);
        het_trace::count!("serve", "batches");
        het_trace::count!("serve", "requests", idxs.len() as u64);
        let degraded_delta = self.fault_stats.degraded_reads - degraded_before;
        if degraded_delta > 0 {
            het_trace::count!("serve", "degraded_reads", degraded_delta);
        }
        for &i in &idxs {
            let req = &self.requests[i];
            let wait = t.since(req.at);
            let latency = done.since(req.at);
            self.queue_wait_ns += wait.as_nanos();
            het_trace::count!("serve", "queue_wait_ns", wait.as_nanos());
            self.hist.record(latency.as_nanos());
            replica.hist.record(latency.as_nanos());
            het_trace::emit_at(
                "serve",
                "request",
                req.at.as_nanos(),
                Some(latency.as_nanos()),
                vec![("id", het_trace::Value::from(req.id))],
            );
        }
        self.end_time = self.end_time.max(done);

        if !self.replicas[r].queue.is_empty() {
            ctx.schedule(done, Event::Wake(r as u64));
        }
    }

    /// Number of replicas in the fleet.
    pub fn n_replicas(&self) -> usize {
        self.replicas.len()
    }

    /// Pre-run setup: pretraining pushes and cache warmup, both before
    /// t = 0. Called by [`ServeSim::run`]; co-scheduled setups call it
    /// before the shared runtime's loop starts.
    pub fn prepare(&mut self) {
        self.pretrained = pretrain(&self.cfg, &self.server, self.cfg.pretrain_updates);
        self.warm_replicas();
    }

    /// Schedules every request arrival on `rt`, plus the first
    /// heartbeat tick when the fleet is supervised.
    pub fn prime(&self, rt: &mut ClusterRuntime, pid: ProcessId) {
        for (i, req) in self.requests.iter().enumerate() {
            rt.prime(pid, req.at, Event::Arrive(i as u64));
        }
        if self.control.is_some() {
            rt.prime(pid, SimTime::ZERO, Event::Wake(HEARTBEAT_WAKE));
        }
    }

    /// Post-run fault accounting: crashes scheduled after the last
    /// served batch still count, as do PS-shard outages observed within
    /// the serving horizon.
    pub fn epilogue(&mut self, rt: &mut ClusterRuntime, pid: ProcessId) {
        let horizon = self.end_time;
        for r in 0..self.replicas.len() {
            while let Some((at, restart)) = rt.take_crash(pid, r, horizon) {
                if self.cfg.supervision.enabled {
                    self.apply_supervised_crash(r, at);
                } else {
                    self.apply_one_crash(r, at, restart);
                }
            }
        }
        self.fault_stats.shard_failovers = self
            .plan
            .shard_outages()
            .iter()
            .filter(|&&(_, at, _)| at <= horizon)
            .count() as u64;
    }

    /// Runs the schedule to completion on a private [`ClusterRuntime`]
    /// and produces the report. Every generated request is served — the
    /// run only ends once all queues drain. A supervised run registers
    /// the [`Supervisor`] (owning PS restore) and, when autoscaling is
    /// on, the [`Autoscaler`] as additional runtime members.
    pub fn run(mut self) -> ServeReport {
        self.prepare();
        let mut rt = ClusterRuntime::new(TieBreak::Fifo, self.plan.clone());
        let pid = rt.register(self.replicas.len());
        self.prime(&mut rt, pid);
        let mut supervisor = self
            .control
            .as_ref()
            .filter(|_| self.cfg.supervision.enabled)
            .map(|cp| {
                cp.borrow_mut().serve_pid = pid;
                let sup_pid = rt.register(1);
                rt.prime(sup_pid, SimTime::ZERO, Event::Wake(0));
                Supervisor::with_store(
                    self.cfg.supervision.clone(),
                    cp.clone(),
                    self.server.clone(),
                    self.plan.clone(),
                    self.replicas.len(),
                )
            });
        let mut autoscaler = self
            .control
            .as_ref()
            .filter(|_| self.cfg.autoscale.enabled)
            .map(|cp| {
                cp.borrow_mut().serve_pid = pid;
                let auto_pid = rt.register(1);
                rt.prime(auto_pid, SimTime::ZERO, Event::Wake(0));
                Autoscaler::new(self.cfg.autoscale, cp.clone())
            });
        {
            let mut procs: Vec<&mut dyn Process> = Vec::with_capacity(3);
            procs.push(&mut self);
            if let Some(sup) = supervisor.as_mut() {
                procs.push(sup);
            }
            if let Some(auto) = autoscaler.as_mut() {
                procs.push(auto);
            }
            rt.run(&mut procs);
        }
        self.epilogue(&mut rt, pid);
        self.into_report()
    }

    /// Assembles the [`ServeReport`]. Called by [`ServeSim::run`];
    /// co-scheduled setups call it after [`ServeSim::epilogue`].
    pub fn into_report(self) -> ServeReport {
        let mut cache = het_cache::CacheStats::default();
        let mut served = 0u64;
        let mut batches = 0u64;
        let replicas: Vec<ReplicaReport> = self
            .replicas
            .iter()
            .enumerate()
            .map(|(i, r)| {
                let stats = *r.client.cache().stats();
                cache.merge(&stats);
                served += r.requests;
                batches += r.batches;
                ReplicaReport {
                    replica: i,
                    requests: r.requests,
                    batches: r.batches,
                    crashes: r.crash_count,
                    cache: stats,
                    p99_ns: r.hist.quantile(0.99),
                }
            })
            .collect();
        debug_assert_eq!(served, self.requests.len() as u64, "every request served");
        let (detections, scale_ups, scale_downs, migrated_keys, max_recovery_ns, split_done) =
            match self.control.as_ref() {
                Some(cp) => {
                    let cp = cp.borrow();
                    (
                        cp.detections,
                        cp.scale_ups,
                        cp.scale_downs,
                        cp.migrated_keys,
                        cp.max_recovery_ns,
                        cp.split_done,
                    )
                }
                None => (0, 0, 0, 0, 0, false),
            };
        let sim_s = self.end_time.as_secs_f64();
        ServeReport {
            seed: self.cfg.seed,
            n_replicas: self.cfg.n_replicas,
            cache_capacity: self.cfg.cache_capacity,
            staleness: self.cfg.staleness,
            policy: self.cfg.policy.to_string(),
            requests: served,
            batches,
            sim_time_ns: self.end_time.as_nanos(),
            throughput_rps: if sim_s > 0.0 {
                served as f64 / sim_s
            } else {
                0.0
            },
            mean_batch_size: if batches > 0 {
                served as f64 / batches as f64
            } else {
                0.0
            },
            latency_p50_ns: self.hist.quantile(0.5),
            latency_p95_ns: self.hist.quantile(0.95),
            latency_p99_ns: self.hist.quantile(0.99),
            latency_max_ns: self.hist.max(),
            latency_mean_ns: self.hist.mean(),
            queue_wait_ns: self.queue_wait_ns,
            lookup_ns: self.lookup_ns,
            infer_ns: self.infer_ns,
            cache,
            warmed_keys: self.warmed_keys,
            drift_prefetched_keys: self.drift_prefetched,
            pretrain_updates: self.pretrained,
            score_mean: if self.score_count > 0 {
                self.score_sum / self.score_count as f64
            } else {
                0.0
            },
            faults: self.fault_stats,
            detections,
            respawns: self.respawns,
            retry_waits: self.retry_waits,
            scale_ups,
            scale_downs,
            migrated_keys,
            split_done,
            max_recovery_ns,
            replicas,
        }
    }
}

impl<M: EmbeddingModel<Batch = CtrBatch>> Process for ServeSim<M> {
    fn on_event(&mut self, t: SimTime, ev: Event, ctx: &mut Ctx<'_>) {
        debug_assert_eq!(
            ctx.member_offset(),
            self.member_offset,
            "register the fleet at its configured member offset"
        );
        match ev {
            Event::Arrive(i) => {
                if let Some(sketch) = self.sketch.as_mut() {
                    for &k in &self.requests[i as usize].keys {
                        sketch.observe(k);
                    }
                }
                if let Some(recent) = self.recent_sketch.as_mut() {
                    for &k in &self.requests[i as usize].keys {
                        recent.observe(k);
                    }
                }
                let r = self.route();
                self.replicas[r].queue.push_back(i as usize);
                self.step(r, t, ctx);
            }
            Event::Wake(HEARTBEAT_WAKE) => self.on_heartbeat(t, ctx),
            Event::Wake(CONTROL_WAKE) => self.on_control(t, ctx),
            Event::Wake(r) => self.step(r as usize, t, ctx),
        }
    }
}
