//! The open-loop request generator and the pretraining stream.
//!
//! Serving *alongside live training* is not modelled here: co-schedule
//! a real [`het_core::Trainer`] with the fleet on one cluster runtime
//! (see [`crate::colocate`]). This module only fabricates the training
//! *history* that produced the served model ([`pretrain`]).

use crate::config::ServeConfig;
use het_data::{Key, ZipfSampler};
use het_ps::PsServer;
use het_rng::rngs::StdRng;
use het_rng::{Rng, SeedableRng};
use het_simnet::SimTime;

/// Seed salts: each random stream of a run derives from the master
/// seed xor a distinct salt, so streams never alias.
const REQUEST_SALT: u64 = 0x5e72_7665_7265_7131; // arrivals + keys
const TRAIN_SALT: u64 = 0x5e72_7665_7472_6e32; // pretraining stream
const WARMUP_SALT: u64 = 0x5e72_7665_7761_7233; // warmup sketch

/// One inference request: an arrival instant and the embedding keys of
/// its `n_fields` categorical features.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Request {
    /// Sequence number in arrival order.
    pub id: u64,
    /// Open-loop arrival instant.
    pub at: SimTime,
    /// Embedding keys, one per field (duplicates possible).
    pub keys: Vec<Key>,
}

/// The popularity rank → key mapping at time `at`: ranks rotate through
/// the key space as the hot set drifts, so yesterday's head keys cool
/// off at a controlled rate.
pub fn key_of(rank: u64, at: SimTime, cfg: &ServeConfig) -> Key {
    let epoch = at
        .as_nanos()
        .checked_div(cfg.drift_period.as_nanos())
        .unwrap_or(0);
    (rank + epoch.wrapping_mul(cfg.drift_step)) % cfg.n_keys
}

fn in_flash(at: SimTime, cfg: &ServeConfig) -> bool {
    match cfg.flash_at {
        Some(start) => at >= start && at < start + cfg.flash_duration,
        None => false,
    }
}

/// Generates the full request schedule: Poisson-like arrivals (the rate
/// multiplied by `flash_factor` inside the flash window) with Zipf key
/// popularity, hot-set drift, and flash-crowd key concentration. Pure
/// function of the configuration.
pub fn generate_requests(cfg: &ServeConfig) -> Vec<Request> {
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ REQUEST_SALT);
    let zipf = ZipfSampler::new(cfg.n_keys as usize, cfg.zipf_exponent);
    let mut out = Vec::with_capacity(cfg.n_requests);
    let mut t_ns = 0.0f64;
    for id in 0..cfg.n_requests as u64 {
        let now = SimTime::from_nanos(t_ns as u64);
        let rate = if in_flash(now, cfg) {
            cfg.arrival_rate * cfg.flash_factor
        } else {
            cfg.arrival_rate
        };
        let u: f64 = rng.gen();
        t_ns += -(1.0 - u).ln() / rate * 1e9;
        let at = SimTime::from_nanos(t_ns as u64);
        let flash = in_flash(at, cfg) && cfg.flash_hot_keys > 0;
        let keys = (0..cfg.n_fields)
            .map(|_| {
                let rank = if flash {
                    rng.gen_range(0..cfg.flash_hot_keys)
                } else {
                    zipf.sample(&mut rng) as u64
                };
                key_of(rank, at, cfg)
            })
            .collect();
        out.push(Request { id, at, keys });
    }
    out
}

/// Applies `n` Zipf-distributed gradient pushes to the PS before t = 0,
/// standing in for the training history that produced the served model.
/// Returns `n` for report accounting.
pub fn pretrain(cfg: &ServeConfig, server: &PsServer, n: u64) -> u64 {
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ TRAIN_SALT);
    let zipf = ZipfSampler::new(cfg.n_keys as usize, cfg.zipf_exponent);
    for _ in 0..n {
        let key = zipf.sample(&mut rng) as Key;
        let grad: Vec<f32> = (0..cfg.dim)
            .map(|_| (rng.gen::<f32>() - 0.5) * 0.2)
            .collect();
        server.push_inc(key, &grad);
    }
    // Pretraining happens before t = 0 — its disk time is history, not
    // serving latency.
    server.reclassify_pending_io();
    n
}

/// The warmup sketch's seed for a run configuration.
pub fn warmup_seed(cfg: &ServeConfig) -> u64 {
    cfg.seed ^ WARMUP_SALT
}

#[cfg(test)]
mod tests {
    use super::*;
    use het_simnet::SimDuration;

    #[test]
    fn request_schedule_is_deterministic() {
        let cfg = ServeConfig::tiny(7);
        assert_eq!(generate_requests(&cfg), generate_requests(&cfg));
        let other = ServeConfig::tiny(8);
        assert_ne!(generate_requests(&cfg), generate_requests(&other));
    }

    #[test]
    fn arrivals_are_monotone_and_rate_scaled() {
        let cfg = ServeConfig::tiny(3);
        let reqs = generate_requests(&cfg);
        assert_eq!(reqs.len(), cfg.n_requests);
        for w in reqs.windows(2) {
            assert!(w[0].at <= w[1].at);
        }
        let span = reqs.last().unwrap().at.as_secs_f64();
        let expected = cfg.n_requests as f64 / cfg.arrival_rate;
        assert!(
            span > expected * 0.5 && span < expected * 2.0,
            "span {span} far from expected {expected}"
        );
    }

    #[test]
    fn flash_crowd_concentrates_keys_and_compresses_arrivals() {
        let mut cfg = ServeConfig::tiny(5);
        cfg.n_requests = 2_000;
        cfg.flash_at = Some(SimTime::from_nanos(10_000_000));
        cfg.flash_duration = SimDuration::from_millis(20);
        cfg.flash_factor = 8.0;
        cfg.flash_hot_keys = 10;
        let reqs = generate_requests(&cfg);
        let flash: Vec<&Request> = reqs.iter().filter(|r| in_flash(r.at, &cfg)).collect();
        assert!(!flash.is_empty(), "flash window saw no arrivals");
        assert!(
            flash.iter().all(|r| r.keys.iter().all(|&k| k < 10)),
            "flash requests must draw from the hot subset"
        );
        // The window's share of requests far exceeds its share of time.
        let horizon = reqs.last().unwrap().at.as_secs_f64();
        let time_share = cfg.flash_duration.as_secs_f64() / horizon;
        let req_share = flash.len() as f64 / reqs.len() as f64;
        assert!(
            req_share > time_share * 2.0,
            "flash did not compress arrivals (req {req_share:.3} vs time {time_share:.3})"
        );
    }

    #[test]
    fn drift_rotates_the_hot_ranks() {
        let mut cfg = ServeConfig::tiny(1);
        cfg.drift_period = SimDuration::from_millis(5);
        cfg.drift_step = 100;
        let early = key_of(0, SimTime::ZERO, &cfg);
        let late = key_of(0, SimTime::from_nanos(5_000_001), &cfg);
        assert_eq!(early, 0);
        assert_eq!(late, 100);
        assert_eq!(
            key_of(cfg.n_keys - 1, SimTime::ZERO, &cfg),
            cfg.n_keys - 1,
            "ranks wrap modulo the key space"
        );
    }

    #[test]
    fn pretrain_is_deterministic_and_advances_clocks() {
        let cfg = ServeConfig::tiny(9);
        let make_server = || {
            PsServer::new(het_ps::PsConfig {
                dim: cfg.dim,
                n_shards: cfg.n_shards,
                lr: cfg.lr,
                seed: cfg.seed,
                optimizer: het_ps::ServerOptimizer::Sgd,
                grad_clip: None,
            })
        };
        let (a, b) = (make_server(), make_server());
        assert_eq!(pretrain(&cfg, &a, 100), 100);
        assert_eq!(pretrain(&cfg, &b, 100), 100);
        let ticks: u64 = (0..cfg.n_keys).map(|k| a.pull(k).clock).sum();
        let ticks_b: u64 = (0..cfg.n_keys).map(|k| b.pull(k).clock).sum();
        assert_eq!(ticks, 100, "every push advances exactly one key clock");
        assert_eq!(ticks_b, ticks, "same seed, same stream");
    }
}
