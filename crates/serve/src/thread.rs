//! The threaded half of the serving execution-backend seam.
//!
//! [`ServeSim`](crate::ServeSim) is the discrete-event oracle: one OS
//! thread, virtual time, byte-identical reports. This module runs the
//! *same* replica machinery — a read-only [`HetClient`] cache in front
//! of a trained forward pass, staleness-bounded reads against a live
//! PS — on real OS threads behind `--backend threads:<n>`:
//!
//! * one thread per replica, each **owning** its cache and model (the
//!   het-cache tables stay single-owner; only the PS fabric is shared,
//!   through [`PsServer`]'s internally synchronized shards);
//! * the pre-generated request schedule ([`generate_requests`]) is
//!   drained through a shared atomic cursor — each thread claims the
//!   next `max_batch` requests, resolves their embeddings through its
//!   cache, and runs the forward pass;
//! * latency is **wall-clock service time** per micro-batch (claim →
//!   forward done). The open-loop arrival process and join-shortest-
//!   queue routing are simulation constructs; the threaded backend is
//!   a throughput/parallelism harness, not a queueing model, and its
//!   report says so by carrying `wall_ns` instead of `sim_time_ns`.
//!
//! What is deterministic here: the request schedule, the pretraining
//! stream, the warmup set, and every per-request score (reads are
//! staleness-validated against the same clocks). What is not: wall
//! times, thread interleaving, and therefore cache hit counts when
//! serving runs *while training* (the PS clocks advance concurrently).
//! Cross-backend equivalence is asserted where it holds — request
//! count, batch accounting, score sanity — in `tests/parallel.rs`.
//!
//! Features that are inherently schedule-scripted — fault injection,
//! heartbeat supervision, autoscaling, drift-triggered prefetch — are
//! rejected with an error pointing back at `--backend sim` rather than
//! silently ignored.

use crate::config::ServeConfig;
use crate::workload::{generate_requests, key_of, pretrain, warmup_seed, Request};
use het_cache::CacheStats;
use het_core::HetClient;
use het_data::{CtrBatch, Key, LatencyHistogram, SpaceSaving, ZipfSampler};
use het_json::{Json, ToJson};
use het_models::EmbeddingModel;
use het_ps::{PsConfig, PsServer, PullResult, ServerHandle, ServerOptimizer};
use het_rng::rngs::StdRng;
use het_rng::SeedableRng;
use het_runtime::WallClock;
use het_simnet::{Collectives, CommStats, SimTime};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// The outcome of a threaded serving run. Times are host wall-clock
/// nanoseconds — honest measurements, hardware-dependent, outside every
/// byte-identity contract (unlike [`ServeReport`](crate::ServeReport)).
#[derive(Clone, Debug)]
pub struct ThreadedServeReport {
    /// Replica threads the fleet ran on.
    pub n_threads: usize,
    /// Requests served (all of them — the run drains the schedule).
    pub requests: u64,
    /// Micro-batches executed across replica threads.
    pub batches: u64,
    /// Wall-clock nanoseconds from fleet start to last batch done.
    pub wall_ns: u64,
    /// Served requests per wall-clock second.
    pub throughput_rps: f64,
    /// Median micro-batch service latency (claim → forward done).
    pub latency_p50_ns: u64,
    /// 95th percentile service latency.
    pub latency_p95_ns: u64,
    /// 99th percentile service latency.
    pub latency_p99_ns: u64,
    /// Worst-case service latency.
    pub latency_max_ns: u64,
    /// Mean service latency.
    pub latency_mean_ns: f64,
    /// Cache counters merged across replica threads.
    pub cache: CacheStats,
    /// Keys pre-installed per replica by SpaceSaving warmup.
    pub warmed_keys: u64,
    /// PS updates applied before serving started.
    pub pretrain_updates: u64,
    /// Mean model score over all served examples (the fingerprint that
    /// the forward pass actually consumed the embeddings).
    pub score_mean: f64,
}

impl ToJson for ThreadedServeReport {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("backend".to_string(), Json::Str("threads".to_string())),
            ("n_threads".to_string(), Json::UInt(self.n_threads as u64)),
            ("requests".to_string(), Json::UInt(self.requests)),
            ("batches".to_string(), Json::UInt(self.batches)),
            ("wall_ns".to_string(), Json::UInt(self.wall_ns)),
            ("throughput_rps".to_string(), Json::Num(self.throughput_rps)),
            (
                "latency_p50_ns".to_string(),
                Json::UInt(self.latency_p50_ns),
            ),
            (
                "latency_p95_ns".to_string(),
                Json::UInt(self.latency_p95_ns),
            ),
            (
                "latency_p99_ns".to_string(),
                Json::UInt(self.latency_p99_ns),
            ),
            (
                "latency_max_ns".to_string(),
                Json::UInt(self.latency_max_ns),
            ),
            (
                "latency_mean_ns".to_string(),
                Json::Num(self.latency_mean_ns),
            ),
            ("hits".to_string(), Json::UInt(self.cache.hits)),
            ("misses".to_string(), Json::UInt(self.cache.misses)),
            (
                "invalidations".to_string(),
                Json::UInt(self.cache.invalidations),
            ),
            ("miss_rate".to_string(), Json::Num(self.cache.miss_rate())),
            ("warmed_keys".to_string(), Json::UInt(self.warmed_keys)),
            (
                "pretrain_updates".to_string(),
                Json::UInt(self.pretrain_updates),
            ),
            ("score_mean".to_string(), Json::Num(self.score_mean)),
        ])
    }
}

/// What one replica thread brings home.
struct ThreadOut {
    hist: LatencyHistogram,
    cache: CacheStats,
    score_sum: f64,
    score_count: u64,
    requests: u64,
    batches: u64,
}

/// Rejects configuration features the threaded backend cannot honour.
/// Each of them scripts behaviour against the *simulated* schedule
/// (fault instants, heartbeat ticks, queue-depth windows), which has
/// no wall-clock analogue here.
fn check_supported(cfg: &ServeConfig) -> Result<(), String> {
    if cfg.faults.enabled {
        return Err(
            "the threaded serving backend does not support fault injection; use --backend sim"
                .to_string(),
        );
    }
    if cfg.supervision.enabled {
        return Err(
            "the threaded serving backend does not support supervision; use --backend sim"
                .to_string(),
        );
    }
    if cfg.autoscale.enabled {
        return Err(
            "the threaded serving backend does not support autoscaling; use --backend sim"
                .to_string(),
        );
    }
    Ok(())
}

/// The SpaceSaving warmup set, pulled once on the calling thread so
/// every replica installs the identical snapshot (the sim warms each
/// replica from the same offline sketch; pulling once gives the
/// threaded fleet the same content without racing the warm pulls).
fn warm_snapshot(cfg: &ServeConfig, server: &PsServer) -> Vec<(Key, PullResult)> {
    if cfg.warmup_requests == 0 {
        return Vec::new();
    }
    let mut rng = StdRng::seed_from_u64(warmup_seed(cfg));
    let zipf = ZipfSampler::new(cfg.n_keys as usize, cfg.zipf_exponent);
    let mut sketch = SpaceSaving::new(cfg.cache_capacity);
    for _ in 0..cfg.warmup_requests * cfg.n_fields {
        let rank = zipf.sample(&mut rng) as u64;
        sketch.observe(key_of(rank, SimTime::ZERO, cfg));
    }
    let snapshot = sketch
        .top(cfg.cache_capacity)
        .into_iter()
        .map(|(k, _)| (k, server.pull(k)))
        .collect();
    // Warmup precedes the first request; its cold fetches are not
    // serving latency.
    server.reclassify_pending_io();
    snapshot
}

/// One replica thread: claim `max_batch` requests off the shared
/// cursor, resolve embeddings through the thread-owned cache, forward,
/// record the batch's wall service time for each request in it.
fn replica_loop<M: EmbeddingModel<Batch = CtrBatch>>(
    cfg: &ServeConfig,
    server: &PsServer,
    requests: &[Request],
    warm: &[(Key, PullResult)],
    next: &AtomicUsize,
    clock: &WallClock,
    model: M,
) -> ThreadOut {
    let mut client = HetClient::new(
        cfg.cache_capacity,
        cfg.staleness,
        cfg.policy,
        cfg.dim,
        cfg.lr,
    );
    client.cache_mut().set_read_only(true);
    for (k, pulled) in warm {
        let _ = client
            .cache_mut()
            .install(*k, pulled.vector.clone(), pulled.clock);
    }
    let net: Collectives = cfg.cluster.collectives();
    let mut comm = CommStats::default();
    let mut out = ThreadOut {
        hist: LatencyHistogram::new(),
        cache: CacheStats::default(),
        score_sum: 0.0,
        score_count: 0,
        requests: 0,
        batches: 0,
    };
    loop {
        let start = next.fetch_add(cfg.max_batch, Ordering::Relaxed);
        if start >= requests.len() {
            break;
        }
        let end = (start + cfg.max_batch).min(requests.len());
        let t0 = clock.elapsed_ns();
        let batch_reqs = &requests[start..end];
        let mut unique: Vec<Key> = batch_reqs
            .iter()
            .flat_map(|r| r.keys.iter().copied())
            .collect();
        unique.sort_unstable();
        unique.dedup();
        let (store, _modelled) = client.read(&unique, server, &net, &mut comm, None);
        // Training trims past-capacity installs in `Het.Write`, which
        // serving never calls — trim here, as the sim replica does.
        let evicted = client.cache_mut().evict_overflow();
        debug_assert!(evicted.iter().all(|(_, e)| !e.dirty));
        let batch = CtrBatch {
            keys: batch_reqs
                .iter()
                .flat_map(|r| r.keys.iter().copied())
                .collect(),
            labels: vec![0.0; batch_reqs.len()],
            n_fields: cfg.n_fields,
        };
        let chunk = model.evaluate(&batch, &store);
        out.score_sum += chunk.scores.iter().map(|&s| s as f64).sum::<f64>();
        out.score_count += chunk.scores.len() as u64;
        let service = clock.elapsed_ns().saturating_sub(t0);
        for _ in batch_reqs {
            out.hist.record(service);
        }
        out.requests += batch_reqs.len() as u64;
        out.batches += 1;
    }
    out.cache = *client.cache().stats();
    out
}

/// Runs the replica fleet: `n_threads` threads drain `requests` against
/// `server`, each installing the shared `warm` snapshot first. Returns
/// the merged per-thread results and the fleet wall time.
fn run_fleet<M: EmbeddingModel<Batch = CtrBatch>>(
    cfg: &ServeConfig,
    server: &PsServer,
    requests: &[Request],
    warm: &[(Key, PullResult)],
    n_threads: usize,
    model_fn: &(impl Fn(&mut StdRng) -> M + Sync),
) -> (Vec<ThreadOut>, u64) {
    let clock = WallClock::new();
    let next = AtomicUsize::new(0);
    let outs: Mutex<Vec<ThreadOut>> = Mutex::new(Vec::new());
    std::thread::scope(|scope| {
        for _ in 0..n_threads {
            let (clock, next, outs) = (&clock, &next, &outs);
            scope.spawn(move || {
                // Every replica serves the same model: identically
                // seeded RNG per thread, as in `ServeSim::assemble`.
                let mut model_rng = StdRng::seed_from_u64(cfg.seed);
                let model = model_fn(&mut model_rng);
                assert_eq!(
                    model.embedding_dim(),
                    cfg.dim,
                    "model embedding dim must match the config"
                );
                let out = replica_loop(cfg, server, requests, warm, next, clock, model);
                outs.lock().unwrap_or_else(|e| e.into_inner()).push(out);
            });
        }
    });
    let wall_ns = clock.elapsed_ns();
    (
        outs.into_inner().unwrap_or_else(|e| e.into_inner()),
        wall_ns,
    )
}

/// Merges per-thread results into the report.
fn assemble_report(
    outs: Vec<ThreadOut>,
    wall_ns: u64,
    n_threads: usize,
    warmed_keys: u64,
    pretrained: u64,
) -> ThreadedServeReport {
    let mut hist = LatencyHistogram::new();
    let mut cache = CacheStats::default();
    let (mut requests, mut batches) = (0u64, 0u64);
    let (mut score_sum, mut score_count) = (0f64, 0u64);
    for out in &outs {
        hist.merge(&out.hist);
        cache.merge(&out.cache);
        requests += out.requests;
        batches += out.batches;
        score_sum += out.score_sum;
        score_count += out.score_count;
    }
    let wall_s = wall_ns as f64 / 1e9;
    ThreadedServeReport {
        n_threads,
        requests,
        batches,
        wall_ns,
        throughput_rps: if wall_s > 0.0 {
            requests as f64 / wall_s
        } else {
            0.0
        },
        latency_p50_ns: hist.quantile(0.5),
        latency_p95_ns: hist.quantile(0.95),
        latency_p99_ns: hist.quantile(0.99),
        latency_max_ns: hist.max(),
        latency_mean_ns: hist.mean(),
        cache,
        warmed_keys,
        pretrain_updates: pretrained,
        score_mean: if score_count > 0 {
            score_sum / score_count as f64
        } else {
            0.0
        },
    }
}

/// Runs a threaded serving fleet over a private PS fabric: `n_threads`
/// replica threads drain the deterministic request schedule of `cfg`.
/// The `--backend threads:<n>` analogue of [`ServeSim::run`]
/// (`crate::ServeSim::run`); see the module docs for what carries over
/// and what does not.
pub fn run_threaded_serve<M: EmbeddingModel<Batch = CtrBatch>>(
    cfg: ServeConfig,
    n_threads: usize,
    model_fn: impl Fn(&mut StdRng) -> M + Sync,
) -> Result<ThreadedServeReport, String> {
    cfg.validate();
    check_supported(&cfg)?;
    if n_threads == 0 {
        return Err("threaded serving needs at least one replica thread".to_string());
    }
    let server = ServerHandle::new(PsServer::with_store(
        PsConfig {
            dim: cfg.dim,
            n_shards: cfg.n_shards,
            lr: cfg.lr,
            seed: cfg.seed,
            optimizer: ServerOptimizer::Sgd,
            grad_clip: None,
        },
        0,
        &cfg.store,
    ));
    let pretrained = pretrain(&cfg, &server, cfg.pretrain_updates);
    let warm = warm_snapshot(&cfg, &server);
    let requests = generate_requests(&cfg);
    let (outs, wall_ns) = run_fleet(&cfg, &server, &requests, &warm, n_threads, &model_fn);
    Ok(assemble_report(
        outs,
        wall_ns,
        n_threads,
        warm.len() as u64,
        pretrained,
    ))
}

/// Runs a threaded serving fleet against a *shared, live* PS fabric —
/// the trainer's — while something else (a threaded trainer) mutates
/// it. The caller supplies the handle and pre-generated requests;
/// pretraining is skipped (the live trainer *is* the training stream).
/// Used by the threaded colocate path; see
/// [`run_threaded_colocated`](crate::colocate) wiring in `hetctl`.
pub fn run_threaded_serve_shared<M: EmbeddingModel<Batch = CtrBatch>>(
    cfg: &ServeConfig,
    server: ServerHandle,
    n_threads: usize,
    model_fn: impl Fn(&mut StdRng) -> M + Sync,
) -> Result<ThreadedServeReport, String> {
    cfg.validate();
    check_supported(cfg)?;
    if n_threads == 0 {
        return Err("threaded serving needs at least one replica thread".to_string());
    }
    assert_eq!(
        server.dim(),
        cfg.dim,
        "shared PS fabric dim must match the serve config"
    );
    let warm = warm_snapshot(cfg, &server);
    let requests = generate_requests(cfg);
    let (outs, wall_ns) = run_fleet(cfg, &server, &requests, &warm, n_threads, &model_fn);
    Ok(assemble_report(
        outs,
        wall_ns,
        n_threads,
        warm.len() as u64,
        0,
    ))
}

/// Co-scheduled training + serving on the threaded backend: the
/// trainer's worker threads ([`Trainer::run_threaded`]) and a replica
/// fleet share one live PS fabric and genuinely run *concurrently* —
/// every `push_inc` the trainer lands advances the per-key clocks the
/// fleet's `CheckValid` reads are bounded by, on real threads instead
/// of interleaved virtual time.
///
/// The fleet drains its whole request schedule; the run ends when both
/// sides finish. Serving-side pretraining is skipped — the live trainer
/// *is* the training stream. Unlike the sim colocation, the two sides'
/// relative progress is hardware-dependent, so cache hit counts and
/// freshness are not part of any byte-identity contract here.
pub fn run_threaded_colocated<TM, D, SM>(
    trainer: &mut het_core::Trainer<TM, D>,
    mut serve_cfg: ServeConfig,
    n_serve_threads: usize,
    serve_model_fn: impl Fn(&mut StdRng) -> SM + Sync + Send,
) -> Result<(het_core::ParallelReport, ThreadedServeReport), String>
where
    TM: EmbeddingModel,
    D: het_models::Dataset<Batch = TM::Batch>,
    SM: EmbeddingModel<Batch = CtrBatch>,
{
    let server = trainer.server_handle();
    // The fleet reads the trainer's live table; its shard count is a
    // property of that fabric, not of the serve config.
    serve_cfg.n_shards = server.n_shards();
    std::thread::scope(|scope| {
        let serve_cfg = &serve_cfg;
        let fleet = scope.spawn(move || {
            run_threaded_serve_shared(serve_cfg, server, n_serve_threads, serve_model_fn)
        });
        let train = trainer.run_threaded(None);
        let serve = fleet
            .join()
            .map_err(|_| "serving fleet panicked".to_string())??;
        Ok((train?, serve))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use het_models::WideDeep;

    fn model_of(cfg: &ServeConfig) -> impl Fn(&mut StdRng) -> WideDeep + Sync {
        let (n_fields, dim) = (cfg.n_fields, cfg.dim);
        move |rng: &mut StdRng| WideDeep::new(rng, n_fields, dim, &[16])
    }

    #[test]
    fn threaded_serve_drains_every_request() {
        let mut cfg = ServeConfig::tiny(11);
        cfg.warmup_requests = 40;
        let n_requests = cfg.n_requests as u64;
        let model = model_of(&cfg);
        let report = run_threaded_serve(cfg, 3, model).expect("threaded serve");
        assert_eq!(report.requests, n_requests);
        assert_eq!(report.n_threads, 3);
        assert!(report.batches > 0);
        assert!(report.wall_ns > 0);
        assert!(report.throughput_rps > 0.0);
        assert!(report.score_mean.is_finite());
        assert!(report.warmed_keys > 0);
        // Every request resolved its keys through the cache layer.
        assert!(report.cache.hits + report.cache.misses > 0);
    }

    #[test]
    fn threaded_serve_scores_match_the_simulator() {
        // The set of (request, score) pairs is backend-independent:
        // reads are staleness-validated against the same pretrained
        // clocks and the model is identical. Aggregate score mean is
        // FP-order dependent, so compare with a tolerance.
        let cfg = ServeConfig::tiny(13);
        let sim = crate::ServeSim::new(cfg.clone(), model_of(&cfg)).run();
        let thr = run_threaded_serve(cfg.clone(), 2, model_of(&cfg)).expect("threaded serve");
        assert_eq!(thr.requests, sim.requests);
        assert!(
            (thr.score_mean - sim.score_mean).abs() < 1e-6,
            "threaded score mean {} vs sim {}",
            thr.score_mean,
            sim.score_mean
        );
    }

    #[test]
    fn threaded_colocated_trains_while_serving() {
        use het_core::config::{SystemPreset, TrainerConfig};
        use het_core::Trainer;
        use het_data::{CtrConfig, CtrDataset};

        let config = TrainerConfig::tiny(SystemPreset::HetCache { staleness: 10 });
        let mut trainer = Trainer::new(config, CtrDataset::new(CtrConfig::tiny(3)), |rng| {
            WideDeep::new(rng, 4, 8, &[16])
        });
        let mut cfg = ServeConfig::tiny(3);
        cfg.pretrain_updates = 0;
        cfg.n_requests = 200;
        let model = model_of(&cfg);
        let (train, serve) =
            run_threaded_colocated(&mut trainer, cfg, 2, model).expect("threaded colocate");
        assert_eq!(train.total_iterations, 200);
        assert_eq!(serve.requests, 200);
        assert!(serve.pretrain_updates == 0);
        assert!(train.final_metric.is_finite());
    }

    #[test]
    fn threaded_serve_rejects_sim_only_features() {
        let mut cfg = ServeConfig::tiny(5);
        cfg.supervision.enabled = true;
        let err = run_threaded_serve(cfg, 2, model_of(&ServeConfig::tiny(5))).unwrap_err();
        assert!(err.contains("--backend sim"), "{err}");
    }
}
