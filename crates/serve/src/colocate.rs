//! Co-scheduled training + serving: one cluster runtime, one PS fabric.
//!
//! This is the "serving heavy traffic while training" configuration of
//! the north star, done for real: a [`Trainer`] and a [`ServeSim`] are
//! both registered on a single `het-runtime` [`ClusterRuntime`], so
//! training iterations and inference micro-batches interleave in one
//! global simulated-time order against one live [`het_ps::PsServer`].
//! Every gradient the trainer pushes advances the per-key server
//! clocks the serving replicas' `CheckValid` reads are bounded by —
//! the freshness/latency coupling emerges from actual co-scheduling
//! instead of a synthetic update feed.
//!
//! Fault injection is cluster-wide: the trainer's plan covers the
//! serving replicas as extra cluster members (see
//! [`Trainer::with_shared_members`]), and the runtime's centralized
//! fault delivery routes each crash to the job that owns the member.
//! The serve config's own `faults` section is ignored here.
//!
//! Same seed ⇒ byte-identical combined report JSON and trace.

use crate::config::ServeConfig;
use crate::report::ServeReport;
use crate::sim::ServeSim;
use het_core::{TrainReport, Trainer};
use het_data::CtrBatch;
use het_json::{Json, ToJson};
use het_models::{Dataset, EmbeddingModel};
use het_rng::rngs::StdRng;
use het_runtime::{ClusterRuntime, Process};

/// The outcome of one co-scheduled run: the training report and the
/// serving report, produced by the same event loop over the same PS.
#[derive(Clone, Debug)]
pub struct ColocatedReport {
    /// The trainer's side of the run.
    pub train: TrainReport,
    /// The serving fleet's side of the run.
    pub serve: ServeReport,
}

impl ToJson for ColocatedReport {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("train".to_string(), self.train.to_json()),
            ("serve".to_string(), self.serve.to_json()),
        ])
    }
}

/// Runs a trainer and a serving fleet to completion on one shared
/// [`ClusterRuntime`] and one PS fabric.
///
/// Build the trainer with [`Trainer::with_shared_members`] passing
/// `serve_cfg.n_replicas` as the extra member count, so the cluster's
/// fault plan covers the fleet. The serve config's `n_shards` and
/// `faults` are superseded by the shared fabric and plan; its `dim`
/// must match the trainer's.
///
/// The run ends when the trainer has finished *and* every request has
/// been served (the loop drains both jobs' events).
pub fn run_colocated<TM, D, SM>(
    mut trainer: Trainer<TM, D>,
    mut serve_cfg: ServeConfig,
    serve_model_fn: impl Fn(&mut StdRng) -> SM,
) -> ColocatedReport
where
    TM: EmbeddingModel,
    D: Dataset<Batch = TM::Batch>,
    SM: EmbeddingModel<Batch = CtrBatch>,
{
    let server = trainer.server_handle();
    assert_eq!(
        serve_cfg.dim,
        server.dim(),
        "serve dim must match the trainer's PS fabric"
    );
    // The fleet reads the trainer's live table; its shard count is a
    // property of that fabric, not of the serve config.
    serve_cfg.n_shards = server.n_shards();
    let plan = trainer.plan().clone();
    let member_offset = trainer.n_workers();
    let mut sim = ServeSim::with_shared(
        serve_cfg,
        server,
        plan.clone(),
        member_offset,
        serve_model_fn,
    );

    // Pretraining pushes and cache warmup happen before t = 0, exactly
    // as in a standalone serving run.
    sim.prepare();

    let mut rt = ClusterRuntime::new(trainer.tie_break(), plan);
    let train_pid = rt.register(trainer.n_workers());
    let serve_pid = rt.register(sim.n_replicas());
    debug_assert_eq!(rt.member_offset(serve_pid), member_offset);
    trainer.prime(&mut rt, train_pid);
    sim.prime(&mut rt, serve_pid);
    {
        let procs: &mut [&mut dyn Process] = &mut [&mut trainer, &mut sim];
        rt.run(procs);
    }
    sim.epilogue(&mut rt, serve_pid);
    ColocatedReport {
        train: trainer.finalize(),
        serve: sim.into_report(),
    }
}
