//! Supervision and elasticity for the serving fleet.
//!
//! Three cooperating [`Process`]es on one [`het_runtime::ClusterRuntime`]:
//!
//! * the **fleet** ([`crate::ServeSim`]) self-schedules heartbeat ticks
//!   and posts per-replica liveness + queue depth into a shared
//!   [`ControlPlane`];
//! * the **[`Supervisor`]** watches heartbeat ages — a replica whose
//!   heartbeat is older than `miss_threshold` intervals is *detected*
//!   as crashed (the supervisor never reads the fault plan for crash
//!   detection) and a respawn is commanded after a
//!   [`RetryPolicy`]-scheduled backoff; it also detects PS-shard
//!   outages, drives checkpoint-restore when it owns the checkpoint
//!   store, and drives **live shard splits** batch by batch;
//! * the **[`Autoscaler`]** watches queue depth and resizes the
//!   admitted replica pool under hysteresis (scale up past
//!   `queue_high`, down below `queue_low`, never within `cooldown` of
//!   the last action), warming a replica before it joins the JSQ pool.
//!
//! Commands flow through the control plane and take effect at
//! deterministic instants delivered by [`het_runtime::Ctx::schedule_for`],
//! so a supervised run is still a pure function of its configuration:
//! same seed ⇒ byte-identical report and trace.

use het_core::RetryPolicy;
use het_ps::{ServerHandle, ShardCheckpointStore};
use het_runtime::{Ctx, Event, Process, ProcessId};
use het_simnet::{FaultPlan, SimDuration, SimTime};
use std::cell::RefCell;
use std::collections::BTreeSet;
use std::rc::Rc;

/// Supervision knobs of a serving run. Disabled by default — a run
/// without supervision takes byte-for-byte the legacy path.
#[derive(Clone, Debug)]
pub struct SupervisionConfig {
    /// Master switch for heartbeats, crash detection, and driven
    /// recovery.
    pub enabled: bool,
    /// Heartbeat (and supervisor tick) period.
    pub heartbeat_every: SimDuration,
    /// A replica is detected as crashed once its heartbeat is older
    /// than this many periods.
    pub miss_threshold: u32,
    /// Backoff schedule for respawn commands and the fleet's
    /// outage-retry waits.
    pub retry: RetryPolicy,
    /// Period of the supervisor's periodic shard checkpoints, used only
    /// when the supervisor owns the checkpoint store (standalone
    /// serving; colocated runs restore through the trainer).
    pub checkpoint_every: SimDuration,
    /// Optional live PS-shard split driven by the supervisor.
    pub reshard: Option<ReshardPlan>,
    /// Drift-triggered serving prefetch. A sketch-warmed cache only
    /// covers the popularity snapshot at warmup time — under a drifting
    /// hot set the keys that become hot *afterwards* all cold-miss,
    /// and a freshly respawned replica pays that gap exactly when its
    /// held-back queue needs it least. When enabled, the fleet keeps a
    /// short-window popularity sketch (rotated every
    /// [`SupervisionConfig::drift_window`]); each completed window
    /// triggers prefetch pulls of its newly-hot keys into every live
    /// admitted replica, and a supervised respawn runs one extra round
    /// right after its lifetime-sketch warmup.
    pub drift_prefetch: bool,
    /// Rotation period of the short-window sketch that defines
    /// "recently hot" for [`SupervisionConfig::drift_prefetch`].
    pub drift_window: SimDuration,
}

impl SupervisionConfig {
    /// Supervision off (the default in every preset config).
    pub fn disabled() -> Self {
        SupervisionConfig {
            enabled: false,
            heartbeat_every: SimDuration::from_micros(500),
            miss_threshold: 3,
            retry: RetryPolicy::exponential(SimDuration::from_micros(200), 8),
            checkpoint_every: SimDuration::from_millis(5),
            reshard: None,
            drift_prefetch: false,
            drift_window: SimDuration::from_millis(1),
        }
    }
}

/// Autoscaling knobs. Disabled by default.
#[derive(Clone, Copy, Debug)]
pub struct AutoscaleConfig {
    /// Master switch. When enabled the fleet is built at
    /// `max_replicas` physical replicas and `ServeConfig::n_replicas`
    /// of them start admitted.
    pub enabled: bool,
    /// Admitted-pool floor.
    pub min_replicas: usize,
    /// Physical fleet size and admitted-pool ceiling.
    pub max_replicas: usize,
    /// Evaluation period.
    pub evaluate_every: SimDuration,
    /// Scale up when mean queued requests per admitted replica exceeds
    /// this.
    pub queue_high: f64,
    /// Scale down when it falls below this (hysteresis band:
    /// `queue_low < queue_high`).
    pub queue_low: f64,
    /// Minimum time between consecutive scaling actions.
    pub cooldown: SimDuration,
    /// Cache warmup lead time before a scaled-up replica is admitted
    /// to the JSQ pool.
    pub warmup_delay: SimDuration,
}

impl AutoscaleConfig {
    /// Autoscaling off (the default in every preset config).
    pub fn disabled() -> Self {
        AutoscaleConfig {
            enabled: false,
            min_replicas: 1,
            max_replicas: 4,
            evaluate_every: SimDuration::from_millis(1),
            queue_high: 8.0,
            queue_low: 1.0,
            cooldown: SimDuration::from_millis(2),
            warmup_delay: SimDuration::from_micros(500),
        }
    }
}

/// A supervisor-driven live split of one PS shard into a spare.
#[derive(Clone, Copy, Debug)]
pub struct ReshardPlan {
    /// When to begin the split.
    pub at: SimTime,
    /// The shard to split (must be a base shard of the fabric).
    pub parent: usize,
    /// Keys migrated per supervisor tick.
    pub batch: usize,
    /// Minimum time between migration batches.
    pub every: SimDuration,
    /// Salt of the deterministic child-side key predicate.
    pub salt: u64,
}

/// Shared state between the fleet, the supervisor, and the autoscaler.
/// The fleet posts liveness and load; the supervisor and autoscaler
/// post commands, applied by the fleet at its next control wake.
#[derive(Debug)]
pub struct ControlPlane {
    /// The fleet's process id, for [`Ctx::schedule_for`] pokes.
    pub serve_pid: ProcessId,
    /// Last heartbeat instant per replica (stops advancing on crash).
    pub last_heartbeat: Vec<SimTime>,
    /// Queue depth per replica as of the last heartbeat.
    pub queue_depth: Vec<usize>,
    /// Whether each replica is in the JSQ admission pool.
    pub admitted: Vec<bool>,
    /// Requests served so far / total to serve.
    pub served: u64,
    /// Total requests the run must serve.
    pub total: u64,
    /// True once every request is served: supervision processes stop.
    pub done: bool,
    /// Respawn commands: replica → instant the respawn takes effect.
    pub respawn_at: Vec<Option<SimTime>>,
    /// Admission commands: replica → instant it joins the pool
    /// (post-warmup).
    pub admit_at: Vec<Option<SimTime>>,
    /// Autoscaler totals, read back into the report.
    pub scale_ups: u64,
    /// Scale-down actions taken.
    pub scale_downs: u64,
    /// Supervisor totals, read back into the report.
    pub detections: u64,
    /// Worst detection→respawn gap observed, for recovery-time
    /// objectives.
    pub max_recovery_ns: u64,
    /// Keys moved by the supervisor-driven live split.
    pub migrated_keys: u64,
    /// True once a planned live split has fully completed.
    pub split_done: bool,
}

impl ControlPlane {
    /// A control plane for a fleet of `n` physical replicas, of which
    /// `admitted` (a prefix) start in the JSQ pool.
    pub fn new(n: usize, admitted: usize) -> Rc<RefCell<Self>> {
        Rc::new(RefCell::new(ControlPlane {
            serve_pid: 0,
            last_heartbeat: vec![SimTime::ZERO; n],
            queue_depth: vec![0; n],
            admitted: (0..n).map(|r| r < admitted).collect(),
            served: 0,
            total: 0,
            done: false,
            respawn_at: vec![None; n],
            admit_at: vec![None; n],
            scale_ups: 0,
            scale_downs: 0,
            detections: 0,
            max_recovery_ns: 0,
            migrated_keys: 0,
            split_done: false,
        }))
    }
}

/// Per-replica supervisor view.
#[derive(Clone, Copy, Debug, PartialEq)]
enum Health {
    Up,
    Respawning,
}

/// Heartbeat-driven failure detector and recovery driver (one runtime
/// member). See the module docs for the protocol.
pub struct Supervisor {
    cfg: SupervisionConfig,
    cp: Rc<RefCell<ControlPlane>>,
    server: ServerHandle,
    plan: FaultPlan,
    /// Present when this supervisor owns PS restore (standalone
    /// serving). Colocated runs leave restore to the trainer and the
    /// supervisor only observes/announces outages.
    store: Option<ShardCheckpointStore>,
    last_checkpoint: SimTime,
    health: Vec<Health>,
    /// Respawns commanded per replica — indexes the backoff schedule.
    attempts: Vec<u32>,
    /// Outages already announced, keyed by (shard, end instant).
    seen_outages: BTreeSet<(usize, u64)>,
    /// Outages detected but not yet announced as restored.
    pending_restore: Vec<(usize, SimTime)>,
    split_begun: bool,
    split_child: usize,
    split_complete: bool,
    next_migrate: SimTime,
}

impl Supervisor {
    /// A supervisor for a fleet of `n_replicas`, observing outages
    /// passively (restore is owned elsewhere, e.g. by a colocated
    /// trainer).
    pub fn new(
        cfg: SupervisionConfig,
        cp: Rc<RefCell<ControlPlane>>,
        server: ServerHandle,
        plan: FaultPlan,
        n_replicas: usize,
    ) -> Self {
        Supervisor {
            cfg,
            cp,
            server,
            plan,
            store: None,
            last_checkpoint: SimTime::ZERO,
            health: vec![Health::Up; n_replicas],
            attempts: vec![0; n_replicas],
            seen_outages: BTreeSet::new(),
            pending_restore: Vec::new(),
            split_begun: false,
            split_child: 0,
            split_complete: false,
            next_migrate: SimTime::ZERO,
        }
    }

    /// Like [`Supervisor::new`], but this supervisor owns PS-shard
    /// restore: it takes a baseline checkpoint now, re-checkpoints
    /// every `checkpoint_every`, and on each delivered outage restores
    /// the failed shard from the latest checkpoint.
    pub fn with_store(
        cfg: SupervisionConfig,
        cp: Rc<RefCell<ControlPlane>>,
        server: ServerHandle,
        plan: FaultPlan,
        n_replicas: usize,
    ) -> Self {
        let mut sup = Self::new(cfg, cp, server, plan, n_replicas);
        let mut store = ShardCheckpointStore::new(sup.server.n_shards(), sup.server.dim());
        store
            .checkpoint_all(&sup.server)
            .expect("in-memory checkpoint");
        sup.store = Some(store);
        sup
    }

    /// True once a planned live split has begun and fully completed.
    pub fn split_complete(&self) -> bool {
        self.split_complete
    }

    fn detect_crashes(&mut self, t: SimTime, ctx: &mut Ctx<'_>) {
        let deadline = self.cfg.heartbeat_every * self.cfg.miss_threshold as u64;
        let serve_pid = self.cp.borrow().serve_pid;
        for r in 0..self.health.len() {
            let last = self.cp.borrow().last_heartbeat[r];
            match self.health[r] {
                Health::Up => {
                    if t.since(last) > deadline {
                        het_trace::event!("supervisor", "detect_crash",
                            "replica" => r, "silent_ns" => t.since(last).as_nanos());
                        het_trace::count!("supervisor", "detections");
                        let backoff = self.cfg.retry.delay(self.attempts[r]);
                        self.attempts[r] = self.attempts[r].saturating_add(1);
                        let respawn_at = t + backoff;
                        {
                            let mut cp = self.cp.borrow_mut();
                            cp.detections += 1;
                            cp.respawn_at[r] = Some(respawn_at);
                            cp.max_recovery_ns =
                                cp.max_recovery_ns.max(respawn_at.since(t).as_nanos());
                        }
                        het_trace::event!("supervisor", "respawn",
                            "replica" => r, "backoff_ns" => backoff.as_nanos());
                        het_trace::count!("supervisor", "respawns");
                        ctx.schedule_for(serve_pid, respawn_at, Event::Wake(CONTROL_WAKE));
                        self.health[r] = Health::Respawning;
                    }
                }
                Health::Respawning => {
                    // The fleet stamps the heartbeat at respawn time;
                    // once it advances again the replica is healthy.
                    if t.since(last) <= deadline {
                        self.health[r] = Health::Up;
                    }
                }
            }
        }
    }

    fn watch_outages(&mut self, t: SimTime, ctx: &mut Ctx<'_>) {
        if self.plan.is_empty() {
            return;
        }
        if let Some(store) = self.store.as_mut() {
            // Restore owner: periodic checkpoints + checkpoint-restore
            // on every delivered outage.
            if t.since(self.last_checkpoint) >= self.cfg.checkpoint_every {
                store.checkpoint_all(&self.server).expect("checkpoint");
                self.last_checkpoint = t;
            }
            while let Some((shard, at, failover)) = ctx.take_due_outage(t) {
                het_trace::event!("supervisor", "detect_outage",
                    "shard" => shard, "at_ns" => at.as_nanos());
                let outcome = store
                    .fail_and_restore(&self.server, shard)
                    .expect("in-memory restore");
                het_trace::emit(
                    "supervisor",
                    "shard_restored",
                    Some(failover.as_nanos()),
                    vec![
                        ("shard", het_trace::Value::from(shard)),
                        (
                            "rows_restored",
                            het_trace::Value::from(outcome.rows_restored),
                        ),
                        ("lost_updates", het_trace::Value::from(outcome.lost_updates)),
                    ],
                );
            }
            return;
        }
        // Passive observer: announce outage windows from the plan; the
        // restore itself is the colocated trainer's job.
        for shard in 0..self.server.n_base_shards() {
            if let Some(end) = self.plan.shard_outage_end(shard, t) {
                if self.seen_outages.insert((shard, end.as_nanos())) {
                    het_trace::event!("supervisor", "detect_outage",
                        "shard" => shard, "until_ns" => end.as_nanos());
                    self.pending_restore.push((shard, end));
                }
            }
        }
        let mut restored: Vec<(usize, SimTime)> = Vec::new();
        self.pending_restore.retain(|&(shard, end)| {
            if t >= end {
                restored.push((shard, end));
                false
            } else {
                true
            }
        });
        for (shard, end) in restored {
            het_trace::event!("supervisor", "shard_restored",
                "shard" => shard, "at_ns" => end.as_nanos());
        }
    }

    fn drive_split(&mut self, t: SimTime) {
        let Some(plan) = self.cfg.reshard else { return };
        if self.split_complete || t < plan.at {
            return;
        }
        if !self.split_begun {
            assert!(
                self.server.n_shards() > self.server.n_base_shards(),
                "live resharding needs a spare shard (see with_spare_shards)"
            );
            self.split_child = self.server.n_base_shards();
            self.server
                .begin_split(plan.parent, self.split_child, plan.salt);
            het_trace::event!("supervisor", "split_begin",
                "parent" => plan.parent, "child" => self.split_child);
            self.split_begun = true;
            self.next_migrate = t;
        }
        if t < self.next_migrate {
            return;
        }
        // Never move keys while the parent shard is mid-outage; the
        // migration resumes on the next tick after failover.
        if self.plan.shard_down(plan.parent, t) {
            return;
        }
        let moved = self.server.migrate_batch(plan.parent, plan.batch);
        if moved > 0 {
            het_trace::event!("supervisor", "migrate",
                "parent" => plan.parent, "moved" => moved);
            het_trace::count!("supervisor", "migrated_keys", moved as u64);
            self.cp.borrow_mut().migrated_keys += moved as u64;
        }
        if self.server.remaining_to_migrate(plan.parent) == 0 {
            self.server.complete_split(plan.parent);
            het_trace::event!("supervisor", "split_done",
                "parent" => plan.parent, "child" => self.split_child);
            self.split_complete = true;
            self.cp.borrow_mut().split_done = true;
        } else {
            self.next_migrate = t + plan.every;
        }
    }
}

impl Process for Supervisor {
    fn on_event(&mut self, t: SimTime, _ev: Event, ctx: &mut Ctx<'_>) {
        ctx.scope_at(t, Some(0));
        het_trace::count!("supervisor", "heartbeats");
        self.detect_crashes(t, ctx);
        self.watch_outages(t, ctx);
        self.drive_split(t);
        if self.cp.borrow().done && (self.split_complete || self.cfg.reshard.is_none()) {
            ctx.stop();
        } else {
            ctx.schedule(t + self.cfg.heartbeat_every, Event::Wake(0));
        }
    }
}

/// Queue-depth-driven fleet resizing (one runtime member). See the
/// module docs for the hysteresis protocol.
pub struct Autoscaler {
    cfg: AutoscaleConfig,
    cp: Rc<RefCell<ControlPlane>>,
    last_action: Option<SimTime>,
}

impl Autoscaler {
    /// An autoscaler over the shared control plane.
    pub fn new(cfg: AutoscaleConfig, cp: Rc<RefCell<ControlPlane>>) -> Self {
        Autoscaler {
            cfg,
            cp,
            last_action: None,
        }
    }

    fn in_cooldown(&self, t: SimTime) -> bool {
        self.last_action
            .is_some_and(|at| t.since(at) < self.cfg.cooldown)
    }
}

impl Process for Autoscaler {
    fn on_event(&mut self, t: SimTime, _ev: Event, ctx: &mut Ctx<'_>) {
        ctx.scope_at(t, Some(0));
        het_trace::count!("autoscaler", "evals");
        let (done, serve_pid, decision) = {
            let cp = self.cp.borrow();
            let pending_admits = cp.admit_at.iter().filter(|a| a.is_some()).count();
            let admitted: Vec<usize> = (0..cp.admitted.len()).filter(|&r| cp.admitted[r]).collect();
            let pool = admitted.len() + pending_admits;
            let total_q: usize = admitted.iter().map(|&r| cp.queue_depth[r]).sum();
            let mean_q = if admitted.is_empty() {
                0.0
            } else {
                total_q as f64 / admitted.len() as f64
            };
            let decision = if self.in_cooldown(t) || cp.done {
                None
            } else if mean_q > self.cfg.queue_high && pool < self.cfg.max_replicas {
                // Lowest idle replica joins after warmup.
                (0..cp.admitted.len())
                    .find(|&r| !cp.admitted[r] && cp.admit_at[r].is_none())
                    .map(|r| (r, true, total_q))
            } else if mean_q < self.cfg.queue_low
                && pool > self.cfg.min_replicas
                && pending_admits == 0
            {
                // Highest admitted replica drains out.
                admitted.last().map(|&r| (r, false, total_q))
            } else {
                None
            };
            (cp.done, cp.serve_pid, decision)
        };
        match decision {
            Some((r, true, total_q)) => {
                let admit_at = t + self.cfg.warmup_delay;
                {
                    let mut cp = self.cp.borrow_mut();
                    cp.admit_at[r] = Some(admit_at);
                    cp.scale_ups += 1;
                }
                het_trace::event!("autoscaler", "scale_up",
                    "replica" => r, "queued" => total_q);
                het_trace::count!("autoscaler", "scale_ups");
                ctx.schedule_for(serve_pid, admit_at, Event::Wake(CONTROL_WAKE));
                self.last_action = Some(t);
            }
            Some((r, false, total_q)) => {
                {
                    let mut cp = self.cp.borrow_mut();
                    cp.admitted[r] = false;
                    cp.scale_downs += 1;
                }
                het_trace::event!("autoscaler", "scale_down",
                    "replica" => r, "queued" => total_q);
                het_trace::count!("autoscaler", "scale_downs");
                self.last_action = Some(t);
            }
            None => {}
        }
        if done {
            ctx.stop();
        } else {
            ctx.schedule(t + self.cfg.evaluate_every, Event::Wake(0));
        }
    }
}

/// Wake payload the fleet interprets as "apply pending control-plane
/// commands" (respawns, admissions).
pub const CONTROL_WAKE: u64 = u64::MAX - 1;

/// Wake payload the fleet interprets as a heartbeat tick.
pub const HEARTBEAT_WAKE: u64 = u64::MAX;
