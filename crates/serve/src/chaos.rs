//! The chaos campaign: compound failure under load, with SLO/RTO
//! verdicts.
//!
//! One run co-schedules a live CTR trainer and a *supervised* serving
//! fleet on a single [`ClusterRuntime`] and PS fabric — the
//! [`crate::colocate`] configuration plus the full elasticity stack of
//! [`crate::supervise`] — and throws the target scenario at it:
//!
//! * a **flash crowd** multiplies the arrival rate mid-run;
//! * **replica crashes** land *inside* the flash window (and again
//!   later), detected by the [`Supervisor`]'s heartbeat watcher and
//!   recovered with sketch-warmed caches;
//! * a **PS-shard outage** overlaps the flash; the trainer restores the
//!   shard from its checkpoint while serving replicas ride it out on
//!   the [`het_core::RetryPolicy`] backoff schedule;
//! * a **live shard split** runs concurrently, migrating keys off a hot
//!   shard batch by batch while gradients keep flowing;
//! * the **[`Autoscaler`]** grows the admitted pool into the flash and
//!   drains it afterwards.
//!
//! The faults are *scripted* (exact instants, exact members) so the
//! scenario is the same compound emergency at every seed, and the whole
//! run remains a pure function of the seed: same seed ⇒ byte-identical
//! [`ChaosReport`] JSON and trace. [`ChaosReport::assert_healthy`] turns
//! the run into a pass/fail gate for CI campaigns.

use crate::colocate::ColocatedReport;
use crate::config::ServeConfig;
use crate::sim::ServeSim;
use crate::supervise::{AutoscaleConfig, Autoscaler, ReshardPlan, Supervisor};
use het_core::config::{SystemPreset, TrainerConfig};
use het_core::Trainer;
use het_data::{CtrConfig, CtrDataset};
use het_json::{Json, ToJson};
use het_models::WideDeep;
use het_runtime::{ClusterRuntime, Event, Process};
use het_simnet::{ClusterSpec, FaultEvent, FaultPlan, SimDuration, SimTime};

/// Knobs of one chaos run. Everything else — fault instants, the
/// reshard schedule, supervision periods — is derived deterministically
/// from these so the scenario stays the same shape at every scale.
#[derive(Clone, Debug)]
pub struct ChaosConfig {
    /// Master seed (workload, model init, data order).
    pub seed: u64,
    /// Trainer workers (cluster members `0..workers`).
    pub workers: usize,
    /// PS server nodes; the fabric has `4 × servers` base shards plus
    /// one spare for the live split.
    pub servers: usize,
    /// Trainer iteration cap.
    pub train_iters: u64,
    /// Requests the fleet must serve.
    pub requests: usize,
    /// Baseline arrival rate (req/s); the flash multiplies this.
    pub arrival_rate: f64,
    /// Flash-crowd arrival-rate multiplier (the scenario's "10×").
    pub flash_factor: f64,
    /// p99 latency objective under chaos.
    pub slo_p99: SimDuration,
    /// Recovery-time objective: worst admissible detection→respawn gap.
    pub rto: SimDuration,
}

impl ChaosConfig {
    /// The target scenario at test scale: 4 workers + an elastic fleet
    /// of up to 4 replicas, a 10× flash, two replica crashes, one shard
    /// outage, and a concurrent live split — finishing in well under a
    /// second of simulated time.
    pub fn tiny(seed: u64) -> Self {
        ChaosConfig {
            seed,
            workers: 4,
            servers: 2,
            train_iters: 200,
            requests: 600,
            arrival_rate: 8_000.0,
            flash_factor: 10.0,
            slo_p99: SimDuration::from_millis(25),
            rto: SimDuration::from_millis(2),
        }
    }

    /// Nominal serving span: how long the request schedule takes at the
    /// baseline rate. Fault instants are placed as fractions of this.
    fn span(&self) -> SimDuration {
        SimDuration::from_secs_f64(self.requests as f64 / self.arrival_rate)
    }

    /// An instant at fraction `f` of the nominal span.
    fn at(&self, f: f64) -> SimTime {
        SimTime::ZERO + SimDuration::from_secs_f64(self.span().as_secs_f64() * f)
    }

    /// The scripted compound-fault plan. Replica `r` of the fleet is
    /// cluster member `workers + r`; shard indices address base shards.
    pub fn fault_plan(&self) -> FaultPlan {
        FaultPlan::scripted(vec![
            // Replica 0 dies in the middle of the flash crowd. The
            // restart delay is deliberately enormous: supervised
            // recovery must beat it or the run blows its SLO.
            FaultEvent::WorkerCrash {
                worker: self.workers,
                at: self.at(0.22),
                restart_delay: SimDuration::from_secs_f64(3600.0),
            },
            // A PS shard goes down right after the flash, while the
            // backlog is still draining and the split is migrating.
            FaultEvent::PsShardOutage {
                shard: 1,
                at: self.at(0.30),
                failover_delay: SimDuration::from_secs_f64(self.span().as_secs_f64() * 0.08),
            },
            // Replica 1 dies during drain-down. (The 10× flash
            // compresses the arrival schedule, so "late" instants must
            // stay well inside the nominal span — see `serve_config`.)
            FaultEvent::WorkerCrash {
                worker: self.workers + 1,
                at: self.at(0.45),
                restart_delay: SimDuration::from_secs_f64(3600.0),
            },
        ])
    }

    /// The trainer configuration of the scenario — exposed so harnesses
    /// can derive an oracle spec (`het_oracle::OracleSpec::of`) for the
    /// exact run [`run_chaos`] executes.
    pub fn train_config(&self) -> TrainerConfig {
        let mut cfg = TrainerConfig::tiny(SystemPreset::HetCache { staleness: 100 });
        cfg.cluster = ClusterSpec::cluster_a(self.workers, self.servers);
        cfg.max_iterations = self.train_iters;
        cfg.eval_every = (self.train_iters / 4).max(1);
        cfg.seed = self.seed;
        // Checkpoint often enough that the scripted outage restores
        // recent state.
        cfg.faults.checkpoint_every = 25;
        cfg
    }

    /// The supervised serve configuration of the scenario.
    fn serve_config(&self, dim: usize) -> ServeConfig {
        let mut cfg = ServeConfig::tiny(self.seed);
        cfg.dim = dim;
        cfg.n_replicas = 2;
        // No pretraining: embeddings are fed by the live trainer, and a
        // pushless warm start keeps the oracle's push-parity ledger
        // (PS pushes == cache write-backs) exact over the whole trace.
        cfg.pretrain_updates = 0;
        cfg.n_requests = self.requests;
        cfg.arrival_rate = self.arrival_rate;
        // A short, violent burst: at 10× the flash consumes the arrival
        // budget quickly, so a narrow window keeps the post-flash
        // drain-down (where the second crash lands) inside the run.
        cfg.flash_at = Some(self.at(0.20));
        cfg.flash_duration = SimDuration::from_secs_f64(self.span().as_secs_f64() * 0.05);
        cfg.flash_factor = self.flash_factor;
        cfg.flash_hot_keys = 64;
        cfg.supervision.enabled = true;
        cfg.supervision.heartbeat_every = SimDuration::from_micros(250);
        cfg.supervision.reshard = Some(ReshardPlan {
            at: self.at(0.15),
            parent: 0,
            batch: 64,
            every: SimDuration::from_micros(200),
            salt: 0x5157_1755_C4A0_5717,
        });
        cfg.autoscale = AutoscaleConfig {
            enabled: true,
            min_replicas: 1,
            max_replicas: 4,
            evaluate_every: SimDuration::from_micros(500),
            queue_high: 6.0,
            queue_low: 0.5,
            cooldown: SimDuration::from_millis(4),
            warmup_delay: SimDuration::from_micros(300),
        };
        cfg
    }
}

/// One chaos run's outcome: the full colocated report plus the SLO/RTO
/// verdicts the campaign gates on.
#[derive(Clone, Debug)]
pub struct ChaosReport {
    /// The underlying train + serve reports.
    pub report: ColocatedReport,
    /// p99 objective echoed from the config, in nanoseconds.
    pub slo_p99_ns: u64,
    /// RTO objective echoed from the config, in nanoseconds.
    pub rto_ns: u64,
    /// Measured p99 ≤ objective.
    pub slo_ok: bool,
    /// Worst detection→respawn gap ≤ objective.
    pub rto_ok: bool,
    /// Every injected crash was detected and respawned, and every
    /// request was served.
    pub recovered_ok: bool,
    /// The live split began, migrated, and completed mid-run.
    pub split_ok: bool,
}

impl ChaosReport {
    /// True when every verdict holds.
    pub fn healthy(&self) -> bool {
        self.slo_ok && self.rto_ok && self.recovered_ok && self.split_ok
    }

    /// Panics with a specific diagnosis if any verdict fails — the
    /// campaign gate.
    pub fn assert_healthy(&self) {
        let s = &self.report.serve;
        assert!(
            self.slo_ok,
            "SLO violated: p99 {} ns > objective {} ns",
            s.latency_p99_ns, self.slo_p99_ns
        );
        assert!(
            self.rto_ok,
            "RTO violated: worst recovery {} ns > objective {} ns",
            s.max_recovery_ns, self.rto_ns
        );
        assert!(
            self.recovered_ok,
            "recovery incomplete: {} crashes, {} detections, {} respawns",
            s.faults.worker_crashes, s.detections, s.respawns
        );
        assert!(
            self.split_ok,
            "live split did not complete ({} keys migrated)",
            s.migrated_keys
        );
    }
}

impl ToJson for ChaosReport {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("slo_p99_ns".to_string(), Json::UInt(self.slo_p99_ns)),
            ("rto_ns".to_string(), Json::UInt(self.rto_ns)),
            ("slo_ok".to_string(), Json::Bool(self.slo_ok)),
            ("rto_ok".to_string(), Json::Bool(self.rto_ok)),
            ("recovered_ok".to_string(), Json::Bool(self.recovered_ok)),
            ("split_ok".to_string(), Json::Bool(self.split_ok)),
            ("report".to_string(), self.report.to_json()),
        ])
    }
}

/// Runs the chaos scenario to completion: live trainer + supervised
/// fleet + supervisor + autoscaler on one runtime, under
/// [`ChaosConfig::fault_plan`]. Deterministic: same config ⇒
/// byte-identical [`ChaosReport`] JSON and trace.
pub fn run_chaos(cfg: &ChaosConfig) -> ChaosReport {
    let train_cfg = cfg.train_config();
    let mut serve_cfg = cfg.serve_config(train_cfg.dim);
    let supervision = serve_cfg.supervision.clone();
    let autoscale = serve_cfg.autoscale;
    let fleet = autoscale.max_replicas;
    let plan = cfg.fault_plan();

    // One spare physical shard backs the live split.
    let mut trainer = Trainer::with_shared_members_and_spares(
        train_cfg,
        CtrDataset::new(CtrConfig::tiny(cfg.seed)),
        |rng| WideDeep::new(rng, 4, 8, &[16]),
        fleet,
        1,
    );
    trainer.override_plan(plan.clone());
    let server = trainer.server_handle();
    serve_cfg.n_shards = server.n_shards();
    let member_offset = trainer.n_workers();
    let (n_fields, dim) = (serve_cfg.n_fields, serve_cfg.dim);
    let mut sim = ServeSim::with_shared(
        serve_cfg,
        server.clone(),
        plan.clone(),
        member_offset,
        move |rng| WideDeep::new(rng, n_fields, dim, &[16]),
    );
    sim.prepare();
    let cp = sim.control_plane().expect("supervised fleet");

    let mut rt = ClusterRuntime::new(trainer.tie_break(), plan.clone());
    let train_pid = rt.register(trainer.n_workers());
    let serve_pid = rt.register(sim.n_replicas());
    cp.borrow_mut().serve_pid = serve_pid;
    let sup_pid = rt.register(1);
    let auto_pid = rt.register(1);
    // The colocated trainer owns PS restore, so the supervisor runs as
    // a passive outage observer (`Supervisor::new`, not `with_store`).
    let mut supervisor = Supervisor::new(
        supervision,
        cp.clone(),
        server,
        plan.clone(),
        sim.n_replicas(),
    );
    let mut autoscaler = Autoscaler::new(autoscale, cp);
    trainer.prime(&mut rt, train_pid);
    sim.prime(&mut rt, serve_pid);
    rt.prime(sup_pid, SimTime::ZERO, Event::Wake(0));
    rt.prime(auto_pid, SimTime::ZERO, Event::Wake(0));
    {
        let procs: &mut [&mut dyn Process] =
            &mut [&mut trainer, &mut sim, &mut supervisor, &mut autoscaler];
        rt.run(procs);
    }
    sim.epilogue(&mut rt, serve_pid);
    let report = ColocatedReport {
        train: trainer.finalize(),
        serve: sim.into_report(),
    };

    let s = &report.serve;
    let slo_ok = s.latency_p99_ns <= cfg.slo_p99.as_nanos();
    let rto_ok = s.max_recovery_ns <= cfg.rto.as_nanos();
    let recovered_ok = s.detections == s.faults.worker_crashes
        && s.respawns == s.detections
        && s.requests == cfg.requests as u64;
    let split_ok = s.split_done && s.migrated_keys > 0;
    ChaosReport {
        slo_p99_ns: cfg.slo_p99.as_nanos(),
        rto_ns: cfg.rto.as_nanos(),
        slo_ok,
        rto_ok,
        recovered_ok,
        split_ok,
        report,
    }
}
