//! Online inference serving over the cached embedding store.
//!
//! The paper trains huge embedding models behind a clock-bounded cache
//! (`CheckValid`, §3.2); this crate points the same machinery at the
//! *serving* side of the north star — "serving heavy traffic from
//! millions of users" — as a deterministic simulation on `het-simnet`
//! time:
//!
//! * an **open-loop request generator** — Poisson-like arrivals with
//!   Zipf key popularity, hot-set drift, and a flash-crowd knob
//!   ([`workload`]);
//! * **N inference replicas**, each a trained `het-models` forward pass
//!   behind a read-mostly embedding cache (any of the LRU/LFU/LightLFU
//!   policies) doing staleness-bounded reads against the live PS
//!   ([`sim`]); the fleet is a `het_runtime::Process`, so it can be
//!   **co-scheduled with a real trainer** on one cluster runtime and
//!   one PS fabric, exposing the freshness/latency trade-off of
//!   serving *while training* ([`colocate`]);
//! * **micro-batching** per replica (max batch size + max queue delay)
//!   with full queueing/latency accounting into a [`ServeReport`]
//!   (throughput, p50/p95/p99 from a deterministic histogram,
//!   per-replica cache stats);
//! * **fault integration**: replica crashes cold-restart the cache,
//!   PS-shard failover degrades gracefully to stale serving (§3.3), and
//!   everything lands in the `serve` trace component;
//! * **self-healing elasticity** ([`supervise`]): a heartbeat-driven
//!   [`Supervisor`] *detects* crashes (no fault-plan peeking) and
//!   drives respawns with sketch-warmed caches and checkpoint-restored
//!   PS shards, an [`Autoscaler`] resizes the admitted replica pool
//!   under hysteresis, and a [`ReshardPlan`] live-splits a hot PS shard
//!   while traffic continues — all opt-in, all deterministic;
//! * a **chaos campaign harness** ([`chaos`]) that co-schedules
//!   trainer + supervised fleet under a compound fault scenario and
//!   asserts SLO/RTO outcomes;
//! * a **threaded backend** ([`thread`]): the same replica machinery on
//!   real OS threads behind `--backend threads:<n>` — one thread per
//!   replica over the shared PS fabric, reporting wall-clock
//!   throughput/latency instead of simulated time (the simulator stays
//!   the correctness oracle).
//!
//! Same seed ⇒ byte-identical report JSON and byte-identical trace
//! (on the sim backend; wall-clock measurements are exempt by design).

#![warn(missing_docs)]

pub mod chaos;
pub mod colocate;
pub mod config;
pub mod report;
pub mod sim;
pub mod supervise;
pub mod thread;
pub mod workload;

pub use chaos::{run_chaos, ChaosConfig, ChaosReport};
pub use colocate::{run_colocated, ColocatedReport};
pub use config::ServeConfig;
pub use report::{ReplicaReport, ServeReport};
pub use sim::ServeSim;
pub use supervise::{
    AutoscaleConfig, Autoscaler, ControlPlane, ReshardPlan, SupervisionConfig, Supervisor,
};
pub use thread::{
    run_threaded_colocated, run_threaded_serve, run_threaded_serve_shared, ThreadedServeReport,
};
pub use workload::{generate_requests, pretrain, Request};
