//! Configuration of a serving run.

use crate::supervise::{AutoscaleConfig, SupervisionConfig};
use het_cache::PolicyKind;
use het_core::FaultConfig;
use het_ps::StoreSpec;
use het_simnet::{ClusterSpec, SimDuration, SimTime};

/// Configuration of a [`ServeSim`](crate::ServeSim) run: the request
/// workload, the replica fleet, cache/staleness settings, and fault
/// injection. (Serving alongside *live* training is configured by
/// co-scheduling a trainer — see [`crate::colocate`] — not here.)
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Master seed. Every random stream (arrivals, key popularity, the
    /// pretraining stream, fault schedules) derives from it, so equal
    /// seeds give byte-identical [`ServeReport`](crate::ServeReport)s.
    pub seed: u64,
    /// Number of inference replicas requests are load-balanced over.
    pub n_replicas: usize,
    /// Embedding dimension (must match the model's).
    pub dim: usize,
    /// Categorical fields per request — each contributes one embedding
    /// key, so a request touches `n_fields` keys.
    pub n_fields: usize,
    /// Size of the embedding key space.
    pub n_keys: u64,
    /// Per-replica embedding-cache capacity (entries).
    pub cache_capacity: usize,
    /// Admitted staleness window `s` of `CheckValid` (clock ticks).
    pub staleness: u64,
    /// Cache eviction policy.
    pub policy: PolicyKind,
    /// Learning rate of the live parameter server (the serving path
    /// itself never writes; this only parameterises the PS).
    pub lr: f32,
    /// Open-loop arrival rate in requests per second (Poisson-like:
    /// exponential inter-arrival gaps).
    pub arrival_rate: f64,
    /// Total number of requests to generate.
    pub n_requests: usize,
    /// Zipf exponent of key popularity (paper Fig. 3 skew).
    pub zipf_exponent: f64,
    /// Hot-set drift: every `drift_period` of simulated time the
    /// rank→key mapping rotates by [`ServeConfig::drift_step`] keys.
    /// `ZERO` disables drift.
    pub drift_period: SimDuration,
    /// Keys the hot set rotates by per drift period.
    pub drift_step: u64,
    /// Flash crowd: start instant, or `None` for no flash.
    pub flash_at: Option<SimTime>,
    /// Flash crowd duration.
    pub flash_duration: SimDuration,
    /// Arrival-rate multiplier inside the flash window.
    pub flash_factor: f64,
    /// Size of the uniform hot subset flash-crowd requests draw from.
    pub flash_hot_keys: u64,
    /// Micro-batching: maximum requests per batch.
    pub max_batch: usize,
    /// Micro-batching: maximum time the oldest queued request may wait
    /// before a partial batch is forced out.
    pub max_queue_delay: SimDuration,
    /// PS updates applied before serving starts, standing in for the
    /// training history that produced the model being served.
    pub pretrain_updates: u64,
    /// SpaceSaving warmup: requests' worth of keys observed by the
    /// sketch to pre-populate every replica cache (0 = cold start).
    pub warmup_requests: usize,
    /// Fault injection (replica crashes, PS-shard failover, …).
    pub faults: FaultConfig,
    /// Number of PS shards.
    pub n_shards: usize,
    /// The simulated cluster (compute speed, link costs).
    pub cluster: ClusterSpec,
    /// Heartbeat supervision: failure detection + driven recovery
    /// (disabled by default — the legacy scripted-fault path).
    pub supervision: SupervisionConfig,
    /// Queue-depth autoscaling of the replica pool (disabled by
    /// default).
    pub autoscale: AutoscaleConfig,
    /// Row-store backend of the PS shards behind the fleet.
    /// [`StoreSpec::Mem`] (the default) keeps every row resident;
    /// [`StoreSpec::Tiered`] bounds resident rows and charges modelled
    /// disk time on cold fetches, which flows into miss latency.
    pub store: StoreSpec,
}

impl ServeConfig {
    /// A production-shaped default: 2 replicas at 10 k req/s against a
    /// 100 k-key table on the paper's cluster A.
    pub fn new(seed: u64) -> Self {
        let n_replicas = 2;
        let n_shards = 4;
        ServeConfig {
            seed,
            n_replicas,
            dim: 16,
            n_fields: 8,
            n_keys: 100_000,
            cache_capacity: 10_000,
            staleness: 10,
            policy: PolicyKind::light_lfu(),
            lr: 0.05,
            arrival_rate: 10_000.0,
            n_requests: 20_000,
            zipf_exponent: 1.1,
            drift_period: SimDuration::ZERO,
            drift_step: 0,
            flash_at: None,
            flash_duration: SimDuration::ZERO,
            flash_factor: 1.0,
            flash_hot_keys: 0,
            max_batch: 8,
            max_queue_delay: SimDuration::from_micros(200),
            pretrain_updates: 0,
            warmup_requests: 0,
            faults: FaultConfig::disabled(),
            n_shards,
            cluster: ClusterSpec::cluster_a(n_replicas, n_shards),
            supervision: SupervisionConfig::disabled(),
            autoscale: AutoscaleConfig::disabled(),
            store: StoreSpec::Mem,
        }
    }

    /// A small configuration for tests: hundreds of requests over a
    /// few hundred keys, finishing in milliseconds of simulated time.
    pub fn tiny(seed: u64) -> Self {
        let n_replicas = 2;
        let n_shards = 2;
        ServeConfig {
            seed,
            n_replicas,
            dim: 8,
            n_fields: 4,
            n_keys: 600,
            cache_capacity: 120,
            staleness: 10,
            policy: PolicyKind::Lru,
            lr: 0.05,
            arrival_rate: 8_000.0,
            n_requests: 400,
            zipf_exponent: 1.1,
            drift_period: SimDuration::ZERO,
            drift_step: 0,
            flash_at: None,
            flash_duration: SimDuration::ZERO,
            flash_factor: 1.0,
            flash_hot_keys: 0,
            max_batch: 4,
            max_queue_delay: SimDuration::from_micros(300),
            pretrain_updates: 200,
            warmup_requests: 0,
            faults: FaultConfig::disabled(),
            n_shards,
            cluster: ClusterSpec::cluster_a(n_replicas, n_shards),
            supervision: SupervisionConfig::disabled(),
            autoscale: AutoscaleConfig::disabled(),
            store: StoreSpec::Mem,
        }
    }

    /// Validates internal consistency (positive sizes, sane rates).
    ///
    /// # Panics
    /// Panics on an invalid configuration, naming the offending field.
    pub fn validate(&self) {
        assert!(self.n_replicas > 0, "n_replicas must be positive");
        assert!(self.dim > 0, "dim must be positive");
        assert!(self.n_fields > 0, "n_fields must be positive");
        assert!(self.n_keys > 0, "n_keys must be positive");
        assert!(self.cache_capacity > 0, "cache_capacity must be positive");
        assert!(
            self.arrival_rate > 0.0 && self.arrival_rate.is_finite(),
            "arrival_rate must be positive and finite"
        );
        assert!(self.max_batch > 0, "max_batch must be positive");
        assert!(self.n_shards > 0, "n_shards must be positive");
        assert!(
            self.flash_at.is_none() || self.flash_factor >= 1.0,
            "flash_factor must be >= 1 when a flash crowd is scheduled"
        );
        if self.supervision.enabled {
            assert!(
                self.supervision.heartbeat_every > SimDuration::ZERO,
                "heartbeat_every must be positive"
            );
            assert!(
                self.supervision.miss_threshold > 0,
                "miss_threshold must be positive"
            );
            if self.supervision.drift_prefetch {
                assert!(
                    self.supervision.drift_window > SimDuration::ZERO,
                    "drift_window must be positive when drift_prefetch is on"
                );
            }
        }
        if self.autoscale.enabled {
            assert!(
                self.autoscale.min_replicas > 0,
                "min_replicas must be positive"
            );
            assert!(
                self.autoscale.min_replicas <= self.n_replicas
                    && self.n_replicas <= self.autoscale.max_replicas,
                "initial n_replicas must lie within [min_replicas, max_replicas]"
            );
            assert!(
                self.autoscale.queue_low < self.autoscale.queue_high,
                "hysteresis band requires queue_low < queue_high"
            );
            assert!(
                self.autoscale.evaluate_every > SimDuration::ZERO,
                "evaluate_every must be positive"
            );
        }
    }
}
