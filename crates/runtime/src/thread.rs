//! The threaded half of the execution-backend seam.
//!
//! The discrete-event [`ClusterRuntime`](crate::ClusterRuntime) gives
//! every job a deterministic, single-threaded schedule; this module
//! supplies the primitives for running the *same* job on real OS
//! threads — the `ThreadRuntime` of DESIGN.md §3.13. Where the sim
//! runtime offers `plan/schedule/wait_until`, the threaded world maps
//! each process to a thread and replaces those verbs with:
//!
//! * **[`ExecutionBackend`]** — the user-facing selector parsed from
//!   `--backend sim|threads:<n>`; everything downstream branches on it
//!   exactly once, at job launch.
//! * **[`WallClock`]** — a monotonic, *strictly increasing* nanosecond
//!   stamp shared by every thread of a run. Strictness is what makes
//!   the per-thread trace buffers mergeable into one deterministic
//!   stream: two events can never tie on `t`, so the documented
//!   `(t, tid)` merge order is total (`het_trace::merge_threads`).
//! * **[`Turnstile`]** — an ordered-section primitive: threads pass in
//!   a fixed index order, one at a time. The threaded BSP trainer runs
//!   its read and write phases through a turnstile so server-visible
//!   mutations happen in exactly the sim's worker order — the property
//!   its bit-identity guarantee rests on — while the compute between
//!   them runs genuinely in parallel.
//! * **[`Barrier`]** — a reusable all-thread rendezvous (BSP round
//!   edges). `std::sync::Barrier` would do, but this one is built on
//!   the same poison-free Mutex/Condvar idiom as the rest of the crate
//!   and reports the leader deterministically (index 0, not "some
//!   thread"), which the trainer uses to run the single-threaded round
//!   tail (allreduce, eval) on a fixed thread.
//!
//! Locking order, repo-wide (documented in DESIGN.md §3.13 and enforced
//! by review, not by types): **progress/phase locks → PS shard locks →
//! trace scope**. No code path takes a shard lock while holding another
//! shard's lock (shards are strictly disjoint), and nothing calls back
//! into the runtime while holding a shard lock.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::Instant;

/// Which executor runs a job: the deterministic discrete-event
/// simulator (the correctness oracle) or real OS threads.
///
/// Parsed from the CLI's `--backend` flag. `threads:<n>` carries the
/// worker-thread count: the threaded trainer runs one thread per
/// worker, so `threads:4` *is* a 4-worker cluster.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExecutionBackend {
    /// Single-threaded discrete-event simulation (the default).
    Sim,
    /// Real OS threads; the payload is the worker-thread count (≥ 1).
    Threads(usize),
}

impl ExecutionBackend {
    /// Parses `"sim"` or `"threads:<n>"` (n ≥ 1).
    pub fn parse(s: &str) -> Result<Self, String> {
        if s == "sim" {
            return Ok(ExecutionBackend::Sim);
        }
        if let Some(n) = s.strip_prefix("threads:") {
            let n: usize = n
                .parse()
                .map_err(|_| format!("--backend threads:<n>: '{n}' is not a number"))?;
            if n == 0 {
                return Err("--backend threads:<n> requires n >= 1".to_string());
            }
            return Ok(ExecutionBackend::Threads(n));
        }
        Err(format!(
            "unknown backend '{s}' (expected 'sim' or 'threads:<n>')"
        ))
    }

    /// The worker-thread count, or `None` on the sim backend.
    pub fn threads(&self) -> Option<usize> {
        match self {
            ExecutionBackend::Sim => None,
            ExecutionBackend::Threads(n) => Some(*n),
        }
    }
}

impl std::fmt::Display for ExecutionBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecutionBackend::Sim => write!(f, "sim"),
            ExecutionBackend::Threads(n) => write!(f, "threads:{n}"),
        }
    }
}

/// A shared run clock issuing *strictly increasing* wall-clock stamps.
///
/// `elapsed` alone is monotone but not strict — two threads (or one
/// fast loop) can read the same nanosecond. Trace merging needs strict
/// stamps so `(t, tid)` ordering is total and replay order equals
/// emission order; the clock therefore hands out
/// `max(last + 1, elapsed_ns)` with a lock-free compare-exchange loop
/// on the last issued stamp.
pub struct WallClock {
    origin: Instant,
    last: AtomicU64,
}

impl WallClock {
    /// Starts the clock at the run's origin (stamp 0 is never issued).
    pub fn new() -> Self {
        WallClock {
            origin: Instant::now(),
            last: AtomicU64::new(0),
        }
    }

    /// Issues the next stamp: strictly greater than every stamp issued
    /// before it, and `>=` the real elapsed nanoseconds.
    pub fn stamp(&self) -> u64 {
        let now = self.origin.elapsed().as_nanos() as u64;
        let mut stamped = 0;
        self.last
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |last| {
                stamped = now.max(last + 1);
                Some(stamped)
            })
            .expect("fetch_update closure never returns None");
        stamped
    }

    /// Real elapsed nanoseconds since the clock started (non-strict;
    /// for durations and throughput, not for trace stamps).
    pub fn elapsed_ns(&self) -> u64 {
        self.origin.elapsed().as_nanos() as u64
    }
}

impl Default for WallClock {
    fn default() -> Self {
        WallClock::new()
    }
}

/// An ordered section: `n` threads each enter once per cycle, strictly
/// in index order `0, 1, .., n-1`, one at a time.
///
/// The threaded BSP trainer wraps its read and write phases in a
/// turnstile: worker `w` blocks until workers `0..w` have finished the
/// phase this cycle, runs its (server-mutating) phase body alone, then
/// admits `w + 1`. After `n-1` passes, the turnstile resets for the
/// next cycle. Compute between the phases runs outside the turnstile,
/// fully parallel.
pub struct Turnstile {
    n: usize,
    turn: Mutex<usize>,
    cv: Condvar,
}

impl Turnstile {
    /// A turnstile for `n` threads (indices `0..n`).
    // `turn` is a Mutex<usize>, not an atomic, because waiters block on
    // the Condvar — which requires the Mutex (the CI lint wall denies
    // `clippy::mutex_atomic` exactly so exceptions carry this note).
    #[allow(clippy::mutex_atomic)]
    pub fn new(n: usize) -> Self {
        Turnstile {
            n: n.max(1),
            turn: Mutex::new(0),
            cv: Condvar::new(),
        }
    }

    /// Runs `body` when it is thread `index`'s turn this cycle, then
    /// passes the turn on. Returns `body`'s result.
    pub fn pass<T>(&self, index: usize, body: impl FnOnce() -> T) -> T {
        let mut turn = self.turn.lock().unwrap_or_else(|e| e.into_inner());
        while *turn != index {
            turn = self.cv.wait(turn).unwrap_or_else(|e| e.into_inner());
        }
        let out = body();
        *turn = (index + 1) % self.n;
        self.cv.notify_all();
        out
    }
}

/// A reusable rendezvous for `n` threads with a deterministic leader.
///
/// Each [`wait`](Barrier::wait) blocks until all `n` threads of the
/// current generation have arrived, then releases them together and
/// reports `true` to exactly the thread that arrived with `index == 0`
/// — so "the leader" is a fixed thread across every round, and the
/// single-threaded tail of a BSP round (gradient merge, eval) always
/// runs on the thread that owns worker 0, mirroring the sim's
/// worker-0-first orderings.
pub struct Barrier {
    n: usize,
    state: Mutex<(usize, u64)>, // (arrived this generation, generation)
    cv: Condvar,
}

impl Barrier {
    /// A barrier for `n` threads.
    pub fn new(n: usize) -> Self {
        Barrier {
            n: n.max(1),
            state: Mutex::new((0, 0)),
            cv: Condvar::new(),
        }
    }

    /// Blocks until all threads arrive; returns `true` iff this caller
    /// passed `index == 0`.
    pub fn wait(&self, index: usize) -> bool {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        state.0 += 1;
        if state.0 == self.n {
            state.0 = 0;
            state.1 += 1;
            self.cv.notify_all();
        } else {
            let gen = state.1;
            while state.1 == gen {
                state = self.cv.wait(state).unwrap_or_else(|e| e.into_inner());
            }
        }
        index == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn backend_parses_and_displays() {
        assert_eq!(ExecutionBackend::parse("sim"), Ok(ExecutionBackend::Sim));
        assert_eq!(
            ExecutionBackend::parse("threads:4"),
            Ok(ExecutionBackend::Threads(4))
        );
        assert!(ExecutionBackend::parse("threads:0").is_err());
        assert!(ExecutionBackend::parse("threads:x").is_err());
        assert!(ExecutionBackend::parse("gpu").is_err());
        assert_eq!(ExecutionBackend::Threads(2).to_string(), "threads:2");
        assert_eq!(ExecutionBackend::Sim.threads(), None);
        assert_eq!(ExecutionBackend::Threads(3).threads(), Some(3));
    }

    #[test]
    fn wall_clock_stamps_are_strictly_increasing_across_threads() {
        let clock = Arc::new(WallClock::new());
        let mut handles = Vec::new();
        for _ in 0..4 {
            let clock = Arc::clone(&clock);
            handles.push(std::thread::spawn(move || {
                (0..500).map(|_| clock.stamp()).collect::<Vec<_>>()
            }));
        }
        let mut all: Vec<u64> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        let n = all.len();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), n, "stamps must never collide");
    }

    #[test]
    fn turnstile_enforces_index_order_per_cycle() {
        const N: usize = 4;
        const CYCLES: usize = 25;
        let ts = Arc::new(Turnstile::new(N));
        let order = Arc::new(Mutex::new(Vec::new()));
        let mut handles = Vec::new();
        for i in 0..N {
            let ts = Arc::clone(&ts);
            let order = Arc::clone(&order);
            handles.push(std::thread::spawn(move || {
                for _ in 0..CYCLES {
                    ts.pass(i, || order.lock().unwrap().push(i));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let order = order.lock().unwrap();
        assert_eq!(order.len(), N * CYCLES);
        for (k, &i) in order.iter().enumerate() {
            assert_eq!(i, k % N, "cycle order must be 0..n, repeated");
        }
    }

    #[test]
    fn barrier_releases_all_and_elects_index_zero() {
        const N: usize = 4;
        let barrier = Arc::new(Barrier::new(N));
        let leaders = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for i in 0..N {
            let barrier = Arc::clone(&barrier);
            let leaders = Arc::clone(&leaders);
            handles.push(std::thread::spawn(move || {
                for _ in 0..50 {
                    if barrier.wait(i) {
                        leaders.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(leaders.load(Ordering::Relaxed), 50, "one leader per round");
    }
}
