//! The unified cluster runtime: one event loop for every job.
//!
//! The trainer, the serving fleet, and any future subsystem (multi-tenant
//! jobs, elastic workers, online learning) are [`Process`] implementations
//! scheduled by a single [`ClusterRuntime`]. The runtime owns the three
//! concerns every discrete-event job used to hand-roll for itself:
//!
//! * the **shared [`EventQueue`]** with its deterministic
//!   [`TieBreak`] policy — processes schedule their own future events
//!   through [`Ctx::schedule`] and wait conditions through
//!   [`Ctx::wait_until`];
//! * **centralized fault delivery** — the [`FaultPlan`]'s crash and
//!   shard-outage schedules are cursored once, here, and routed to the
//!   owning process on demand ([`Ctx::take_crash`],
//!   [`Ctx::take_due_outage`]), so two co-scheduled jobs can never
//!   double-consume or miss a fault;
//! * **deterministic trace scoping and per-process clocks** — before each
//!   dispatch the ambient trace scope is reset to the event time and the
//!   process's clock is advanced, so no process observes the scope a
//!   previously dispatched process left behind.
//!
//! Determinism is inherited, not re-proven per job: the queue pops in a
//! total order that is a pure function of the push sequence, fault
//! cursors advance monotonically, and nothing in the loop reads wall
//! clocks or ambient randomness. Same processes + same priming + same
//! plan ⇒ byte-identical histories.
//!
//! # Membership and fault routing
//!
//! A fault plan addresses *cluster members* by a flat index (worker 0, 1,
//! ...). Each registered process covers a contiguous block of members:
//! [`ClusterRuntime::register`] hands out the block starting at the
//! current member count, so a trainer with `W` workers registered first
//! owns members `0..W`, and a serving fleet with `R` replicas registered
//! second owns members `W..W+R`. [`Ctx::take_crash`] takes the process's
//! *local* member index and translates it.

#![warn(missing_docs)]

pub mod thread;

pub use thread::{Barrier, ExecutionBackend, Turnstile, WallClock};

use het_simnet::{EventQueue, FaultPlan, SimDuration, SimTime, TieBreak};

/// Identifies a registered process within one [`ClusterRuntime`].
pub type ProcessId = usize;

/// The event payloads a process can schedule for itself.
///
/// The runtime never interprets the payload beyond routing it to the
/// owning process; the `u64` carries whatever the process needs (a
/// worker index, a request index, ...).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Event {
    /// A process-internal wake-up (a worker's next iteration, a replica
    /// restart, a batch deadline, the next BSP round, ...).
    Wake(u64),
    /// An external arrival (a serving request entering the balancer).
    Arrive(u64),
}

/// A job scheduled by the [`ClusterRuntime`].
///
/// `on_event` is invoked once per popped event addressed to this
/// process, in global simulated-time order. The process advances its own
/// internal state and uses `ctx` to schedule follow-up events, consume
/// routed faults, or declare itself finished.
pub trait Process {
    /// Handles one event at simulated time `t`.
    fn on_event(&mut self, t: SimTime, ev: Event, ctx: &mut Ctx<'_>);
}

/// Centralized fault delivery: the plan's crash and outage schedules,
/// cursored once for the whole cluster.
struct FaultDelivery {
    plan: FaultPlan,
    /// Per-member crash schedule `(at, restart)`, consumed in order.
    crashes: Vec<Vec<(SimTime, SimDuration)>>,
    next_crash: Vec<usize>,
    /// Shard outages sorted by trigger time; one shared cursor — the PS
    /// fabric fails over once no matter how many jobs observe it.
    outages: Vec<(usize, SimTime, SimDuration)>,
    next_outage: usize,
}

impl FaultDelivery {
    fn new(plan: FaultPlan) -> Self {
        let mut outages = plan.shard_outages();
        outages.sort_by_key(|&(shard, at, _)| (at.as_nanos(), shard));
        FaultDelivery {
            plan,
            crashes: Vec::new(),
            next_crash: Vec::new(),
            outages,
            next_outage: 0,
        }
    }

    fn add_member(&mut self) {
        let member = self.crashes.len();
        self.crashes.push(self.plan.worker_crashes(member));
        self.next_crash.push(0);
    }

    fn take_crash(&mut self, member: usize, now: SimTime) -> Option<(SimTime, SimDuration)> {
        let i = self.next_crash[member];
        let &(at, restart) = self.crashes[member].get(i)?;
        if at > now {
            return None;
        }
        self.next_crash[member] = i + 1;
        Some((at, restart))
    }

    fn take_due_outage(&mut self, now: SimTime) -> Option<(usize, SimTime, SimDuration)> {
        let &(shard, at, failover) = self.outages.get(self.next_outage)?;
        if at > now {
            return None;
        }
        self.next_outage += 1;
        Some((shard, at, failover))
    }
}

/// The scheduling context handed to [`Process::on_event`]: the window
/// through which a process reaches the shared queue, the fault plan, and
/// the trace scope.
pub struct Ctx<'a> {
    pid: ProcessId,
    now: SimTime,
    member_offset: usize,
    tie_break: TieBreak,
    queue: &'a mut EventQueue<(ProcessId, Event)>,
    faults: &'a mut FaultDelivery,
    stopped: &'a mut [bool],
}

impl Ctx<'_> {
    /// The simulated time of the event being dispatched.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// First cluster-member index owned by this process (see the module
    /// docs on membership).
    pub fn member_offset(&self) -> usize {
        self.member_offset
    }

    /// The tie-break rule of the shared queue.
    pub fn tie_break(&self) -> TieBreak {
        self.tie_break
    }

    /// The cluster's fault plan (for effects the runtime does not
    /// cursor: stragglers, link degradation, message drops).
    pub fn plan(&self) -> &FaultPlan {
        &self.faults.plan
    }

    /// Schedules a future event for this process.
    pub fn schedule(&mut self, at: SimTime, ev: Event) {
        self.queue.push(at, (self.pid, ev));
    }

    /// Schedules a future event for *another* process. This is the
    /// cross-process signalling primitive: a supervisor wakes the fleet
    /// it respawned a replica into, an autoscaler pokes the balancer it
    /// just resized. Delivery shares the queue's deterministic order
    /// with every other event.
    pub fn schedule_for(&mut self, pid: ProcessId, at: SimTime, ev: Event) {
        self.queue.push(at, (pid, ev));
    }

    /// This process's id, for handing to peers that signal back via
    /// [`Ctx::schedule_for`].
    pub fn pid(&self) -> ProcessId {
        self.pid
    }

    /// A wait condition: re-delivers `ev` just after `gate` (or just
    /// after now, if the gate is already behind us) and returns the
    /// retry instant. This is how a process blocks on a predicate over
    /// another member's progress — e.g. the SSP staleness gate.
    pub fn wait_until(&mut self, gate: SimTime, ev: Event) -> SimTime {
        let retry = gate.max(self.now) + SimDuration::from_nanos(1);
        self.queue.push(retry, (self.pid, ev));
        retry
    }

    /// Declares this process finished. Its residual events are discarded
    /// unprocessed; the run ends once every process has stopped (or the
    /// queue drains).
    pub fn stop(&mut self) {
        self.stopped[self.pid] = true;
    }

    /// Takes this process's member `m`'s next crash if it is due at or
    /// before `now` (at most one per call — callers drain with a loop
    /// where multiple crashes may be due).
    pub fn take_crash(&mut self, member: usize, now: SimTime) -> Option<(SimTime, SimDuration)> {
        self.faults.take_crash(self.member_offset + member, now)
    }

    /// Takes the next PS-shard outage due at or before `now`, if any.
    /// The cursor is cluster-global: whichever process asks first
    /// performs the failover.
    pub fn take_due_outage(&mut self, now: SimTime) -> Option<(usize, SimTime, SimDuration)> {
        self.faults.take_due_outage(now)
    }

    /// Sets the ambient trace scope to `(t, member)` with the member
    /// index translated to cluster-global, so co-scheduled jobs never
    /// collide on per-index counters. No-op when tracing is off.
    pub fn scope_at(&self, t: SimTime, member: Option<usize>) {
        if het_trace::enabled() {
            het_trace::set_scope(
                t.as_nanos(),
                member.map(|m| (self.member_offset + m) as u64),
            );
        }
    }
}

/// The single event loop driving every registered [`Process`].
pub struct ClusterRuntime {
    queue: EventQueue<(ProcessId, Event)>,
    tie_break: TieBreak,
    faults: FaultDelivery,
    stopped: Vec<bool>,
    clocks: Vec<SimTime>,
    offsets: Vec<usize>,
}

impl ClusterRuntime {
    /// Builds a runtime over one shared queue and one fault plan.
    pub fn new(tie_break: TieBreak, plan: FaultPlan) -> Self {
        ClusterRuntime {
            queue: EventQueue::with_tie_break(tie_break),
            tie_break,
            faults: FaultDelivery::new(plan),
            stopped: Vec::new(),
            clocks: Vec::new(),
            offsets: Vec::new(),
        }
    }

    /// Registers a process covering `n_members` cluster members and
    /// returns its id. Registration order defines both the id and the
    /// member block (see the module docs).
    pub fn register(&mut self, n_members: usize) -> ProcessId {
        let pid = self.stopped.len();
        let offset = self.faults.crashes.len();
        for _ in 0..n_members {
            self.faults.add_member();
        }
        self.stopped.push(false);
        self.clocks.push(SimTime::ZERO);
        self.offsets.push(offset);
        pid
    }

    /// Number of registered processes.
    pub fn n_processes(&self) -> usize {
        self.stopped.len()
    }

    /// First cluster-member index owned by `pid`.
    pub fn member_offset(&self, pid: ProcessId) -> usize {
        self.offsets[pid]
    }

    /// Schedules an initial event for `pid` before the loop starts.
    pub fn prime(&mut self, pid: ProcessId, at: SimTime, ev: Event) {
        self.queue.push(at, (pid, ev));
    }

    /// The last event time dispatched to `pid`.
    pub fn clock_of(&self, pid: ProcessId) -> SimTime {
        self.clocks[pid]
    }

    /// The cluster's fault plan.
    pub fn plan(&self) -> &FaultPlan {
        &self.faults.plan
    }

    /// Post-run fault drain: takes `pid`'s member `m`'s next crash due
    /// at or before `now`, for epilogues that must account faults
    /// scheduled after the last dispatched event.
    pub fn take_crash(
        &mut self,
        pid: ProcessId,
        member: usize,
        now: SimTime,
    ) -> Option<(SimTime, SimDuration)> {
        self.faults.take_crash(self.offsets[pid] + member, now)
    }

    /// Runs the loop to completion: pops events in deterministic order
    /// and dispatches each to its owner, until every process has stopped
    /// or the queue drains. `procs[i]` must be the process registered
    /// with id `i`. Events addressed to a stopped process are discarded.
    pub fn run(&mut self, procs: &mut [&mut dyn Process]) {
        assert_eq!(
            procs.len(),
            self.stopped.len(),
            "one &mut Process per registered id, in registration order"
        );
        while !self.stopped.iter().all(|&s| s) {
            let Some((t, (pid, ev))) = self.queue.pop() else {
                break;
            };
            if self.stopped[pid] {
                continue;
            }
            if self.clocks[pid] < t {
                self.clocks[pid] = t;
            }
            // Scope ownership: no process may observe the scope a
            // previously dispatched process left behind.
            if het_trace::enabled() {
                het_trace::set_scope(t.as_nanos(), None);
            }
            let mut ctx = Ctx {
                pid,
                now: t,
                member_offset: self.offsets[pid],
                tie_break: self.tie_break,
                queue: &mut self.queue,
                faults: &mut self.faults,
                stopped: &mut self.stopped,
            };
            procs[pid].on_event(t, ev, &mut ctx);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use het_simnet::FaultSpec;

    /// Counts its wake-ups, schedules the next one `step` later, stops
    /// after `limit`.
    struct Ticker {
        step: SimDuration,
        limit: u64,
        ticks: u64,
        times: Vec<SimTime>,
    }

    impl Ticker {
        fn new(step_ns: u64, limit: u64) -> Self {
            Ticker {
                step: SimDuration::from_nanos(step_ns),
                limit,
                ticks: 0,
                times: Vec::new(),
            }
        }
    }

    impl Process for Ticker {
        fn on_event(&mut self, t: SimTime, _ev: Event, ctx: &mut Ctx<'_>) {
            self.ticks += 1;
            self.times.push(t);
            if self.ticks >= self.limit {
                ctx.stop();
            } else {
                ctx.schedule(t + self.step, Event::Wake(0));
            }
        }
    }

    fn run_two(a_step: u64, b_step: u64) -> (Ticker, Ticker) {
        let mut rt = ClusterRuntime::new(TieBreak::Fifo, FaultPlan::none());
        let a_pid = rt.register(1);
        let b_pid = rt.register(1);
        let mut a = Ticker::new(a_step, 5);
        let mut b = Ticker::new(b_step, 5);
        rt.prime(a_pid, SimTime::ZERO, Event::Wake(0));
        rt.prime(b_pid, SimTime::ZERO, Event::Wake(0));
        rt.run(&mut [&mut a, &mut b]);
        (a, b)
    }

    #[test]
    fn interleaves_processes_in_time_order() {
        let (a, b) = run_two(10, 3);
        assert_eq!(a.ticks, 5);
        assert_eq!(b.ticks, 5);
        // b's 3 ns cadence finishes (12 ns) before a's second tick.
        assert_eq!(b.times.last().unwrap().as_nanos(), 12);
        assert_eq!(a.times.last().unwrap().as_nanos(), 40);
    }

    #[test]
    fn identical_runs_produce_identical_histories() {
        let (a1, b1) = run_two(7, 7);
        let (a2, b2) = run_two(7, 7);
        assert_eq!(a1.times, a2.times);
        assert_eq!(b1.times, b2.times);
    }

    #[test]
    fn stopped_process_events_are_discarded() {
        struct StopsEarly {
            seen: u64,
        }
        impl Process for StopsEarly {
            fn on_event(&mut self, _t: SimTime, _ev: Event, ctx: &mut Ctx<'_>) {
                self.seen += 1;
                ctx.stop();
            }
        }
        let mut rt = ClusterRuntime::new(TieBreak::Fifo, FaultPlan::none());
        let s_pid = rt.register(1);
        let t_pid = rt.register(1);
        let mut s = StopsEarly { seen: 0 };
        let mut t = Ticker::new(5, 3);
        // Three events for the stopper: only the first is dispatched.
        for at in [0, 1, 2] {
            rt.prime(s_pid, SimTime::from_nanos(at), Event::Wake(0));
        }
        rt.prime(t_pid, SimTime::ZERO, Event::Wake(0));
        rt.run(&mut [&mut s, &mut t]);
        assert_eq!(s.seen, 1);
        assert_eq!(t.ticks, 3, "the other process keeps running");
    }

    #[test]
    fn wait_until_retries_just_past_the_gate() {
        struct Wait {
            retried_at: Option<SimTime>,
            done: bool,
        }
        impl Process for Wait {
            fn on_event(&mut self, t: SimTime, _ev: Event, ctx: &mut Ctx<'_>) {
                if let Some(retried_at) = self.retried_at {
                    assert_eq!(t, retried_at);
                    self.done = true;
                    ctx.stop();
                } else {
                    let retry = ctx.wait_until(SimTime::from_nanos(100), Event::Wake(0));
                    assert_eq!(retry.as_nanos(), 101);
                    self.retried_at = Some(retry);
                }
            }
        }
        let mut rt = ClusterRuntime::new(TieBreak::Fifo, FaultPlan::none());
        let pid = rt.register(1);
        let mut p = Wait {
            retried_at: None,
            done: false,
        };
        rt.prime(pid, SimTime::ZERO, Event::Wake(0));
        rt.run(&mut [&mut p]);
        assert!(p.done);
        assert_eq!(rt.clock_of(pid).as_nanos(), 101);
    }

    #[test]
    fn fault_routing_translates_member_blocks() {
        let spec = FaultSpec {
            n_workers: 4,
            n_shards: 2,
            worker_crashes: 4,
            horizon: SimDuration::from_millis(10),
            ..FaultSpec::default()
        };
        let plan = FaultPlan::generate(3, &spec);
        let horizon = SimTime::ZERO + SimDuration::from_millis(10);
        // Expected per-member schedules straight from the plan.
        let expect: Vec<_> = (0..4).map(|m| plan.worker_crashes(m)).collect();

        let mut rt = ClusterRuntime::new(TieBreak::Fifo, plan);
        let a = rt.register(2); // members 0..2
        let b = rt.register(2); // members 2..4
        assert_eq!(rt.member_offset(a), 0);
        assert_eq!(rt.member_offset(b), 2);
        for (pid, local, member) in [(a, 0, 0), (a, 1, 1), (b, 0, 2), (b, 1, 3)] {
            let mut got = Vec::new();
            while let Some(c) = rt.take_crash(pid, local, horizon) {
                got.push(c);
            }
            assert_eq!(got, expect[member], "member {member}");
        }
        // Cursors are consumed: nothing is delivered twice.
        assert!(rt.take_crash(a, 0, horizon).is_none());
    }

    #[test]
    fn outage_cursor_is_cluster_global() {
        let spec = FaultSpec {
            n_workers: 2,
            n_shards: 4,
            shard_outages: 3,
            horizon: SimDuration::from_millis(10),
            ..FaultSpec::default()
        };
        let plan = FaultPlan::generate(9, &spec);
        let mut expect = plan.shard_outages();
        expect.sort_by_key(|&(shard, at, _)| (at.as_nanos(), shard));

        let mut delivery = FaultDelivery::new(plan);
        let horizon = SimTime::ZERO + SimDuration::from_millis(10);
        let mut got = Vec::new();
        while let Some(o) = delivery.take_due_outage(horizon) {
            got.push(o);
        }
        assert_eq!(got, expect, "delivered in time order, exactly once");
        assert!(delivery.take_due_outage(horizon).is_none());
    }
}
