//! Concurrency torture tests for the shared-fabric [`PsServer`].
//!
//! The threaded execution backend (DESIGN.md §3.13) hammers one
//! `Arc<PsServer>` from every worker and replica thread at once, so
//! the server's internal sharding/locking has to hold up under real
//! contention — not just under the simulator's one-at-a-time schedule.
//! These tests recreate that contention deliberately: several threads
//! mix pulls, pushes, bulk pulls, and snapshots over a small hot key
//! space (small on purpose — maximum shard-lock collision), with
//! seeded `yield_now`/`sleep` injection to perturb the interleaving
//! differently on every run while staying reproducible per seed.
//!
//! Invariants checked (all independent of interleaving):
//!
//! * **Clock conservation** — every `push_inc` bumps exactly one key's
//!   clock by one, so after joining, the clocks across the key space
//!   sum to the total number of pushes issued.
//! * **Per-key clock monotonicity** — a reader that polls one key must
//!   observe a non-decreasing clock sequence.
//! * **Vector integrity** — every pulled vector has length `dim` and
//!   finite entries (no torn reads).
//!
//! `ci.sh` runs this file with a high `RUST_TEST_THREADS` so the tests
//! themselves also run concurrently; see `tests/README.md` for how to
//! re-run it under ThreadSanitizer.

use het_ps::{PsConfig, PsServer, ServerOptimizer};
use het_rng::rngs::StdRng;
use het_rng::{Rng, RngCore, SeedableRng};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

const DIM: usize = 8;
const N_KEYS: u64 = 64;

fn server(n_shards: usize) -> Arc<PsServer> {
    let mut cfg = PsConfig::new(DIM);
    cfg.n_shards = n_shards;
    cfg.lr = 0.05;
    cfg.optimizer = ServerOptimizer::Sgd;
    Arc::new(PsServer::new(cfg))
}

/// Seeded schedule perturbation: mostly nothing, sometimes a yield,
/// occasionally a real (microsecond) sleep — enough to shake the
/// thread interleaving without slowing the test down.
fn jitter(rng: &mut StdRng) {
    match rng.next_u64() % 16 {
        0..=11 => {}
        12..=14 => std::thread::yield_now(),
        _ => std::thread::sleep(std::time::Duration::from_micros(rng.next_u64() % 20)),
    }
}

#[test]
fn concurrent_pushes_conserve_the_clock() {
    const WRITERS: usize = 4;
    const READERS: usize = 2;
    const PUSHES_PER_WRITER: u64 = 2_000;

    let server = server(4);
    let pushed = Arc::new(AtomicU64::new(0));

    std::thread::scope(|scope| {
        for w in 0..WRITERS {
            let server = Arc::clone(&server);
            let pushed = Arc::clone(&pushed);
            scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(0xA11CE + w as u64);
                let grad = vec![0.01f32; DIM];
                for _ in 0..PUSHES_PER_WRITER {
                    let key = rng.next_u64() % N_KEYS;
                    server.push_inc(key, &grad);
                    pushed.fetch_add(1, Ordering::Relaxed);
                    jitter(&mut rng);
                }
            });
        }
        // Readers poll a hot key each and assert per-key monotonicity
        // plus vector integrity, while the writers are live.
        for r in 0..READERS {
            let server = Arc::clone(&server);
            scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(0xBEEF + r as u64);
                let key = r as u64; // hottest keys, maximum collision
                let mut last_clock = 0u64;
                for _ in 0..1_500 {
                    let got = server.pull(key);
                    assert_eq!(got.vector.len(), DIM, "torn pull: wrong dim");
                    assert!(
                        got.vector.iter().all(|v| v.is_finite()),
                        "torn pull: non-finite entry"
                    );
                    assert!(
                        got.clock >= last_clock,
                        "per-key clock went backwards: {} then {}",
                        last_clock,
                        got.clock
                    );
                    last_clock = got.clock;
                    jitter(&mut rng);
                }
            });
        }
    });

    let total = pushed.load(Ordering::Relaxed);
    assert_eq!(total, (WRITERS as u64) * PUSHES_PER_WRITER);
    let clock_sum: u64 = (0..N_KEYS).map(|k| server.clock_of(k)).sum();
    assert_eq!(
        clock_sum, total,
        "clock conservation: every push bumps exactly one key clock once"
    );
}

#[test]
fn bulk_pulls_and_snapshots_race_cleanly_with_writers() {
    const WRITERS: usize = 3;
    const PUSHES_PER_WRITER: u64 = 1_200;

    let server = server(2); // few shards: bulk ops collide with pushes
    let done = Arc::new(AtomicBool::new(false));

    std::thread::scope(|scope| {
        for w in 0..WRITERS {
            let server = Arc::clone(&server);
            let done = Arc::clone(&done);
            scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(0xD00D + w as u64);
                let grad = vec![-0.02f32; DIM];
                for _ in 0..PUSHES_PER_WRITER {
                    server.push_inc(rng.next_u64() % N_KEYS, &grad);
                    jitter(&mut rng);
                }
                done.store(true, Ordering::Release);
            });
        }
        // Bulk reader: pull_many over a window, then cross-check each
        // result against the per-key invariants.
        {
            let server = Arc::clone(&server);
            let done = Arc::clone(&done);
            scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(0xF00);
                let mut floors = vec![0u64; N_KEYS as usize];
                while !done.load(Ordering::Acquire) {
                    let start = rng.gen_range(0..N_KEYS - 8);
                    let keys: Vec<u64> = (start..start + 8).collect();
                    for (key, got) in keys.iter().zip(server.pull_many(&keys)) {
                        assert_eq!(got.vector.len(), DIM);
                        assert!(got.vector.iter().all(|v| v.is_finite()));
                        let floor = &mut floors[*key as usize];
                        assert!(got.clock >= *floor, "pull_many clock regressed");
                        *floor = got.clock;
                    }
                    jitter(&mut rng);
                }
            });
        }
        // Snapshot reader: per-key snapshots must stay internally
        // consistent (right dim, finite values) mid-write-storm.
        {
            let server = Arc::clone(&server);
            let done = Arc::clone(&done);
            scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(0xABC);
                while !done.load(Ordering::Acquire) {
                    for key in 0..N_KEYS {
                        if let Some(vector) = server.snapshot(key) {
                            assert_eq!(vector.len(), DIM);
                            assert!(vector.iter().all(|v| v.is_finite()));
                        }
                    }
                    std::thread::sleep(std::time::Duration::from_micros(50));
                    jitter(&mut rng);
                }
            });
        }
    });

    let clock_sum: u64 = (0..N_KEYS).map(|k| server.clock_of(k)).sum();
    assert_eq!(clock_sum, (WRITERS as u64) * PUSHES_PER_WRITER);
}

#[test]
fn live_shard_split_preserves_every_update() {
    const WRITERS: usize = 3;
    const PUSHES_PER_WRITER: u64 = 1_500;

    // One spare shard; a splitter thread live-migrates shard 0 into it
    // while the writers keep pushing — the elasticity path the serve
    // control plane drives, here raced for real.
    let mut cfg = PsConfig::new(DIM);
    cfg.n_shards = 2;
    cfg.lr = 0.05;
    let server = Arc::new(PsServer::with_spare_shards(cfg, 1));
    let done = Arc::new(AtomicBool::new(false));

    std::thread::scope(|scope| {
        for w in 0..WRITERS {
            let server = Arc::clone(&server);
            let done = Arc::clone(&done);
            scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(0x5117 + w as u64);
                let grad = vec![0.03f32; DIM];
                for _ in 0..PUSHES_PER_WRITER {
                    server.push_inc(rng.next_u64() % N_KEYS, &grad);
                    jitter(&mut rng);
                }
                done.store(true, Ordering::Release);
            });
        }
        {
            let server = Arc::clone(&server);
            let done = Arc::clone(&done);
            scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(0x1CE);
                // Let some traffic land pre-split.
                std::thread::sleep(std::time::Duration::from_micros(200));
                server.begin_split(0, 2, 0x5A17);
                while server.remaining_to_migrate(0) > 0 && !done.load(Ordering::Acquire) {
                    server.migrate_batch(0, 4);
                    jitter(&mut rng);
                }
                // Drain whatever landed between the last batch and the
                // writers finishing, then seal.
                while server.remaining_to_migrate(0) > 0 {
                    server.migrate_batch(0, 16);
                }
                server.complete_split(0);
            });
        }
    });

    let clock_sum: u64 = (0..N_KEYS).map(|k| server.clock_of(k)).sum();
    assert_eq!(
        clock_sum,
        (WRITERS as u64) * PUSHES_PER_WRITER,
        "no update may be lost or double-applied across a live split"
    );
    for key in 0..N_KEYS {
        let got = server.pull(key);
        assert_eq!(got.vector.len(), DIM);
        assert!(got.vector.iter().all(|v| v.is_finite()));
    }
}
