//! Parameter-server substrate for the HET reproduction.
//!
//! Plays the role PS-Lite plays in the original system: a sharded
//! key→embedding store with per-embedding **global Lamport clocks**
//! (paper §3.1 — `x_k.c_g` counts the total updates applied to
//! embedding `k`), sparse pull/push, and server-side SGD application of
//! pushed gradients. A small dense store backs the pure-PS baselines'
//! dense parameters (TF PS / HET PS).
//!
//! The store is thread-safe (one reader-writer lock per shard) so it
//! can serve both the deterministic discrete-event trainer and any
//! multi-threaded executor. Embeddings are lazily initialised from a
//! hash of `(seed, key)`, so every replica observes the same initial
//! vector no matter which worker touches the key first — a property the
//! convergence tests rely on.

#![warn(missing_docs)]

pub mod checkpoint;
pub mod dense;
pub mod optimizer;
pub mod recovery;
pub mod server;
pub mod sync;

pub use checkpoint::{read_checkpoint, restore_server, write_checkpoint, CheckpointRow};
pub use dense::DenseStore;
pub use optimizer::ServerOptimizer;
pub use recovery::{FailoverOutcome, ShardCheckpointStore};
pub use server::{PsConfig, PsServer, PullResult};
// The storage vocabulary comes from `het-store`; re-exported so callers
// configuring a server need not name that crate.
pub use het_store::{RowStore, StoreSpec, StoreStats, StoredRow, TieredConfig};

/// An embedding key (feature ID).
pub type Key = u64;

/// A shared handle to one PS fabric. Co-scheduled jobs (a trainer and a
/// serving fleet on one cluster runtime) hold clones of the same handle,
/// so every pull/push/clock observes one table; standalone jobs wrap a
/// private server in one. All of [`PsServer`]'s methods take `&self`, so
/// a handle is as capable as the server itself.
///
/// The handle is an [`std::sync::Arc`] because the server is the one
/// structure genuinely shared across execution backends: the sim
/// backend clones it between single-threaded processes (where the
/// atomic refcount is only a couple of nanoseconds of overhead per
/// clone, never per pull), and the threaded backend clones it into
/// worker/replica OS threads, where the per-shard `RwLock`s inside
/// [`PsServer`] carry the actual concurrency.
pub type ServerHandle = std::sync::Arc<PsServer>;
