//! Dense parameter store for the pure-PS baselines.
//!
//! TF PS and HET PS keep *all* parameters — dense layers included — on
//! the server (§2.1). The hybrid architectures replace this path with
//! AllReduce, which is exactly the difference Fig. 7 measures. The store
//! is a flat f32 buffer matching a model's `FlatGrads` layout.

use crate::sync::RwLock;

/// A flat dense parameter vector on the server with SGD application.
pub struct DenseStore {
    inner: RwLock<DenseInner>,
    lr: f32,
}

struct DenseInner {
    params: Vec<f32>,
    version: u64,
}

impl DenseStore {
    /// Creates the store holding `initial` parameters, updated with
    /// learning rate `lr`.
    pub fn new(initial: Vec<f32>, lr: f32) -> Self {
        DenseStore {
            inner: RwLock::new(DenseInner {
                params: initial,
                version: 0,
            }),
            lr,
        }
    }

    /// Number of scalar parameters.
    pub fn len(&self) -> usize {
        self.inner.read().params.len()
    }

    /// True when the store holds no parameters.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Pulls the full parameter vector and its version.
    pub fn pull(&self) -> (Vec<f32>, u64) {
        het_trace::count!("ps", "dense_pulls");
        let g = self.inner.read();
        (g.params.clone(), g.version)
    }

    /// Pushes a gradient: `params -= lr * grad`, bumping the version.
    ///
    /// # Panics
    /// Panics on length mismatch.
    pub fn push(&self, grad: &[f32]) {
        het_trace::count!("ps", "dense_pushes");
        let mut g = self.inner.write();
        assert_eq!(grad.len(), g.params.len(), "dense gradient length mismatch");
        for (p, &d) in g.params.iter_mut().zip(grad) {
            *p -= self.lr * d;
        }
        g.version += 1;
    }

    /// The current version (number of pushes applied).
    pub fn version(&self) -> u64 {
        self.inner.read().version
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_applies_sgd_and_versions() {
        let s = DenseStore::new(vec![1.0, 2.0], 0.1);
        assert_eq!(s.len(), 2);
        assert!(!s.is_empty());
        s.push(&[1.0, -1.0]);
        let (p, v) = s.pull();
        assert!((p[0] - 0.9).abs() < 1e-7);
        assert!((p[1] - 2.1).abs() < 1e-7);
        assert_eq!(v, 1);
        assert_eq!(s.version(), 1);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn wrong_length_rejected() {
        let s = DenseStore::new(vec![0.0; 3], 0.1);
        s.push(&[0.0; 2]);
    }

    #[test]
    fn concurrent_pushes_serialize() {
        use std::sync::Arc;
        let s = Arc::new(DenseStore::new(vec![0.0], 1.0));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let s = Arc::clone(&s);
                std::thread::spawn(move || {
                    for _ in 0..100 {
                        s.push(&[1.0]);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let (p, v) = s.pull();
        assert_eq!(v, 400);
        assert!((p[0] + 400.0).abs() < 1e-3);
    }
}
