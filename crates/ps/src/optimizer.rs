//! Server-side optimisers for embedding rows.
//!
//! The paper trains with plain SGD (§5), which is the default and the
//! only optimiser compatible with the HET cache's read-my-updates
//! approximation (the client applies the same rule locally). Adagrad is
//! provided as an extension for the cache-less paths — per-coordinate
//! adaptive rates are the de-facto standard for production embedding
//! tables (e.g. Kraken's and HugeCTR's sparse optimisers) because rare
//! keys need larger steps than hot ones.

/// How the server applies pushed gradients to an embedding row.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ServerOptimizer {
    /// `x -= lr * g` — the paper's setting.
    Sgd,
    /// `acc += g²; x -= lr * g / (√acc + ε)` — per-coordinate adaptive
    /// steps. Requires accumulator state per row (allocated lazily).
    Adagrad {
        /// Numerical-stability epsilon.
        eps: f32,
    },
}

impl ServerOptimizer {
    /// Applies one update to `row` with learning rate `lr`. `state` is
    /// the per-row optimiser state: unused by SGD, the squared-gradient
    /// accumulator for Adagrad (resized lazily).
    pub fn apply(&self, row: &mut [f32], state: &mut Vec<f32>, grad: &[f32], lr: f32) {
        debug_assert_eq!(row.len(), grad.len());
        match *self {
            ServerOptimizer::Sgd => {
                for (p, &g) in row.iter_mut().zip(grad) {
                    *p -= lr * g;
                }
            }
            ServerOptimizer::Adagrad { eps } => {
                if state.len() != row.len() {
                    state.clear();
                    state.resize(row.len(), 0.0);
                }
                for ((p, acc), &g) in row.iter_mut().zip(state.iter_mut()).zip(grad) {
                    *acc += g * g;
                    *p -= lr * g / (acc.sqrt() + eps);
                }
            }
        }
    }

    /// True when the optimiser keeps per-row state.
    pub fn is_stateful(&self) -> bool {
        matches!(self, ServerOptimizer::Adagrad { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sgd_applies_plain_step() {
        let mut row = vec![1.0f32, -1.0];
        let mut state = Vec::new();
        ServerOptimizer::Sgd.apply(&mut row, &mut state, &[2.0, -2.0], 0.5);
        assert_eq!(row, vec![0.0, 0.0]);
        assert!(state.is_empty(), "SGD keeps no state");
        assert!(!ServerOptimizer::Sgd.is_stateful());
    }

    #[test]
    fn adagrad_first_step_is_normalised() {
        let opt = ServerOptimizer::Adagrad { eps: 1e-8 };
        let mut row = vec![0.0f32];
        let mut state = Vec::new();
        opt.apply(&mut row, &mut state, &[4.0], 0.1);
        // First step: g/√(g²) = sign(g), so step ≈ lr.
        assert!((row[0] + 0.1).abs() < 1e-5);
        assert_eq!(state.len(), 1);
        assert!(opt.is_stateful());
    }

    #[test]
    fn adagrad_steps_shrink_over_time() {
        let opt = ServerOptimizer::Adagrad { eps: 1e-8 };
        let mut row = vec![0.0f32];
        let mut state = Vec::new();
        let mut prev = 0.0f32;
        let mut last_step = f32::INFINITY;
        for _ in 0..5 {
            opt.apply(&mut row, &mut state, &[1.0], 0.1);
            let step = (prev - row[0]).abs();
            assert!(
                step < last_step + 1e-9,
                "steps must shrink: {step} vs {last_step}"
            );
            last_step = step;
            prev = row[0];
        }
    }

    #[test]
    fn adagrad_adapts_per_coordinate() {
        let opt = ServerOptimizer::Adagrad { eps: 1e-8 };
        let mut row = vec![0.0f32, 0.0];
        let mut state = Vec::new();
        // Coordinate 0 gets large gradients, coordinate 1 small ones.
        for _ in 0..10 {
            opt.apply(&mut row, &mut state, &[10.0, 0.1], 0.1);
        }
        // Both coordinates move, and the rare/small coordinate is not
        // drowned out (relative progress comparable).
        assert!(row[0] < 0.0 && row[1] < 0.0);
        assert!(state[0] > state[1]);
    }
}
