//! Embedding-table checkpointing.
//!
//! Production embedding-model training checkpoints the server state
//! (tables this large cannot be retrained casually). The format is a
//! simple self-describing text format — one row per line — which keeps
//! this crate dependency-free and the files diffable:
//!
//! ```text
//! HET-CKPT v1 dim=<D>
//! <key> <clock> <v0> <v1> … <vD-1>
//! HET-CKPT-END rows=<N> crc=<FNV-1a-64 of header+rows, hex>
//! ```
//!
//! The footer makes corruption detectable: a truncated file is missing
//! it (or has fewer rows than it claims), and a flipped byte anywhere
//! in the header or rows changes the checksum. Readers additionally
//! reject non-finite vector values and duplicate keys — a checkpoint is
//! the recovery path of record, so a bad one must fail loudly at read
//! time, not corrupt a failover.

use crate::server::{PsConfig, PsServer};
use crate::Key;
use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};

/// One exported embedding row.
#[derive(Clone, Debug, PartialEq)]
pub struct CheckpointRow {
    /// The embedding key.
    pub key: Key,
    /// The global clock `c_g`.
    pub clock: u64,
    /// The embedding vector.
    pub vector: Vec<f32>,
}

/// FNV-1a 64-bit, the checksum in the `HET-CKPT-END` footer. Chosen for
/// being tiny, dependency-free, and byte-order independent; this is a
/// corruption check, not a cryptographic seal.
fn fnv1a64(bytes: &[u8], mut state: u64) -> u64 {
    for &b in bytes {
        state ^= b as u64;
        state = state.wrapping_mul(0x0000_0100_0000_01B3);
    }
    state
}

/// The FNV-1a offset basis (initial state).
const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;

fn data_err(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

/// Writes a checkpoint of `rows` (any order; keys must be unique and
/// vectors finite — violations are rejected, since a checkpoint that
/// cannot be read back is worse than no checkpoint).
pub fn write_checkpoint<W: Write>(w: W, dim: usize, rows: &[CheckpointRow]) -> io::Result<()> {
    let mut w = BufWriter::new(w);
    let mut crc = FNV_OFFSET;
    let header = format!("HET-CKPT v1 dim={dim}\n");
    crc = fnv1a64(header.as_bytes(), crc);
    w.write_all(header.as_bytes())?;
    let mut line = String::new();
    for row in rows {
        if row.vector.len() != dim {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("row {} has dim {} != {}", row.key, row.vector.len(), dim),
            ));
        }
        if row.vector.iter().any(|v| !v.is_finite()) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("row {} contains a non-finite value", row.key),
            ));
        }
        line.clear();
        line.push_str(&format!("{} {}", row.key, row.clock));
        for v in &row.vector {
            line.push_str(&format!(" {v}"));
        }
        line.push('\n');
        crc = fnv1a64(line.as_bytes(), crc);
        w.write_all(line.as_bytes())?;
    }
    writeln!(w, "HET-CKPT-END rows={} crc={:016x}", rows.len(), crc)?;
    w.flush()
}

/// Reads a checkpoint, returning `(dim, rows)`.
///
/// Rejects: a bad or missing header, a missing/malformed footer
/// (truncation), a row-count or checksum mismatch, short/long/non-finite
/// vectors, and duplicate keys.
pub fn read_checkpoint<R: Read>(r: R) -> io::Result<(usize, Vec<CheckpointRow>)> {
    let mut lines = BufReader::new(r).lines();
    let header = lines
        .next()
        .ok_or_else(|| data_err("empty checkpoint".to_string()))??;
    let dim = header
        .strip_prefix("HET-CKPT v1 dim=")
        .and_then(|d| d.parse::<usize>().ok())
        .ok_or_else(|| data_err(format!("bad header: {header}")))?;
    let mut crc = fnv1a64(format!("{header}\n").as_bytes(), FNV_OFFSET);
    let mut rows: Vec<CheckpointRow> = Vec::new();
    let mut footer: Option<String> = None;
    for (lineno, line) in lines.enumerate() {
        let line = line?;
        if let Some(rest) = line.strip_prefix("HET-CKPT-END ") {
            footer = Some(rest.to_string());
            break;
        }
        if line.is_empty() {
            continue;
        }
        crc = fnv1a64(format!("{line}\n").as_bytes(), crc);
        let mut parts = line.split_ascii_whitespace();
        let parse_err = |what: &str| data_err(format!("line {}: bad {what}", lineno + 2));
        let key: Key = parts
            .next()
            .ok_or_else(|| parse_err("key"))?
            .parse()
            .map_err(|_| parse_err("key"))?;
        let clock: u64 = parts
            .next()
            .ok_or_else(|| parse_err("clock"))?
            .parse()
            .map_err(|_| parse_err("clock"))?;
        let vector: Vec<f32> = parts
            .map(|p| p.parse::<f32>().map_err(|_| parse_err("value")))
            .collect::<Result<_, _>>()?;
        if vector.len() != dim {
            return Err(parse_err("vector length"));
        }
        if vector.iter().any(|v| !v.is_finite()) {
            return Err(data_err(format!(
                "line {}: non-finite value for key {key}",
                lineno + 2
            )));
        }
        rows.push(CheckpointRow { key, clock, vector });
    }
    let footer = footer.ok_or_else(|| data_err("truncated checkpoint: missing footer".into()))?;
    let (rows_part, crc_part) = footer
        .split_once(' ')
        .ok_or_else(|| data_err(format!("bad footer: {footer}")))?;
    let claimed_rows: usize = rows_part
        .strip_prefix("rows=")
        .and_then(|n| n.parse().ok())
        .ok_or_else(|| data_err(format!("bad footer row count: {footer}")))?;
    let claimed_crc: u64 = crc_part
        .strip_prefix("crc=")
        .and_then(|c| u64::from_str_radix(c, 16).ok())
        .ok_or_else(|| data_err(format!("bad footer checksum: {footer}")))?;
    if claimed_rows != rows.len() {
        return Err(data_err(format!(
            "truncated checkpoint: footer claims {claimed_rows} rows, found {}",
            rows.len()
        )));
    }
    if claimed_crc != crc {
        return Err(data_err(format!(
            "checkpoint checksum mismatch: footer {claimed_crc:016x}, computed {crc:016x}"
        )));
    }
    let mut seen = std::collections::HashSet::with_capacity(rows.len());
    for row in &rows {
        if !seen.insert(row.key) {
            return Err(data_err(format!("duplicate key {} in checkpoint", row.key)));
        }
    }
    Ok((dim, rows))
}

/// Restores a server from checkpoint rows (fresh server with `config`;
/// `config.dim` must match).
///
/// # Panics
/// Panics on a dimension mismatch.
pub fn restore_server(config: PsConfig, dim: usize, rows: &[CheckpointRow]) -> PsServer {
    assert_eq!(
        config.dim, dim,
        "checkpoint dim {dim} != config dim {}",
        config.dim
    );
    let server = PsServer::new(config);
    for row in rows {
        server.restore_entry(row.key, row.vector.clone(), row.clock);
    }
    server
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_rows() -> Vec<CheckpointRow> {
        vec![
            CheckpointRow {
                key: 3,
                clock: 7,
                vector: vec![1.5, -0.25],
            },
            CheckpointRow {
                key: 9,
                clock: 0,
                vector: vec![0.0, 42.0],
            },
        ]
    }

    fn encode(rows: &[CheckpointRow], dim: usize) -> Vec<u8> {
        let mut buf = Vec::new();
        write_checkpoint(&mut buf, dim, rows).unwrap();
        buf
    }

    #[test]
    fn round_trip_through_buffer() {
        let rows = demo_rows();
        let buf = encode(&rows, 2);
        let (dim, restored) = read_checkpoint(buf.as_slice()).unwrap();
        assert_eq!(dim, 2);
        assert_eq!(restored, rows);
    }

    #[test]
    fn server_export_restore_round_trip() {
        let config = PsConfig {
            dim: 2,
            n_shards: 4,
            lr: 0.5,
            seed: 3,
            ..PsConfig::new(2)
        };
        let server = PsServer::new(config);
        server.push_inc(3, &[1.0, 2.0]);
        server.push_inc(3, &[1.0, 2.0]);
        server.push_inc(9, &[0.5, 0.5]);
        let rows = server.export_rows();
        assert_eq!(rows.len(), 2);

        let buf = encode(&rows, 2);
        let (dim, restored_rows) = read_checkpoint(buf.as_slice()).unwrap();
        let restored = restore_server(config, dim, &restored_rows);

        assert_eq!(restored.pull(3), server.pull(3));
        assert_eq!(restored.pull(9), server.pull(9));
        assert_eq!(restored.clock_of(3), 2);
    }

    #[test]
    fn export_rows_are_key_sorted() {
        let server = PsServer::new(PsConfig::new(1));
        for k in [9u64, 1, 5] {
            server.push_inc(k, &[1.0]);
        }
        let keys: Vec<Key> = server.export_rows().iter().map(|r| r.key).collect();
        assert_eq!(keys, vec![1, 5, 9]);
    }

    #[test]
    fn bad_header_rejected() {
        let err = read_checkpoint("garbage\n".as_bytes()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        let err = read_checkpoint("".as_bytes()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn bad_row_rejected() {
        let text = "HET-CKPT v1 dim=2\n1 0 0.5\n"; // short vector
        assert!(read_checkpoint(text.as_bytes()).is_err());
        let text = "HET-CKPT v1 dim=2\nnotakey 0 0.5 0.5\n";
        assert!(read_checkpoint(text.as_bytes()).is_err());
    }

    #[test]
    fn wrong_dim_write_rejected() {
        let rows = vec![CheckpointRow {
            key: 1,
            clock: 0,
            vector: vec![0.0; 3],
        }];
        let mut buf = Vec::new();
        assert!(write_checkpoint(&mut buf, 2, &rows).is_err());
    }

    #[test]
    fn non_finite_write_rejected() {
        let rows = vec![CheckpointRow {
            key: 1,
            clock: 0,
            vector: vec![f32::NAN, 0.0],
        }];
        let mut buf = Vec::new();
        assert!(write_checkpoint(&mut buf, 2, &rows).is_err());
    }

    #[test]
    fn missing_footer_is_truncation() {
        let mut buf = encode(&demo_rows(), 2);
        // Chop the footer line off entirely.
        let cut = buf.iter().rposition(|&b| b == b'H').unwrap();
        buf.truncate(cut);
        let err = read_checkpoint(buf.as_slice()).unwrap_err();
        assert!(err.to_string().contains("missing footer"), "{err}");
    }

    #[test]
    fn missing_row_detected_by_count() {
        let rows = demo_rows();
        let full = String::from_utf8(encode(&rows, 2)).unwrap();
        // Delete the second data row but keep the footer.
        let lines: Vec<&str> = full.lines().collect();
        let tampered = format!("{}\n{}\n{}\n", lines[0], lines[1], lines[3]);
        let err = read_checkpoint(tampered.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("truncated"), "{err}");
    }

    #[test]
    fn flipped_byte_detected_by_checksum() {
        let buf = encode(&demo_rows(), 2);
        let text = String::from_utf8(buf).unwrap();
        // Corrupt a digit inside the first data row (clock 7 → 8):
        // still parses, but the checksum must catch it.
        let tampered = text.replacen("3 7 ", "3 8 ", 1);
        assert_ne!(tampered, text);
        let err = read_checkpoint(tampered.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("checksum"), "{err}");
    }

    #[test]
    fn nan_and_inf_rows_rejected_on_read() {
        for bad in ["NaN", "inf", "-inf"] {
            let text = format!("HET-CKPT v1 dim=2\n1 0 0.5 {bad}\nHET-CKPT-END rows=1 crc=0\n");
            let err = read_checkpoint(text.as_bytes()).unwrap_err();
            assert!(err.to_string().contains("non-finite"), "{bad}: {err}");
        }
    }

    #[test]
    fn duplicate_keys_rejected() {
        let rows = vec![
            CheckpointRow {
                key: 5,
                clock: 1,
                vector: vec![0.0],
            },
            CheckpointRow {
                key: 5,
                clock: 2,
                vector: vec![1.0],
            },
        ];
        let buf = encode(&rows, 1);
        let err = read_checkpoint(buf.as_slice()).unwrap_err();
        assert!(err.to_string().contains("duplicate key"), "{err}");
    }

    /// Property test: write → corrupt one byte → read either fails or
    /// (for footer-digit corruption that cancels out — impossible for
    /// FNV over distinct bytes, but we assert failure conservatively
    /// everywhere the byte actually changed the text) returns the
    /// original rows.
    #[test]
    fn random_single_byte_corruption_never_passes_silently() {
        use het_rng::rngs::StdRng;
        use het_rng::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(0xCC_0001);
        let dim = 3;
        for case in 0..64 {
            let n = rng.gen_range(1usize..12);
            let rows: Vec<CheckpointRow> = (0..n)
                .map(|i| CheckpointRow {
                    key: i as u64 * 3 + case,
                    clock: rng.gen_range(0u64..100),
                    vector: (0..dim).map(|_| rng.gen_range(-2.0f32..2.0)).collect(),
                })
                .collect();
            let clean = encode(&rows, dim);
            assert_eq!(read_checkpoint(clean.as_slice()).unwrap().1, rows);

            let mut corrupt = clean.clone();
            let pos = rng.gen_range(0usize..corrupt.len());
            let orig = corrupt[pos];
            // Flip to a different printable byte so the file still
            // parses as text lines.
            let replacement = if orig == b'1' { b'2' } else { b'1' };
            if orig == b'\n' || orig == replacement {
                continue;
            }
            corrupt[pos] = replacement;
            match read_checkpoint(corrupt.as_slice()) {
                Err(_) => {}
                Ok((_, got)) => {
                    panic!(
                        "single-byte corruption at {pos} ({} -> {}) passed: {:?}",
                        orig as char, replacement as char, got
                    );
                }
            }
        }
    }
}
