//! Embedding-table checkpointing.
//!
//! Production embedding-model training checkpoints the server state
//! (tables this large cannot be retrained casually). The format is a
//! simple self-describing text format — one row per line — which keeps
//! this crate dependency-free and the files diffable:
//!
//! ```text
//! HET-CKPT v1 dim=<D>
//! <key> <clock> <v0> <v1> … <vD-1>
//! ```

use crate::server::{PsConfig, PsServer};
use crate::Key;
use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};

/// One exported embedding row.
#[derive(Clone, Debug, PartialEq)]
pub struct CheckpointRow {
    /// The embedding key.
    pub key: Key,
    /// The global clock `c_g`.
    pub clock: u64,
    /// The embedding vector.
    pub vector: Vec<f32>,
}

/// Writes a checkpoint of `rows` (any order; keys should be unique).
pub fn write_checkpoint<W: Write>(w: W, dim: usize, rows: &[CheckpointRow]) -> io::Result<()> {
    let mut w = BufWriter::new(w);
    writeln!(w, "HET-CKPT v1 dim={dim}")?;
    for row in rows {
        if row.vector.len() != dim {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("row {} has dim {} != {}", row.key, row.vector.len(), dim),
            ));
        }
        write!(w, "{} {}", row.key, row.clock)?;
        for v in &row.vector {
            write!(w, " {v}")?;
        }
        writeln!(w)?;
    }
    w.flush()
}

/// Reads a checkpoint, returning `(dim, rows)`.
pub fn read_checkpoint<R: Read>(r: R) -> io::Result<(usize, Vec<CheckpointRow>)> {
    let mut lines = BufReader::new(r).lines();
    let header = lines
        .next()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "empty checkpoint"))??;
    let dim = header
        .strip_prefix("HET-CKPT v1 dim=")
        .and_then(|d| d.parse::<usize>().ok())
        .ok_or_else(|| {
            io::Error::new(io::ErrorKind::InvalidData, format!("bad header: {header}"))
        })?;
    let mut rows = Vec::new();
    for (lineno, line) in lines.enumerate() {
        let line = line?;
        if line.is_empty() {
            continue;
        }
        let mut parts = line.split_ascii_whitespace();
        let parse_err = |what: &str| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("line {}: bad {what}", lineno + 2),
            )
        };
        let key: Key =
            parts.next().ok_or_else(|| parse_err("key"))?.parse().map_err(|_| parse_err("key"))?;
        let clock: u64 = parts
            .next()
            .ok_or_else(|| parse_err("clock"))?
            .parse()
            .map_err(|_| parse_err("clock"))?;
        let vector: Vec<f32> = parts
            .map(|p| p.parse::<f32>().map_err(|_| parse_err("value")))
            .collect::<Result<_, _>>()?;
        if vector.len() != dim {
            return Err(parse_err("vector length"));
        }
        rows.push(CheckpointRow { key, clock, vector });
    }
    Ok((dim, rows))
}

/// Restores a server from checkpoint rows (fresh server with `config`;
/// `config.dim` must match).
///
/// # Panics
/// Panics on a dimension mismatch.
pub fn restore_server(config: PsConfig, dim: usize, rows: &[CheckpointRow]) -> PsServer {
    assert_eq!(config.dim, dim, "checkpoint dim {dim} != config dim {}", config.dim);
    let server = PsServer::new(config);
    for row in rows {
        server.restore_entry(row.key, row.vector.clone(), row.clock);
    }
    server
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_rows() -> Vec<CheckpointRow> {
        vec![
            CheckpointRow { key: 3, clock: 7, vector: vec![1.5, -0.25] },
            CheckpointRow { key: 9, clock: 0, vector: vec![0.0, 42.0] },
        ]
    }

    #[test]
    fn round_trip_through_buffer() {
        let rows = demo_rows();
        let mut buf = Vec::new();
        write_checkpoint(&mut buf, 2, &rows).unwrap();
        let (dim, restored) = read_checkpoint(buf.as_slice()).unwrap();
        assert_eq!(dim, 2);
        assert_eq!(restored, rows);
    }

    #[test]
    fn server_export_restore_round_trip() {
        let config = PsConfig { dim: 2, n_shards: 4, lr: 0.5, seed: 3, ..PsConfig::new(2) };
        let server = PsServer::new(config);
        server.push_inc(3, &[1.0, 2.0]);
        server.push_inc(3, &[1.0, 2.0]);
        server.push_inc(9, &[0.5, 0.5]);
        let rows = server.export_rows();
        assert_eq!(rows.len(), 2);

        let mut buf = Vec::new();
        write_checkpoint(&mut buf, 2, &rows).unwrap();
        let (dim, restored_rows) = read_checkpoint(buf.as_slice()).unwrap();
        let restored = restore_server(config, dim, &restored_rows);

        assert_eq!(restored.pull(3), server.pull(3));
        assert_eq!(restored.pull(9), server.pull(9));
        assert_eq!(restored.clock_of(3), 2);
    }

    #[test]
    fn export_rows_are_key_sorted() {
        let server = PsServer::new(PsConfig::new(1));
        for k in [9u64, 1, 5] {
            server.push_inc(k, &[1.0]);
        }
        let keys: Vec<Key> = server.export_rows().iter().map(|r| r.key).collect();
        assert_eq!(keys, vec![1, 5, 9]);
    }

    #[test]
    fn bad_header_rejected() {
        let err = read_checkpoint("garbage\n".as_bytes()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        let err = read_checkpoint("".as_bytes()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn bad_row_rejected() {
        let text = "HET-CKPT v1 dim=2\n1 0 0.5\n"; // short vector
        assert!(read_checkpoint(text.as_bytes()).is_err());
        let text = "HET-CKPT v1 dim=2\nnotakey 0 0.5 0.5\n";
        assert!(read_checkpoint(text.as_bytes()).is_err());
    }

    #[test]
    fn wrong_dim_write_rejected() {
        let rows = vec![CheckpointRow { key: 1, clock: 0, vector: vec![0.0; 3] }];
        let mut buf = Vec::new();
        assert!(write_checkpoint(&mut buf, 2, &rows).is_err());
    }
}
