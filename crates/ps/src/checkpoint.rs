//! Embedding-table checkpointing.
//!
//! Production embedding-model training checkpoints the server state
//! (tables this large cannot be retrained casually). The byte format is
//! the shared `HET-CKPT v1` page encoding from [`het_store::page`] —
//! one self-describing text page with a checksummed footer — which is
//! also the unit of the tiered store's cold tier, so the two on-disk
//! formats cannot drift:
//!
//! ```text
//! HET-CKPT v1 dim=<D>
//! <key> <clock> <v0> <v1> … <vD-1>
//! HET-CKPT-END rows=<N> crc=<FNV-1a-64 of header+rows, hex>
//! ```
//!
//! The footer makes corruption detectable: a truncated file is missing
//! it (or has fewer rows than it claims), and a flipped byte anywhere
//! in the header or rows changes the checksum. Readers additionally
//! reject non-finite vector values and — at this layer, on top of the
//! page reader — duplicate keys: a checkpoint is the recovery path of
//! record, so a bad one must fail loudly at read time, not corrupt a
//! failover. (The page layer itself permits duplicates because the cold
//! tier encodes optimiser state as a same-key follow-up row.)

use crate::server::{PsConfig, PsServer};
use het_store::page;
use std::io::{self, Read, Write};

/// One exported embedding row — the shared page row type.
pub use het_store::page::PageRow as CheckpointRow;

fn data_err(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

/// Writes a checkpoint of `rows` (any order; keys must be unique and
/// vectors finite — violations are rejected, since a checkpoint that
/// cannot be read back is worse than no checkpoint).
pub fn write_checkpoint<W: Write>(w: W, dim: usize, rows: &[CheckpointRow]) -> io::Result<()> {
    page::write_page(w, dim, rows)
}

/// Reads a checkpoint, returning `(dim, rows)`.
///
/// Rejects: a bad or missing header, a missing/malformed footer
/// (truncation), a row-count or checksum mismatch, short/long/non-finite
/// vectors, and duplicate keys.
pub fn read_checkpoint<R: Read>(r: R) -> io::Result<(usize, Vec<CheckpointRow>)> {
    let (dim, rows) = page::read_page(r)?;
    let mut seen = std::collections::HashSet::with_capacity(rows.len());
    for row in &rows {
        if !seen.insert(row.key) {
            return Err(data_err(format!("duplicate key {} in checkpoint", row.key)));
        }
    }
    Ok((dim, rows))
}

/// Restores a server from checkpoint rows (fresh server with `config`;
/// `config.dim` must match).
///
/// # Panics
/// Panics on a dimension mismatch.
pub fn restore_server(config: PsConfig, dim: usize, rows: &[CheckpointRow]) -> PsServer {
    assert_eq!(
        config.dim, dim,
        "checkpoint dim {dim} != config dim {}",
        config.dim
    );
    let server = PsServer::new(config);
    for row in rows {
        server.restore_entry(row.key, row.vector.clone(), row.clock);
    }
    server
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Key;

    fn demo_rows() -> Vec<CheckpointRow> {
        vec![
            CheckpointRow {
                key: 3,
                clock: 7,
                vector: vec![1.5, -0.25],
            },
            CheckpointRow {
                key: 9,
                clock: 0,
                vector: vec![0.0, 42.0],
            },
        ]
    }

    fn encode(rows: &[CheckpointRow], dim: usize) -> Vec<u8> {
        let mut buf = Vec::new();
        write_checkpoint(&mut buf, dim, rows).unwrap();
        buf
    }

    #[test]
    fn round_trip_through_buffer() {
        let rows = demo_rows();
        let buf = encode(&rows, 2);
        let (dim, restored) = read_checkpoint(buf.as_slice()).unwrap();
        assert_eq!(dim, 2);
        assert_eq!(restored, rows);
    }

    /// The checkpoint writer and the shared page writer must produce the
    /// same bytes — checkpoints written before the encoding moved to
    /// `het-store` must stay readable forever.
    #[test]
    fn byte_layout_matches_shared_page_encoding() {
        let rows = demo_rows();
        assert_eq!(encode(&rows, 2), page::encode_page(2, &rows).unwrap());
    }

    #[test]
    fn server_export_restore_round_trip() {
        let config = PsConfig {
            dim: 2,
            n_shards: 4,
            lr: 0.5,
            seed: 3,
            ..PsConfig::new(2)
        };
        let server = PsServer::new(config);
        server.push_inc(3, &[1.0, 2.0]);
        server.push_inc(3, &[1.0, 2.0]);
        server.push_inc(9, &[0.5, 0.5]);
        let rows = server.export_rows();
        assert_eq!(rows.len(), 2);

        let buf = encode(&rows, 2);
        let (dim, restored_rows) = read_checkpoint(buf.as_slice()).unwrap();
        let restored = restore_server(config, dim, &restored_rows);

        assert_eq!(restored.pull(3), server.pull(3));
        assert_eq!(restored.pull(9), server.pull(9));
        assert_eq!(restored.clock_of(3), 2);
    }

    #[test]
    fn export_rows_are_key_sorted() {
        let server = PsServer::new(PsConfig::new(1));
        for k in [9u64, 1, 5] {
            server.push_inc(k, &[1.0]);
        }
        let keys: Vec<Key> = server.export_rows().iter().map(|r| r.key).collect();
        assert_eq!(keys, vec![1, 5, 9]);
    }

    #[test]
    fn bad_header_rejected() {
        let err = read_checkpoint("garbage\n".as_bytes()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        let err = read_checkpoint("".as_bytes()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn bad_row_rejected() {
        let text = "HET-CKPT v1 dim=2\n1 0 0.5\n"; // short vector
        assert!(read_checkpoint(text.as_bytes()).is_err());
        let text = "HET-CKPT v1 dim=2\nnotakey 0 0.5 0.5\n";
        assert!(read_checkpoint(text.as_bytes()).is_err());
    }

    #[test]
    fn wrong_dim_write_rejected() {
        let rows = vec![CheckpointRow {
            key: 1,
            clock: 0,
            vector: vec![0.0; 3],
        }];
        let mut buf = Vec::new();
        assert!(write_checkpoint(&mut buf, 2, &rows).is_err());
    }

    #[test]
    fn non_finite_write_rejected() {
        let rows = vec![CheckpointRow {
            key: 1,
            clock: 0,
            vector: vec![f32::NAN, 0.0],
        }];
        let mut buf = Vec::new();
        assert!(write_checkpoint(&mut buf, 2, &rows).is_err());
    }

    #[test]
    fn missing_footer_is_truncation() {
        let mut buf = encode(&demo_rows(), 2);
        // Chop the footer line off entirely.
        let cut = buf.iter().rposition(|&b| b == b'H').unwrap();
        buf.truncate(cut);
        let err = read_checkpoint(buf.as_slice()).unwrap_err();
        assert!(err.to_string().contains("missing footer"), "{err}");
    }

    #[test]
    fn missing_row_detected_by_count() {
        let rows = demo_rows();
        let full = String::from_utf8(encode(&rows, 2)).unwrap();
        // Delete the second data row but keep the footer.
        let lines: Vec<&str> = full.lines().collect();
        let tampered = format!("{}\n{}\n{}\n", lines[0], lines[1], lines[3]);
        let err = read_checkpoint(tampered.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("truncated"), "{err}");
    }

    #[test]
    fn flipped_byte_detected_by_checksum() {
        let buf = encode(&demo_rows(), 2);
        let text = String::from_utf8(buf).unwrap();
        // Corrupt a digit inside the first data row (clock 7 → 8):
        // still parses, but the checksum must catch it.
        let tampered = text.replacen("3 7 ", "3 8 ", 1);
        assert_ne!(tampered, text);
        let err = read_checkpoint(tampered.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("checksum"), "{err}");
    }

    #[test]
    fn nan_and_inf_rows_rejected_on_read() {
        for bad in ["NaN", "inf", "-inf"] {
            let text = format!("HET-CKPT v1 dim=2\n1 0 0.5 {bad}\nHET-CKPT-END rows=1 crc=0\n");
            let err = read_checkpoint(text.as_bytes()).unwrap_err();
            assert!(err.to_string().contains("non-finite"), "{bad}: {err}");
        }
    }

    #[test]
    fn duplicate_keys_rejected() {
        let rows = vec![
            CheckpointRow {
                key: 5,
                clock: 1,
                vector: vec![0.0],
            },
            CheckpointRow {
                key: 5,
                clock: 2,
                vector: vec![1.0],
            },
        ];
        let buf = encode(&rows, 1);
        let err = read_checkpoint(buf.as_slice()).unwrap_err();
        assert!(err.to_string().contains("duplicate key"), "{err}");
    }

    /// Property test: write → corrupt one byte → read either fails or
    /// (for footer-digit corruption that cancels out — impossible for
    /// FNV over distinct bytes, but we assert failure conservatively
    /// everywhere the byte actually changed the text) returns the
    /// original rows.
    #[test]
    fn random_single_byte_corruption_never_passes_silently() {
        use het_rng::rngs::StdRng;
        use het_rng::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(0xCC_0001);
        let dim = 3;
        for case in 0..64 {
            let n = rng.gen_range(1usize..12);
            let rows: Vec<CheckpointRow> = (0..n)
                .map(|i| CheckpointRow {
                    key: i as u64 * 3 + case,
                    clock: rng.gen_range(0u64..100),
                    vector: (0..dim).map(|_| rng.gen_range(-2.0f32..2.0)).collect(),
                })
                .collect();
            let clean = encode(&rows, dim);
            assert_eq!(read_checkpoint(clean.as_slice()).unwrap().1, rows);

            let mut corrupt = clean.clone();
            let pos = rng.gen_range(0usize..corrupt.len());
            let orig = corrupt[pos];
            // Flip to a different printable byte so the file still
            // parses as text lines.
            let replacement = if orig == b'1' { b'2' } else { b'1' };
            if orig == b'\n' || orig == replacement {
                continue;
            }
            corrupt[pos] = replacement;
            match read_checkpoint(corrupt.as_slice()) {
                Err(_) => {}
                Ok((_, got)) => {
                    panic!(
                        "single-byte corruption at {pos} ({} -> {}) passed: {:?}",
                        orig as char, replacement as char, got
                    );
                }
            }
        }
    }
}
