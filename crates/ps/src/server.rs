//! The sharded embedding parameter server.

use crate::optimizer::ServerOptimizer;
use crate::sync::RwLock;
use crate::Key;
use std::collections::HashMap;

/// Configuration of the embedding server.
#[derive(Clone, Copy, Debug)]
pub struct PsConfig {
    /// Embedding dimension D.
    pub dim: usize,
    /// Number of shards (lock granularity; also models the paper's
    /// multiple server machines).
    pub n_shards: usize,
    /// Server-side SGD learning rate applied to pushed gradients.
    pub lr: f32,
    /// Seed for deterministic lazy initialisation.
    pub seed: u64,
    /// How pushed gradients are applied (the paper uses SGD; Adagrad is
    /// provided for the cache-less paths).
    pub optimizer: ServerOptimizer,
    /// Optional L2 clip applied to each pushed gradient. HET's stale
    /// writes arrive as *accumulated* gradients (up to `s` batches in
    /// one push); for models with multiplicative interactions (DeepFM's
    /// FM term) an unclipped burst can destabilise training, so
    /// production embedding servers clip pushes. `None` disables.
    pub grad_clip: Option<f32>,
}

impl PsConfig {
    /// A server for `dim`-dimensional embeddings with sensible defaults.
    pub fn new(dim: usize) -> Self {
        PsConfig {
            dim,
            n_shards: 8,
            lr: 0.1,
            seed: 0x5EED,
            optimizer: ServerOptimizer::Sgd,
            grad_clip: None,
        }
    }
}

/// The result of pulling one embedding: its current vector and global
/// clock.
#[derive(Clone, Debug, PartialEq)]
pub struct PullResult {
    /// The embedding vector (length = `dim`).
    pub vector: Vec<f32>,
    /// The global Lamport clock `c_g` — total updates applied so far.
    pub clock: u64,
}

struct Entry {
    vector: Vec<f32>,
    clock: u64,
    /// Optimiser state (empty for SGD, the Adagrad accumulator
    /// otherwise).
    opt_state: Vec<f32>,
}

struct Shard {
    table: HashMap<Key, Entry>,
}

/// One live or completed shard split. While `complete` is false the
/// split is *migrating*: routing dual-reads (a child-side key lives on
/// the child iff it has already been moved there), so lookups stay
/// correct at every point of the migration. Once `complete`, child-side
/// keys route to the child unconditionally.
#[derive(Clone, Copy, Debug)]
struct SplitState {
    parent: usize,
    child: usize,
    salt: u64,
    complete: bool,
}

/// True when `key` moves to the child half of a split with this salt.
/// Deterministic in `(key, salt)` so routing never depends on table
/// state once a split completes.
fn child_side(key: Key, salt: u64) -> bool {
    splitmix64(key ^ salt) & 1 == 1
}

/// The global embedding table: sharded, versioned, thread-safe.
///
/// Physical shards = `config.n_shards` base shards plus any *spare*
/// shards reserved at construction ([`PsServer::with_spare_shards`]).
/// Base routing only ever targets base shards; spares receive keys
/// solely through live splits ([`PsServer::begin_split`]), so a server
/// with unused spares is byte-identical in behaviour to one without.
pub struct PsServer {
    config: PsConfig,
    /// Shards addressed by base routing (`== config.n_shards`).
    base_shards: usize,
    shards: Vec<RwLock<Shard>>,
    /// Applied in order by [`PsServer::shard_index_of`]; splits are
    /// append-only so routing decisions replay deterministically.
    splits: RwLock<Vec<SplitState>>,
}

/// Scales `grad` down to L2 norm `clip` if it exceeds it, returning the
/// (possibly borrowed) gradient to apply.
fn clipped<'a>(grad: &'a [f32], clip: Option<f32>, scratch: &'a mut Vec<f32>) -> &'a [f32] {
    let Some(clip) = clip else { return grad };
    let norm = grad
        .iter()
        .map(|g| (*g as f64) * (*g as f64))
        .sum::<f64>()
        .sqrt() as f32;
    if norm <= clip || norm == 0.0 {
        return grad;
    }
    let scale = clip / norm;
    scratch.clear();
    scratch.extend(grad.iter().map(|g| g * scale));
    scratch
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

impl PsServer {
    /// Creates an empty server.
    ///
    /// # Panics
    /// Panics on a zero dimension or zero shard count.
    pub fn new(config: PsConfig) -> Self {
        Self::with_spare_shards(config, 0)
    }

    /// Creates an empty server with `spare_shards` extra physical shards
    /// reserved as split targets for live resharding. Spares take no
    /// traffic until [`PsServer::begin_split`] assigns them a parent.
    ///
    /// # Panics
    /// Panics on a zero dimension or zero shard count.
    pub fn with_spare_shards(config: PsConfig, spare_shards: usize) -> Self {
        assert!(config.dim > 0, "embedding dimension must be positive");
        assert!(config.n_shards > 0, "need at least one shard");
        let shards = (0..config.n_shards + spare_shards)
            .map(|_| {
                RwLock::new(Shard {
                    table: HashMap::new(),
                })
            })
            .collect();
        PsServer {
            config,
            base_shards: config.n_shards,
            shards,
            splits: RwLock::new(Vec::new()),
        }
    }

    /// The server configuration.
    pub fn config(&self) -> &PsConfig {
        &self.config
    }

    /// Embedding dimension D.
    pub fn dim(&self) -> usize {
        self.config.dim
    }

    /// The shard a key lives on — public so the failover path and the
    /// client's outage handling can reason about shard placement.
    ///
    /// Starts from the base hash route and walks the split log in
    /// order: a completed split moves its child-side keys outright; a
    /// migrating split dual-reads (the child owns a key only once the
    /// migration has actually moved it there). With no splits this is
    /// the historical `splitmix64(key) % n_shards`.
    pub fn shard_index_of(&self, key: Key) -> usize {
        let mut idx = (splitmix64(key) % self.base_shards as u64) as usize;
        let splits = self.splits.read();
        for s in splits.iter() {
            if s.parent == idx
                && child_side(key, s.salt)
                && (s.complete || self.shards[s.child].read().table.contains_key(&key))
            {
                idx = s.child;
            }
        }
        idx
    }

    /// Number of physical shards (base + spares). Checkpoint stores
    /// size their blob arrays from this so spares are covered too.
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// Number of base shards (targets of the hash route before any
    /// split applies).
    pub fn n_base_shards(&self) -> usize {
        self.base_shards
    }

    fn shard_of(&self, key: Key) -> &RwLock<Shard> {
        &self.shards[self.shard_index_of(key)]
    }

    /// Deterministic initial vector for a key: uniform in
    /// `[−1/√D, +1/√D]`, derived only from `(seed, key)`.
    fn initial_vector(&self, key: Key) -> Vec<f32> {
        let dim = self.config.dim;
        let bound = 1.0 / (dim as f64).sqrt();
        (0..dim)
            .map(|i| {
                let h = splitmix64(
                    self.config.seed ^ key.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ (i as u64) << 1,
                );
                let u = (h >> 11) as f64 / (1u64 << 53) as f64; // [0,1)
                ((u * 2.0 - 1.0) * bound) as f32
            })
            .collect()
    }

    /// Pulls one embedding, lazily initialising it on first touch.
    pub fn pull(&self, key: Key) -> PullResult {
        if het_trace::enabled() {
            het_trace::counter_add_at("ps", "pulls", Some(self.shard_index_of(key) as u64), 1);
        }
        let shard = self.shard_of(key);
        {
            let guard = shard.read();
            if let Some(e) = guard.table.get(&key) {
                return PullResult {
                    vector: e.vector.clone(),
                    clock: e.clock,
                };
            }
        }
        let mut guard = shard.write();
        let e = guard.table.entry(key).or_insert_with(|| Entry {
            vector: self.initial_vector(key),
            clock: 0,
            opt_state: Vec::new(),
        });
        PullResult {
            vector: e.vector.clone(),
            clock: e.clock,
        }
    }

    /// Pulls a batch of embeddings.
    pub fn pull_many(&self, keys: &[Key]) -> Vec<PullResult> {
        keys.iter().map(|&k| self.pull(k)).collect()
    }

    /// HET eviction write-back (paper §3.1, `Het.Cache.Evict`): applies
    /// the accumulated gradient with the server's SGD rule and
    /// synchronises the global clock to `max(c_g, candidate_clock)`.
    ///
    /// # Panics
    /// Panics if the gradient length differs from the configured dim.
    pub fn push_with_clock(&self, key: Key, grad: &[f32], candidate_clock: u64) {
        assert_eq!(grad.len(), self.config.dim, "gradient dimension mismatch");
        if het_trace::enabled() {
            het_trace::counter_add_at("ps", "pushes", Some(self.shard_index_of(key) as u64), 1);
        }
        let (lr, opt) = (self.config.lr, self.config.optimizer);
        let mut scratch = Vec::new();
        let grad = clipped(grad, self.config.grad_clip, &mut scratch);
        let mut guard = self.shard_of(key).write();
        let init = || Entry {
            vector: self.initial_vector(key),
            clock: 0,
            opt_state: Vec::new(),
        };
        let e = guard.table.entry(key).or_insert_with(init);
        opt.apply(&mut e.vector, &mut e.opt_state, grad, lr);
        e.clock = e.clock.max(candidate_clock);
    }

    /// Plain-PS push (the no-cache baselines): applies the gradient and
    /// increments the global clock by one update.
    ///
    /// # Panics
    /// Panics if the gradient length differs from the configured dim.
    pub fn push_inc(&self, key: Key, grad: &[f32]) {
        assert_eq!(grad.len(), self.config.dim, "gradient dimension mismatch");
        if het_trace::enabled() {
            het_trace::counter_add_at("ps", "pushes", Some(self.shard_index_of(key) as u64), 1);
        }
        let (lr, opt) = (self.config.lr, self.config.optimizer);
        let mut scratch = Vec::new();
        let grad = clipped(grad, self.config.grad_clip, &mut scratch);
        let mut guard = self.shard_of(key).write();
        let init = || Entry {
            vector: self.initial_vector(key),
            clock: 0,
            opt_state: Vec::new(),
        };
        let e = guard.table.entry(key).or_insert_with(init);
        opt.apply(&mut e.vector, &mut e.opt_state, grad, lr);
        e.clock += 1;
    }

    /// The global clock of a key (0 for never-touched keys). This is the
    /// clock-only query behind `CheckValid` condition (2).
    pub fn clock_of(&self, key: Key) -> u64 {
        if het_trace::enabled() {
            het_trace::counter_add_at(
                "ps",
                "clock_queries",
                Some(self.shard_index_of(key) as u64),
                1,
            );
        }
        self.shard_of(key)
            .read()
            .table
            .get(&key)
            .map_or(0, |e| e.clock)
    }

    /// Batched [`PsServer::clock_of`].
    pub fn clocks_of(&self, keys: &[Key]) -> Vec<u64> {
        keys.iter().map(|&k| self.clock_of(k)).collect()
    }

    /// Number of materialised embeddings across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().table.len()).sum()
    }

    /// True when no embedding has been touched yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Read-only snapshot of one vector without affecting clocks — a test
    /// oracle helper.
    pub fn snapshot(&self, key: Key) -> Option<Vec<f32>> {
        self.shard_of(key)
            .read()
            .table
            .get(&key)
            .map(|e| e.vector.clone())
    }

    /// Exports every materialised row, key-sorted, for checkpointing.
    pub fn export_rows(&self) -> Vec<crate::checkpoint::CheckpointRow> {
        let mut rows = Vec::with_capacity(self.len());
        for shard in &self.shards {
            let guard = shard.read();
            for (&key, e) in &guard.table {
                rows.push(crate::checkpoint::CheckpointRow {
                    key,
                    clock: e.clock,
                    vector: e.vector.clone(),
                });
            }
        }
        rows.sort_unstable_by_key(|r| r.key);
        rows
    }

    /// Installs a checkpointed row verbatim (used by restore; overwrites
    /// any existing entry, resetting optimiser state).
    pub fn restore_entry(&self, key: Key, vector: Vec<f32>, clock: u64) {
        assert_eq!(vector.len(), self.config.dim, "row dimension mismatch");
        let mut guard = self.shard_of(key).write();
        guard.table.insert(
            key,
            Entry {
                vector,
                clock,
                opt_state: Vec::new(),
            },
        );
    }

    /// Exports the materialised rows of one shard, key-sorted (the unit
    /// of periodic checkpointing under failover).
    ///
    /// # Panics
    /// Panics on an out-of-range shard index.
    pub fn export_shard_rows(&self, shard: usize) -> Vec<crate::checkpoint::CheckpointRow> {
        let guard = self.shards[shard].read();
        let mut rows: Vec<_> = guard
            .table
            .iter()
            .map(|(&key, e)| crate::checkpoint::CheckpointRow {
                key,
                clock: e.clock,
                vector: e.vector.clone(),
            })
            .collect();
        rows.sort_unstable_by_key(|r| r.key);
        rows
    }

    /// Simulates the loss of one shard: drops every entry on it and
    /// returns the `(key, clock)` pairs that were live, so the failover
    /// path can account lost updates against the restored checkpoint.
    ///
    /// # Panics
    /// Panics on an out-of-range shard index.
    pub fn clear_shard(&self, shard: usize) -> Vec<(Key, u64)> {
        let mut guard = self.shards[shard].write();
        let mut lost: Vec<(Key, u64)> = guard.table.iter().map(|(&k, e)| (k, e.clock)).collect();
        guard.table.clear();
        lost.sort_unstable();
        lost
    }

    /// Starts a live split of `parent` into the spare shard `child`:
    /// keys whose `child_side(key, salt)` bit is set migrate to the
    /// child while traffic continues. Routing dual-reads for the whole
    /// migration, so every key is owned by exactly one shard at every
    /// instant. Drive the migration with [`PsServer::migrate_batch`]
    /// and finish with [`PsServer::complete_split`].
    ///
    /// # Panics
    /// Panics if `parent` is not routable, if `child` is not an unused
    /// spare shard, or if `parent` already has a migration in flight.
    pub fn begin_split(&self, parent: usize, child: usize, salt: u64) {
        assert!(parent < self.shards.len(), "split parent out of range");
        assert!(
            child >= self.base_shards && child < self.shards.len(),
            "split child must be a spare shard (index >= n_base_shards)"
        );
        assert!(
            self.shards[child].read().table.is_empty(),
            "split child shard must be empty"
        );
        let mut splits = self.splits.write();
        for s in splits.iter() {
            assert!(
                s.child != child,
                "spare shard {child} is already a split target"
            );
            assert!(
                s.complete || s.parent != parent,
                "shard {parent} already has a migration in flight"
            );
        }
        splits.push(SplitState {
            parent,
            child,
            salt,
            complete: false,
        });
    }

    /// The in-flight split whose parent is `parent`, if any.
    fn active_split(&self, parent: usize) -> Option<SplitState> {
        self.splits
            .read()
            .iter()
            .find(|s| s.parent == parent && !s.complete)
            .copied()
    }

    /// Moves up to `max_keys` child-side keys (in ascending key order,
    /// so migration is deterministic) from `parent` to its split child,
    /// wholesale — vector, clock, and optimiser state travel together
    /// and no push/pull counters fire, so gradient accounting is
    /// conserved across the move. Returns how many keys moved.
    ///
    /// # Panics
    /// Panics if `parent` has no migration in flight.
    pub fn migrate_batch(&self, parent: usize, max_keys: usize) -> usize {
        let split = self
            .active_split(parent)
            .expect("migrate_batch: no migration in flight for this shard");
        let mut src = self.shards[split.parent].write();
        let mut moving: Vec<Key> = src
            .table
            .keys()
            .copied()
            .filter(|&k| child_side(k, split.salt))
            .collect();
        moving.sort_unstable();
        moving.truncate(max_keys);
        if moving.is_empty() {
            return 0;
        }
        let mut dst = self.shards[split.child].write();
        for key in &moving {
            let entry = src.table.remove(key).expect("key vanished mid-batch");
            dst.table.insert(*key, entry);
        }
        moving.len()
    }

    /// Child-side keys still waiting on `parent` (0 once the migration
    /// has drained; also 0 when no migration is in flight).
    pub fn remaining_to_migrate(&self, parent: usize) -> usize {
        let Some(split) = self.active_split(parent) else {
            return 0;
        };
        self.shards[split.parent]
            .read()
            .table
            .keys()
            .filter(|&&k| child_side(k, split.salt))
            .count()
    }

    /// Seals a drained migration: from here on child-side keys route to
    /// the child unconditionally (lazy initialisation included).
    ///
    /// # Panics
    /// Panics if `parent` has no migration in flight or keys remain.
    pub fn complete_split(&self, parent: usize) {
        assert_eq!(
            self.remaining_to_migrate(parent),
            0,
            "complete_split: migration not drained"
        );
        let mut splits = self.splits.write();
        let s = splits
            .iter_mut()
            .find(|s| s.parent == parent && !s.complete)
            .expect("complete_split: no migration in flight for this shard");
        s.complete = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn server(dim: usize) -> PsServer {
        PsServer::new(PsConfig {
            dim,
            n_shards: 4,
            lr: 0.5,
            seed: 99,
            optimizer: ServerOptimizer::Sgd,
            grad_clip: None,
        })
    }

    #[test]
    fn lazy_init_is_deterministic_and_bounded() {
        let a = server(8);
        let b = server(8);
        let pa = a.pull(123);
        let pb = b.pull(123);
        assert_eq!(pa, pb, "same seed → same init regardless of instance");
        assert_eq!(pa.clock, 0);
        let bound = 1.0 / (8.0f32).sqrt() + 1e-6;
        assert!(pa.vector.iter().all(|v| v.abs() <= bound));
        // Different keys get different vectors.
        assert_ne!(a.pull(124).vector, pa.vector);
    }

    #[test]
    fn init_does_not_depend_on_touch_order() {
        let a = server(4);
        let b = server(4);
        let _ = a.pull(1);
        let _ = a.pull(2);
        let _ = b.pull(2);
        let _ = b.pull(1);
        assert_eq!(a.pull(1), b.pull(1));
        assert_eq!(a.pull(2), b.pull(2));
    }

    #[test]
    fn push_inc_applies_sgd_and_bumps_clock() {
        let s = server(2);
        let before = s.pull(7).vector;
        s.push_inc(7, &[1.0, -2.0]);
        let after = s.pull(7);
        assert!((after.vector[0] - (before[0] - 0.5)).abs() < 1e-6);
        assert!((after.vector[1] - (before[1] + 1.0)).abs() < 1e-6);
        assert_eq!(after.clock, 1);
        s.push_inc(7, &[0.0, 0.0]);
        assert_eq!(s.clock_of(7), 2);
    }

    #[test]
    fn push_with_clock_takes_max() {
        let s = server(2);
        s.push_with_clock(3, &[0.0, 0.0], 5);
        assert_eq!(s.clock_of(3), 5);
        s.push_with_clock(3, &[0.0, 0.0], 2);
        assert_eq!(
            s.clock_of(3),
            5,
            "older candidate clock must not regress c_g"
        );
        s.push_with_clock(3, &[0.0, 0.0], 9);
        assert_eq!(s.clock_of(3), 9);
    }

    #[test]
    fn push_on_untouched_key_initialises_first() {
        let s = server(2);
        s.push_inc(42, &[1.0, 1.0]);
        let p = s.pull(42);
        // vector = init - 0.5 * grad; recompute init via a fresh server.
        let init = server(2).pull(42).vector;
        assert!((p.vector[0] - (init[0] - 0.5)).abs() < 1e-6);
        assert_eq!(p.clock, 1);
    }

    #[test]
    fn clock_of_untouched_key_is_zero() {
        let s = server(2);
        assert_eq!(s.clock_of(1000), 0);
        assert!(s.is_empty());
        assert_eq!(s.snapshot(1000), None);
    }

    #[test]
    fn len_counts_across_shards() {
        let s = server(2);
        for k in 0..100 {
            let _ = s.pull(k);
        }
        assert_eq!(s.len(), 100);
        assert!(!s.is_empty());
    }

    #[test]
    fn pull_many_and_clocks_of_align() {
        let s = server(2);
        s.push_inc(1, &[0.0, 0.0]);
        s.push_inc(1, &[0.0, 0.0]);
        s.push_inc(2, &[0.0, 0.0]);
        let keys = [1, 2, 3];
        let pulls = s.pull_many(&keys);
        let clocks = s.clocks_of(&keys);
        assert_eq!(clocks, vec![2, 1, 0]);
        for (p, c) in pulls.iter().zip(&clocks) {
            assert_eq!(p.clock, *c);
        }
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn wrong_grad_dim_rejected() {
        let s = server(4);
        s.push_inc(1, &[0.0, 0.0]);
    }

    /// Asserts every materialised key lives on exactly one physical
    /// shard and that routing agrees with where the key actually is.
    fn assert_exactly_one_owner(s: &PsServer) {
        let mut seen: HashMap<Key, usize> = HashMap::new();
        for shard in 0..s.n_shards() {
            for row in s.export_shard_rows(shard) {
                if let Some(prev) = seen.insert(row.key, shard) {
                    panic!("key {} on both shard {prev} and {shard}", row.key);
                }
            }
        }
        for (&key, &shard) in &seen {
            assert_eq!(
                s.shard_index_of(key),
                shard,
                "routing disagrees with placement for key {key}"
            );
        }
    }

    #[test]
    fn spare_shards_change_nothing_until_split() {
        let plain = server(4);
        let spared = PsServer::with_spare_shards(*plain.config(), 2);
        assert_eq!(spared.n_shards(), 6);
        assert_eq!(spared.n_base_shards(), 4);
        for k in 0..200u64 {
            assert_eq!(plain.pull(k), spared.pull(k));
            assert_eq!(plain.shard_index_of(k), spared.shard_index_of(k));
            assert!(spared.shard_index_of(k) < 4, "spares must take no traffic");
        }
    }

    #[test]
    fn live_split_conserves_every_key_and_clock() {
        let cfg = PsConfig {
            dim: 2,
            n_shards: 4,
            lr: 0.5,
            seed: 99,
            optimizer: ServerOptimizer::Sgd,
            grad_clip: None,
        };
        let s = PsServer::with_spare_shards(cfg, 1);
        let control = PsServer::new(cfg);
        for k in 0..300u64 {
            for _ in 0..(k % 3 + 1) {
                s.push_inc(k, &[1.0, -1.0]);
                control.push_inc(k, &[1.0, -1.0]);
            }
        }
        let parent = 2;
        let salt = 0x0D15_EA5E;
        s.begin_split(parent, 4, salt);
        let total = s.remaining_to_migrate(parent);
        assert!(total > 0, "expected some child-side keys");
        let mut moved = 0;
        while s.remaining_to_migrate(parent) > 0 {
            moved += s.migrate_batch(parent, 7);
            assert_exactly_one_owner(&s);
            // Mid-migration reads and writes stay correct.
            for k in 0..300u64 {
                assert_eq!(s.pull(k), control.pull(k), "key {k} diverged mid-split");
            }
        }
        assert_eq!(moved, total);
        s.complete_split(parent);
        assert_exactly_one_owner(&s);
        let mut on_child = 0;
        for k in 0..300u64 {
            assert_eq!(s.pull(k), control.pull(k), "key {k} diverged post-split");
            if s.shard_index_of(k) == 4 {
                on_child += 1;
            }
        }
        assert_eq!(on_child, total, "all child-side keys must route to child");
        assert_eq!(s.len(), control.len());
    }

    #[test]
    fn writes_during_migration_land_once_and_survive() {
        let cfg = PsConfig {
            dim: 1,
            n_shards: 2,
            lr: 0.5,
            seed: 7,
            optimizer: ServerOptimizer::Sgd,
            grad_clip: None,
        };
        let s = PsServer::with_spare_shards(cfg, 1);
        // Materialise enough keys to have several on each side.
        for k in 0..64u64 {
            s.push_inc(k, &[1.0]);
        }
        s.begin_split(0, 2, 0xABCD);
        let before = s.remaining_to_migrate(0);
        s.migrate_batch(0, before / 2);
        // Writes keep working mid-migration, wherever the key lives.
        for k in 0..64u64 {
            s.push_inc(k, &[1.0]);
        }
        // A brand-new child-side key lazily initialises on the parent
        // and is picked up by a later batch.
        let fresh = (64..u64::MAX)
            .find(|&k| s.shard_index_of(k) == 0 && child_side(k, 0xABCD))
            .unwrap();
        s.push_inc(fresh, &[1.0]);
        assert_eq!(s.shard_index_of(fresh), 0, "unmigrated key stays on parent");
        while s.remaining_to_migrate(0) > 0 {
            s.migrate_batch(0, 5);
        }
        s.complete_split(0);
        assert_eq!(s.shard_index_of(fresh), 2);
        assert_eq!(s.clock_of(fresh), 1, "clock must survive the move");
        for k in 0..64u64 {
            assert_eq!(s.clock_of(k), 2, "key {k} lost an update in the split");
        }
        assert_exactly_one_owner(&s);
    }

    #[test]
    fn migration_is_deterministic_across_instances() {
        let cfg = PsConfig {
            dim: 2,
            n_shards: 3,
            lr: 0.1,
            seed: 1,
            optimizer: ServerOptimizer::Sgd,
            grad_clip: None,
        };
        let make = || {
            let s = PsServer::with_spare_shards(cfg, 1);
            for k in 0..100u64 {
                s.push_inc(k, &[0.5, -0.5]);
            }
            s.begin_split(1, 3, 42);
            let mut steps = Vec::new();
            while s.remaining_to_migrate(1) > 0 {
                steps.push(s.migrate_batch(1, 4));
            }
            s.complete_split(1);
            (steps, s)
        };
        let (steps_a, a) = make();
        let (steps_b, b) = make();
        assert_eq!(steps_a, steps_b, "batch sizes must replay identically");
        for k in 0..100u64 {
            assert_eq!(a.shard_index_of(k), b.shard_index_of(k));
            assert_eq!(a.pull(k), b.pull(k));
        }
    }

    #[test]
    #[should_panic(expected = "spare shard")]
    fn split_into_base_shard_rejected() {
        let s = PsServer::with_spare_shards(*server(2).config(), 1);
        s.begin_split(0, 3, 1); // only shard 4 is the spare
    }

    #[test]
    #[should_panic(expected = "not drained")]
    fn completing_undrained_split_rejected() {
        let s = PsServer::with_spare_shards(*server(2).config(), 1);
        for k in 0..64u64 {
            let _ = s.pull(k);
        }
        s.begin_split(0, 4, 9);
        assert!(s.remaining_to_migrate(0) > 0);
        s.complete_split(0);
    }

    #[test]
    fn concurrent_pushes_all_apply() {
        use std::sync::Arc;
        let s = Arc::new(server(1));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let s = Arc::clone(&s);
            handles.push(std::thread::spawn(move || {
                for _ in 0..250 {
                    s.push_inc(77, &[1.0]);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(s.clock_of(77), 1000);
        let init = server(1).pull(77).vector[0];
        let v = s.pull(77).vector[0];
        assert!((v - (init - 0.5 * 1000.0)).abs() < 1e-2);
    }
}
