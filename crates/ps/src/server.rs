//! The sharded embedding parameter server.

use crate::optimizer::ServerOptimizer;
use crate::sync::RwLock;
use crate::Key;
use std::collections::HashMap;

/// Configuration of the embedding server.
#[derive(Clone, Copy, Debug)]
pub struct PsConfig {
    /// Embedding dimension D.
    pub dim: usize,
    /// Number of shards (lock granularity; also models the paper's
    /// multiple server machines).
    pub n_shards: usize,
    /// Server-side SGD learning rate applied to pushed gradients.
    pub lr: f32,
    /// Seed for deterministic lazy initialisation.
    pub seed: u64,
    /// How pushed gradients are applied (the paper uses SGD; Adagrad is
    /// provided for the cache-less paths).
    pub optimizer: ServerOptimizer,
    /// Optional L2 clip applied to each pushed gradient. HET's stale
    /// writes arrive as *accumulated* gradients (up to `s` batches in
    /// one push); for models with multiplicative interactions (DeepFM's
    /// FM term) an unclipped burst can destabilise training, so
    /// production embedding servers clip pushes. `None` disables.
    pub grad_clip: Option<f32>,
}

impl PsConfig {
    /// A server for `dim`-dimensional embeddings with sensible defaults.
    pub fn new(dim: usize) -> Self {
        PsConfig {
            dim,
            n_shards: 8,
            lr: 0.1,
            seed: 0x5EED,
            optimizer: ServerOptimizer::Sgd,
            grad_clip: None,
        }
    }
}

/// The result of pulling one embedding: its current vector and global
/// clock.
#[derive(Clone, Debug, PartialEq)]
pub struct PullResult {
    /// The embedding vector (length = `dim`).
    pub vector: Vec<f32>,
    /// The global Lamport clock `c_g` — total updates applied so far.
    pub clock: u64,
}

struct Entry {
    vector: Vec<f32>,
    clock: u64,
    /// Optimiser state (empty for SGD, the Adagrad accumulator
    /// otherwise).
    opt_state: Vec<f32>,
}

struct Shard {
    table: HashMap<Key, Entry>,
}

/// The global embedding table: sharded, versioned, thread-safe.
pub struct PsServer {
    config: PsConfig,
    shards: Vec<RwLock<Shard>>,
}

/// Scales `grad` down to L2 norm `clip` if it exceeds it, returning the
/// (possibly borrowed) gradient to apply.
fn clipped<'a>(grad: &'a [f32], clip: Option<f32>, scratch: &'a mut Vec<f32>) -> &'a [f32] {
    let Some(clip) = clip else { return grad };
    let norm = grad
        .iter()
        .map(|g| (*g as f64) * (*g as f64))
        .sum::<f64>()
        .sqrt() as f32;
    if norm <= clip || norm == 0.0 {
        return grad;
    }
    let scale = clip / norm;
    scratch.clear();
    scratch.extend(grad.iter().map(|g| g * scale));
    scratch
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

impl PsServer {
    /// Creates an empty server.
    ///
    /// # Panics
    /// Panics on a zero dimension or zero shard count.
    pub fn new(config: PsConfig) -> Self {
        assert!(config.dim > 0, "embedding dimension must be positive");
        assert!(config.n_shards > 0, "need at least one shard");
        let shards = (0..config.n_shards)
            .map(|_| {
                RwLock::new(Shard {
                    table: HashMap::new(),
                })
            })
            .collect();
        PsServer { config, shards }
    }

    /// The server configuration.
    pub fn config(&self) -> &PsConfig {
        &self.config
    }

    /// Embedding dimension D.
    pub fn dim(&self) -> usize {
        self.config.dim
    }

    /// The shard a key lives on — public so the failover path and the
    /// client's outage handling can reason about shard placement.
    pub fn shard_index_of(&self, key: Key) -> usize {
        (splitmix64(key) % self.shards.len() as u64) as usize
    }

    /// Number of shards.
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    fn shard_of(&self, key: Key) -> &RwLock<Shard> {
        &self.shards[self.shard_index_of(key)]
    }

    /// Deterministic initial vector for a key: uniform in
    /// `[−1/√D, +1/√D]`, derived only from `(seed, key)`.
    fn initial_vector(&self, key: Key) -> Vec<f32> {
        let dim = self.config.dim;
        let bound = 1.0 / (dim as f64).sqrt();
        (0..dim)
            .map(|i| {
                let h = splitmix64(
                    self.config.seed ^ key.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ (i as u64) << 1,
                );
                let u = (h >> 11) as f64 / (1u64 << 53) as f64; // [0,1)
                ((u * 2.0 - 1.0) * bound) as f32
            })
            .collect()
    }

    /// Pulls one embedding, lazily initialising it on first touch.
    pub fn pull(&self, key: Key) -> PullResult {
        if het_trace::enabled() {
            het_trace::counter_add_at("ps", "pulls", Some(self.shard_index_of(key) as u64), 1);
        }
        let shard = self.shard_of(key);
        {
            let guard = shard.read();
            if let Some(e) = guard.table.get(&key) {
                return PullResult {
                    vector: e.vector.clone(),
                    clock: e.clock,
                };
            }
        }
        let mut guard = shard.write();
        let e = guard.table.entry(key).or_insert_with(|| Entry {
            vector: self.initial_vector(key),
            clock: 0,
            opt_state: Vec::new(),
        });
        PullResult {
            vector: e.vector.clone(),
            clock: e.clock,
        }
    }

    /// Pulls a batch of embeddings.
    pub fn pull_many(&self, keys: &[Key]) -> Vec<PullResult> {
        keys.iter().map(|&k| self.pull(k)).collect()
    }

    /// HET eviction write-back (paper §3.1, `Het.Cache.Evict`): applies
    /// the accumulated gradient with the server's SGD rule and
    /// synchronises the global clock to `max(c_g, candidate_clock)`.
    ///
    /// # Panics
    /// Panics if the gradient length differs from the configured dim.
    pub fn push_with_clock(&self, key: Key, grad: &[f32], candidate_clock: u64) {
        assert_eq!(grad.len(), self.config.dim, "gradient dimension mismatch");
        if het_trace::enabled() {
            het_trace::counter_add_at("ps", "pushes", Some(self.shard_index_of(key) as u64), 1);
        }
        let (lr, opt) = (self.config.lr, self.config.optimizer);
        let mut scratch = Vec::new();
        let grad = clipped(grad, self.config.grad_clip, &mut scratch);
        let mut guard = self.shard_of(key).write();
        let init = || Entry {
            vector: self.initial_vector(key),
            clock: 0,
            opt_state: Vec::new(),
        };
        let e = guard.table.entry(key).or_insert_with(init);
        opt.apply(&mut e.vector, &mut e.opt_state, grad, lr);
        e.clock = e.clock.max(candidate_clock);
    }

    /// Plain-PS push (the no-cache baselines): applies the gradient and
    /// increments the global clock by one update.
    ///
    /// # Panics
    /// Panics if the gradient length differs from the configured dim.
    pub fn push_inc(&self, key: Key, grad: &[f32]) {
        assert_eq!(grad.len(), self.config.dim, "gradient dimension mismatch");
        if het_trace::enabled() {
            het_trace::counter_add_at("ps", "pushes", Some(self.shard_index_of(key) as u64), 1);
        }
        let (lr, opt) = (self.config.lr, self.config.optimizer);
        let mut scratch = Vec::new();
        let grad = clipped(grad, self.config.grad_clip, &mut scratch);
        let mut guard = self.shard_of(key).write();
        let init = || Entry {
            vector: self.initial_vector(key),
            clock: 0,
            opt_state: Vec::new(),
        };
        let e = guard.table.entry(key).or_insert_with(init);
        opt.apply(&mut e.vector, &mut e.opt_state, grad, lr);
        e.clock += 1;
    }

    /// The global clock of a key (0 for never-touched keys). This is the
    /// clock-only query behind `CheckValid` condition (2).
    pub fn clock_of(&self, key: Key) -> u64 {
        if het_trace::enabled() {
            het_trace::counter_add_at(
                "ps",
                "clock_queries",
                Some(self.shard_index_of(key) as u64),
                1,
            );
        }
        self.shard_of(key)
            .read()
            .table
            .get(&key)
            .map_or(0, |e| e.clock)
    }

    /// Batched [`PsServer::clock_of`].
    pub fn clocks_of(&self, keys: &[Key]) -> Vec<u64> {
        keys.iter().map(|&k| self.clock_of(k)).collect()
    }

    /// Number of materialised embeddings across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().table.len()).sum()
    }

    /// True when no embedding has been touched yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Read-only snapshot of one vector without affecting clocks — a test
    /// oracle helper.
    pub fn snapshot(&self, key: Key) -> Option<Vec<f32>> {
        self.shard_of(key)
            .read()
            .table
            .get(&key)
            .map(|e| e.vector.clone())
    }

    /// Exports every materialised row, key-sorted, for checkpointing.
    pub fn export_rows(&self) -> Vec<crate::checkpoint::CheckpointRow> {
        let mut rows = Vec::with_capacity(self.len());
        for shard in &self.shards {
            let guard = shard.read();
            for (&key, e) in &guard.table {
                rows.push(crate::checkpoint::CheckpointRow {
                    key,
                    clock: e.clock,
                    vector: e.vector.clone(),
                });
            }
        }
        rows.sort_unstable_by_key(|r| r.key);
        rows
    }

    /// Installs a checkpointed row verbatim (used by restore; overwrites
    /// any existing entry, resetting optimiser state).
    pub fn restore_entry(&self, key: Key, vector: Vec<f32>, clock: u64) {
        assert_eq!(vector.len(), self.config.dim, "row dimension mismatch");
        let mut guard = self.shard_of(key).write();
        guard.table.insert(
            key,
            Entry {
                vector,
                clock,
                opt_state: Vec::new(),
            },
        );
    }

    /// Exports the materialised rows of one shard, key-sorted (the unit
    /// of periodic checkpointing under failover).
    ///
    /// # Panics
    /// Panics on an out-of-range shard index.
    pub fn export_shard_rows(&self, shard: usize) -> Vec<crate::checkpoint::CheckpointRow> {
        let guard = self.shards[shard].read();
        let mut rows: Vec<_> = guard
            .table
            .iter()
            .map(|(&key, e)| crate::checkpoint::CheckpointRow {
                key,
                clock: e.clock,
                vector: e.vector.clone(),
            })
            .collect();
        rows.sort_unstable_by_key(|r| r.key);
        rows
    }

    /// Simulates the loss of one shard: drops every entry on it and
    /// returns the `(key, clock)` pairs that were live, so the failover
    /// path can account lost updates against the restored checkpoint.
    ///
    /// # Panics
    /// Panics on an out-of-range shard index.
    pub fn clear_shard(&self, shard: usize) -> Vec<(Key, u64)> {
        let mut guard = self.shards[shard].write();
        let mut lost: Vec<(Key, u64)> = guard.table.iter().map(|(&k, e)| (k, e.clock)).collect();
        guard.table.clear();
        lost.sort_unstable();
        lost
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn server(dim: usize) -> PsServer {
        PsServer::new(PsConfig {
            dim,
            n_shards: 4,
            lr: 0.5,
            seed: 99,
            optimizer: ServerOptimizer::Sgd,
            grad_clip: None,
        })
    }

    #[test]
    fn lazy_init_is_deterministic_and_bounded() {
        let a = server(8);
        let b = server(8);
        let pa = a.pull(123);
        let pb = b.pull(123);
        assert_eq!(pa, pb, "same seed → same init regardless of instance");
        assert_eq!(pa.clock, 0);
        let bound = 1.0 / (8.0f32).sqrt() + 1e-6;
        assert!(pa.vector.iter().all(|v| v.abs() <= bound));
        // Different keys get different vectors.
        assert_ne!(a.pull(124).vector, pa.vector);
    }

    #[test]
    fn init_does_not_depend_on_touch_order() {
        let a = server(4);
        let b = server(4);
        let _ = a.pull(1);
        let _ = a.pull(2);
        let _ = b.pull(2);
        let _ = b.pull(1);
        assert_eq!(a.pull(1), b.pull(1));
        assert_eq!(a.pull(2), b.pull(2));
    }

    #[test]
    fn push_inc_applies_sgd_and_bumps_clock() {
        let s = server(2);
        let before = s.pull(7).vector;
        s.push_inc(7, &[1.0, -2.0]);
        let after = s.pull(7);
        assert!((after.vector[0] - (before[0] - 0.5)).abs() < 1e-6);
        assert!((after.vector[1] - (before[1] + 1.0)).abs() < 1e-6);
        assert_eq!(after.clock, 1);
        s.push_inc(7, &[0.0, 0.0]);
        assert_eq!(s.clock_of(7), 2);
    }

    #[test]
    fn push_with_clock_takes_max() {
        let s = server(2);
        s.push_with_clock(3, &[0.0, 0.0], 5);
        assert_eq!(s.clock_of(3), 5);
        s.push_with_clock(3, &[0.0, 0.0], 2);
        assert_eq!(
            s.clock_of(3),
            5,
            "older candidate clock must not regress c_g"
        );
        s.push_with_clock(3, &[0.0, 0.0], 9);
        assert_eq!(s.clock_of(3), 9);
    }

    #[test]
    fn push_on_untouched_key_initialises_first() {
        let s = server(2);
        s.push_inc(42, &[1.0, 1.0]);
        let p = s.pull(42);
        // vector = init - 0.5 * grad; recompute init via a fresh server.
        let init = server(2).pull(42).vector;
        assert!((p.vector[0] - (init[0] - 0.5)).abs() < 1e-6);
        assert_eq!(p.clock, 1);
    }

    #[test]
    fn clock_of_untouched_key_is_zero() {
        let s = server(2);
        assert_eq!(s.clock_of(1000), 0);
        assert!(s.is_empty());
        assert_eq!(s.snapshot(1000), None);
    }

    #[test]
    fn len_counts_across_shards() {
        let s = server(2);
        for k in 0..100 {
            let _ = s.pull(k);
        }
        assert_eq!(s.len(), 100);
        assert!(!s.is_empty());
    }

    #[test]
    fn pull_many_and_clocks_of_align() {
        let s = server(2);
        s.push_inc(1, &[0.0, 0.0]);
        s.push_inc(1, &[0.0, 0.0]);
        s.push_inc(2, &[0.0, 0.0]);
        let keys = [1, 2, 3];
        let pulls = s.pull_many(&keys);
        let clocks = s.clocks_of(&keys);
        assert_eq!(clocks, vec![2, 1, 0]);
        for (p, c) in pulls.iter().zip(&clocks) {
            assert_eq!(p.clock, *c);
        }
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn wrong_grad_dim_rejected() {
        let s = server(4);
        s.push_inc(1, &[0.0, 0.0]);
    }

    #[test]
    fn concurrent_pushes_all_apply() {
        use std::sync::Arc;
        let s = Arc::new(server(1));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let s = Arc::clone(&s);
            handles.push(std::thread::spawn(move || {
                for _ in 0..250 {
                    s.push_inc(77, &[1.0]);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(s.clock_of(77), 1000);
        let init = server(1).pull(77).vector[0];
        let v = s.pull(77).vector[0];
        assert!((v - (init - 0.5 * 1000.0)).abs() < 1e-2);
    }
}
