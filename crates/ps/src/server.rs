//! The sharded embedding parameter server.

use crate::optimizer::ServerOptimizer;
use crate::sync::RwLock;
use crate::Key;
use het_store::{RowStore, StoreSpec, StoreStats, StoredRow};
use std::sync::atomic::{AtomicU64, Ordering};

/// Configuration of the embedding server.
#[derive(Clone, Copy, Debug)]
pub struct PsConfig {
    /// Embedding dimension D.
    pub dim: usize,
    /// Number of shards (lock granularity; also models the paper's
    /// multiple server machines).
    pub n_shards: usize,
    /// Server-side SGD learning rate applied to pushed gradients.
    pub lr: f32,
    /// Seed for deterministic lazy initialisation.
    pub seed: u64,
    /// How pushed gradients are applied (the paper uses SGD; Adagrad is
    /// provided for the cache-less paths).
    pub optimizer: ServerOptimizer,
    /// Optional L2 clip applied to each pushed gradient. HET's stale
    /// writes arrive as *accumulated* gradients (up to `s` batches in
    /// one push); for models with multiplicative interactions (DeepFM's
    /// FM term) an unclipped burst can destabilise training, so
    /// production embedding servers clip pushes. `None` disables.
    pub grad_clip: Option<f32>,
}

impl PsConfig {
    /// A server for `dim`-dimensional embeddings with sensible defaults.
    pub fn new(dim: usize) -> Self {
        PsConfig {
            dim,
            n_shards: 8,
            lr: 0.1,
            seed: 0x5EED,
            optimizer: ServerOptimizer::Sgd,
            grad_clip: None,
        }
    }
}

/// The result of pulling one embedding: its current vector and global
/// clock.
#[derive(Clone, Debug, PartialEq)]
pub struct PullResult {
    /// The embedding vector (length = `dim`).
    pub vector: Vec<f32>,
    /// The global Lamport clock `c_g` — total updates applied so far.
    pub clock: u64,
}

struct Shard {
    store: Box<dyn RowStore>,
}

/// One live or completed shard split. While `complete` is false the
/// split is *migrating*: routing dual-reads (a child-side key lives on
/// the child iff it has already been moved there), so lookups stay
/// correct at every point of the migration. Once `complete`, child-side
/// keys route to the child unconditionally.
#[derive(Clone, Copy, Debug)]
struct SplitState {
    parent: usize,
    child: usize,
    salt: u64,
    complete: bool,
}

/// True when `key` moves to the child half of a split with this salt.
/// Deterministic in `(key, salt)` so routing never depends on table
/// state once a split completes.
fn child_side(key: Key, salt: u64) -> bool {
    splitmix64(key ^ salt) & 1 == 1
}

/// The global embedding table: sharded, versioned, thread-safe.
///
/// Physical shards = `config.n_shards` base shards plus any *spare*
/// shards reserved at construction ([`PsServer::with_spare_shards`]).
/// Base routing only ever targets base shards; spares receive keys
/// solely through live splits ([`PsServer::begin_split`]), so a server
/// with unused spares is byte-identical in behaviour to one without.
///
/// Each shard's rows live behind the [`RowStore`] trait: the flat
/// in-memory map by default ([`StoreSpec::Mem`], byte-identical to the
/// historical behaviour), or the tiered hot/cold store
/// ([`StoreSpec::Tiered`]) for paper-scale key spaces. Modelled disk
/// time accrued by client-path operations is drained with
/// [`PsServer::take_io_ns`] so the simulation can charge it into the
/// same clocks that carry network time; background maintenance I/O
/// (checkpoints, failover, migration) accrues separately.
pub struct PsServer {
    config: PsConfig,
    /// Shards addressed by base routing (`== config.n_shards`).
    base_shards: usize,
    shards: Vec<RwLock<Shard>>,
    /// Applied in order by [`PsServer::shard_index_of`]; splits are
    /// append-only so routing decisions replay deterministically.
    splits: RwLock<Vec<SplitState>>,
    /// Disk nanoseconds accrued by client-path operations (pull, push,
    /// clock queries) since the last [`PsServer::take_io_ns`].
    pending_io_ns: AtomicU64,
    /// Cumulative disk nanoseconds from maintenance paths (export,
    /// restore, migration, snapshots) — never charged to request legs.
    background_io_ns: AtomicU64,
}

/// Scales `grad` down to L2 norm `clip` if it exceeds it, returning the
/// (possibly borrowed) gradient to apply.
fn clipped<'a>(grad: &'a [f32], clip: Option<f32>, scratch: &'a mut Vec<f32>) -> &'a [f32] {
    let Some(clip) = clip else { return grad };
    let norm = grad
        .iter()
        .map(|g| (*g as f64) * (*g as f64))
        .sum::<f64>()
        .sqrt() as f32;
    if norm <= clip || norm == 0.0 {
        return grad;
    }
    let scale = clip / norm;
    scratch.clear();
    scratch.extend(grad.iter().map(|g| g * scale));
    scratch
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

impl PsServer {
    /// Creates an empty server.
    ///
    /// # Panics
    /// Panics on a zero dimension or zero shard count.
    pub fn new(config: PsConfig) -> Self {
        Self::with_spare_shards(config, 0)
    }

    /// Creates an empty server with `spare_shards` extra physical shards
    /// reserved as split targets for live resharding. Spares take no
    /// traffic until [`PsServer::begin_split`] assigns them a parent.
    ///
    /// # Panics
    /// Panics on a zero dimension or zero shard count.
    pub fn with_spare_shards(config: PsConfig, spare_shards: usize) -> Self {
        Self::with_store(config, spare_shards, &StoreSpec::Mem)
    }

    /// Creates an empty server whose shards use the row store described
    /// by `spec`. A tiered spec's `hot_rows` budget is divided over the
    /// *base* shards; spare shards get the same per-shard slice (they
    /// inherit a parent's working set when a split activates them).
    ///
    /// # Panics
    /// Panics on a zero dimension or zero shard count, or if a tiered
    /// spec's spill directory cannot be created.
    pub fn with_store(config: PsConfig, spare_shards: usize, spec: &StoreSpec) -> Self {
        assert!(config.dim > 0, "embedding dimension must be positive");
        assert!(config.n_shards > 0, "need at least one shard");
        let shards = (0..config.n_shards + spare_shards)
            .map(|i| {
                RwLock::new(Shard {
                    store: spec.build_shard(config.dim, i, config.n_shards),
                })
            })
            .collect();
        PsServer {
            config,
            base_shards: config.n_shards,
            shards,
            splits: RwLock::new(Vec::new()),
            pending_io_ns: AtomicU64::new(0),
            background_io_ns: AtomicU64::new(0),
        }
    }

    /// The server configuration.
    pub fn config(&self) -> &PsConfig {
        &self.config
    }

    /// Embedding dimension D.
    pub fn dim(&self) -> usize {
        self.config.dim
    }

    /// Moves a shard store's freshly accrued disk time into the
    /// client-visible pending pool.
    fn charge_io(&self, shard: &mut Shard) {
        let ns = shard.store.take_io_ns();
        if ns > 0 {
            self.pending_io_ns.fetch_add(ns, Ordering::Relaxed);
        }
    }

    /// Same, but for maintenance paths whose disk time must not leak
    /// into a client request's simulated latency.
    fn charge_background_io(&self, shard: &mut Shard) {
        let ns = shard.store.take_io_ns();
        if ns > 0 {
            self.background_io_ns.fetch_add(ns, Ordering::Relaxed);
        }
    }

    /// Drains the modelled disk nanoseconds accrued by client-path
    /// operations (pull/push/remove) since the last call. The simulation
    /// client charges this into the same protocol leg that carried the
    /// request, so disk time flows into simulated clocks exactly like
    /// network time. Always 0 with the flat in-memory store.
    pub fn take_io_ns(&self) -> u64 {
        self.pending_io_ns.swap(0, Ordering::Relaxed)
    }

    /// Moves whatever is in the client-visible pending pool to the
    /// background pool. Callers that pull/push outside a priced protocol
    /// leg (replication reads, allgather barrier updates, evaluation
    /// views) use this so the disk time is still accounted for but never
    /// double-charged into a later request's latency.
    pub fn reclassify_pending_io(&self) {
        let ns = self.pending_io_ns.swap(0, Ordering::Relaxed);
        if ns > 0 {
            self.background_io_ns.fetch_add(ns, Ordering::Relaxed);
        }
    }

    /// Cumulative modelled disk nanoseconds from maintenance paths:
    /// checkpoint export, restore, shard migration, snapshots. Kept out
    /// of [`PsServer::take_io_ns`] so background work never inflates a
    /// client request's latency.
    pub fn background_io_ns(&self) -> u64 {
        self.background_io_ns.load(Ordering::Relaxed)
    }

    /// Aggregated row-store statistics across all shards (all zeros with
    /// the flat in-memory store).
    pub fn store_stats(&self) -> StoreStats {
        let mut total = StoreStats::default();
        for shard in &self.shards {
            total.accumulate(&shard.read().store.stats());
        }
        total
    }

    /// Rows currently resident in memory across all shards — equal to
    /// [`PsServer::len`] for the flat store, the hot-tier occupancy for
    /// the tiered store.
    pub fn resident_rows(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.read().store.resident_rows())
            .sum()
    }

    /// The shard a key lives on — public so the failover path and the
    /// client's outage handling can reason about shard placement.
    ///
    /// Starts from the base hash route and walks the split log in
    /// order: a completed split moves its child-side keys outright; a
    /// migrating split dual-reads (the child owns a key only once the
    /// migration has actually moved it there). With no splits this is
    /// the historical `splitmix64(key) % n_shards`.
    pub fn shard_index_of(&self, key: Key) -> usize {
        let mut idx = (splitmix64(key) % self.base_shards as u64) as usize;
        let splits = self.splits.read();
        for s in splits.iter() {
            if s.parent == idx
                && child_side(key, s.salt)
                && (s.complete || self.shards[s.child].read().store.contains(key))
            {
                idx = s.child;
            }
        }
        idx
    }

    /// Number of physical shards (base + spares). Checkpoint stores
    /// size their blob arrays from this so spares are covered too.
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// Number of base shards (targets of the hash route before any
    /// split applies).
    pub fn n_base_shards(&self) -> usize {
        self.base_shards
    }

    fn shard_of(&self, key: Key) -> &RwLock<Shard> {
        &self.shards[self.shard_index_of(key)]
    }

    /// Deterministic initial vector for a key: uniform in
    /// `[−1/√D, +1/√D]`, derived only from `(seed, key)`.
    fn initial_vector(&self, key: Key) -> Vec<f32> {
        let dim = self.config.dim;
        let bound = 1.0 / (dim as f64).sqrt();
        (0..dim)
            .map(|i| {
                let h = splitmix64(
                    self.config.seed ^ key.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ (i as u64) << 1,
                );
                let u = (h >> 11) as f64 / (1u64 << 53) as f64; // [0,1)
                ((u * 2.0 - 1.0) * bound) as f32
            })
            .collect()
    }

    /// A freshly initialised row for `key`.
    fn make_row(&self, key: Key) -> StoredRow {
        StoredRow {
            vector: self.initial_vector(key),
            clock: 0,
            opt_state: Vec::new(),
        }
    }

    /// Pulls one embedding, lazily initialising it on first touch.
    pub fn pull(&self, key: Key) -> PullResult {
        if het_trace::enabled() {
            het_trace::counter_add_at("ps", "pulls", Some(self.shard_index_of(key) as u64), 1);
        }
        let shard = self.shard_of(key);
        let mut guard = shard.write();
        let result = match guard.store.get(key) {
            Some(row) => PullResult {
                vector: row.vector.clone(),
                clock: row.clock,
            },
            None => {
                let row = self.make_row(key);
                let result = PullResult {
                    vector: row.vector.clone(),
                    clock: row.clock,
                };
                guard.store.insert(key, row);
                result
            }
        };
        self.charge_io(&mut guard);
        result
    }

    /// Pulls a batch of embeddings.
    pub fn pull_many(&self, keys: &[Key]) -> Vec<PullResult> {
        keys.iter().map(|&k| self.pull(k)).collect()
    }

    /// HET eviction write-back (paper §3.1, `Het.Cache.Evict`): applies
    /// the accumulated gradient with the server's SGD rule and
    /// synchronises the global clock to `max(c_g, candidate_clock)`.
    ///
    /// # Panics
    /// Panics if the gradient length differs from the configured dim.
    pub fn push_with_clock(&self, key: Key, grad: &[f32], candidate_clock: u64) {
        assert_eq!(grad.len(), self.config.dim, "gradient dimension mismatch");
        if het_trace::enabled() {
            het_trace::counter_add_at("ps", "pushes", Some(self.shard_index_of(key) as u64), 1);
        }
        let (lr, opt) = (self.config.lr, self.config.optimizer);
        let mut scratch = Vec::new();
        let grad = clipped(grad, self.config.grad_clip, &mut scratch);
        let mut guard = self.shard_of(key).write();
        guard
            .store
            .apply(key, &mut || self.make_row(key), &mut |e| {
                opt.apply(&mut e.vector, &mut e.opt_state, grad, lr);
                e.clock = e.clock.max(candidate_clock);
            });
        self.charge_io(&mut guard);
    }

    /// Plain-PS push (the no-cache baselines): applies the gradient and
    /// increments the global clock by one update.
    ///
    /// # Panics
    /// Panics if the gradient length differs from the configured dim.
    pub fn push_inc(&self, key: Key, grad: &[f32]) {
        assert_eq!(grad.len(), self.config.dim, "gradient dimension mismatch");
        if het_trace::enabled() {
            het_trace::counter_add_at("ps", "pushes", Some(self.shard_index_of(key) as u64), 1);
        }
        let (lr, opt) = (self.config.lr, self.config.optimizer);
        let mut scratch = Vec::new();
        let grad = clipped(grad, self.config.grad_clip, &mut scratch);
        let mut guard = self.shard_of(key).write();
        guard
            .store
            .apply(key, &mut || self.make_row(key), &mut |e| {
                opt.apply(&mut e.vector, &mut e.opt_state, grad, lr);
                e.clock += 1;
            });
        self.charge_io(&mut guard);
    }

    /// The global clock of a key (0 for never-touched keys). This is the
    /// clock-only query behind `CheckValid` condition (2). Served from
    /// the hot tier or the in-memory cold index — never charges disk
    /// time, mirroring how the wire protocol ships clocks without
    /// payloads.
    pub fn clock_of(&self, key: Key) -> u64 {
        if het_trace::enabled() {
            het_trace::counter_add_at(
                "ps",
                "clock_queries",
                Some(self.shard_index_of(key) as u64),
                1,
            );
        }
        self.shard_of(key).read().store.clock_of(key).unwrap_or(0)
    }

    /// Batched [`PsServer::clock_of`].
    pub fn clocks_of(&self, keys: &[Key]) -> Vec<u64> {
        keys.iter().map(|&k| self.clock_of(k)).collect()
    }

    /// Number of materialised embeddings across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().store.len()).sum()
    }

    /// True when no embedding has been touched yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Read-only snapshot of one vector without affecting clocks or tier
    /// residency — a test oracle helper.
    pub fn snapshot(&self, key: Key) -> Option<Vec<f32>> {
        let mut guard = self.shard_of(key).write();
        let out = guard.store.peek(key).map(|e| e.vector);
        self.charge_background_io(&mut guard);
        out
    }

    /// Exports every materialised row, key-sorted, for checkpointing.
    /// Reads cold rows in place (tiered stores), charging the disk time
    /// as background I/O.
    pub fn export_rows(&self) -> Vec<crate::checkpoint::CheckpointRow> {
        let mut rows = Vec::with_capacity(self.len());
        for shard in &self.shards {
            let mut guard = shard.write();
            rows.extend(guard.store.export_rows().into_iter().map(|(key, row)| {
                crate::checkpoint::CheckpointRow {
                    key,
                    clock: row.clock,
                    vector: row.vector,
                }
            }));
            self.charge_background_io(&mut guard);
        }
        rows.sort_unstable_by_key(|r| r.key);
        rows
    }

    /// Installs a checkpointed row verbatim (used by restore; overwrites
    /// any existing entry, resetting optimiser state).
    pub fn restore_entry(&self, key: Key, vector: Vec<f32>, clock: u64) {
        assert_eq!(vector.len(), self.config.dim, "row dimension mismatch");
        let mut guard = self.shard_of(key).write();
        guard.store.insert(
            key,
            StoredRow {
                vector,
                clock,
                opt_state: Vec::new(),
            },
        );
        self.charge_background_io(&mut guard);
    }

    /// Exports the materialised rows of one shard, key-sorted (the unit
    /// of periodic checkpointing under failover).
    ///
    /// # Panics
    /// Panics on an out-of-range shard index.
    pub fn export_shard_rows(&self, shard: usize) -> Vec<crate::checkpoint::CheckpointRow> {
        let mut guard = self.shards[shard].write();
        let rows = guard
            .store
            .export_rows()
            .into_iter()
            .map(|(key, row)| crate::checkpoint::CheckpointRow {
                key,
                clock: row.clock,
                vector: row.vector,
            })
            .collect();
        self.charge_background_io(&mut guard);
        rows
    }

    /// Simulates the loss of one shard: drops every entry on it and
    /// returns the `(key, clock)` pairs that were live, so the failover
    /// path can account lost updates against the restored checkpoint.
    ///
    /// # Panics
    /// Panics on an out-of-range shard index.
    pub fn clear_shard(&self, shard: usize) -> Vec<(Key, u64)> {
        let mut guard = self.shards[shard].write();
        let lost = guard.store.clear();
        self.charge_background_io(&mut guard);
        lost
    }

    /// Starts a live split of `parent` into the spare shard `child`:
    /// keys whose `child_side(key, salt)` bit is set migrate to the
    /// child while traffic continues. Routing dual-reads for the whole
    /// migration, so every key is owned by exactly one shard at every
    /// instant. Drive the migration with [`PsServer::migrate_batch`]
    /// and finish with [`PsServer::complete_split`].
    ///
    /// # Panics
    /// Panics if `parent` is not routable, if `child` is not an unused
    /// spare shard, or if `parent` already has a migration in flight.
    pub fn begin_split(&self, parent: usize, child: usize, salt: u64) {
        assert!(parent < self.shards.len(), "split parent out of range");
        assert!(
            child >= self.base_shards && child < self.shards.len(),
            "split child must be a spare shard (index >= n_base_shards)"
        );
        assert!(
            self.shards[child].read().store.is_empty(),
            "split child shard must be empty"
        );
        let mut splits = self.splits.write();
        for s in splits.iter() {
            assert!(
                s.child != child,
                "spare shard {child} is already a split target"
            );
            assert!(
                s.complete || s.parent != parent,
                "shard {parent} already has a migration in flight"
            );
        }
        splits.push(SplitState {
            parent,
            child,
            salt,
            complete: false,
        });
    }

    /// The in-flight split whose parent is `parent`, if any.
    fn active_split(&self, parent: usize) -> Option<SplitState> {
        self.splits
            .read()
            .iter()
            .find(|s| s.parent == parent && !s.complete)
            .copied()
    }

    /// Moves up to `max_keys` child-side keys (in ascending key order,
    /// so migration is deterministic) from `parent` to its split child,
    /// wholesale — vector, clock, and optimiser state travel together
    /// and no push/pull counters fire, so gradient accounting is
    /// conserved across the move. Cold rows are read back from the
    /// parent's log as they move (background I/O). Returns how many keys
    /// moved.
    ///
    /// # Panics
    /// Panics if `parent` has no migration in flight.
    pub fn migrate_batch(&self, parent: usize, max_keys: usize) -> usize {
        let split = self
            .active_split(parent)
            .expect("migrate_batch: no migration in flight for this shard");
        let mut src = self.shards[split.parent].write();
        let mut moving: Vec<Key> = src.store.sorted_keys();
        moving.retain(|&k| child_side(k, split.salt));
        moving.truncate(max_keys);
        if moving.is_empty() {
            return 0;
        }
        let mut dst = self.shards[split.child].write();
        for key in &moving {
            let row = src.store.remove(*key).expect("key vanished mid-batch");
            dst.store.insert(*key, row);
        }
        self.charge_background_io(&mut src);
        self.charge_background_io(&mut dst);
        moving.len()
    }

    /// Child-side keys still waiting on `parent` (0 once the migration
    /// has drained; also 0 when no migration is in flight).
    pub fn remaining_to_migrate(&self, parent: usize) -> usize {
        let Some(split) = self.active_split(parent) else {
            return 0;
        };
        self.shards[split.parent]
            .read()
            .store
            .sorted_keys()
            .iter()
            .filter(|&&k| child_side(k, split.salt))
            .count()
    }

    /// Seals a drained migration: from here on child-side keys route to
    /// the child unconditionally (lazy initialisation included).
    ///
    /// # Panics
    /// Panics if `parent` has no migration in flight or keys remain.
    pub fn complete_split(&self, parent: usize) {
        assert_eq!(
            self.remaining_to_migrate(parent),
            0,
            "complete_split: migration not drained"
        );
        let mut splits = self.splits.write();
        let s = splits
            .iter_mut()
            .find(|s| s.parent == parent && !s.complete)
            .expect("complete_split: no migration in flight for this shard");
        s.complete = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use het_store::TieredConfig;
    use std::collections::HashMap;

    fn server(dim: usize) -> PsServer {
        PsServer::new(PsConfig {
            dim,
            n_shards: 4,
            lr: 0.5,
            seed: 99,
            optimizer: ServerOptimizer::Sgd,
            grad_clip: None,
        })
    }

    #[test]
    fn lazy_init_is_deterministic_and_bounded() {
        let a = server(8);
        let b = server(8);
        let pa = a.pull(123);
        let pb = b.pull(123);
        assert_eq!(pa, pb, "same seed → same init regardless of instance");
        assert_eq!(pa.clock, 0);
        let bound = 1.0 / (8.0f32).sqrt() + 1e-6;
        assert!(pa.vector.iter().all(|v| v.abs() <= bound));
        // Different keys get different vectors.
        assert_ne!(a.pull(124).vector, pa.vector);
    }

    #[test]
    fn init_does_not_depend_on_touch_order() {
        let a = server(4);
        let b = server(4);
        let _ = a.pull(1);
        let _ = a.pull(2);
        let _ = b.pull(2);
        let _ = b.pull(1);
        assert_eq!(a.pull(1), b.pull(1));
        assert_eq!(a.pull(2), b.pull(2));
    }

    #[test]
    fn push_inc_applies_sgd_and_bumps_clock() {
        let s = server(2);
        let before = s.pull(7).vector;
        s.push_inc(7, &[1.0, -2.0]);
        let after = s.pull(7);
        assert!((after.vector[0] - (before[0] - 0.5)).abs() < 1e-6);
        assert!((after.vector[1] - (before[1] + 1.0)).abs() < 1e-6);
        assert_eq!(after.clock, 1);
        s.push_inc(7, &[0.0, 0.0]);
        assert_eq!(s.clock_of(7), 2);
    }

    #[test]
    fn push_with_clock_takes_max() {
        let s = server(2);
        s.push_with_clock(3, &[0.0, 0.0], 5);
        assert_eq!(s.clock_of(3), 5);
        s.push_with_clock(3, &[0.0, 0.0], 2);
        assert_eq!(
            s.clock_of(3),
            5,
            "older candidate clock must not regress c_g"
        );
        s.push_with_clock(3, &[0.0, 0.0], 9);
        assert_eq!(s.clock_of(3), 9);
    }

    #[test]
    fn push_on_untouched_key_initialises_first() {
        let s = server(2);
        s.push_inc(42, &[1.0, 1.0]);
        let p = s.pull(42);
        // vector = init - 0.5 * grad; recompute init via a fresh server.
        let init = server(2).pull(42).vector;
        assert!((p.vector[0] - (init[0] - 0.5)).abs() < 1e-6);
        assert_eq!(p.clock, 1);
    }

    #[test]
    fn clock_of_untouched_key_is_zero() {
        let s = server(2);
        assert_eq!(s.clock_of(1000), 0);
        assert!(s.is_empty());
        assert_eq!(s.snapshot(1000), None);
    }

    #[test]
    fn len_counts_across_shards() {
        let s = server(2);
        for k in 0..100 {
            let _ = s.pull(k);
        }
        assert_eq!(s.len(), 100);
        assert!(!s.is_empty());
    }

    #[test]
    fn pull_many_and_clocks_of_align() {
        let s = server(2);
        s.push_inc(1, &[0.0, 0.0]);
        s.push_inc(1, &[0.0, 0.0]);
        s.push_inc(2, &[0.0, 0.0]);
        let keys = [1, 2, 3];
        let pulls = s.pull_many(&keys);
        let clocks = s.clocks_of(&keys);
        assert_eq!(clocks, vec![2, 1, 0]);
        for (p, c) in pulls.iter().zip(&clocks) {
            assert_eq!(p.clock, *c);
        }
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn wrong_grad_dim_rejected() {
        let s = server(4);
        s.push_inc(1, &[0.0, 0.0]);
    }

    #[test]
    fn mem_store_never_accrues_io() {
        let s = server(2);
        for k in 0..50u64 {
            s.push_inc(k, &[1.0, -1.0]);
            let _ = s.pull(k);
        }
        let _ = s.export_rows();
        assert_eq!(s.take_io_ns(), 0);
        assert_eq!(s.background_io_ns(), 0);
        assert_eq!(s.store_stats(), StoreStats::default());
        assert_eq!(s.resident_rows(), s.len());
    }

    /// Asserts every materialised key lives on exactly one physical
    /// shard and that routing agrees with where the key actually is.
    fn assert_exactly_one_owner(s: &PsServer) {
        let mut seen: HashMap<Key, usize> = HashMap::new();
        for shard in 0..s.n_shards() {
            for row in s.export_shard_rows(shard) {
                if let Some(prev) = seen.insert(row.key, shard) {
                    panic!("key {} on both shard {prev} and {shard}", row.key);
                }
            }
        }
        for (&key, &shard) in &seen {
            assert_eq!(
                s.shard_index_of(key),
                shard,
                "routing disagrees with placement for key {key}"
            );
        }
    }

    #[test]
    fn spare_shards_change_nothing_until_split() {
        let plain = server(4);
        let spared = PsServer::with_spare_shards(*plain.config(), 2);
        assert_eq!(spared.n_shards(), 6);
        assert_eq!(spared.n_base_shards(), 4);
        for k in 0..200u64 {
            assert_eq!(plain.pull(k), spared.pull(k));
            assert_eq!(plain.shard_index_of(k), spared.shard_index_of(k));
            assert!(spared.shard_index_of(k) < 4, "spares must take no traffic");
        }
    }

    #[test]
    fn live_split_conserves_every_key_and_clock() {
        let cfg = PsConfig {
            dim: 2,
            n_shards: 4,
            lr: 0.5,
            seed: 99,
            optimizer: ServerOptimizer::Sgd,
            grad_clip: None,
        };
        let s = PsServer::with_spare_shards(cfg, 1);
        let control = PsServer::new(cfg);
        for k in 0..300u64 {
            for _ in 0..(k % 3 + 1) {
                s.push_inc(k, &[1.0, -1.0]);
                control.push_inc(k, &[1.0, -1.0]);
            }
        }
        let parent = 2;
        let salt = 0x0D15_EA5E;
        s.begin_split(parent, 4, salt);
        let total = s.remaining_to_migrate(parent);
        assert!(total > 0, "expected some child-side keys");
        let mut moved = 0;
        while s.remaining_to_migrate(parent) > 0 {
            moved += s.migrate_batch(parent, 7);
            assert_exactly_one_owner(&s);
            // Mid-migration reads and writes stay correct.
            for k in 0..300u64 {
                assert_eq!(s.pull(k), control.pull(k), "key {k} diverged mid-split");
            }
        }
        assert_eq!(moved, total);
        s.complete_split(parent);
        assert_exactly_one_owner(&s);
        let mut on_child = 0;
        for k in 0..300u64 {
            assert_eq!(s.pull(k), control.pull(k), "key {k} diverged post-split");
            if s.shard_index_of(k) == 4 {
                on_child += 1;
            }
        }
        assert_eq!(on_child, total, "all child-side keys must route to child");
        assert_eq!(s.len(), control.len());
    }

    #[test]
    fn writes_during_migration_land_once_and_survive() {
        let cfg = PsConfig {
            dim: 1,
            n_shards: 2,
            lr: 0.5,
            seed: 7,
            optimizer: ServerOptimizer::Sgd,
            grad_clip: None,
        };
        let s = PsServer::with_spare_shards(cfg, 1);
        // Materialise enough keys to have several on each side.
        for k in 0..64u64 {
            s.push_inc(k, &[1.0]);
        }
        s.begin_split(0, 2, 0xABCD);
        let before = s.remaining_to_migrate(0);
        s.migrate_batch(0, before / 2);
        // Writes keep working mid-migration, wherever the key lives.
        for k in 0..64u64 {
            s.push_inc(k, &[1.0]);
        }
        // A brand-new child-side key lazily initialises on the parent
        // and is picked up by a later batch.
        let fresh = (64..u64::MAX)
            .find(|&k| s.shard_index_of(k) == 0 && child_side(k, 0xABCD))
            .unwrap();
        s.push_inc(fresh, &[1.0]);
        assert_eq!(s.shard_index_of(fresh), 0, "unmigrated key stays on parent");
        while s.remaining_to_migrate(0) > 0 {
            s.migrate_batch(0, 5);
        }
        s.complete_split(0);
        assert_eq!(s.shard_index_of(fresh), 2);
        assert_eq!(s.clock_of(fresh), 1, "clock must survive the move");
        for k in 0..64u64 {
            assert_eq!(s.clock_of(k), 2, "key {k} lost an update in the split");
        }
        assert_exactly_one_owner(&s);
    }

    #[test]
    fn migration_is_deterministic_across_instances() {
        let cfg = PsConfig {
            dim: 2,
            n_shards: 3,
            lr: 0.1,
            seed: 1,
            optimizer: ServerOptimizer::Sgd,
            grad_clip: None,
        };
        let make = || {
            let s = PsServer::with_spare_shards(cfg, 1);
            for k in 0..100u64 {
                s.push_inc(k, &[0.5, -0.5]);
            }
            s.begin_split(1, 3, 42);
            let mut steps = Vec::new();
            while s.remaining_to_migrate(1) > 0 {
                steps.push(s.migrate_batch(1, 4));
            }
            s.complete_split(1);
            (steps, s)
        };
        let (steps_a, a) = make();
        let (steps_b, b) = make();
        assert_eq!(steps_a, steps_b, "batch sizes must replay identically");
        for k in 0..100u64 {
            assert_eq!(a.shard_index_of(k), b.shard_index_of(k));
            assert_eq!(a.pull(k), b.pull(k));
        }
    }

    #[test]
    #[should_panic(expected = "spare shard")]
    fn split_into_base_shard_rejected() {
        let s = PsServer::with_spare_shards(*server(2).config(), 1);
        s.begin_split(0, 3, 1); // only shard 4 is the spare
    }

    #[test]
    #[should_panic(expected = "not drained")]
    fn completing_undrained_split_rejected() {
        let s = PsServer::with_spare_shards(*server(2).config(), 1);
        for k in 0..64u64 {
            let _ = s.pull(k);
        }
        s.begin_split(0, 4, 9);
        assert!(s.remaining_to_migrate(0) > 0);
        s.complete_split(0);
    }

    #[test]
    fn concurrent_pushes_all_apply() {
        use std::sync::Arc;
        let s = Arc::new(server(1));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let s = Arc::clone(&s);
            handles.push(std::thread::spawn(move || {
                for _ in 0..250 {
                    s.push_inc(77, &[1.0]);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(s.clock_of(77), 1000);
        let init = server(1).pull(77).vector[0];
        let v = s.pull(77).vector[0];
        assert!((v - (init - 0.5 * 1000.0)).abs() < 1e-2);
    }

    fn tiered_spec(hot_rows: usize) -> StoreSpec {
        let mut cfg = TieredConfig::new(hot_rows);
        // Small segments + a low floor so these tests exercise segment
        // rolls and compaction, not just the happy path.
        cfg.segment_bytes = 2 << 10;
        cfg.gc_min_bytes = 1 << 10;
        StoreSpec::Tiered(cfg)
    }

    #[test]
    fn tiered_server_matches_mem_server_row_for_row() {
        let cfg = PsConfig {
            dim: 2,
            n_shards: 4,
            lr: 0.5,
            seed: 99,
            optimizer: ServerOptimizer::Sgd,
            grad_clip: None,
        };
        let tiered = PsServer::with_store(cfg, 0, &tiered_spec(8));
        let flat = PsServer::new(cfg);
        for round in 0..3 {
            for k in 0..120u64 {
                tiered.push_inc(k, &[1.0, -1.0]);
                flat.push_inc(k, &[1.0, -1.0]);
                if k % 3 == round {
                    assert_eq!(tiered.pull(k), flat.pull(k), "key {k} round {round}");
                }
            }
        }
        assert_eq!(tiered.len(), flat.len());
        assert!(
            tiered.resident_rows() < tiered.len(),
            "most rows must have spilled cold (resident {} of {})",
            tiered.resident_rows(),
            tiered.len()
        );
        for k in 0..120u64 {
            assert_eq!(tiered.pull(k), flat.pull(k), "key {k} final");
            assert_eq!(tiered.clock_of(k), flat.clock_of(k));
        }
        assert_eq!(tiered.export_rows(), flat.export_rows());
        assert!(tiered.take_io_ns() > 0, "tier traffic must cost disk time");
        let st = tiered.store_stats();
        assert!(st.demotions > 0 && st.promotions > 0);
    }

    #[test]
    fn tiered_clock_queries_are_io_free() {
        let cfg = PsConfig {
            dim: 2,
            n_shards: 2,
            lr: 0.1,
            seed: 5,
            optimizer: ServerOptimizer::Sgd,
            grad_clip: None,
        };
        let s = PsServer::with_store(cfg, 0, &tiered_spec(4));
        for k in 0..60u64 {
            s.push_inc(k, &[1.0, 0.0]);
        }
        let _ = s.take_io_ns();
        for k in 0..60u64 {
            assert_eq!(s.clock_of(k), 1);
        }
        assert_eq!(s.take_io_ns(), 0, "clock queries are served from the index");
    }

    /// Satellite check: a live split while most parent rows sit cold.
    /// Every row — hot or cold — must move wholesale, dual-read routing
    /// must agree with placement at each step, and the disk time of the
    /// move must land in the background pool, not on clients.
    #[test]
    fn split_while_rows_are_cold_resident_conserves_state() {
        let cfg = PsConfig {
            dim: 2,
            n_shards: 2,
            lr: 0.5,
            seed: 5,
            optimizer: ServerOptimizer::Sgd,
            grad_clip: None,
        };
        let s = PsServer::with_store(cfg, 1, &tiered_spec(6));
        let control = PsServer::new(cfg);
        for k in 0..200u64 {
            s.push_inc(k, &[1.0, -1.0]);
            control.push_inc(k, &[1.0, -1.0]);
        }
        assert!(
            s.resident_rows() < 200,
            "test needs cold rows on the parent"
        );
        let _ = s.take_io_ns(); // drain client-path io from the setup
        s.begin_split(0, 2, 0xC01D);
        while s.remaining_to_migrate(0) > 0 {
            s.migrate_batch(0, 9);
            assert_exactly_one_owner(&s);
        }
        s.complete_split(0);
        assert_exactly_one_owner(&s);
        assert_eq!(
            s.take_io_ns(),
            0,
            "migration disk time must not be charged to clients"
        );
        assert!(
            s.background_io_ns() > 0,
            "moving cold rows must cost background disk time"
        );
        assert_eq!(s.len(), control.len());
        for k in 0..200u64 {
            assert_eq!(s.pull(k), control.pull(k), "key {k} diverged");
        }
    }
}
