//! Poison-free reader–writer lock over `std::sync::RwLock`.
//!
//! Replaces `parking_lot::RwLock` (hermetic builds carry no registry
//! dependencies) while keeping its ergonomics: `read()`/`write()`
//! return guards directly. A poisoned lock is recovered rather than
//! propagated — the store's shard state is a plain data structure whose
//! invariants hold between operations, so observing it after a
//! panicking writer is safe.

use std::sync::{PoisonError, RwLockReadGuard, RwLockWriteGuard};

/// A reader–writer lock whose guards ignore poisoning.
#[derive(Debug, Default)]
pub struct RwLock<T>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates the lock holding `value`.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Acquires shared read access, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires exclusive write access, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_write_round_trip() {
        let l = RwLock::new(5u32);
        assert_eq!(*l.read(), 5);
        *l.write() += 1;
        assert_eq!(*l.read(), 6);
        assert_eq!(l.into_inner(), 6);
    }

    #[test]
    fn survives_poisoning() {
        use std::sync::Arc;
        let l = Arc::new(RwLock::new(1u32));
        let l2 = Arc::clone(&l);
        let _ = std::thread::spawn(move || {
            let _g = l2.write();
            panic!("poison the lock");
        })
        .join();
        assert_eq!(*l.read(), 1);
    }
}
