//! Shard failover: periodic per-shard checkpoints and crash recovery.
//!
//! The recovery unit is one shard (the paper's server machines hold
//! disjoint shard sets, and production PS deployments fail over shard by
//! shard). Checkpoints round-trip through the on-disk `HET-CKPT v1`
//! text format — footer, checksum, validation and all — so the recovery
//! path exercises exactly the bytes an operator would restore from, not
//! a privileged in-memory shortcut.
//!
//! Failing over restores the last checkpoint and *loses* every update
//! applied since it was taken. The loss is quantified as **clock
//! regression**: each embedding's global clock `c_g` counts the updates
//! applied to it, so `Σ (live clock − checkpointed clock)` over the
//! shard's keys is the exact number of vanished updates. Bounded
//! staleness then absorbs the regression the same way it absorbs stale
//! cached reads — which is the thesis of the fault-tolerance story.

use crate::checkpoint::{read_checkpoint, write_checkpoint};
use crate::server::PsServer;
use crate::Key;
use std::collections::HashMap;
use std::io;

/// What one shard failover did.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FailoverOutcome {
    /// The shard that failed over.
    pub shard: usize,
    /// Rows reinstalled from the checkpoint.
    pub rows_restored: usize,
    /// Keys that were live on the shard but absent from the checkpoint
    /// (they revert to lazy re-initialisation on next touch).
    pub keys_lost: usize,
    /// Total clock regression: updates applied since the checkpoint
    /// that the failover discarded.
    pub lost_updates: u64,
}

/// Per-shard checkpoint blobs in the `HET-CKPT v1` wire format.
pub struct ShardCheckpointStore {
    dim: usize,
    blobs: Vec<Option<Vec<u8>>>,
}

impl ShardCheckpointStore {
    /// An empty store for `n_shards` shards of `dim`-dimensional rows.
    pub fn new(n_shards: usize, dim: usize) -> Self {
        ShardCheckpointStore {
            dim,
            blobs: vec![None; n_shards],
        }
    }

    /// Number of shards tracked.
    pub fn n_shards(&self) -> usize {
        self.blobs.len()
    }

    /// True once `shard` has at least one checkpoint.
    pub fn has_checkpoint(&self, shard: usize) -> bool {
        self.blobs[shard].is_some()
    }

    /// Snapshots one shard through the wire format, replacing its
    /// previous checkpoint. Returns the number of rows captured. On
    /// error (e.g. a non-finite vector mid-divergence) the previous
    /// checkpoint is kept — a stale recovery point beats a corrupt one.
    pub fn checkpoint_shard(&mut self, server: &PsServer, shard: usize) -> io::Result<usize> {
        let rows = server.export_shard_rows(shard);
        let mut buf = Vec::new();
        write_checkpoint(&mut buf, self.dim, &rows)?;
        self.blobs[shard] = Some(buf);
        if het_trace::enabled() {
            het_trace::counter_add_at("ps", "checkpoint_shards", Some(shard as u64), 1);
            het_trace::counter_add_at(
                "ps",
                "checkpoint_rows",
                Some(shard as u64),
                rows.len() as u64,
            );
        }
        Ok(rows.len())
    }

    /// Snapshots every shard; returns total rows captured.
    pub fn checkpoint_all(&mut self, server: &PsServer) -> io::Result<usize> {
        let mut total = 0;
        for shard in 0..self.blobs.len() {
            total += self.checkpoint_shard(server, shard)?;
        }
        Ok(total)
    }

    /// Crashes `shard` (dropping its live entries) and restores it from
    /// the last checkpoint — or to empty if none was ever taken. The
    /// outcome reports exactly what the failover lost.
    pub fn fail_and_restore(&self, server: &PsServer, shard: usize) -> io::Result<FailoverOutcome> {
        het_trace::counter_add_at("ps", "failovers", Some(shard as u64), 1);
        let live = server.clear_shard(shard);
        let rows = match &self.blobs[shard] {
            Some(blob) => read_checkpoint(blob.as_slice())?.1,
            None => Vec::new(),
        };
        let restored_clocks: HashMap<Key, u64> = rows.iter().map(|r| (r.key, r.clock)).collect();
        for row in &rows {
            server.restore_entry(row.key, row.vector.clone(), row.clock);
        }
        let mut outcome = FailoverOutcome {
            shard,
            rows_restored: rows.len(),
            ..Default::default()
        };
        for (key, live_clock) in live {
            match restored_clocks.get(&key) {
                Some(&ckpt_clock) => {
                    outcome.lost_updates += live_clock.saturating_sub(ckpt_clock);
                }
                None => {
                    outcome.keys_lost += 1;
                    outcome.lost_updates += live_clock;
                }
            }
        }
        Ok(outcome)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimizer::ServerOptimizer;
    use crate::server::PsConfig;

    fn server() -> PsServer {
        PsServer::new(PsConfig {
            dim: 2,
            n_shards: 4,
            lr: 0.5,
            seed: 11,
            optimizer: ServerOptimizer::Sgd,
            grad_clip: None,
        })
    }

    /// Keys guaranteed to hash to distinct shards would be fragile;
    /// instead pick enough keys that every shard is populated.
    fn populate(s: &PsServer, n: u64, pushes: u64) {
        for k in 0..n {
            for _ in 0..pushes {
                s.push_inc(k, &[1.0, -1.0]);
            }
        }
    }

    #[test]
    fn failover_restores_checkpointed_state_exactly() {
        let s = server();
        populate(&s, 40, 2);
        let mut store = ShardCheckpointStore::new(s.n_shards(), s.dim());
        store.checkpoint_all(&s).unwrap();
        let snapshot: Vec<_> = (0..40).map(|k| s.pull(k)).collect();

        let shard = s.shard_index_of(7);
        let outcome = store.fail_and_restore(&s, shard).unwrap();
        assert_eq!(outcome.shard, shard);
        assert!(outcome.rows_restored > 0);
        assert_eq!(
            outcome.lost_updates, 0,
            "nothing written since the checkpoint"
        );
        for (k, before) in (0..40).zip(&snapshot) {
            assert_eq!(
                &s.pull(k),
                before,
                "key {k} must survive failover bit-identically"
            );
        }
    }

    #[test]
    fn updates_since_checkpoint_are_counted_as_clock_regression() {
        let s = server();
        populate(&s, 40, 1);
        let mut store = ShardCheckpointStore::new(s.n_shards(), s.dim());
        store.checkpoint_all(&s).unwrap();

        let shard = s.shard_index_of(3);
        // Apply post-checkpoint updates to keys on that shard only.
        let on_shard: Vec<u64> = (0..40).filter(|&k| s.shard_index_of(k) == shard).collect();
        assert!(on_shard.len() >= 2, "need several keys on the shard");
        for &k in &on_shard {
            s.push_inc(k, &[1.0, 1.0]);
            s.push_inc(k, &[1.0, 1.0]);
        }
        let outcome = store.fail_and_restore(&s, shard).unwrap();
        assert_eq!(outcome.lost_updates, 2 * on_shard.len() as u64);
        assert_eq!(outcome.keys_lost, 0);
        // Clocks regressed to the checkpoint.
        for &k in &on_shard {
            assert_eq!(s.clock_of(k), 1);
        }
    }

    #[test]
    fn keys_never_checkpointed_are_lost_entirely() {
        let s = server();
        populate(&s, 10, 1);
        let mut store = ShardCheckpointStore::new(s.n_shards(), s.dim());
        store.checkpoint_all(&s).unwrap();
        // A brand-new key materialises after the checkpoint.
        let fresh = (10..100)
            .find(|&k| s.shard_index_of(k) == s.shard_index_of(0))
            .unwrap();
        s.push_inc(fresh, &[1.0, 1.0]);

        let outcome = store.fail_and_restore(&s, s.shard_index_of(0)).unwrap();
        assert_eq!(outcome.keys_lost, 1);
        assert!(outcome.lost_updates >= 1);
        // The key reverts to deterministic lazy init on next touch.
        assert_eq!(s.clock_of(fresh), 0);
        let reinit = s.pull(fresh);
        assert_eq!(
            reinit,
            server().pull(fresh),
            "re-init must match a fresh server"
        );
    }

    #[test]
    fn failover_without_any_checkpoint_empties_the_shard() {
        let s = server();
        populate(&s, 20, 3);
        let store = ShardCheckpointStore::new(s.n_shards(), s.dim());
        let shard = 2;
        let live_keys: Vec<u64> = (0..20).filter(|&k| s.shard_index_of(k) == shard).collect();
        let outcome = store.fail_and_restore(&s, shard).unwrap();
        assert_eq!(outcome.rows_restored, 0);
        assert_eq!(outcome.keys_lost, live_keys.len());
        assert_eq!(outcome.lost_updates, 3 * live_keys.len() as u64);
        for &k in &live_keys {
            assert_eq!(s.clock_of(k), 0);
        }
    }

    #[test]
    fn other_shards_are_untouched_by_failover() {
        let s = server();
        populate(&s, 40, 2);
        let mut store = ShardCheckpointStore::new(s.n_shards(), s.dim());
        store.checkpoint_all(&s).unwrap();
        // More updates everywhere, then fail shard 1 only.
        populate(&s, 40, 1);
        let snapshot: Vec<_> = (0..40).map(|k| s.pull(k)).collect();
        let _ = store.fail_and_restore(&s, 1).unwrap();
        for (k, before) in (0..40).zip(&snapshot) {
            if s.shard_index_of(k) != 1 {
                assert_eq!(&s.pull(k), before, "key {k} on an unaffected shard changed");
            }
        }
    }
}
