//! # HET — cache-enabled distributed framework for huge embedding models
//!
//! A from-scratch Rust reproduction of *"HET: Scaling out Huge Embedding
//! Model Training via Cache-enabled Distributed Framework"* (Miao, Zhang,
//! Shi, Nie, Yang, Tao, Cui — PVLDB 15(2), 2022).
//!
//! HET accelerates data-parallel training of models dominated by huge
//! embedding tables by giving every worker a **cache of hot embeddings**
//! governed by a **per-embedding clock-bounded consistency model** that
//! tolerates staleness on *both reads and writes*. This crate is the
//! one-stop facade: it re-exports the whole stack.
//!
//! | Layer | Crate | What it provides |
//! |---|---|---|
//! | simulation | [`simnet`] | simulated links, collectives, byte accounting |
//! | math | [`tensor`] | matrices, layers, losses, SGD |
//! | workloads | [`data`] | Zipf CTR streams, power-law graphs, metrics |
//! | substrate | [`ps`] | sharded versioned embedding parameter server |
//! | substrate | [`cache`] | the cache table, clocks, LRU/LFU/LightLFU |
//! | runtime | [`runtime`] | the cluster event loop: processes, faults, clocks |
//! | framework | [`core`] | HET client, consistency model, trainer |
//! | models | [`models`] | WDL, DeepFM, DCN, GraphSAGE |
//! | serving | [`serve`] | online inference replicas over the cached store |
//! | observability | [`trace`] | deterministic structured event traces |
//!
//! ## Quickstart
//!
//! ```
//! use het::prelude::*;
//!
//! // A small Criteo-like CTR workload.
//! let dataset = CtrDataset::new(CtrConfig::tiny(42));
//! // Full HET: hybrid architecture + cache, staleness s = 10.
//! let config = TrainerConfig::tiny(SystemPreset::HetCache { staleness: 10 });
//! let mut trainer = Trainer::new(config, dataset, |rng| {
//!     WideDeep::new(rng, 4, 8, &[16])
//! });
//! let report = trainer.run();
//! println!(
//!     "{}: {:.3} metric after {} iterations, {:.1}% comm reduction possible",
//!     report.system, report.final_metric, report.total_iterations,
//!     100.0 * report.cache.hit_rate()
//! );
//! ```

#![warn(missing_docs)]

pub use het_cache as cache;
pub use het_core as core;
pub use het_data as data;
pub use het_json as json;
pub use het_models as models;
pub use het_ps as ps;
pub use het_runtime as runtime;
pub use het_serve as serve;
pub use het_simnet as simnet;
pub use het_tensor as tensor;
pub use het_trace as trace;

/// The most common imports in one place.
pub mod prelude {
    pub use het_cache::{CacheStats, PolicyKind};
    pub use het_core::config::{
        Backbone, DenseSync, SparseMode, StoreSpec, SyncMode, SystemConfig, SystemPreset,
        TieredConfig, TrainerConfig,
    };
    pub use het_core::{
        FaultConfig, FaultRecord, FaultStats, HetClient, ParallelReport, PrefetchAudit,
        PrefetchSummary, Prefetcher, StoreSummary, TrainReport, Trainer,
    };
    pub use het_data::{
        auc, CtrBatch, CtrConfig, CtrDataset, GnnBatch, Graph, GraphConfig, Key, NeighborSampler,
        ZipfSampler,
    };
    pub use het_models::{
        Dataset, DeepCross, DeepFm, EmbeddingModel, EmbeddingStore, GnnDataset, GraphSage,
        MetricKind, SparseGrads, WideDeep, XDeepFm,
    };
    pub use het_ps::{
        CheckpointRow, FailoverOutcome, PsConfig, PsServer, ServerOptimizer, ShardCheckpointStore,
    };
    pub use het_runtime::{ClusterRuntime, Ctx, Event, ExecutionBackend, Process, ProcessId};
    pub use het_serve::{
        run_chaos, run_colocated, run_threaded_colocated, run_threaded_serve, AutoscaleConfig,
        ChaosConfig, ChaosReport, ColocatedReport, ReshardPlan, ServeConfig, ServeReport, ServeSim,
        SupervisionConfig, ThreadedServeReport,
    };
    pub use het_simnet::{
        ClusterSpec, CommCategory, CommStats, FaultEvent, FaultPlan, FaultSpec, LinkSpec,
        SimDuration, SimTime,
    };
}
