//! Property tests: `from_str(to_string(v)) == v` for every value the
//! encoder can emit in canonical form.
//!
//! "Canonical" pins down the one representation the parser produces
//! for each number class: non-negative integers are `UInt`, negative
//! integers are `Int`, and floats are `Num` — finite, and (when
//! integral) small enough that the `.0` suffix survives (`|x| < 1e15`
//! prints as `x.0`; above that the digit string re-parses as an
//! integer). The generator below only produces canonical values, which
//! is exactly the set `ToJson` implementations in this workspace emit.

use het_json::{from_str, Json};
use het_rng::rngs::StdRng;
use het_rng::{Rng, SeedableRng};

/// Strings that historically break hand-rolled JSON codecs.
const NASTY_STRINGS: &[&str] = &[
    "",
    " ",
    "\"",
    "\\",
    "\\\\\"",
    "\n\r\t",
    "\u{0}\u{1}\u{1f}",         // control characters → \u00xx escapes
    "a\u{8}b\u{c}c",            // backspace / form feed
    "日本語 ключ ελληνικά",     // multi-byte UTF-8
    "emoji \u{1F600}\u{1F680}", // astral plane (surrogate pairs in \u form)
    "tab\tand\nnewline",
    "{\"not\":\"json\"}",
    "trailing backslash \\",
    "\u{7f}\u{80}\u{7ff}\u{800}",
];

fn random_string(rng: &mut StdRng) -> String {
    if rng.gen_bool(0.4) {
        return NASTY_STRINGS[rng.gen_range(0..NASTY_STRINGS.len())].to_string();
    }
    let len = rng.gen_range(0usize..12);
    (0..len)
        .map(|_| match rng.gen_range(0u32..6) {
            0 => char::from_u32(rng.gen_range(0x20u32..0x7f)).unwrap(),
            1 => char::from_u32(rng.gen_range(0u32..0x20)).unwrap(), // control
            2 => ['"', '\\', '/', '\n', '\t'][rng.gen_range(0usize..5)],
            3 => char::from_u32(rng.gen_range(0x80u32..0x800)).unwrap(),
            4 => {
                // Avoid the surrogate range [0xD800, 0xE000).
                let c = rng.gen_range(0x800u32..0xD800);
                char::from_u32(c).unwrap()
            }
            _ => char::from_u32(rng.gen_range(0x10000u32..0x10400)).unwrap(), // astral
        })
        .collect()
}

/// Number edge cases that must survive a round trip exactly.
const EDGE_UINTS: &[u64] = &[0, 1, u64::MAX, u64::MAX - 1, i64::MAX as u64, 1 << 53];
const EDGE_INTS: &[i64] = &[-1, i64::MIN, i64::MIN + 1, -(1 << 53)];
const EDGE_NUMS: &[f64] = &[
    0.5,
    -0.5,
    2.0,
    -2.0,
    1.5e-9,
    f64::EPSILON,
    f64::MIN_POSITIVE,
    1e11,
    -99999.25,
    0.1 + 0.2, // classic shortest-repr stress value
];

fn random_number(rng: &mut StdRng) -> Json {
    match rng.gen_range(0u32..6) {
        0 => Json::UInt(EDGE_UINTS[rng.gen_range(0..EDGE_UINTS.len())]),
        1 => Json::UInt(rng.gen_range(0..u64::MAX)),
        // Negative only: a non-negative Int re-parses as UInt.
        2 => Json::Int(EDGE_INTS[rng.gen_range(0..EDGE_INTS.len())]),
        3 => Json::Int(-rng.gen_range(1i64..i64::MAX)),
        4 => Json::Num(EDGE_NUMS[rng.gen_range(0..EDGE_NUMS.len())]),
        _ => {
            // Finite, and |x| < 1e12 so integral values keep their ".0".
            let x = (rng.gen_range(0u64..1 << 52) as f64 / (1u64 << 20) as f64)
                * if rng.gen_bool(0.5) { -1.0 } else { 1.0 };
            Json::Num(x)
        }
    }
}

fn random_value(rng: &mut StdRng, depth: usize) -> Json {
    let scalar_only = depth >= 4;
    match rng.gen_range(0u32..if scalar_only { 4 } else { 6 }) {
        0 => match rng.gen_range(0u32..3) {
            0 => Json::Null,
            1 => Json::Bool(true),
            _ => Json::Bool(false),
        },
        1 | 2 => random_number(rng),
        3 => Json::Str(random_string(rng)),
        4 => {
            let n = rng.gen_range(0usize..5);
            Json::Arr((0..n).map(|_| random_value(rng, depth + 1)).collect())
        }
        _ => {
            let n = rng.gen_range(0usize..5);
            Json::Obj(
                (0..n)
                    .map(|_| (random_string(rng), random_value(rng, depth + 1)))
                    .collect(),
            )
        }
    }
}

#[test]
fn compact_encoding_round_trips() {
    let mut rng = StdRng::seed_from_u64(0x1507);
    for case in 0..2_000 {
        let v = random_value(&mut rng, 0);
        let text = v.encode();
        let back = from_str(&text).unwrap_or_else(|e| panic!("case {case}: {e:?} in {text}"));
        assert_eq!(v, back, "case {case}: {text}");
    }
}

#[test]
fn pretty_encoding_round_trips() {
    let mut rng = StdRng::seed_from_u64(0x1508);
    for case in 0..1_000 {
        let v = random_value(&mut rng, 0);
        let text = v.encode_pretty();
        let back = from_str(&text).unwrap_or_else(|e| panic!("case {case}: {e:?} in {text}"));
        assert_eq!(v, back, "case {case}: pretty form diverged");
    }
}

#[test]
fn number_class_boundaries_round_trip() {
    // The parser classifies by value, not by source type: integral
    // text → UInt if it fits, else Int, else Num. These are the
    // boundary values where a sloppy codec flips class.
    for &u in EDGE_UINTS {
        assert_eq!(from_str(&Json::UInt(u).encode()).unwrap(), Json::UInt(u));
    }
    for &i in EDGE_INTS {
        assert_eq!(from_str(&Json::Int(i).encode()).unwrap(), Json::Int(i));
    }
    for &x in EDGE_NUMS {
        assert_eq!(from_str(&Json::Num(x).encode()).unwrap(), Json::Num(x));
    }
    // u64::MAX + 1 in text form no longer fits an integer and falls
    // back to Num.
    assert_eq!(
        from_str("18446744073709551616").unwrap(),
        Json::Num(18446744073709551616.0)
    );
    // Just below i64::MIN likewise.
    assert_eq!(
        from_str("-9223372036854775809").unwrap(),
        Json::Num(-9223372036854775809.0)
    );
}

#[test]
fn nasty_strings_round_trip_as_keys_and_values() {
    for s in NASTY_STRINGS {
        let v = Json::Obj(vec![(s.to_string(), Json::Str(s.to_string()))]);
        assert_eq!(from_str(&v.encode()).unwrap(), v, "string {s:?}");
        assert_eq!(from_str(&v.encode_pretty()).unwrap(), v, "pretty {s:?}");
    }
}

#[test]
fn duplicate_object_keys_are_preserved() {
    // `Obj` is an ordered key/value list, not a map: duplicates are a
    // legal (if discouraged) JSON shape and must survive unchanged.
    let v = Json::Obj(vec![
        ("k".to_string(), Json::UInt(1)),
        ("k".to_string(), Json::UInt(2)),
    ]);
    assert_eq!(from_str(&v.encode()).unwrap(), v);
}
