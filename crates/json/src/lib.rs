//! Minimal JSON serialisation for experiment output.
//!
//! The repo builds hermetically (no crate registry), so this crate
//! stands in for the slice of `serde`/`serde_json` the workspace used:
//! turning report and benchmark-row structs into JSON strings, plus a
//! small recursive-descent parser ([`from_str`]) used by the trace
//! schema validator to read emitted JSONL back.
//!
//! Structs opt in by implementing [`ToJson`], usually via the
//! [`impl_to_json!`] macro which maps named fields 1:1 to object keys
//! (the same shape `#[derive(Serialize)]` produced).

#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A JSON value tree.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Unsigned integer, printed without a decimal point.
    UInt(u64),
    /// Signed integer, printed without a decimal point.
    Int(i64),
    /// Floating point; non-finite values serialise as `null`
    /// (JSON has no NaN/Infinity).
    Num(f64),
    /// String (escaped on output).
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object; key order is preserved as inserted.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Compact single-line encoding (matches `serde_json::to_string`).
    pub fn encode(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Pretty encoding with two-space indents
    /// (matches `serde_json::to_string_pretty`).
    pub fn encode_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::UInt(n) => {
                let _ = write!(out, "{n}");
            }
            Json::Int(n) => {
                let _ = write!(out, "{n}");
            }
            Json::Num(x) => {
                if x.is_finite() {
                    // Rust's shortest round-trip formatting; integral
                    // values get an explicit ".0" so readers see a float.
                    if x.fract() == 0.0 && x.abs() < 1e15 {
                        let _ = write!(out, "{x:.1}");
                    } else {
                        let _ = write!(out, "{x}");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                write_seq(out, indent, depth, '[', ']', items.len(), |out, i| {
                    items[i].write(out, indent, depth + 1)
                });
            }
            Json::Obj(fields) => {
                write_seq(out, indent, depth, '{', '}', fields.len(), |out, i| {
                    let (k, v) = &fields[i];
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                });
            }
        }
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(w) = indent {
            out.push('\n');
            for _ in 0..w * (depth + 1) {
                out.push(' ');
            }
        }
        item(out, i);
    }
    if let Some(w) = indent {
        out.push('\n');
        for _ in 0..w * depth {
            out.push(' ');
        }
    }
    out.push(close);
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Conversion into a [`Json`] tree; the analogue of `serde::Serialize`.
pub trait ToJson {
    /// Builds the JSON value for `self`.
    fn to_json(&self) -> Json;
}

/// Compact encoding of any [`ToJson`] value
/// (drop-in for `serde_json::to_string`).
pub fn to_string<T: ToJson + ?Sized>(value: &T) -> String {
    value.to_json().encode()
}

/// Pretty encoding of any [`ToJson`] value
/// (drop-in for `serde_json::to_string_pretty`).
pub fn to_string_pretty<T: ToJson + ?Sized>(value: &T) -> String {
    value.to_json().encode_pretty()
}

impl ToJson for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Json { Json::UInt(*self as u64) }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Json { Json::Int(*self as i64) }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64, isize);

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::Num(*self)
    }
}

impl ToJson for f32 {
    fn to_json(&self) -> Json {
        Json::Num(*self as f64)
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl ToJson for str {
    fn to_json(&self) -> Json {
        Json::Str(self.to_string())
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn to_json(&self) -> Json {
        (**self).to_json()
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(v) => v.to_json(),
            None => Json::Null,
        }
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson, const N: usize> ToJson for [T; N] {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<A: ToJson, B: ToJson> ToJson for (A, B) {
    fn to_json(&self) -> Json {
        Json::Arr(vec![self.0.to_json(), self.1.to_json()])
    }
}

impl<V: ToJson> ToJson for BTreeMap<String, V> {
    fn to_json(&self) -> Json {
        Json::Obj(self.iter().map(|(k, v)| (k.clone(), v.to_json())).collect())
    }
}

/// Implements [`ToJson`] for a struct with named fields, mapping each
/// field to a same-named object key — the replacement for
/// `#[derive(Serialize)]`.
///
/// ```
/// use het_json::{impl_to_json, to_string};
/// struct Row { system: String, seconds: f64 }
/// impl_to_json!(Row { system, seconds });
/// let row = Row { system: "het".into(), seconds: 1.5 };
/// assert_eq!(to_string(&row), r#"{"system":"het","seconds":1.5}"#);
/// ```
#[macro_export]
macro_rules! impl_to_json {
    ($name:ident { $($field:ident),* $(,)? }) => {
        impl $crate::ToJson for $name {
            fn to_json(&self) -> $crate::Json {
                $crate::Json::Obj(vec![
                    $((stringify!($field).to_string(),
                       $crate::ToJson::to_json(&self.$field)),)*
                ])
            }
        }
    };
}

/// Error from [`from_str`]: what went wrong and the byte offset where.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset into the input where parsing failed.
    pub offset: usize,
    /// Human-readable description of the failure.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Parses one JSON document. Integers that fit become [`Json::UInt`] /
/// [`Json::Int`]; anything with a fraction or exponent becomes
/// [`Json::Num`]. Trailing non-whitespace input is an error.
pub fn from_str(input: &str) -> Result<Json, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> ParseError {
        ParseError {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), ParseError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", byte as char)))
        }
    }

    fn expect_literal(&mut self, lit: &str, value: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn parse_value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'n') => self.expect_literal("null", Json::Null),
            Some(b't') => self.expect_literal("true", Json::Bool(true)),
            Some(b'f') => self.expect_literal("false", Json::Bool(false)),
            Some(b'"') => self.parse_string().map(Json::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn parse_array(&mut self) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.parse_hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: require a low surrogate.
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.parse_hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                                } else {
                                    return Err(self.err("lone high surrogate"));
                                }
                            } else if (0xDC00..0xE000).contains(&hi) {
                                return Err(self.err("lone low surrogate"));
                            } else {
                                hi
                            };
                            match char::from_u32(code) {
                                Some(c) => out.push(c),
                                None => return Err(self.err("invalid unicode escape")),
                            }
                        }
                        _ => return Err(self.err("unknown escape character")),
                    }
                }
                // Multi-byte UTF-8 continuation: the input is a &str, so
                // raw bytes are valid UTF-8; copy them through.
                _ if b < 0x20 => return Err(self.err("raw control character in string")),
                _ => {
                    let start = self.pos - 1;
                    let mut end = self.pos;
                    while end < self.bytes.len() && self.bytes[end] & 0xC0 == 0x80 {
                        end += 1;
                    }
                    // Safe: start..end is a char boundary-to-boundary slice.
                    out.push_str(std::str::from_utf8(&self.bytes[start..end]).map_err(|_| {
                        ParseError {
                            offset: start,
                            message: "invalid UTF-8".to_string(),
                        }
                    })?);
                    self.pos = end;
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, ParseError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .ok()
            .and_then(|s| u32::from_str_radix(s, 16).ok());
        match hex {
            Some(v) => {
                self.pos += 4;
                Ok(v)
            }
            None => Err(self.err("invalid \\u escape")),
        }
    }

    fn parse_number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut integral = true;
        if self.peek() == Some(b'.') {
            integral = false;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            integral = false;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap_or("");
        if integral {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Json::UInt(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Json::Int(i));
            }
        }
        match text.parse::<f64>() {
            Ok(x) => Ok(Json::Num(x)),
            Err(_) => Err(ParseError {
                offset: start,
                message: "invalid number".to_string(),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_encode() {
        assert_eq!(to_string(&42u64), "42");
        assert_eq!(to_string(&-7i32), "-7");
        assert_eq!(to_string(&true), "true");
        assert_eq!(to_string(&1.5f64), "1.5");
        assert_eq!(to_string(&2.0f64), "2.0");
        assert_eq!(to_string(&f64::NAN), "null");
        assert_eq!(to_string(&f64::INFINITY), "null");
        assert_eq!(to_string("hi"), "\"hi\"");
        assert_eq!(to_string(&Option::<u32>::None), "null");
    }

    #[test]
    fn strings_escape() {
        assert_eq!(to_string("a\"b\\c\nd"), r#""a\"b\\c\nd""#);
        assert_eq!(to_string("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn arrays_and_objects() {
        let v = vec![1u64, 2, 3];
        assert_eq!(to_string(&v), "[1,2,3]");
        let obj = Json::Obj(vec![
            ("a".into(), Json::UInt(1)),
            ("b".into(), Json::Arr(vec![])),
        ]);
        assert_eq!(obj.encode(), r#"{"a":1,"b":[]}"#);
    }

    #[test]
    fn macro_matches_serde_shape() {
        struct Row {
            system: String,
            n: usize,
        }
        impl_to_json!(Row { system, n });
        let r = Row {
            system: "test".into(),
            n: 3,
        };
        assert_eq!(to_string(&r), r#"{"system":"test","n":3}"#);
    }

    #[test]
    fn pretty_output_indents() {
        let obj = Json::Obj(vec![("xs".into(), Json::Arr(vec![Json::UInt(1)]))]);
        assert_eq!(obj.encode_pretty(), "{\n  \"xs\": [\n    1\n  ]\n}");
    }

    #[test]
    fn fixed_arrays_encode() {
        let a: [u64; 3] = [4, 5, 6];
        assert_eq!(to_string(&a), "[4,5,6]");
    }

    #[test]
    fn parse_scalars() {
        assert_eq!(from_str("null").unwrap(), Json::Null);
        assert_eq!(from_str("true").unwrap(), Json::Bool(true));
        assert_eq!(from_str(" false ").unwrap(), Json::Bool(false));
        assert_eq!(from_str("42").unwrap(), Json::UInt(42));
        assert_eq!(from_str("-7").unwrap(), Json::Int(-7));
        assert_eq!(from_str("1.5").unwrap(), Json::Num(1.5));
        assert_eq!(from_str("2.0").unwrap(), Json::Num(2.0));
        assert_eq!(from_str("1e3").unwrap(), Json::Num(1000.0));
        assert_eq!(from_str("\"hi\"").unwrap(), Json::Str("hi".into()));
    }

    #[test]
    fn parse_huge_integers_degrade_to_float() {
        assert_eq!(
            from_str("18446744073709551615").unwrap(),
            Json::UInt(u64::MAX)
        );
        assert!(matches!(
            from_str("18446744073709551616").unwrap(),
            Json::Num(_)
        ));
        assert_eq!(
            from_str("-9223372036854775808").unwrap(),
            Json::Int(i64::MIN)
        );
    }

    #[test]
    fn parse_string_escapes() {
        assert_eq!(
            from_str(r#""a\"b\\c\nd\u0041""#).unwrap(),
            Json::Str("a\"b\\c\ndA".into())
        );
        assert_eq!(
            from_str(r#""\ud83d\ude00""#).unwrap(),
            Json::Str("\u{1F600}".into())
        );
        assert_eq!(from_str("\"héllo\"").unwrap(), Json::Str("héllo".into()));
    }

    #[test]
    fn parse_nested_structures() {
        let v = from_str(r#"{"a":[1,2,{"b":null}],"c":true}"#).unwrap();
        assert_eq!(
            v,
            Json::Obj(vec![
                (
                    "a".into(),
                    Json::Arr(vec![
                        Json::UInt(1),
                        Json::UInt(2),
                        Json::Obj(vec![("b".into(), Json::Null)]),
                    ])
                ),
                ("c".into(), Json::Bool(true)),
            ])
        );
    }

    #[test]
    fn parse_round_trips_encoder_output() {
        let original = Json::Obj(vec![
            ("type".into(), Json::Str("event".into())),
            ("t".into(), Json::UInt(123_456_789)),
            ("w".into(), Json::Null),
            ("metric".into(), Json::Num(0.75)),
            ("neg".into(), Json::Int(-3)),
            ("fields".into(), Json::Obj(vec![])),
            ("tags".into(), Json::Arr(vec![Json::Str("a\"b\n".into())])),
        ]);
        let encoded = original.encode();
        assert_eq!(from_str(&encoded).unwrap(), original);
        let pretty = original.encode_pretty();
        assert_eq!(from_str(&pretty).unwrap(), original);
    }

    #[test]
    fn parse_rejects_malformed_input() {
        for bad in [
            "", "{", "[1,", "tru", "\"abc", "{\"a\"}", "1 2", "{'a':1}", "[1 2]", "\"\\x\"",
            "nulll",
        ] {
            assert!(from_str(bad).is_err(), "should reject {bad:?}");
        }
    }
}
