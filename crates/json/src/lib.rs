//! Minimal JSON serialisation for experiment output.
//!
//! The repo builds hermetically (no crate registry), so this crate
//! stands in for the slice of `serde`/`serde_json` the workspace used:
//! turning report and benchmark-row structs into JSON strings. There is
//! no deserialisation — experiment JSON is consumed by external
//! plotting tools, never read back.
//!
//! Structs opt in by implementing [`ToJson`], usually via the
//! [`impl_to_json!`] macro which maps named fields 1:1 to object keys
//! (the same shape `#[derive(Serialize)]` produced).

#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A JSON value tree.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Unsigned integer, printed without a decimal point.
    UInt(u64),
    /// Signed integer, printed without a decimal point.
    Int(i64),
    /// Floating point; non-finite values serialise as `null`
    /// (JSON has no NaN/Infinity).
    Num(f64),
    /// String (escaped on output).
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object; key order is preserved as inserted.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Compact single-line encoding (matches `serde_json::to_string`).
    pub fn encode(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Pretty encoding with two-space indents
    /// (matches `serde_json::to_string_pretty`).
    pub fn encode_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::UInt(n) => {
                let _ = write!(out, "{n}");
            }
            Json::Int(n) => {
                let _ = write!(out, "{n}");
            }
            Json::Num(x) => {
                if x.is_finite() {
                    // Rust's shortest round-trip formatting; integral
                    // values get an explicit ".0" so readers see a float.
                    if x.fract() == 0.0 && x.abs() < 1e15 {
                        let _ = write!(out, "{x:.1}");
                    } else {
                        let _ = write!(out, "{x}");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                write_seq(out, indent, depth, '[', ']', items.len(), |out, i| {
                    items[i].write(out, indent, depth + 1)
                });
            }
            Json::Obj(fields) => {
                write_seq(out, indent, depth, '{', '}', fields.len(), |out, i| {
                    let (k, v) = &fields[i];
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                });
            }
        }
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(w) = indent {
            out.push('\n');
            for _ in 0..w * (depth + 1) {
                out.push(' ');
            }
        }
        item(out, i);
    }
    if let Some(w) = indent {
        out.push('\n');
        for _ in 0..w * depth {
            out.push(' ');
        }
    }
    out.push(close);
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Conversion into a [`Json`] tree; the analogue of `serde::Serialize`.
pub trait ToJson {
    /// Builds the JSON value for `self`.
    fn to_json(&self) -> Json;
}

/// Compact encoding of any [`ToJson`] value
/// (drop-in for `serde_json::to_string`).
pub fn to_string<T: ToJson + ?Sized>(value: &T) -> String {
    value.to_json().encode()
}

/// Pretty encoding of any [`ToJson`] value
/// (drop-in for `serde_json::to_string_pretty`).
pub fn to_string_pretty<T: ToJson + ?Sized>(value: &T) -> String {
    value.to_json().encode_pretty()
}

impl ToJson for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Json { Json::UInt(*self as u64) }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Json { Json::Int(*self as i64) }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64, isize);

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::Num(*self)
    }
}

impl ToJson for f32 {
    fn to_json(&self) -> Json {
        Json::Num(*self as f64)
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl ToJson for str {
    fn to_json(&self) -> Json {
        Json::Str(self.to_string())
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn to_json(&self) -> Json {
        (**self).to_json()
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(v) => v.to_json(),
            None => Json::Null,
        }
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson, const N: usize> ToJson for [T; N] {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<A: ToJson, B: ToJson> ToJson for (A, B) {
    fn to_json(&self) -> Json {
        Json::Arr(vec![self.0.to_json(), self.1.to_json()])
    }
}

impl<V: ToJson> ToJson for BTreeMap<String, V> {
    fn to_json(&self) -> Json {
        Json::Obj(self.iter().map(|(k, v)| (k.clone(), v.to_json())).collect())
    }
}

/// Implements [`ToJson`] for a struct with named fields, mapping each
/// field to a same-named object key — the replacement for
/// `#[derive(Serialize)]`.
///
/// ```
/// use het_json::{impl_to_json, to_string};
/// struct Row { system: String, seconds: f64 }
/// impl_to_json!(Row { system, seconds });
/// let row = Row { system: "het".into(), seconds: 1.5 };
/// assert_eq!(to_string(&row), r#"{"system":"het","seconds":1.5}"#);
/// ```
#[macro_export]
macro_rules! impl_to_json {
    ($name:ident { $($field:ident),* $(,)? }) => {
        impl $crate::ToJson for $name {
            fn to_json(&self) -> $crate::Json {
                $crate::Json::Obj(vec![
                    $((stringify!($field).to_string(),
                       $crate::ToJson::to_json(&self.$field)),)*
                ])
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_encode() {
        assert_eq!(to_string(&42u64), "42");
        assert_eq!(to_string(&-7i32), "-7");
        assert_eq!(to_string(&true), "true");
        assert_eq!(to_string(&1.5f64), "1.5");
        assert_eq!(to_string(&2.0f64), "2.0");
        assert_eq!(to_string(&f64::NAN), "null");
        assert_eq!(to_string(&f64::INFINITY), "null");
        assert_eq!(to_string("hi"), "\"hi\"");
        assert_eq!(to_string(&Option::<u32>::None), "null");
    }

    #[test]
    fn strings_escape() {
        assert_eq!(to_string("a\"b\\c\nd"), r#""a\"b\\c\nd""#);
        assert_eq!(to_string("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn arrays_and_objects() {
        let v = vec![1u64, 2, 3];
        assert_eq!(to_string(&v), "[1,2,3]");
        let obj = Json::Obj(vec![
            ("a".into(), Json::UInt(1)),
            ("b".into(), Json::Arr(vec![])),
        ]);
        assert_eq!(obj.encode(), r#"{"a":1,"b":[]}"#);
    }

    #[test]
    fn macro_matches_serde_shape() {
        struct Row {
            system: String,
            n: usize,
        }
        impl_to_json!(Row { system, n });
        let r = Row {
            system: "test".into(),
            n: 3,
        };
        assert_eq!(to_string(&r), r#"{"system":"test","n":3}"#);
    }

    #[test]
    fn pretty_output_indents() {
        let obj = Json::Obj(vec![("xs".into(), Json::Arr(vec![Json::UInt(1)]))]);
        assert_eq!(obj.encode_pretty(), "{\n  \"xs\": [\n    1\n  ]\n}");
    }

    #[test]
    fn fixed_arrays_encode() {
        let a: [u64; 3] = [4, 5, 6];
        assert_eq!(to_string(&a), "[4,5,6]");
    }
}
