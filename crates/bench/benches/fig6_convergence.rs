//! Figure 6 — convergence curves: metric vs simulated time for the six
//! workloads × the evaluated systems (TF PS, TF Parallax, HET PS,
//! HET Hybrid, HET Cache s=10, HET Cache s=100).
//!
//! The paper's findings this regenerates: the ASP PS systems trail in
//! quality-per-time; HET Cache dominates every workload; s=100 beats
//! s=10 on time without losing quality.

use het_bench::{out, run_workload, RunSummary, Workload};
use het_core::config::SystemPreset;
use het_json::impl_to_json;

struct Curve {
    workload: String,
    system: String,
    points: Vec<(f64, f64)>, // (sim seconds, metric)
}

impl_to_json!(Curve {
    workload,
    system,
    points
});

fn main() {
    out::banner("Figure 6: convergence (metric vs simulated time), 8 workers, 1 GbE");

    let systems: Vec<(&str, SystemPreset)> = vec![
        ("TF PS", SystemPreset::TfPs),
        ("TF Parallax", SystemPreset::TfParallax),
        ("HET PS", SystemPreset::HetPs),
        ("HET Hybrid", SystemPreset::HetHybrid),
        ("HET Cache s=10", SystemPreset::HetCache { staleness: 10 }),
        ("HET Cache s=100", SystemPreset::HetCache { staleness: 100 }),
    ];

    let mut curves = Vec::new();
    let mut summaries = Vec::new();
    for workload in Workload::ALL {
        println!("--- {} ---", workload.name());
        for (name, preset) in &systems {
            let report = run_workload(workload, *preset, &|c| {
                c.max_iterations = 1_600;
                c.eval_every = 320;
            });
            let points: Vec<(f64, f64)> = report
                .curve
                .iter()
                .map(|p| (p.sim_time.as_secs_f64(), p.metric))
                .collect();
            let rendered: Vec<String> = points
                .iter()
                .map(|(t, m)| format!("({t:.1}s,{m:.3})"))
                .collect();
            println!("{:<16} {}", name, rendered.join(" "));
            summaries.push(RunSummary::from_report(workload, name, &report));
            curves.push(Curve {
                workload: workload.name().to_string(),
                system: name.to_string(),
                points,
            });
        }
        println!();
    }
    out::write_json("fig6_convergence_curves", &curves);
    out::write_json("fig6_convergence_summary", &summaries);

    println!("paper shape: HET Cache reaches any given metric level first on every");
    println!("workload; larger s converges faster in wall time at equal quality.");
}
