//! Serving sweep — tail latency vs. cache capacity.
//!
//! Runs the `het-serve` subsystem (2 replicas, Zipf-1.1 traffic at
//! 10 k req/s over 100 k keys on cluster A) across shrinking per-replica
//! cache capacities, warmed by SpaceSaving each time. The expected shape
//! mirrors the paper's cache argument from the serving side: as the
//! cache shrinks, the miss rate rises, every miss pays a PS round trip,
//! and p99 climbs monotonically. (The freshness tax of serving *while
//! training* is a co-scheduling question now — see `hetctl colocate`
//! and `het_serve::run_colocated`.)

use het_bench::out;
use het_json::impl_to_json;
use het_models::WideDeep;
use het_serve::{ServeConfig, ServeReport, ServeSim};

const SEED: u64 = 42;
/// Per-replica cache capacity as a fraction of the key space.
const CAPACITY_FRACS: [f64; 5] = [0.20, 0.10, 0.05, 0.02, 0.01];

struct SweepRow {
    capacity: u64,
    capacity_frac: f64,
    miss_rate: f64,
    invalidations: u64,
    throughput_rps: f64,
    mean_batch_size: f64,
    p50_us: f64,
    p95_us: f64,
    p99_us: f64,
    max_us: f64,
}

impl_to_json!(SweepRow {
    capacity,
    capacity_frac,
    miss_rate,
    invalidations,
    throughput_rps,
    mean_batch_size,
    p50_us,
    p95_us,
    p99_us,
    max_us,
});

fn run(capacity: usize) -> ServeReport {
    let mut cfg = ServeConfig::new(SEED);
    cfg.cache_capacity = capacity;
    cfg.pretrain_updates = 2_000;
    cfg.warmup_requests = 4_000;
    let (n_fields, dim) = (cfg.n_fields, cfg.dim);
    ServeSim::new(cfg, move |rng| WideDeep::new(rng, n_fields, dim, &[32])).run()
}

fn row(capacity: usize, frac: f64, r: &ServeReport) -> SweepRow {
    SweepRow {
        capacity: capacity as u64,
        capacity_frac: frac,
        miss_rate: r.cache.miss_rate(),
        invalidations: r.cache.invalidations,
        throughput_rps: r.throughput_rps,
        mean_batch_size: r.mean_batch_size,
        p50_us: r.latency_p50_ns as f64 / 1e3,
        p95_us: r.latency_p95_ns as f64 / 1e3,
        p99_us: r.latency_p99_ns as f64 / 1e3,
        max_us: r.latency_max_ns as f64 / 1e3,
    }
}

fn main() {
    out::banner("Serving sweep: p99 latency vs. cache capacity (warmed replicas)");

    let n_keys = ServeConfig::new(SEED).n_keys;
    println!(
        "{:>9} {:>6} {:>9} {:>7} {:>9} {:>9} {:>9} {:>9}",
        "capacity", "frac", "miss", "inval", "thru", "p50 (us)", "p99 (us)", "max"
    );
    let mut rows = Vec::new();
    let mut prev_p99 = 0u64;
    for frac in CAPACITY_FRACS {
        let capacity = ((n_keys as f64 * frac) as usize).max(1);
        let report = run(capacity);
        let r = row(capacity, frac, &report);
        println!(
            "{:>9} {:>6.2} {:>9.4} {:>7} {:>9.0} {:>9.1} {:>9.1} {:>9.1}",
            r.capacity,
            r.capacity_frac,
            r.miss_rate,
            r.invalidations,
            r.throughput_rps,
            r.p50_us,
            r.p99_us,
            r.max_us
        );
        assert!(
            report.latency_p99_ns >= prev_p99,
            "p99 must not improve as the cache shrinks \
             (capacity {capacity}: {} < {prev_p99})",
            report.latency_p99_ns
        );
        prev_p99 = report.latency_p99_ns;
        rows.push(r);
    }

    out::write_json("serve_sweep", &rows);

    println!("\nexpected shape: miss rate and p99 rise monotonically as the cache");
    println!("shrinks — every miss pays a staleness-validated PS round trip.");
}
