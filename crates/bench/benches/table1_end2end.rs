//! Table 1 — end-to-end convergence efficiency: simulated time to reach
//! each workload's quality target for TF Parallax, HET Hybrid, and
//! HET Cache (s = 10, 100), with speedups relative to HET Cache s=100
//! (the paper reports 6.37–20.68× vs TF Parallax and 4.36–5.14× vs
//! HET Hybrid).
//!
//! Like the paper, the ASP PS systems are excluded: they do not reach
//! the thresholds.

use het_bench::{out, run_workload, Workload};
use het_core::config::SystemPreset;
use het_json::impl_to_json;

struct Row {
    workload: String,
    system: String,
    time_to_target_s: Option<f64>,
    speedup_vs_het_cache: Option<f64>,
}

impl_to_json!(Row {
    workload,
    system,
    time_to_target_s,
    speedup_vs_het_cache
});

fn main() {
    out::banner("Table 1: end-to-end convergence time to the quality target");

    let systems: Vec<(&str, SystemPreset)> = vec![
        ("TF Parallax", SystemPreset::TfParallax),
        ("HET Hybrid", SystemPreset::HetHybrid),
        ("HET Cache s=10", SystemPreset::HetCache { staleness: 10 }),
        ("HET Cache s=100", SystemPreset::HetCache { staleness: 100 }),
    ];

    println!(
        "{:<14} {:>18} {:>16} {:>16} {:>18}",
        "workload", "TF Parallax", "HET Hybrid", "HET Cache s=10", "HET Cache s=100"
    );

    let mut rows = Vec::new();
    for workload in Workload::ALL {
        let target = workload.target_metric();
        let mut times: Vec<Option<f64>> = Vec::new();
        for (_, preset) in &systems {
            let report = run_workload(workload, *preset, &|c| {
                c.target_metric = Some(target);
                // The paper's D=128 halved: large enough that vector
                // traffic dominates clock messages.
                c.dim = if workload.is_ctr() { 64 } else { 32 };
                c.max_iterations = 2_800;
                c.eval_every = 200;
            });
            times.push(report.convergence_time());
        }
        // Reference column: HET Cache s=10 — at this compressed scale
        // (thousands of iterations, not the paper's ~10^6) s=10 is the
        // scale-matched analogue of the paper's s=100; see
        // EXPERIMENTS.md.
        let reference = times[2];
        let cells: Vec<String> = times
            .iter()
            .map(|t| match (t, reference) {
                (Some(t), Some(r)) if *t > 0.0 && r > 0.0 => {
                    format!("{:.1}s (x{:.2})", t, t / r)
                }
                (Some(t), _) => format!("{t:.1}s"),
                (None, _) => "n/a".to_string(),
            })
            .collect();
        println!(
            "{:<14} {:>18} {:>16} {:>16} {:>18}",
            workload.name(),
            cells[0],
            cells[1],
            cells[2],
            cells[3]
        );
        for ((name, _), t) in systems.iter().zip(&times) {
            rows.push(Row {
                workload: workload.name().to_string(),
                system: name.to_string(),
                time_to_target_s: *t,
                speedup_vs_het_cache: match (t, reference) {
                    (Some(t), Some(r)) if r > 0.0 => Some(t / r),
                    _ => None,
                },
            });
        }
    }
    out::write_json("table1_end2end", &rows);

    println!("\npaper shape: HET Cache is the fastest to every target; TF Parallax");
    println!("trails by the largest factor (paper: 6.4-20.7x with s=100 at full");
    println!("scale; here the scale-matched s=10 column is the reference).");
}
