//! Fault sweep — convergence under injected failures.
//!
//! Trains WDL-Criteo on HET Cache (s = 100) under increasing fault
//! intensity — worker crashes, PS-shard outages with checkpoint
//! failover, straggler windows, degraded links, message drops — and
//! reports how gracefully quality and epoch time degrade. A cache-less
//! HET Hybrid run at the heaviest level shows the contrast: without a
//! cache there is no degraded-read path, so every outage stalls the
//! reads it covers.
//!
//! The schedule is derived deterministically from the config seed;
//! rerunning this bench reproduces every crash, failover, and retry
//! bit-for-bit.

use het_bench::{out, run_workload, Workload};
use het_core::config::SystemPreset;
use het_core::{FaultConfig, TrainReport};
use het_json::impl_to_json;
use het_simnet::SimDuration;

const ITERS: u64 = 1_200;
const WORKERS: usize = 4;

struct SweepRow {
    level: String,
    system: String,
    final_metric: f64,
    sim_time_s: f64,
    worker_crashes: u64,
    shard_failovers: u64,
    degraded_reads: u64,
    blocked_ops: u64,
    retries: u64,
    straggler_slow_iters: u64,
    lost_updates: u64,
}

impl_to_json!(SweepRow {
    level,
    system,
    final_metric,
    sim_time_s,
    worker_crashes,
    shard_failovers,
    degraded_reads,
    blocked_ops,
    retries,
    straggler_slow_iters,
    lost_updates,
});

/// (level name, crashes, outages, stragglers, degradations, drop prob).
const LEVELS: [(&str, usize, usize, usize, usize, f64); 4] = [
    ("none", 0, 0, 0, 0, 0.0),
    ("light", 1, 1, 1, 0, 0.0),
    ("medium", 2, 2, 2, 1, 0.01),
    ("heavy", 4, 4, 3, 2, 0.05),
];

fn faults_at(level: &(&str, usize, usize, usize, usize, f64), horizon: SimDuration) -> FaultConfig {
    let &(_, crashes, outages, stragglers, degradations, drop) = level;
    let mut cfg = FaultConfig::disabled();
    if crashes == 0 && outages == 0 && stragglers == 0 && degradations == 0 && drop <= 0.0 {
        return cfg;
    }
    cfg.enabled = true;
    cfg.spec.worker_crashes = crashes;
    cfg.spec.shard_outages = outages;
    cfg.spec.stragglers = stragglers;
    cfg.spec.link_degradations = degradations;
    cfg.spec.message_drop_prob = drop;
    cfg.spec.horizon = horizon;
    cfg
}

fn run(preset: SystemPreset, faults: FaultConfig) -> TrainReport {
    run_workload(Workload::WdlCriteo, preset, &move |c| {
        c.cluster = het_simnet::ClusterSpec::cluster_a(WORKERS, 1);
        c.max_iterations = ITERS;
        c.eval_every = ITERS / 4;
        c.faults = faults.clone();
    })
}

fn row(level: &str, system: &str, r: &TrainReport) -> SweepRow {
    SweepRow {
        level: level.into(),
        system: system.into(),
        final_metric: r.final_metric,
        sim_time_s: r.total_sim_time.as_secs_f64(),
        worker_crashes: r.faults.worker_crashes,
        shard_failovers: r.faults.shard_failovers,
        degraded_reads: r.faults.degraded_reads,
        blocked_ops: r.faults.blocked_ops,
        retries: r.faults.retries,
        straggler_slow_iters: r.faults.straggler_slow_iters,
        lost_updates: r.faults.lost_updates,
    }
}

fn main() {
    out::banner("Fault sweep: convergence under crashes, failovers, stragglers, drops");

    let cached = SystemPreset::HetCache { staleness: 100 };

    // Calibrate the fault horizon to the fault-free run so every
    // scheduled event (placed in [5%, 85%] of the horizon) fires inside
    // the run and its recovery window completes before the end.
    let baseline = run(cached, FaultConfig::disabled());
    let horizon = SimDuration::from_secs_f64(baseline.total_sim_time.as_secs_f64() * 0.8);

    println!(
        "{:<8} {:<14} {:>8} {:>10} {:>7} {:>9} {:>9} {:>8} {:>8}",
        "level", "system", "AUC", "time (s)", "crash", "failover", "degraded", "blocked", "retries"
    );
    let mut rows = Vec::new();
    for level in &LEVELS {
        let report = run(cached, faults_at(level, horizon));
        let r = row(level.0, "HET Cache s=100", &report);
        println!(
            "{:<8} {:<14} {:>8.4} {:>10.3} {:>7} {:>9} {:>9} {:>8} {:>8}",
            r.level,
            r.system,
            r.final_metric,
            r.sim_time_s,
            r.worker_crashes,
            r.shard_failovers,
            r.degraded_reads,
            r.blocked_ops,
            r.retries
        );
        if level.0 == "heavy" {
            for ev in &report.fault_events {
                println!("    event {:?} {}", ev.at, ev.description);
            }
        }
        rows.push(r);
    }

    // The cache-less contrast at the heaviest level.
    let hybrid_report = run(SystemPreset::HetHybrid, faults_at(&LEVELS[3], horizon));
    let hr = row("heavy", "HET Hybrid", &hybrid_report);
    println!(
        "{:<8} {:<14} {:>8.4} {:>10.3} {:>7} {:>9} {:>9} {:>8} {:>8}",
        hr.level,
        hr.system,
        hr.final_metric,
        hr.sim_time_s,
        hr.worker_crashes,
        hr.shard_failovers,
        hr.degraded_reads,
        hr.blocked_ops,
        hr.retries
    );
    rows.push(hr);

    out::write_json("fault_sweep", &rows);

    println!("\nexpected shape: AUC declines gently with fault intensity (clock-bounded");
    println!("degraded reads absorb outages); the cache-less baseline has zero degraded");
    println!("reads — every outage it touches becomes a blocked read.");
}
