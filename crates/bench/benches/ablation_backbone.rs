//! Ablation — backbone optimisations (§4.1/§4.2): how much of HET's win
//! over the TF baselines comes from each runtime optimisation, measured
//! on the cache-less hybrid so the cache itself is out of the picture:
//!
//! * communication/computation overlap (§4.1, async invocation),
//! * message fusion (§4.2, one message per protocol step),
//! * kernel efficiency (the compute-factor difference).
//!
//! The paper asserts (§5.1) that HET PS vs TF PS differ *only* in these
//! backbone optimisations; this bench quantifies each knob separately.

use het_bench::{out, run_workload, Workload};
use het_core::config::{Backbone, SystemPreset};
use het_json::impl_to_json;

struct Row {
    variant: String,
    epoch_time_s: f64,
    embedding_bytes: u64,
}

impl_to_json!(Row {
    variant,
    epoch_time_s,
    embedding_bytes
});

fn main() {
    out::banner("Ablation: backbone optimisations on the cache-less hybrid (WDL, 1 GbE)");

    let variants: Vec<(&str, Backbone)> = vec![
        ("full HET backbone", Backbone::het()),
        (
            "- overlap",
            Backbone {
                overlap: false,
                ..Backbone::het()
            },
        ),
        (
            "- message fusion",
            Backbone {
                fuse_messages: false,
                ..Backbone::het()
            },
        ),
        (
            "- kernel efficiency",
            Backbone {
                compute_factor: 1.5,
                ..Backbone::het()
            },
        ),
        ("TF backbone (none)", Backbone::tensorflow()),
    ];

    println!(
        "{:<22} {:>14} {:>18} {:>12}",
        "variant", "epoch time", "embedding bytes", "slowdown"
    );
    let mut rows = Vec::new();
    let mut reference: Option<f64> = None;
    for (name, backbone) in variants {
        let report = run_workload(Workload::WdlCriteo, SystemPreset::HetHybrid, &|c| {
            c.system.backbone = backbone;
            c.dim = 32;
            c.max_iterations = 320;
            c.eval_every = 320;
        });
        let epoch = report.epoch_time();
        let base = *reference.get_or_insert(epoch);
        println!(
            "{:<22} {:>13.3}s {:>18} {:>11.2}x",
            name,
            epoch,
            report.comm.embedding_bytes(),
            epoch / base
        );
        rows.push(Row {
            variant: name.to_string(),
            epoch_time_s: epoch,
            embedding_bytes: report.comm.embedding_bytes(),
        });
    }
    out::write_json("ablation_backbone", &rows);

    println!("\neach optimisation contributes; the full TF backbone compounds them —");
    println!("matching the paper's attribution of the HET-vs-TF same-architecture gap.");
}
