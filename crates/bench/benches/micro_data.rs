//! Criterion micro-benchmarks for the workload generators: Zipf
//! sampling, CTR batch generation, and GraphSAGE neighbour sampling.

use het_bench::micro::Criterion;
use het_bench::{criterion_group, criterion_main};
use het_data::{CtrConfig, CtrDataset, Graph, GraphConfig, NeighborSampler, ZipfSampler};
use het_rng::rngs::SmallRng;
use het_rng::SeedableRng;
use std::hint::black_box;

fn bench_zipf(c: &mut Criterion) {
    c.bench_function("zipf_sample_n4000", |b| {
        let z = ZipfSampler::new(4_000, 1.25);
        let mut rng = SmallRng::seed_from_u64(3);
        b.iter(|| black_box(z.sample(&mut rng)));
    });
}

fn bench_ctr_batch(c: &mut Criterion) {
    c.bench_function("ctr_train_batch_128", |b| {
        let ds = CtrDataset::new(CtrConfig::criteo_like(1));
        let mut cursor = 0u64;
        b.iter(|| {
            cursor += 128;
            black_box(ds.train_batch(cursor, 128))
        });
    });
}

fn bench_unique_keys(c: &mut Criterion) {
    c.bench_function("ctr_unique_keys_128", |b| {
        let ds = CtrDataset::new(CtrConfig::criteo_like(1));
        let batch = ds.train_batch(0, 128);
        b.iter(|| black_box(batch.unique_keys()));
    });
}

fn bench_neighbor_sampling(c: &mut Criterion) {
    c.bench_function("sage_sample_batch_128_f8x4", |b| {
        let graph = Graph::generate(GraphConfig {
            n_nodes: 12_000,
            ..GraphConfig::reddit_like(1)
        });
        let sampler = NeighborSampler::new(8, 4);
        let mut cursor = 0u64;
        b.iter(|| {
            cursor += 128;
            black_box(sampler.train_batch(&graph, cursor, 128))
        });
    });
}

fn bench_graph_generation(c: &mut Criterion) {
    c.bench_function("graph_generate_5k", |b| {
        b.iter(|| {
            black_box(Graph::generate(GraphConfig {
                n_nodes: 5_000,
                ..GraphConfig::reddit_like(7)
            }))
        });
    });
}

criterion_group!(
    benches,
    bench_zipf,
    bench_ctr_batch,
    bench_unique_keys,
    bench_neighbor_sampling,
    bench_graph_generation
);
criterion_main!(benches);
