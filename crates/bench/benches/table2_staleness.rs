//! Table 2 — staleness vs model quality.
//!
//! Left part: final test AUC of WDL and DCN on the Criteo-like stream at
//! s ∈ {0, 100, 10k, ∞}. The paper finds s=100 indistinguishable from
//! s=0, mild degradation at s=10k, and clear degradation at s=∞.
//!
//! Right part: the prediction-bias check. Test examples are split by
//! whether their embeddings were cache-resident (stale) or not at the
//! end of training; the per-split AUC of the s=0 and s=100 models are
//! compared — the paper finds nearly identical distributions, i.e. no
//! bias from serving stale embeddings.

use het_bench::{out, CTR_FIELDS, CTR_VOCAB};
use het_core::config::{SystemPreset, TrainerConfig};
use het_core::Trainer;
use het_data::{auc, CtrConfig, CtrDataset};
use het_json::impl_to_json;
use het_models::{DeepCross, EmbeddingModel, EmbeddingStore, WideDeep};

const DIM: usize = 16;
const ITERS: u64 = 2_400;

fn dataset() -> CtrDataset {
    let mut cfg = CtrConfig::criteo_like(0x7AB2);
    cfg.vocab_sizes = Some(het_data::ctr::scaled_criteo_vocabs(CTR_FIELDS * CTR_VOCAB));
    cfg.n_train = 50_000;
    cfg.n_test = 4_000;
    CtrDataset::new(cfg)
}

fn config(s: u64) -> TrainerConfig {
    let mut config = TrainerConfig::cluster_a(SystemPreset::HetCache { staleness: s });
    config.dim = DIM;
    config.lr = 0.1;
    config.max_iterations = ITERS;
    config.eval_every = ITERS;
    config
}

struct LeftRow {
    model: String,
    staleness: String,
    final_auc: f64,
}

impl_to_json!(LeftRow {
    model,
    staleness,
    final_auc
});

struct RightRow {
    split: String,
    auc_s0: f64,
    auc_s100: f64,
}

impl_to_json!(RightRow {
    split,
    auc_s0,
    auc_s100
});

/// Runs WDL at staleness `s` and returns (trainer, end-of-training
/// resident keys of worker 0, final AUC). The trainer is kept alive so
/// the right-part analysis can score test batches with its model.
fn run_wdl(s: u64) -> (Trainer<WideDeep, CtrDataset>, Vec<u64>, f64) {
    let mut t = Trainer::new(config(s), dataset(), |rng| {
        WideDeep::new(rng, CTR_FIELDS, DIM, &[64, 32])
    });
    let report = t.run();
    let resident = report
        .resident_keys_per_worker
        .first()
        .cloned()
        .unwrap_or_default();
    (t, resident, report.final_metric)
}

fn run_dcn(s: u64) -> f64 {
    let mut t = Trainer::new(config(s), dataset(), |rng| {
        DeepCross::new(rng, CTR_FIELDS, DIM, 3, &[64, 32])
    });
    t.run().final_metric
}

/// Per-example scores and "served from the stale path" flags, using the
/// pre-flush residency snapshot of worker 0's cache.
fn scored_split(
    trainer: &Trainer<WideDeep, CtrDataset>,
    resident_keys: &[u64],
) -> (Vec<f32>, Vec<f32>, Vec<bool>) {
    let ds = trainer.dataset();
    let model = trainer.worker_model(0);
    let mut scores = Vec::new();
    let mut labels = Vec::new();
    let mut resident = Vec::new();
    for b in 0..16u64 {
        let batch = ds.test_batch(b * 128, 128);
        let mut store = EmbeddingStore::new(DIM);
        for k in batch.unique_keys() {
            store.insert(k, trainer.server().pull(k).vector);
        }
        let chunk = model.evaluate(&batch, &store);
        for i in 0..batch.len() {
            // "Stale path" = the large majority of the example's keys
            // were cache-resident at end of training (with the
            // heterogeneous Criteo field profile, nearly every example
            // carries at least one tail key, so an all-keys criterion
            // would leave the split empty).
            let keys = batch.example_keys(i);
            let cached = keys
                .iter()
                .filter(|&&k| resident_keys.binary_search(&k).is_ok())
                .count();
            resident.push(cached * 10 >= keys.len() * 9);
        }
        scores.extend(chunk.scores);
        labels.extend(chunk.labels);
    }
    (scores, labels, resident)
}

fn main() {
    out::banner("Table 2: final test AUC under different staleness thresholds");

    println!("left part — final AUC:");
    println!(
        "{:<6} {:>8} {:>8} {:>8} {:>8}",
        "model", "s=0", "s=100", "s=10k", "s=inf"
    );
    let mut left = Vec::new();

    let (t0, resident0, wdl_s0) = run_wdl(0);
    let (t100, resident100, wdl_s100) = run_wdl(100);
    let (_, _, wdl_s10k) = run_wdl(10_000);
    let (_, _, wdl_inf) = run_wdl(u64::MAX);
    let _ = resident0;
    println!(
        "{:<6} {:>8.4} {:>8.4} {:>8.4} {:>8.4}",
        "WDL", wdl_s0, wdl_s100, wdl_s10k, wdl_inf
    );
    for (s, v) in [
        ("0", wdl_s0),
        ("100", wdl_s100),
        ("10k", wdl_s10k),
        ("inf", wdl_inf),
    ] {
        left.push(LeftRow {
            model: "WDL".into(),
            staleness: s.into(),
            final_auc: v,
        });
    }

    let dcn_s0 = run_dcn(0);
    let dcn_s100 = run_dcn(100);
    let dcn_s10k = run_dcn(10_000);
    let dcn_inf = run_dcn(u64::MAX);
    println!(
        "{:<6} {:>8.4} {:>8.4} {:>8.4} {:>8.4}",
        "DCN", dcn_s0, dcn_s100, dcn_s10k, dcn_inf
    );
    for (s, v) in [
        ("0", dcn_s0),
        ("100", dcn_s100),
        ("10k", dcn_s10k),
        ("inf", dcn_inf),
    ] {
        left.push(LeftRow {
            model: "DCN".into(),
            staleness: s.into(),
            final_auc: v,
        });
    }
    out::write_json("table2_staleness_left", &left);

    // Right part: split the test set by worker-0 cache residency under
    // the s=100 run, and compare per-split AUC between the two models.
    println!("\nright part — prediction bias by cache residency (WDL):");
    let (s0_scores, s0_labels, _) = scored_split(&t0, &resident100);
    let (s100_scores, s100_labels, s100_resident) = scored_split(&t100, &resident100);

    let mut right = Vec::new();
    for (split_name, want_resident) in [
        ("≥90% cached (stale path)", true),
        ("mostly uncached", false),
    ] {
        let idx: Vec<usize> = s100_resident
            .iter()
            .enumerate()
            .filter(|(_, &r)| r == want_resident)
            .map(|(i, _)| i)
            .collect();
        if idx.is_empty() {
            println!("{split_name:<28} (empty split)");
            continue;
        }
        let pick = |v: &[f32]| -> Vec<f32> { idx.iter().map(|&i| v[i]).collect() };
        let auc0 = auc(&pick(&s0_scores), &pick(&s0_labels));
        let auc100 = auc(&pick(&s100_scores), &pick(&s100_labels));
        println!(
            "{split_name:<28} s=0 AUC {auc0:.4}   s=100 AUC {auc100:.4}   ({} examples)",
            idx.len()
        );
        right.push(RightRow {
            split: split_name.into(),
            auc_s0: auc0,
            auc_s100: auc100,
        });
    }
    out::write_json("table2_staleness_right", &right);

    println!("\npaper shape: s=100 ≈ s=0; degradation grows with s and is clear at s=inf;");
    println!("stale (cached) predictions show no systematic bias vs fresh ones.");
}
