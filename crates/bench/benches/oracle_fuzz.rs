//! Oracle fuzz campaign — schedule exploration as an experiment.
//!
//! Runs the model-based consistency oracle (`het-oracle`) over a batch
//! of fuzzed schedules — sync mode, cache policy, tie-breaking, fault
//! timing all sampled per seed — and reports how much behaviour the
//! campaign covered: iteration completions, staleness-window reads,
//! BSP barriers, per-mode run counts. A healthy build prints zero
//! violations; a broken consistency protocol produces a shrunk repro
//! file under `target/oracle/`.
//!
//! Every scenario is a pure function of `(master seed, index)`, so the
//! campaign is bit-reproducible.

use het_bench::out;
use het_json::impl_to_json;
use het_oracle::fuzz::{run_fuzz, FuzzConfig};

const MASTER_SEED: u64 = 0;
const RUNS: u64 = 200;
const MAX_ITERS: u64 = 50;

struct CampaignRow {
    master_seed: u64,
    runs: u64,
    bsp_runs: u64,
    asp_runs: u64,
    ssp_runs: u64,
    cached_runs: u64,
    faulted_runs: u64,
    computes: u64,
    window_reads: u64,
    barriers: u64,
    violations: u64,
}

impl_to_json!(CampaignRow {
    master_seed,
    runs,
    bsp_runs,
    asp_runs,
    ssp_runs,
    cached_runs,
    faulted_runs,
    computes,
    window_reads,
    barriers,
    violations,
});

fn main() {
    println!("== oracle fuzz campaign ==");
    println!(
        "{} scenarios, master seed {}, <= {} iterations each\n",
        RUNS, MASTER_SEED, MAX_ITERS
    );

    let cfg = FuzzConfig {
        master_seed: MASTER_SEED,
        seed_start: 0,
        seed_end: RUNS,
        max_iters: MAX_ITERS,
        extra_staleness: 0,
        out_dir: Some(out::experiments_dir().join("../oracle")),
        stop_after: 0,
    };
    let outcome = run_fuzz(&cfg);

    println!(
        "runs      {} (bsp {} / asp {} / ssp {})",
        outcome.runs, outcome.by_sync[0], outcome.by_sync[1], outcome.by_sync[2]
    );
    println!("cached    {}", outcome.cached_runs);
    println!("faulted   {}", outcome.faulted_runs);
    println!("computes  {}", outcome.computes);
    println!("windows   {}", outcome.window_reads);
    println!("barriers  {}", outcome.barriers);

    for caught in &outcome.violations {
        println!(
            "VIOLATION index {} [{}]: {} (shrunk to workers={} iters={})",
            caught.index,
            caught.violation.check,
            caught.violation.message,
            caught.shrunk.workers,
            caught.shrunk.iters
        );
    }

    let row = CampaignRow {
        master_seed: MASTER_SEED,
        runs: outcome.runs,
        bsp_runs: outcome.by_sync[0],
        asp_runs: outcome.by_sync[1],
        ssp_runs: outcome.by_sync[2],
        cached_runs: outcome.cached_runs,
        faulted_runs: outcome.faulted_runs,
        computes: outcome.computes,
        window_reads: outcome.window_reads,
        barriers: outcome.barriers,
        violations: outcome.violations.len() as u64,
    };
    out::write_json("oracle_fuzz", &[row]);

    if outcome.violations.is_empty() {
        println!("\nverdict: PASS — zero violations across the campaign");
    } else {
        println!(
            "\nverdict: FAIL — {} violation(s); see repro files above",
            outcome.violations.len()
        );
        std::process::exit(1);
    }
}
