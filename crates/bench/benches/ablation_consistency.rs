//! Ablation — consistency models (§2.1/§3.4): the paper argues classical
//! SSP is the wrong tool for embedding models because (1) its staleness
//! bound is per *worker clock*, blind to per-key skew, and (2) it is
//! write-through, paying full write traffic every iteration. This bench
//! puts BSP, ASP, SSP(s) and HET(s) side by side on one workload and
//! reports quality, time, and embedding traffic.

use het_bench::{out, run_workload, Workload};
use het_core::config::SystemPreset;
use het_json::impl_to_json;

struct Row {
    model: String,
    final_metric: f64,
    sim_time_s: f64,
    embedding_bytes: u64,
}

impl_to_json!(Row {
    model,
    final_metric,
    sim_time_s,
    embedding_bytes
});

fn main() {
    out::banner("Ablation: consistency models on WDL-Criteo (8 workers, 1 GbE)");

    let systems: Vec<(String, SystemPreset)> = vec![
        ("BSP (hybrid)".into(), SystemPreset::HetHybrid),
        ("ASP (HET PS)".into(), SystemPreset::HetPs),
        ("SSP s=3".into(), SystemPreset::Ssp { staleness: 3 }),
        ("SSP s=10".into(), SystemPreset::Ssp { staleness: 10 }),
        ("HET s=10".into(), SystemPreset::HetCache { staleness: 10 }),
        (
            "HET s=100".into(),
            SystemPreset::HetCache { staleness: 100 },
        ),
    ];

    println!(
        "{:<14} {:>10} {:>12} {:>18}",
        "model", "AUC", "sim time", "embedding bytes"
    );
    let mut rows = Vec::new();
    for (name, preset) in systems {
        let report = run_workload(Workload::WdlCriteo, preset, &|c| {
            c.max_iterations = 1_600;
            c.eval_every = 1_600;
        });
        println!(
            "{:<14} {:>10.4} {:>11.2}s {:>18}",
            name,
            report.final_metric,
            report.total_sim_time.as_secs_f64(),
            report.comm.embedding_bytes()
        );
        rows.push(Row {
            model: name,
            final_metric: report.final_metric,
            sim_time_s: report.total_sim_time.as_secs_f64(),
            embedding_bytes: report.comm.embedding_bytes(),
        });
    }
    out::write_json("ablation_consistency", &rows);

    println!("\npaper shape: SSP bounds worker clocks but still pays full embedding");
    println!("traffic every iteration; HET's per-embedding staleness converts the");
    println!("same tolerance into an order-of-magnitude traffic cut.");
}
