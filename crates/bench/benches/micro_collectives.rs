//! Criterion micro-benchmarks for the simulated-network cost models and
//! the HET client protocol fast paths (warm read, stale write).

use het_bench::micro::Criterion;
use het_bench::{criterion_group, criterion_main};
use het_cache::PolicyKind;
use het_core::HetClient;
use het_models::SparseGrads;
use het_ps::{PsConfig, PsServer, ServerOptimizer};
use het_simnet::{ClusterSpec, CommStats};
use std::hint::black_box;

fn bench_cost_models(c: &mut Criterion) {
    let net = ClusterSpec::cluster_a(8, 1).collectives();
    c.bench_function("cost_ring_allreduce", |b| {
        b.iter(|| black_box(net.ring_allreduce(black_box(10 << 20))));
    });
    c.bench_function("cost_ps_transfer", |b| {
        b.iter(|| black_box(net.ps_transfer(black_box(1 << 20))));
    });
    c.bench_function("cost_allgather", |b| {
        b.iter(|| black_box(net.allgather(black_box(1 << 20))));
    });
}

fn bench_client_warm_read(c: &mut Criterion) {
    c.bench_function("het_client_warm_read_256keys", |b| {
        let dim = 32;
        let server = PsServer::new(PsConfig {
            dim,
            n_shards: 8,
            lr: 0.1,
            seed: 1,
            optimizer: ServerOptimizer::Sgd,
            grad_clip: None,
        });
        let net = ClusterSpec::cluster_a(8, 1).collectives();
        let mut client = HetClient::new(4096, 100, PolicyKind::light_lfu(), dim, 0.1);
        let keys: Vec<u64> = (0..256).collect();
        let mut stats = CommStats::new();
        let _ = client.read(&keys, &server, &net, &mut stats, None);
        b.iter(|| {
            let mut stats = CommStats::new();
            black_box(client.read(&keys, &server, &net, &mut stats, None).1)
        });
    });
}

fn bench_client_stale_write(c: &mut Criterion) {
    c.bench_function("het_client_stale_write_256keys", |b| {
        let dim = 32;
        let server = PsServer::new(PsConfig {
            dim,
            n_shards: 8,
            lr: 0.1,
            seed: 1,
            optimizer: ServerOptimizer::Sgd,
            grad_clip: None,
        });
        let net = ClusterSpec::cluster_a(8, 1).collectives();
        let mut client = HetClient::new(4096, u64::MAX, PolicyKind::light_lfu(), dim, 0.1);
        let keys: Vec<u64> = (0..256).collect();
        let mut stats = CommStats::new();
        let _ = client.read(&keys, &server, &net, &mut stats, None);
        let mut grads = SparseGrads::new(dim);
        for &k in &keys {
            grads.accumulate(k, &vec![0.01; dim]);
        }
        b.iter(|| {
            let mut stats = CommStats::new();
            black_box(client.write(&grads, &server, &net, &mut stats, None))
        });
    });
}

criterion_group!(
    benches,
    bench_cost_models,
    bench_client_warm_read,
    bench_client_stale_write
);
criterion_main!(benches);
