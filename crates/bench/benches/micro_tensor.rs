//! Criterion micro-benchmarks for the tensor substrate: the matmul and
//! model forward/backward kernels that dominate the real compute of the
//! simulation.

use het_bench::micro::Criterion;
use het_bench::{criterion_group, criterion_main};
use het_data::{CtrConfig, CtrDataset};
use het_models::{EmbeddingModel, EmbeddingStore, WideDeep};
use het_rng::rngs::StdRng;
use het_rng::SeedableRng;
use het_tensor::{Matrix, Mlp};
use std::hint::black_box;

fn bench_matmul(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmul");
    for (m, k, n) in [(128usize, 416usize, 64usize), (128, 64, 1)] {
        group.bench_function(format!("{m}x{k}x{n}"), |b| {
            let a = Matrix::from_fn(m, k, |r, c2| ((r * 7 + c2) % 13) as f32 * 0.1);
            let w = Matrix::from_fn(k, n, |r, c2| ((r + c2 * 3) % 17) as f32 * 0.05);
            b.iter(|| black_box(a.matmul(&w)));
        });
    }
    group.finish();
}

fn bench_mlp_forward_backward(c: &mut Criterion) {
    c.bench_function("mlp_fwd_bwd_416_64_32_1", |b| {
        let mut rng = StdRng::seed_from_u64(1);
        let mut mlp = Mlp::new(&mut rng, &[416, 64, 32, 1]);
        let x = Matrix::from_fn(128, 416, |r, c2| ((r + c2) % 11) as f32 * 0.02);
        b.iter(|| {
            let y = mlp.forward(&x);
            let dy = Matrix::from_fn(y.rows(), y.cols(), |_, _| 1.0);
            black_box(mlp.backward(&dy))
        });
    });
}

fn bench_wdl_batch(c: &mut Criterion) {
    c.bench_function("wdl_forward_backward_batch128", |b| {
        let ds = CtrDataset::new(CtrConfig::criteo_like(1));
        let batch = ds.train_batch(0, 128);
        let mut rng = StdRng::seed_from_u64(1);
        let mut model = WideDeep::new(&mut rng, 26, 16, &[64, 32]);
        let mut store = EmbeddingStore::new(16);
        for k in batch.unique_keys() {
            store.insert(k, vec![0.05; 16]);
        }
        b.iter(|| black_box(model.forward_backward(&batch, &store).0));
    });
}

criterion_group!(
    benches,
    bench_matmul,
    bench_mlp_forward_backward,
    bench_wdl_batch
);
criterion_main!(benches);
