//! Figure 3 — embedding popularity skewness: the cumulative share of
//! embedding updates held by the most popular x % of embeddings, for the
//! Criteo-like CTR stream and the Amazon-/ogbn-mag-like graphs.
//!
//! The paper's observation ("the top 10 % of Criteo embeddings account
//! for ~90 % of updates") is the premise of the whole cache design; this
//! harness verifies our generators reproduce it.

use het_bench::out;
use het_data::{CtrConfig, CtrDataset, Graph, GraphConfig, NeighborSampler};
use het_json::impl_to_json;
use std::collections::HashMap;

struct Row {
    dataset: String,
    top_percent: f64,
    update_share: f64,
}

impl_to_json!(Row {
    dataset,
    top_percent,
    update_share
});

fn cdf_points(mut freqs: Vec<u64>) -> Vec<(f64, f64)> {
    freqs.sort_unstable_by(|a, b| b.cmp(a));
    let total: u64 = freqs.iter().sum();
    let mut points = Vec::new();
    for pct in [0.01, 0.05, 0.10, 0.20, 0.50, 1.00] {
        let k = ((freqs.len() as f64 * pct).ceil() as usize)
            .min(freqs.len())
            .max(1);
        let mass: u64 = freqs.iter().take(k).sum();
        points.push((pct, mass as f64 / total.max(1) as f64));
    }
    points
}

fn criteo_frequencies() -> Vec<u64> {
    let mut cfg = CtrConfig::criteo_like(0xF3);
    cfg.vocab_sizes = Some(het_data::ctr::scaled_criteo_vocabs(26 * 2_000));
    let ds = CtrDataset::new(cfg);
    let mut counts: HashMap<u64, u64> = HashMap::new();
    for i in 0..30_000u64 {
        let (keys, _) = ds.example(i, false);
        for k in keys {
            *counts.entry(k).or_insert(0) += 1;
        }
    }
    counts.into_values().collect()
}

fn graph_frequencies(cfg: GraphConfig) -> Vec<u64> {
    let graph = Graph::generate(cfg);
    let sampler = NeighborSampler::degree_biased(8, 4);
    let mut counts: HashMap<u64, u64> = HashMap::new();
    for cursor in 0..200u64 {
        let batch = sampler.train_batch(&graph, cursor * 128, 128);
        for k in batch.unique_keys() {
            *counts.entry(k).or_insert(0) += 1;
        }
    }
    counts.into_values().collect()
}

fn main() {
    out::banner("Figure 3: embedding update-popularity skewness");
    let datasets: Vec<(&str, Vec<u64>)> = vec![
        ("Criteo-like", criteo_frequencies()),
        (
            "Amazon-like",
            graph_frequencies(GraphConfig {
                n_nodes: 60_000,
                ..GraphConfig::amazon_like(0xF3)
            }),
        ),
        (
            "ogbn-mag-like",
            graph_frequencies(GraphConfig {
                n_nodes: 50_000,
                ..GraphConfig::ogbn_mag_like(0xF3)
            }),
        ),
    ];

    println!(
        "{:<14} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "dataset", "top 1%", "top 5%", "top 10%", "top 20%", "top 50%", "top 100%"
    );
    let mut rows = Vec::new();
    for (name, freqs) in datasets {
        let points = cdf_points(freqs);
        let cells: Vec<String> = points
            .iter()
            .map(|(_, share)| format!("{:>7.1}%", 100.0 * share))
            .collect();
        println!("{:<14} {}", name, cells.join(" "));
        for (pct, share) in points {
            rows.push(Row {
                dataset: name.to_string(),
                top_percent: pct * 100.0,
                update_share: share,
            });
        }
    }
    out::write_json("fig3_skewness", &rows);

    println!("\npaper shape: top 10% of Criteo embeddings ≈ 90% of updates; graph");
    println!("workloads are similarly hub-dominated (power-law degree).");
}
