//! Criterion micro-benchmarks for the cache table: hit path, miss +
//! eviction path, and the per-policy bookkeeping cost — the paper's
//! §4.3 motivation for LightLFU is exactly the "run-time cost" this
//! measures.

use het_bench::micro::{BatchSize, Criterion};
use het_bench::{criterion_group, criterion_main};
use het_cache::{CacheTable, PolicyKind};
use std::hint::black_box;

fn warm_table(policy: PolicyKind, capacity: usize) -> CacheTable {
    let mut t = CacheTable::new(capacity, policy, 0.1);
    for k in 0..capacity as u64 {
        let _ = t.install(k, vec![0.5; 32], 0);
    }
    t
}

fn bench_hit_path(c: &mut Criterion) {
    let mut group = c.benchmark_group("cache_hit_get");
    for policy in [PolicyKind::Lru, PolicyKind::Lfu, PolicyKind::light_lfu()] {
        group.bench_function(policy.to_string(), |b| {
            let mut table = warm_table(policy, 4096);
            // Warm LightLFU promotions.
            for _ in 0..20 {
                for k in 0..256u64 {
                    let _ = table.get(k);
                }
            }
            let mut k = 0u64;
            b.iter(|| {
                k = (k + 1) % 256;
                black_box(table.get(black_box(k)).map(|v| v[0]))
            });
        });
    }
    group.finish();
}

fn bench_update_path(c: &mut Criterion) {
    let mut group = c.benchmark_group("cache_update");
    let grad = vec![0.01f32; 32];
    for policy in [PolicyKind::Lru, PolicyKind::Lfu, PolicyKind::light_lfu()] {
        group.bench_function(policy.to_string(), |b| {
            let mut table = warm_table(policy, 4096);
            let mut k = 0u64;
            b.iter(|| {
                k = (k + 1) % 4096;
                table.update(black_box(k), black_box(&grad));
                table.bump_clock(k);
            });
        });
    }
    group.finish();
}

fn bench_eviction_churn(c: &mut Criterion) {
    let mut group = c.benchmark_group("cache_install_evict_churn");
    for policy in [PolicyKind::Lru, PolicyKind::Lfu, PolicyKind::light_lfu()] {
        group.bench_function(policy.to_string(), |b| {
            b.iter_batched(
                || warm_table(policy, 1024),
                |mut table| {
                    for k in 2000..2256u64 {
                        let _ = table.install(k, vec![0.5; 32], 0);
                        black_box(table.evict_overflow().len());
                    }
                    table
                },
                BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_hit_path,
    bench_update_path,
    bench_eviction_churn
);
criterion_main!(benches);
