//! Criterion micro-benchmarks for the parameter-server substrate:
//! pull/push throughput at the dimensions the experiments use.

use het_bench::micro::Criterion;
use het_bench::{criterion_group, criterion_main};
use het_ps::{PsConfig, PsServer, ServerOptimizer};
use std::hint::black_box;

fn bench_pull(c: &mut Criterion) {
    let mut group = c.benchmark_group("ps_pull");
    for dim in [16usize, 128] {
        group.bench_function(format!("dim{dim}"), |b| {
            let server = PsServer::new(PsConfig {
                dim,
                n_shards: 8,
                lr: 0.1,
                seed: 1,
                optimizer: ServerOptimizer::Sgd,
                grad_clip: None,
            });
            for k in 0..10_000u64 {
                let _ = server.pull(k);
            }
            let mut k = 0u64;
            b.iter(|| {
                k = (k + 1) % 10_000;
                black_box(server.pull(black_box(k)))
            });
        });
    }
    group.finish();
}

fn bench_push(c: &mut Criterion) {
    let mut group = c.benchmark_group("ps_push");
    for dim in [16usize, 128] {
        group.bench_function(format!("dim{dim}"), |b| {
            let server = PsServer::new(PsConfig {
                dim,
                n_shards: 8,
                lr: 0.1,
                seed: 1,
                optimizer: ServerOptimizer::Sgd,
                grad_clip: None,
            });
            let grad = vec![0.01f32; dim];
            let mut k = 0u64;
            b.iter(|| {
                k = (k + 1) % 10_000;
                server.push_inc(black_box(k), black_box(&grad));
            });
        });
    }
    group.finish();
}

fn bench_clock_query(c: &mut Criterion) {
    c.bench_function("ps_clock_of", |b| {
        let server = PsServer::new(PsConfig {
            dim: 32,
            n_shards: 8,
            lr: 0.1,
            seed: 1,
            optimizer: ServerOptimizer::Sgd,
            grad_clip: None,
        });
        for k in 0..10_000u64 {
            server.push_inc(k, &[0.0; 32]);
        }
        let mut k = 0u64;
        b.iter(|| {
            k = (k + 1) % 10_000;
            black_box(server.clock_of(black_box(k)))
        });
    });
}

criterion_group!(benches, bench_pull, bench_push, bench_clock_query);
criterion_main!(benches);
