//! Figure 8 — cache miss rate under different cache sizes
//! ({3, 5, 10, 15} % of the embedding table) and eviction strategies
//! (LRU, LFU, plus the §4.3 LightLFU) on the GNN tasks (ogbn-mag-like
//! and Reddit-like).
//!
//! Paper shape: LFU beats LRU (long-term popularity); miss rate falls
//! steeply with cache size — at 15 % on ogbn-mag, ~97 % of accesses hit.

use het_bench::{out, run_workload, Workload};
use het_cache::PolicyKind;
use het_core::config::SystemPreset;
use het_json::impl_to_json;

struct Row {
    workload: String,
    policy: String,
    cache_percent: f64,
    miss_rate: f64,
}

impl_to_json!(Row {
    workload,
    policy,
    cache_percent,
    miss_rate
});

fn main() {
    out::banner("Figure 8: cache miss rate vs cache size and policy (GNN tasks)");

    let mut rows = Vec::new();
    for workload in [Workload::GnnOgbnMag, Workload::GnnReddit] {
        println!("--- {} ---", workload.name());
        println!(
            "{:>9} {:>10} {:>10} {:>10}",
            "capacity", "LRU", "LFU", "LightLFU"
        );
        for frac in [0.03, 0.05, 0.10, 0.15] {
            let mut cells = String::new();
            for policy in [PolicyKind::Lru, PolicyKind::Lfu, PolicyKind::light_lfu()] {
                let report =
                    run_workload(workload, SystemPreset::HetCache { staleness: 100 }, &|c| {
                        *c = c.clone().with_cache(frac, policy);
                        c.max_iterations = 800;
                        c.eval_every = 800;
                    });
                let miss = report.cache.miss_rate();
                cells.push_str(&format!("{:>9.1}% ", 100.0 * miss));
                rows.push(Row {
                    workload: workload.name().to_string(),
                    policy: policy.to_string(),
                    cache_percent: frac * 100.0,
                    miss_rate: miss,
                });
            }
            println!("{:>8.0}% {}", frac * 100.0, cells);
        }
        println!();
    }
    out::write_json("fig8_cache_policy", &rows);

    println!("paper shape: LFU-family < LRU at every size; miss rate drops sharply");
    println!("as capacity grows (paper: ~3% misses at 15% capacity on ogbn-mag).");
}
