//! Figure 2 — motivation: on a PS deployment with the embedding table on
//! a remote server (1 worker, 1 GbE, D = 32), data transfer dominates
//! the training cycle across all six workloads.
//!
//! The paper reports the per-workload split of time into "data transfer"
//! vs "computation" (up to 86 % transfer for TF) and the number of
//! embedding parameters. This harness regenerates both columns.

use het_bench::{out, run_workload, Workload};
use het_core::config::SystemPreset;
use het_json::impl_to_json;

struct Row {
    workload: String,
    transfer_fraction: f64,
    compute_fraction: f64,
    embedding_params: u64,
}

impl_to_json!(Row {
    workload,
    transfer_fraction,
    compute_fraction,
    embedding_params
});

fn main() {
    out::banner("Figure 2: large embedding model workloads on a remote-PS deployment");
    println!(
        "{:<14} {:>14} {:>14} {:>18}",
        "workload", "transfer %", "compute %", "#embedding params"
    );

    let mut rows = Vec::new();
    for workload in Workload::ALL {
        let dim = 32usize;
        let report = run_workload(workload, SystemPreset::TfPs, &|c| {
            c.cluster = het_simnet::ClusterSpec::cluster_a(1, 1);
            c.dim = dim;
            c.max_iterations = 120;
            c.eval_every = 120;
        });
        let transfer = report.breakdown.communication_fraction();
        let params = (workload.n_keys() * dim) as u64;
        println!(
            "{:<14} {:>13.1}% {:>13.1}% {:>18}",
            workload.name(),
            100.0 * transfer,
            100.0 * (1.0 - transfer),
            params
        );
        rows.push(Row {
            workload: workload.name().to_string(),
            transfer_fraction: transfer,
            compute_fraction: 1.0 - transfer,
            embedding_params: params,
        });
    }
    out::write_json("fig2_motivation", &rows);

    println!("\npaper shape: transfer ≫ compute on every workload (TF spent up to 86%");
    println!("of time fetching/updating embeddings over 1 GbE).");
}
