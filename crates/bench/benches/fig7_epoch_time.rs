//! Figure 7 — per-epoch time and communication speedup on the three
//! DLRM tasks, on both clusters:
//!
//! * (a) cluster A, 1 GbE — the paper sees up to 8.2× embedding
//!   communication reduction (~88 %) and large epoch-time speedups;
//! * (b) cluster B, 10 GbE — speedups shrink but HET still wins, and
//!   HET AR becomes the slowest (the fast Ethernet removes the PS
//!   bottleneck while AllGather still pays the degenerate-collective
//!   price).

use het_bench::{out, run_workload, Workload};
use het_core::config::SystemPreset;
use het_json::impl_to_json;
use het_simnet::ClusterSpec;

struct Row {
    cluster: String,
    workload: String,
    system: String,
    epoch_time_s: f64,
    comm_time_s: f64,
    embedding_bytes: u64,
}

impl_to_json!(Row {
    cluster,
    workload,
    system,
    epoch_time_s,
    comm_time_s,
    embedding_bytes
});

fn main() {
    out::banner("Figure 7: per-epoch time on DLRM tasks (a: 1 GbE, b: 10 GbE)");

    let systems: Vec<(&str, SystemPreset)> = vec![
        ("TF PS", SystemPreset::TfPs),
        ("TF Parallax", SystemPreset::TfParallax),
        ("HET PS", SystemPreset::HetPs),
        ("HET AR", SystemPreset::HetAr),
        ("HET Hybrid", SystemPreset::HetHybrid),
        ("HET Cache s=100", SystemPreset::HetCache { staleness: 100 }),
    ];

    let mut rows = Vec::new();
    for (cluster_name, cluster) in [
        ("1 GbE (cluster A)", ClusterSpec::cluster_a(8, 1)),
        ("10 GbE (cluster B)", ClusterSpec::cluster_b(8, 1)),
    ] {
        println!("--- {cluster_name} ---");
        println!(
            "{:<12} {:<16} {:>14} {:>14} {:>16}",
            "workload", "system", "epoch time", "comm time", "embedding MB"
        );
        for workload in Workload::DLRM {
            let mut baseline_epoch: Option<f64> = None;
            let mut hybrid_epoch: Option<f64> = None;
            let mut cache_epoch: Option<f64> = None;
            for (name, preset) in &systems {
                let report = run_workload(workload, *preset, &|c| {
                    c.cluster = cluster;
                    // The paper's §5.1 setting (D = 128), halved to keep
                    // the real-compute part of the simulation fast.
                    c.dim = 64;
                    c.max_iterations = 240;
                    c.eval_every = 240;
                });
                let epoch = report.epoch_time();
                // Per-worker communication time per epoch (the breakdown
                // sums over all workers).
                let comm = report.breakdown.communication().as_secs_f64()
                    / (report.epochs.max(f64::MIN_POSITIVE) * cluster.n_workers as f64);
                println!(
                    "{:<12} {:<16} {:>13.2}s {:>13.2}s {:>16.2}",
                    workload.name(),
                    name,
                    epoch,
                    comm,
                    report.comm.embedding_bytes() as f64 / 1e6
                );
                match *name {
                    "TF Parallax" => baseline_epoch = Some(epoch),
                    "HET Hybrid" => hybrid_epoch = Some(epoch),
                    "HET Cache s=100" => cache_epoch = Some(epoch),
                    _ => {}
                }
                rows.push(Row {
                    cluster: cluster_name.to_string(),
                    workload: workload.name().to_string(),
                    system: name.to_string(),
                    epoch_time_s: epoch,
                    comm_time_s: comm,
                    embedding_bytes: report.comm.embedding_bytes(),
                });
            }
            if let (Some(b), Some(h), Some(c)) = (baseline_epoch, hybrid_epoch, cache_epoch) {
                println!(
                    "  -> HET Cache speedup: {:.2}x vs TF Parallax, {:.2}x vs HET Hybrid\n",
                    b / c,
                    h / c
                );
            }
        }
    }
    out::write_json("fig7_epoch_time", &rows);

    println!("paper shape: on 1 GbE the cache removes most embedding traffic (up to");
    println!("~88% / 8.2x); on 10 GbE speedups shrink and HET AR falls to last place.");
}
