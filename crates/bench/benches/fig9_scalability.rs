//! Figure 9 — scalability study.
//!
//! * (a) WDL-Criteo: throughput speedup over 1 worker for
//!   {1, 2, 4, 8, 16, 32} workers × {TF PS, TF Parallax, HET Cache}.
//! * (b) GNN-Reddit: the same sweep (everything scales better — smaller
//!   table, lighter communication, matching the paper's note).
//! * (c) model scalability: WDL per-epoch time as D grows up to 4096
//!   (the paper's "one trillion parameters" point) on 32 workers.
//!
//! Paper shape: PS baselines flatten early; HET keeps scaling; at huge D
//! the PS architectures fall far behind HET.

use het_bench::{out, run_workload, Workload};
use het_core::config::SystemPreset;
use het_json::impl_to_json;
use het_simnet::ClusterSpec;

struct ScaleRow {
    figure: String,
    workload: String,
    system: String,
    workers: usize,
    throughput: f64,
    speedup_vs_1: f64,
}

impl_to_json!(ScaleRow {
    figure,
    workload,
    system,
    workers,
    throughput,
    speedup_vs_1
});

struct ModelScaleRow {
    dim: usize,
    system: String,
    epoch_time_s: f64,
}

impl_to_json!(ModelScaleRow {
    dim,
    system,
    epoch_time_s
});

fn worker_sweep(figure: &str, workload: Workload, rows: &mut Vec<ScaleRow>) {
    let systems: Vec<(&str, SystemPreset)> = vec![
        ("TF PS", SystemPreset::TfPs),
        ("TF Parallax", SystemPreset::TfParallax),
        ("HET Cache s=100", SystemPreset::HetCache { staleness: 100 }),
    ];
    println!("--- {figure}: {} ---", workload.name());
    println!(
        "{:<16} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "system", "1", "2", "4", "8", "16", "32"
    );
    for (name, preset) in systems {
        let mut line = format!("{name:<16} ");
        let mut base: Option<f64> = None;
        for workers in [1usize, 2, 4, 8, 16, 32] {
            let report = run_workload(workload, preset, &|c| {
                c.cluster = ClusterSpec::cluster_a(workers, 4);
                // The scalability sweep is where the shared server NIC
                // matters: every worker hits the PS each iteration.
                c.cluster.shared_server_bandwidth = true;
                // Same number of rounds per sweep point.
                c.max_iterations = 96 * workers as u64;
                c.eval_every = c.max_iterations;
            });
            let throughput = report.throughput();
            let b = *base.get_or_insert(throughput);
            let speedup = throughput / b;
            line.push_str(&format!("{speedup:>7.2}x "));
            rows.push(ScaleRow {
                figure: figure.to_string(),
                workload: workload.name().to_string(),
                system: name.to_string(),
                workers,
                throughput,
                speedup_vs_1: speedup,
            });
        }
        println!("{line}");
    }
    println!();
}

fn main() {
    out::banner("Figure 9: scalability (a: WDL, b: GNN-Reddit, c: embedding dim sweep)");

    let mut rows = Vec::new();
    worker_sweep("fig9a", Workload::WdlCriteo, &mut rows);
    worker_sweep("fig9b", Workload::GnnReddit, &mut rows);
    out::write_json("fig9ab_scalability", &rows);

    // (c) model scalability: per-epoch time vs embedding dimension.
    println!("--- fig9c: WDL per-epoch time vs embedding dimension (32 workers) ---");
    println!(
        "{:<16} {:>10} {:>10} {:>10} {:>10}",
        "system", "D=64", "D=256", "D=1024", "D=4096"
    );
    let mut crows = Vec::new();
    for (name, preset) in [
        ("TF Parallax", SystemPreset::TfParallax),
        ("HET Cache s=100", SystemPreset::HetCache { staleness: 100 }),
    ] {
        let mut line = format!("{name:<16} ");
        for dim in [64usize, 256, 1024, 4096] {
            let report = run_workload(Workload::WdlCriteo, preset, &|c| {
                c.cluster = ClusterSpec::cluster_a(32, 4);
                c.cluster.shared_server_bandwidth = true;
                c.dim = dim;
                c.batch_size = 64;
                // Timing-only: a couple of rounds suffice.
                c.max_iterations = 64;
                c.eval_every = 64;
                c.eval_batches = 1;
            });
            let epoch = report.epoch_time();
            line.push_str(&format!("{epoch:>9.1}s "));
            crows.push(ModelScaleRow {
                dim,
                system: name.to_string(),
                epoch_time_s: epoch,
            });
        }
        println!("{line}");
    }
    out::write_json("fig9c_model_scale", &crows);

    println!("\npaper shape: PS-based baselines flatten with workers and explode with D;");
    println!("HET keeps scaling because hot-embedding traffic stays on the cache.");
}
