//! In-tree micro-benchmark harness.
//!
//! Hermetic builds carry no registry dependencies, so this module
//! replaces the slice of Criterion's API the micro benches use:
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! [`Bencher::iter`]/[`Bencher::iter_batched`], and the
//! `criterion_group!`/`criterion_main!` entry-point macros (exported at
//! the crate root). Measurement is deliberately simple — batches are
//! doubled until a run exceeds a time floor, then the per-iteration
//! mean of the largest batch is reported — which is plenty to rank the
//! cache policies and kernels these benches compare.

use std::time::{Duration, Instant};

/// Minimum measured wall time per benchmark before reporting.
const TARGET: Duration = Duration::from_millis(25);
/// Hard cap on iterations, for very slow bodies.
const MAX_ITERS: u64 = 1 << 24;

/// Batch sizing hint for [`Bencher::iter_batched`] (accepted for API
/// compatibility; this harness times one setup/routine pair per sample
/// regardless).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Routine input is cheap to set up.
    SmallInput,
    /// Routine input is expensive to set up.
    LargeInput,
}

/// Top-level benchmark driver; collects and prints timings.
#[derive(Debug, Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function<F>(&mut self, name: impl AsRef<str>, mut body: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::default();
        body(&mut b);
        report(name.as_ref(), &b);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            c: self,
            name: name.into(),
        }
    }
}

/// A group of benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    c: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl AsRef<str>, body: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.as_ref());
        self.c.bench_function(full, body);
        self
    }

    /// Ends the group (no-op; provided for API compatibility).
    pub fn finish(self) {}
}

/// Passed to each benchmark body to time its hot loop.
#[derive(Debug, Default)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, doubling the batch size until the measurement
    /// window exceeds the harness floor.
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        let mut n: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..n {
                std::hint::black_box(routine());
            }
            let dt = start.elapsed();
            if dt >= TARGET || n >= MAX_ITERS {
                self.iters = n;
                self.elapsed = dt;
                return;
            }
            n *= 2;
        }
    }

    /// Times `routine` over fresh inputs built by `setup` (setup time is
    /// excluded from the measurement).
    pub fn iter_batched<I, R>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> R,
        _size: BatchSize,
    ) {
        let mut n: u64 = 1;
        loop {
            let inputs: Vec<I> = (0..n).map(|_| setup()).collect();
            let start = Instant::now();
            for input in inputs {
                std::hint::black_box(routine(input));
            }
            let dt = start.elapsed();
            if dt >= TARGET || n >= MAX_ITERS {
                self.iters = n;
                self.elapsed = dt;
                return;
            }
            n *= 2;
        }
    }
}

fn report(name: &str, b: &Bencher) {
    if b.iters == 0 {
        println!("{name:<44} (no measurement)");
        return;
    }
    let per = b.elapsed.as_nanos() as f64 / b.iters as f64;
    let (value, unit) = if per >= 1e6 {
        (per / 1e6, "ms")
    } else if per >= 1e3 {
        (per / 1e3, "µs")
    } else {
        (per, "ns")
    };
    println!("{name:<44} {value:>10.2} {unit}/iter  ({} iters)", b.iters);
}

/// Declares a benchmark-suite function invoking each listed bench
/// (drop-in for `criterion::criterion_group!`).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::micro::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` for a benchmark binary
/// (drop-in for `criterion::criterion_main!`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_measures_something() {
        let mut b = Bencher::default();
        b.iter(|| std::hint::black_box(3u64).wrapping_mul(7));
        assert!(b.iters >= 1);
        assert!(b.elapsed >= TARGET || b.iters == MAX_ITERS);
    }

    #[test]
    fn iter_batched_consumes_fresh_inputs() {
        // The batch size doubles until the window exceeds the floor, and
        // every sizing round builds fresh inputs — so the exact setup
        // count depends on timing. The invariant is pairing: every
        // routine call consumed exactly one fresh setup output.
        let mut b = Bencher::default();
        let mut built = 0u64;
        let mut consumed = 0u64;
        b.iter_batched(
            || {
                built += 1;
                vec![1u8; 16]
            },
            |v| {
                consumed += 1;
                v.len()
            },
            BatchSize::SmallInput,
        );
        assert_eq!(built, consumed, "one setup per routine call");
        assert!(
            built >= b.iters,
            "the final batch alone is {} iterations",
            b.iters
        );
    }

    #[test]
    fn group_names_compose() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.bench_function("f", |b| b.iter(|| 1 + 1));
        g.finish();
    }
}
