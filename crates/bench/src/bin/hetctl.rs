//! `hetctl` — command-line driver for the HET reproduction.
//!
//! ```text
//! hetctl train    --workload wdl --system het-cache --staleness 100 [...]
//! hetctl compare  --workload wdl --baseline het-hybrid --staleness 100 [...]
//! hetctl serve    --replicas 2 --rate 10000 --cache 10000 --staleness 10 [...]
//! hetctl colocate --workers 4 --replicas 2 --iters 400 --rate 8000 [...]
//! hetctl chaos    --seed 7 [--slo-p99-us 25000 --rto-us 2000 --trace out.jsonl]
//! hetctl chaos    --seeds 0..120
//! hetctl oracle   --seeds 0..500 --iters 50
//! hetctl oracle   --repro target/oracle/repro-0-17.json
//! hetctl prefetch-sweep [--depths 0,1,2,4,8 --iters 600 --gate 0.30]
//! hetctl store-sweep [--keys 10000000 --ops 1000000 --hot 16384,65536 --gate 0.5]
//! hetctl scale-sweep [--threads 1,2,4 --iters 240 --gate 0.85]
//! hetctl list
//! ```
//!
//! `train`, `serve`, and `colocate` additionally take
//! `--backend sim|threads:<n>`: `sim` (the default) is the
//! deterministic discrete-event simulator, `threads:<n>` runs the same
//! job on n real OS threads (one per worker/replica) over the shared
//! PS fabric, reporting wall-clock throughput. A threaded training run
//! always collects a merged per-thread trace and replays it through
//! `het-oracle` before printing — the simulator stays the correctness
//! oracle. `scale-sweep` charts threaded throughput against the thread
//! count on the Fig. 2 CTR recipe.
//!
//! Runs a (workload × system) training simulation and prints the report;
//! `compare` additionally runs a baseline and prints speedups — the
//! quickest way to poke at the paper's claims with custom parameters.
//! `serve` runs the online-inference subsystem (`het-serve`): N replicas
//! with staleness-bounded caches serving Zipf traffic over a pretrained
//! table. `colocate` co-schedules a *live* trainer and a serving fleet
//! on one cluster runtime and one PS fabric — the "serving heavy
//! traffic while training" configuration. `oracle` runs the model-based
//! consistency oracle over a seed range of fuzzed schedules (see
//! `het-oracle`), shrinking and writing a repro file for any violation;
//! `--repro` replays such a file. `chaos` runs the compound-failure
//! campaign (`het_serve::run_chaos`) — 10× flash crowd + replica
//! crashes + PS-shard outage + live shard split over a live trainer —
//! and gates on its SLO/RTO verdicts; with `--seeds A..B` it sweeps a
//! whole seed range and fails on the first unhealthy run.
//!
//! Every fault-capable subcommand also takes `--fault-plan FILE.json`
//! (replace the derived fault plan with an explicit scripted one) and
//! `--fault-plan-dump FILE.json` (write the plan actually used, in the
//! same format — dump, edit, replay).

use het_bench::{run_workload, run_workload_threaded, run_workload_traced, RunSummary, Workload};
use het_cache::PolicyKind;
use het_core::config::{SparseMode, SystemPreset, TrainerConfig};
use het_core::{FaultConfig, TrainReport};
use het_runtime::ExecutionBackend;
use het_simnet::{ClusterSpec, SimDuration};
use std::process::ExitCode;

struct Args {
    map: Vec<(String, String)>,
}

impl Args {
    fn parse(argv: &[String]) -> Result<Args, String> {
        let mut map = Vec::new();
        let mut i = 0;
        while i < argv.len() {
            let key = argv[i]
                .strip_prefix("--")
                .ok_or_else(|| format!("expected --flag, got '{}'", argv[i]))?;
            let value = argv
                .get(i + 1)
                .ok_or_else(|| format!("--{key} needs a value"))?
                .clone();
            map.push((key.to_string(), value));
            i += 2;
        }
        Ok(Args { map })
    }

    fn get(&self, key: &str) -> Option<&str> {
        self.map
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    fn get_parsed<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{key}: cannot parse '{v}'")),
        }
    }
}

/// The `--trace OUT.jsonl` / `--trace-chrome OUT.json` flags, handled
/// identically by every subcommand: check [`TraceArgs::requested`],
/// start/finish the collector around the run, then [`TraceArgs::write`]
/// the log to every requested output.
struct TraceArgs {
    jsonl: Option<String>,
    chrome: Option<String>,
}

impl TraceArgs {
    fn of(args: &Args) -> TraceArgs {
        TraceArgs {
            jsonl: args.get("trace").map(str::to_string),
            chrome: args.get("trace-chrome").map(str::to_string),
        }
    }

    fn requested(&self) -> bool {
        self.jsonl.is_some() || self.chrome.is_some()
    }

    /// Starts the trace collector (when any output was requested) with
    /// the run's metadata; returns whether tracing is on.
    fn begin(&self, kind: &str, seed: u64) -> bool {
        if self.requested() {
            het_trace::start(vec![
                ("kind".to_string(), het_json::Json::Str(kind.to_string())),
                ("seed".to_string(), het_json::Json::UInt(seed)),
            ]);
        }
        self.requested()
    }

    fn write(&self, log: &het_trace::TraceLog) -> Result<(), String> {
        if let Some(p) = &self.jsonl {
            std::fs::write(p, log.to_jsonl()).map_err(|e| format!("--trace {p}: {e}"))?;
            eprintln!("[trace jsonl] {p}");
        }
        if let Some(p) = &self.chrome {
            std::fs::write(p, het_trace::chrome::to_chrome_trace(log))
                .map_err(|e| format!("--trace-chrome {p}: {e}"))?;
            eprintln!("[trace chrome] {p}");
        }
        Ok(())
    }
}

fn workload_of(name: &str) -> Result<Workload, String> {
    Ok(match name {
        "wdl" => Workload::WdlCriteo,
        "dfm" => Workload::DfmCriteo,
        "dcn" => Workload::DcnCriteo,
        "reddit" => Workload::GnnReddit,
        "amazon" => Workload::GnnAmazon,
        "mag" => Workload::GnnOgbnMag,
        other => {
            return Err(format!(
                "unknown workload '{other}' (try: wdl dfm dcn reddit amazon mag)"
            ))
        }
    })
}

fn system_of(name: &str, staleness: u64) -> Result<SystemPreset, String> {
    Ok(match name {
        "tf-ps" => SystemPreset::TfPs,
        "tf-parallax" => SystemPreset::TfParallax,
        "het-ps" => SystemPreset::HetPs,
        "het-ar" => SystemPreset::HetAr,
        "het-hybrid" => SystemPreset::HetHybrid,
        "het-cache" => SystemPreset::HetCache { staleness },
        "ssp" => SystemPreset::Ssp { staleness },
        other => return Err(format!(
            "unknown system '{other}' (try: tf-ps tf-parallax het-ps het-ar het-hybrid het-cache ssp)"
        )),
    })
}

fn policy_of(name: &str) -> Result<PolicyKind, String> {
    // Parameterised forms: `lightlfu:THRESHOLD`, `adaptive:WINDOW`.
    if let Some(t) = name.strip_prefix("lightlfu:") {
        let promote_threshold = t
            .parse::<u64>()
            .map_err(|_| format!("bad lightlfu threshold '{t}'"))?;
        return Ok(PolicyKind::LightLfu { promote_threshold });
    }
    if let Some(w) = name.strip_prefix("adaptive:") {
        let window = w
            .parse::<u64>()
            .map_err(|_| format!("bad adaptive window '{w}'"))?;
        return Ok(PolicyKind::Adaptive { window });
    }
    Ok(match name {
        "lru" => PolicyKind::Lru,
        "lfu" => PolicyKind::Lfu,
        "lightlfu" => PolicyKind::light_lfu(),
        "clock" => PolicyKind::Clock,
        "slru" => PolicyKind::Slru,
        "lfuda" => PolicyKind::Lfuda,
        "gdsf" => PolicyKind::Gdsf,
        "adaptive" => PolicyKind::adaptive(),
        other => {
            return Err(format!(
                "unknown policy '{other}' (try: lru lfu lightlfu[:T] clock slru lfuda gdsf adaptive[:W])"
            ))
        }
    })
}

/// `--store mem | tiered:<hot_rows>`: the PS shard row-store backend.
fn store_spec_of(name: &str) -> Result<het_ps::StoreSpec, String> {
    if let Some(h) = name.strip_prefix("tiered:") {
        let hot_rows: usize = h
            .parse()
            .map_err(|_| format!("bad tiered hot-row budget '{h}'"))?;
        if hot_rows == 0 {
            return Err("tiered hot-row budget must be positive".to_string());
        }
        return Ok(het_ps::StoreSpec::Tiered(het_ps::TieredConfig::new(
            hot_rows,
        )));
    }
    match name {
        "mem" => Ok(het_ps::StoreSpec::Mem),
        other => Err(format!(
            "unknown store '{other}' (try: mem tiered:<hot_rows>)"
        )),
    }
}

fn print_report(workload: Workload, system: &str, summary: &RunSummary, report: &TrainReport) {
    println!("workload          {}", workload.name());
    println!("system            {system}");
    println!("final metric      {:.4}", summary.final_metric);
    println!("simulated time    {:.3} s", summary.sim_time_s);
    println!("epoch time        {:.3} s", summary.epoch_time_s);
    println!("embedding bytes   {}", summary.embedding_bytes);
    println!("cache hit rate    {:.1} %", 100.0 * summary.cache_hit_rate);
    println!("comm fraction     {:.1} %", 100.0 * summary.comm_fraction);
    if let Some(t) = summary.time_to_target_s {
        println!("time to target    {t:.3} s");
    }
    if let Some(s) = &report.store {
        println!("--- store (tiered) ---");
        println!(
            "hot hit rate      {:.2} % ({} hits / {} promotions)",
            100.0 * s.stats.hot_hit_rate(),
            s.stats.hot_hits,
            s.stats.promotions
        );
        println!(
            "residency         {} of {} rows in memory",
            s.resident_rows, s.total_rows
        );
        println!(
            "cold tier         {} demotions ({} clean drops), {} compactions",
            s.stats.demotions, s.stats.clean_drops, s.stats.compactions
        );
        println!(
            "disk time         {:.3} ms client + {:.3} ms background",
            s.client_io_ns as f64 / 1e6,
            s.background_io_ns as f64 / 1e6
        );
    }
    let f = &report.faults;
    if !report.fault_events.is_empty() || f != &het_core::FaultStats::default() {
        println!("--- faults ---");
        println!(
            "worker crashes    {} ({} dirty entries lost, {} pending ticks)",
            f.worker_crashes, f.dirty_entries_lost, f.pending_updates_lost
        );
        println!(
            "shard failovers   {} ({} rows restored, {} keys lost, {} ticks rolled back)",
            f.shard_failovers, f.rows_restored, f.keys_lost, f.lost_updates
        );
        println!("degraded reads    {}", f.degraded_reads);
        println!("blocked ops       {}", f.blocked_ops);
        println!("retries           {}", f.retries);
        println!("straggler iters   {}", f.straggler_slow_iters);
        println!("checkpoints       {}", f.checkpoints);
        for ev in &report.fault_events {
            println!("event  {:?} {}", ev.at, ev.description);
        }
    }
}

/// Builds the fault-injection config from the `--fault-*` flags; stays
/// disabled (bit-identical to the fault-free build) when none are given.
fn fault_config_of(args: &Args) -> Result<FaultConfig, String> {
    let crashes: usize = args.get_parsed("fault-crashes", 0)?;
    let outages: usize = args.get_parsed("fault-outages", 0)?;
    let stragglers: usize = args.get_parsed("fault-stragglers", 0)?;
    let degradations: usize = args.get_parsed("fault-degradations", 0)?;
    let drop_prob: f64 = args.get_parsed("fault-drop", 0.0)?;
    let horizon_s: f64 = args.get_parsed("fault-horizon", 10.0)?;
    let checkpoint_every: u64 = args.get_parsed("fault-checkpoint-every", 50)?;
    let mut cfg = FaultConfig::disabled();
    if crashes == 0 && outages == 0 && stragglers == 0 && degradations == 0 && drop_prob <= 0.0 {
        return Ok(cfg);
    }
    cfg.enabled = true;
    cfg.checkpoint_every = checkpoint_every;
    cfg.spec.worker_crashes = crashes;
    cfg.spec.shard_outages = outages;
    cfg.spec.stragglers = stragglers;
    cfg.spec.link_degradations = degradations;
    cfg.spec.message_drop_prob = drop_prob;
    cfg.spec.horizon = SimDuration::from_secs_f64(horizon_s.max(0.001));
    Ok(cfg)
}

/// `--fault-plan FILE.json`: an explicit scripted fault plan to run
/// instead of the one the `--fault-*` flags would derive.
fn fault_plan_override(args: &Args) -> Result<Option<het_simnet::FaultPlan>, String> {
    let Some(path) = args.get("fault-plan") else {
        return Ok(None);
    };
    let text = std::fs::read_to_string(path).map_err(|e| format!("--fault-plan {path}: {e}"))?;
    let json = het_json::from_str(&text).map_err(|e| format!("--fault-plan {path}: {e:?}"))?;
    het_simnet::FaultPlan::from_json(&json)
        .map(Some)
        .map_err(|e| format!("--fault-plan {path}: {e}"))
}

/// `--fault-plan-dump FILE.json`: writes the fault plan a run actually
/// uses, in the format `--fault-plan` reads back.
fn dump_fault_plan(args: &Args, plan: &het_simnet::FaultPlan) -> Result<(), String> {
    if let Some(path) = args.get("fault-plan-dump") {
        std::fs::write(path, plan.to_json().encode_pretty())
            .map_err(|e| format!("--fault-plan-dump {path}: {e}"))?;
        eprintln!("[fault plan] {path}");
    }
    Ok(())
}

fn run_one(
    workload: Workload,
    preset: SystemPreset,
    args: &Args,
    traced: bool,
) -> Result<(RunSummary, TrainReport, Option<het_trace::TraceLog>), String> {
    let workers: usize = args.get_parsed("workers", 8)?;
    let servers: usize = args.get_parsed("servers", 1)?;
    let dim: usize = args.get_parsed("dim", 16)?;
    let iters: u64 = args.get_parsed("iters", 1_600)?;
    let cache_frac: f64 = args.get_parsed("cache-frac", 0.10)?;
    let policy = policy_of(args.get("policy").unwrap_or("lightlfu"))?;
    let band = args.get("network").unwrap_or("1gbe").to_string();
    let target: f64 = args.get_parsed("target", -1.0)?;
    let lr: f64 = args.get_parsed("lr", -1.0)?;
    let lookahead: u64 = args.get_parsed("lookahead", 0)?;
    let store = store_spec_of(args.get("store").unwrap_or("mem"))?;
    let faults = fault_config_of(args)?;

    let tweak = move |c: &mut TrainerConfig| {
        c.cluster = match band.as_str() {
            "10gbe" => ClusterSpec::cluster_b(workers, servers),
            _ => ClusterSpec::cluster_a(workers, servers),
        };
        c.dim = dim;
        c.max_iterations = iters;
        c.eval_every = (iters / 4).max(1);
        if target > 0.0 {
            c.target_metric = Some(target);
        }
        if lr > 0.0 {
            c.lr = lr as f32;
        }
        *c = c.clone().with_cache(cache_frac, policy);
        c.lookahead_depth = lookahead;
        c.store = store.clone();
        c.faults = faults.clone();
    };
    let (report, log) = if traced {
        let (report, log) = run_workload_traced(workload, preset, &tweak);
        (report, Some(log))
    } else {
        (run_workload(workload, preset, &tweak), None)
    };
    let summary = RunSummary::from_report(workload, report.system.as_str(), &report);
    Ok((summary, report, log))
}

/// The `--backend sim|threads:<n>` flag (default `sim`).
fn backend_of(args: &Args) -> Result<ExecutionBackend, String> {
    ExecutionBackend::parse(args.get("backend").unwrap_or("sim"))
}

fn print_parallel_report(workload: Workload, report: &het_core::ParallelReport) {
    println!("workload          {}", workload.name());
    println!("system            {}", report.system);
    println!(
        "backend           {} ({} threads)",
        report.backend, report.n_threads
    );
    println!("iterations        {}", report.total_iterations);
    println!("wall time         {:.3} ms", report.wall_ns as f64 / 1e6);
    println!("throughput        {:.1} iters/s", report.ops_per_sec);
    println!("final metric      {:.4}", report.final_metric);
    println!("cache hit rate    {:.1} %", 100.0 * report.cache.hit_rate());
    if let Some(t) = report.converged_at_ns {
        println!("time to target    {:.3} ms (wall)", t as f64 / 1e6);
    }
}

/// A training run on the threaded backend: same flags as the sim path
/// (minus the sim-only ones), one OS thread per worker. The run always
/// collects a merged per-thread trace and replays it through the
/// model-based oracle before reporting — every threaded run is checked
/// against the consistency model, not just timed.
fn run_one_threaded(
    workload: Workload,
    preset: SystemPreset,
    args: &Args,
    n_threads: usize,
) -> Result<(), String> {
    let servers: usize = args.get_parsed("servers", 1)?;
    let dim: usize = args.get_parsed("dim", 16)?;
    let iters: u64 = args.get_parsed("iters", 1_600)?;
    let cache_frac: f64 = args.get_parsed("cache-frac", 0.10)?;
    let policy = policy_of(args.get("policy").unwrap_or("lightlfu"))?;
    let band = args.get("network").unwrap_or("1gbe").to_string();
    let target: f64 = args.get_parsed("target", -1.0)?;
    let lr: f64 = args.get_parsed("lr", -1.0)?;
    let store = store_spec_of(args.get("store").unwrap_or("mem"))?;
    let faults = fault_config_of(args)?;
    if faults.enabled {
        return Err(
            "the threaded backend does not support fault injection; use --backend sim".to_string(),
        );
    }

    let tweak = move |c: &mut TrainerConfig| {
        c.cluster = match band.as_str() {
            "10gbe" => ClusterSpec::cluster_b(n_threads, servers),
            _ => ClusterSpec::cluster_a(n_threads, servers),
        };
        c.dim = dim;
        c.max_iterations = iters;
        c.eval_every = (iters / 4).max(1);
        if target > 0.0 {
            c.target_metric = Some(target);
        }
        if lr > 0.0 {
            c.lr = lr as f32;
        }
        *c = c.clone().with_cache(cache_frac, policy);
        c.store = store.clone();
    };
    let meta = vec![
        (
            "kind".to_string(),
            het_json::Json::Str("train-threaded".to_string()),
        ),
        (
            "workload".to_string(),
            het_json::Json::Str(workload.name().to_string()),
        ),
    ];
    let (report, config) = run_workload_threaded(workload, preset, &tweak, Some(meta))?;
    let log = report
        .trace
        .as_ref()
        .ok_or("threaded run returned no trace to replay")?;
    let replay = het_trace::replay::ReplayLog::from(log);
    match het_oracle::check_replay(&replay, &het_oracle::OracleSpec::of(&config)) {
        Ok(o) => println!(
            "oracle replay: clean ({} events, {} computes, {} window reads)",
            o.events, o.computes, o.window_reads
        ),
        Err(v) => {
            return Err(format!(
                "oracle replay violation: [{}] t={}ns worker={:?}: {}",
                v.check, v.t_ns, v.worker, v.message
            ))
        }
    }
    print_parallel_report(workload, &report);
    TraceArgs::of(args).write(log)?;
    Ok(())
}

/// Runs the thread-scaling sweep (`het_bench::scale_sweep`) on the
/// Fig. 2 CTR recipe, prints the wall-clock throughput table, and
/// writes the rows to `target/experiments/scale_sweep.json`. With
/// `--gate F` the command fails unless the threads:4 row reaches at
/// least `F ×` the threads:1 throughput — the CI smoke gate (`ci.sh`
/// derives F from `nproc`: 1.0 on multi-core hosts, a tolerance below
/// 1 on single-core boxes where extra threads only add coordination).
fn cmd_scale_sweep(args: &Args) -> Result<(), String> {
    let iters: u64 = args.get_parsed("iters", 240)?;
    let gate: f64 = args.get_parsed("gate", 0.0)?;
    let threads: Vec<usize> = match args.get("threads") {
        None => vec![1, 2, 4],
        Some(s) => s
            .split(',')
            .map(|t| {
                t.trim()
                    .parse()
                    .map_err(|_| format!("--threads: cannot parse '{t}'"))
            })
            .collect::<Result<_, _>>()?,
    };
    let rows = het_bench::scale_sweep(&threads, iters)?;
    println!(
        "{:>7} {:>7} {:>10} {:>11} {:>12} {:>8}",
        "threads", "iters", "wall(s)", "ops/sec", "cycle(us)", "speedup"
    );
    for r in &rows {
        println!(
            "{:>7} {:>7} {:>10.3} {:>11.1} {:>12.1} {:>7.2}x",
            r.threads, r.iterations, r.wall_s, r.ops_per_sec, r.cycle_time_us, r.speedup_vs_one
        );
    }
    het_bench::out::write_json(
        "scale_sweep",
        &het_json::Json::Arr(rows.iter().map(het_json::ToJson::to_json).collect()),
    );
    if gate > 0.0 {
        het_bench::scale_sweep_gate(&rows, gate)?;
        println!("verdict: PASS (threads:4 >= {gate:.2} x threads:1 throughput)");
    }
    Ok(())
}

fn print_threaded_serve_report(report: &het_serve::ThreadedServeReport) {
    println!("backend           threads ({} replicas)", report.n_threads);
    println!("requests          {}", report.requests);
    println!("batches           {}", report.batches);
    println!("wall time         {:.3} ms", report.wall_ns as f64 / 1e6);
    println!("throughput        {:.0} req/s", report.throughput_rps);
    println!(
        "latency           p50 {:.1} us, p95 {:.1} us, p99 {:.1} us, max {:.1} us",
        report.latency_p50_ns as f64 / 1e3,
        report.latency_p95_ns as f64 / 1e3,
        report.latency_p99_ns as f64 / 1e3,
        report.latency_max_ns as f64 / 1e3
    );
    println!(
        "cache miss rate   {:.2} % ({} hits / {} misses / {} invalidations)",
        100.0 * report.cache.miss_rate(),
        report.cache.hits,
        report.cache.misses,
        report.cache.invalidations
    );
    if report.warmed_keys > 0 {
        println!("warmed keys       {} per replica", report.warmed_keys);
    }
    if report.pretrain_updates > 0 {
        println!("pretrain updates  {}", report.pretrain_updates);
    }
    println!("score mean        {:.4}", report.score_mean);
}

fn cmd_serve(args: &Args) -> Result<(), String> {
    use het_serve::{ServeConfig, ServeSim};

    let mut cfg = ServeConfig::new(args.get_parsed("seed", 42)?);
    cfg.n_replicas = args.get_parsed("replicas", cfg.n_replicas)?;
    cfg.dim = args.get_parsed("dim", cfg.dim)?;
    cfg.n_fields = args.get_parsed("fields", cfg.n_fields)?;
    cfg.n_keys = args.get_parsed("keys", cfg.n_keys)?;
    cfg.cache_capacity = args.get_parsed("cache", cfg.cache_capacity)?;
    cfg.staleness = args.get_parsed("staleness", cfg.staleness)?;
    cfg.policy = policy_of(args.get("policy").unwrap_or("lightlfu"))?;
    cfg.arrival_rate = args.get_parsed("rate", cfg.arrival_rate)?;
    cfg.n_requests = args.get_parsed("requests", cfg.n_requests)?;
    cfg.zipf_exponent = args.get_parsed("zipf", cfg.zipf_exponent)?;
    cfg.max_batch = args.get_parsed("max-batch", cfg.max_batch)?;
    cfg.max_queue_delay = SimDuration::from_micros(args.get_parsed("max-delay-us", 200u64)?);
    cfg.pretrain_updates = args.get_parsed("pretrain-updates", cfg.pretrain_updates)?;
    cfg.warmup_requests = args.get_parsed("warmup", cfg.warmup_requests)?;
    cfg.n_shards = args.get_parsed("servers", cfg.n_shards)?;
    cfg.store = store_spec_of(args.get("store").unwrap_or("mem"))?;
    let drift_ms: f64 = args.get_parsed("drift-period-ms", 0.0)?;
    if drift_ms > 0.0 {
        cfg.drift_period = SimDuration::from_secs_f64(drift_ms / 1e3);
        cfg.drift_step = args.get_parsed("drift-step", 1u64)?;
    }
    let flash_at_ms: f64 = args.get_parsed("flash-at-ms", -1.0)?;
    if flash_at_ms >= 0.0 {
        cfg.flash_at =
            Some(het_simnet::SimTime::ZERO + SimDuration::from_secs_f64(flash_at_ms / 1e3));
        cfg.flash_duration =
            SimDuration::from_secs_f64(args.get_parsed("flash-dur-ms", 10.0)? / 1e3);
        cfg.flash_factor = args.get_parsed("flash-x", 4.0)?;
        cfg.flash_hot_keys = args.get_parsed("flash-hot", 64u64)?;
    }
    cfg.faults = fault_config_of(args)?;
    cfg.cluster = match args.get("network").unwrap_or("1gbe") {
        "10gbe" => ClusterSpec::cluster_b(cfg.n_replicas, cfg.n_shards),
        _ => ClusterSpec::cluster_a(cfg.n_replicas, cfg.n_shards),
    };
    if args.get_parsed("supervised", 0u8)? != 0 {
        cfg.supervision.enabled = true;
        cfg.supervision.heartbeat_every =
            SimDuration::from_micros(args.get_parsed("heartbeat-us", 250u64)?);
    }

    if let ExecutionBackend::Threads(n) = backend_of(args)? {
        // One OS thread per replica; the sim-only machinery (faults,
        // supervision, scripted plans, traces) stays on `--backend sim`
        // — `run_threaded_serve` rejects what slips past these checks.
        if TraceArgs::of(args).requested() {
            return Err("--trace/--trace-chrome on serve are sim-only; use --backend sim".into());
        }
        if args.get("fault-plan").is_some() || args.get("fault-plan-dump").is_some() {
            return Err("--fault-plan[-dump] is sim-only; use --backend sim".into());
        }
        cfg.n_replicas = n;
        let (n_fields, dim) = (cfg.n_fields, cfg.dim);
        let report = het_serve::run_threaded_serve(cfg, n, move |rng| {
            het_models::WideDeep::new(rng, n_fields, dim, &[32])
        })?;
        print_threaded_serve_report(&report);
        return Ok(());
    }

    // `--fault-plan` replaces the plan `cfg.faults` would derive;
    // either way the plan actually used is what `--fault-plan-dump`
    // writes.
    let fleet = if cfg.autoscale.enabled {
        cfg.autoscale.max_replicas
    } else {
        cfg.n_replicas
    };
    let plan = match fault_plan_override(args)? {
        Some(plan) => plan,
        None => cfg.faults.plan(cfg.seed, fleet, cfg.n_shards),
    };
    dump_fault_plan(args, &plan)?;

    let trace = TraceArgs::of(args);
    let traced = trace.begin("serve", cfg.seed);
    let (n_fields, dim) = (cfg.n_fields, cfg.dim);
    let report = ServeSim::with_plan(cfg, plan, move |rng| {
        het_models::WideDeep::new(rng, n_fields, dim, &[32])
    })
    .run();
    print_serve_report(&report);
    if traced {
        trace.write(&het_trace::finish())?;
    }
    Ok(())
}

fn print_serve_report(report: &het_serve::ServeReport) {
    println!("replicas          {}", report.n_replicas);
    println!(
        "cache             {} entries, policy {}, staleness {}",
        report.cache_capacity, report.policy, report.staleness
    );
    println!("requests          {}", report.requests);
    println!(
        "batches           {} (mean size {:.2})",
        report.batches, report.mean_batch_size
    );
    println!(
        "simulated time    {:.3} ms",
        report.sim_time_ns as f64 / 1e6
    );
    println!("throughput        {:.0} req/s", report.throughput_rps);
    println!(
        "latency           p50 {:.1} us, p95 {:.1} us, p99 {:.1} us, max {:.1} us",
        report.latency_p50_ns as f64 / 1e3,
        report.latency_p95_ns as f64 / 1e3,
        report.latency_p99_ns as f64 / 1e3,
        report.latency_max_ns as f64 / 1e3
    );
    println!(
        "cache miss rate   {:.2} % ({} hits / {} misses / {} invalidations)",
        100.0 * report.cache.miss_rate(),
        report.cache.hits,
        report.cache.misses,
        report.cache.invalidations
    );
    if report.warmed_keys > 0 {
        println!("warmed keys       {} per replica", report.warmed_keys);
    }
    if report.pretrain_updates > 0 {
        println!("pretrain updates  {}", report.pretrain_updates);
    }
    let f = &report.faults;
    if f != &het_core::FaultStats::default() {
        println!("--- faults ---");
        println!(
            "replica crashes   {} ({} cached keys dropped cold)",
            f.worker_crashes, f.keys_lost
        );
        println!("shard failovers   {}", f.shard_failovers);
        println!("degraded reads    {}", f.degraded_reads);
    }
    let elastic = report.detections
        + report.respawns
        + report.retry_waits
        + report.scale_ups
        + report.scale_downs
        + report.migrated_keys;
    if elastic > 0 || report.split_done {
        println!("--- elasticity ---");
        println!(
            "detections        {} ({} respawns, worst recovery {:.1} us)",
            report.detections,
            report.respawns,
            report.max_recovery_ns as f64 / 1e3
        );
        println!("retry waits       {}", report.retry_waits);
        println!(
            "autoscaling       {} up / {} down",
            report.scale_ups, report.scale_downs
        );
        println!(
            "live split        {} keys migrated, done: {}",
            report.migrated_keys, report.split_done
        );
    }
    for r in &report.replicas {
        println!(
            "replica {}         {} reqs, {} batches, {} crashes, miss {:.2} %, p99 {:.1} us",
            r.replica,
            r.requests,
            r.batches,
            r.crashes,
            100.0 * r.cache.miss_rate(),
            r.p99_ns as f64 / 1e3
        );
    }
}

/// Co-schedules a live CTR trainer and a serving fleet on one cluster
/// runtime and one PS fabric (`het_serve::run_colocated`).
fn cmd_colocate(args: &Args) -> Result<(), String> {
    use het_core::Trainer;
    use het_data::{CtrConfig, CtrDataset};
    use het_serve::{run_colocated, ServeConfig};

    let seed: u64 = args.get_parsed("seed", 42)?;
    let workers: usize = args.get_parsed("workers", 4)?;
    let servers: usize = args.get_parsed("servers", 2)?;
    let iters: u64 = args.get_parsed("iters", 400)?;
    let staleness: u64 = args.get_parsed("staleness", 10)?;
    let preset = system_of(args.get("system").unwrap_or("het-cache"), staleness)?;

    let mut train_cfg = TrainerConfig::tiny(preset);
    train_cfg.cluster = ClusterSpec::cluster_a(workers, servers);
    train_cfg.max_iterations = iters;
    train_cfg.eval_every = (iters / 4).max(1);
    train_cfg.seed = seed;
    train_cfg.faults = fault_config_of(args)?;

    // The fleet shares the trainer's PS fabric, so its dim comes from
    // the trainer; shard count is synced inside `run_colocated`.
    let mut serve_cfg = ServeConfig::tiny(seed);
    serve_cfg.dim = train_cfg.dim;
    serve_cfg.n_replicas = args.get_parsed("replicas", serve_cfg.n_replicas)?;
    serve_cfg.cache_capacity = args.get_parsed("cache", serve_cfg.cache_capacity)?;
    serve_cfg.staleness = args.get_parsed("serve-staleness", serve_cfg.staleness)?;
    serve_cfg.policy = policy_of(args.get("policy").unwrap_or("lru"))?;
    serve_cfg.arrival_rate = args.get_parsed("rate", serve_cfg.arrival_rate)?;
    serve_cfg.n_requests = args.get_parsed("requests", serve_cfg.n_requests)?;
    serve_cfg.pretrain_updates = args.get_parsed("pretrain-updates", serve_cfg.pretrain_updates)?;
    serve_cfg.warmup_requests = args.get_parsed("warmup", serve_cfg.warmup_requests)?;

    if let ExecutionBackend::Threads(n) = backend_of(args)? {
        // Trainer workers and serving replicas each get a real OS
        // thread, sharing one live PS fabric; `threads:<n>` sizes the
        // trainer side, `--replicas` the fleet.
        if TraceArgs::of(args).requested() {
            return Err(
                "--trace/--trace-chrome on colocate are sim-only; use --backend sim".into(),
            );
        }
        if args.get("fault-plan").is_some() || args.get("fault-plan-dump").is_some() {
            return Err("--fault-plan[-dump] is sim-only; use --backend sim".into());
        }
        train_cfg.cluster = ClusterSpec::cluster_a(n, servers);
        let mut trainer = Trainer::new(train_cfg, CtrDataset::new(CtrConfig::tiny(seed)), |rng| {
            het_models::WideDeep::new(rng, 4, 8, &[16])
        });
        let (n_fields, dim) = (serve_cfg.n_fields, serve_cfg.dim);
        let replicas = serve_cfg.n_replicas;
        let (train, serve) =
            het_serve::run_threaded_colocated(&mut trainer, serve_cfg, replicas, move |rng| {
                het_models::WideDeep::new(rng, n_fields, dim, &[16])
            })?;
        println!("--- train ---");
        print_parallel_report(Workload::WdlCriteo, &train);
        println!("--- serve ---");
        print_threaded_serve_report(&serve);
        return Ok(());
    }

    let mut trainer = Trainer::with_shared_members(
        train_cfg,
        CtrDataset::new(CtrConfig::tiny(seed)),
        |rng| het_models::WideDeep::new(rng, 4, 8, &[16]),
        serve_cfg.n_replicas,
    );
    if let Some(plan) = fault_plan_override(args)? {
        trainer.override_plan(plan);
    }
    dump_fault_plan(args, trainer.plan())?;
    let (n_fields, dim) = (serve_cfg.n_fields, serve_cfg.dim);

    let trace = TraceArgs::of(args);
    let traced = trace.begin("colocate", seed);
    let report = run_colocated(trainer, serve_cfg, move |rng| {
        het_models::WideDeep::new(rng, n_fields, dim, &[16])
    });
    println!("--- train ---");
    println!("system            {}", report.train.system);
    println!("final metric      {:.4}", report.train.final_metric);
    println!("iterations        {}", report.train.total_iterations);
    println!(
        "simulated time    {:.3} ms",
        report.train.total_sim_time.as_secs_f64() * 1e3
    );
    println!(
        "cache hit rate    {:.1} %",
        100.0 * report.train.cache.hit_rate()
    );
    let tf = &report.train.faults;
    if tf != &het_core::FaultStats::default() {
        println!("--- train faults ---");
        println!(
            "worker crashes    {} ({} dirty entries lost)",
            tf.worker_crashes, tf.dirty_entries_lost
        );
        println!("shard failovers   {}", tf.shard_failovers);
        println!("degraded reads    {}", tf.degraded_reads);
    }
    println!("--- serve ---");
    print_serve_report(&report.serve);
    if traced {
        trace.write(&het_trace::finish())?;
    }
    Ok(())
}

/// Runs the compound-failure chaos campaign (`het_serve::run_chaos`)
/// and gates on its SLO/RTO verdicts: single seed by default, a whole
/// sweep with `--seeds A..B`.
fn cmd_chaos(args: &Args) -> Result<(), String> {
    use het_serve::{run_chaos, ChaosConfig};

    let mut cfg = ChaosConfig::tiny(args.get_parsed("seed", 42)?);
    cfg.workers = args.get_parsed("workers", cfg.workers)?;
    cfg.servers = args.get_parsed("servers", cfg.servers)?;
    cfg.train_iters = args.get_parsed("iters", cfg.train_iters)?;
    cfg.requests = args.get_parsed("requests", cfg.requests)?;
    cfg.arrival_rate = args.get_parsed("rate", cfg.arrival_rate)?;
    cfg.flash_factor = args.get_parsed("flash-x", cfg.flash_factor)?;
    cfg.slo_p99 =
        SimDuration::from_micros(args.get_parsed("slo-p99-us", cfg.slo_p99.as_nanos() / 1_000)?);
    cfg.rto = SimDuration::from_micros(args.get_parsed("rto-us", cfg.rto.as_nanos() / 1_000)?);
    dump_fault_plan(args, &cfg.fault_plan())?;

    if let Some(range) = args.get("seeds") {
        let (start, end) = seed_range_of(range)?;
        let mut failed = 0u64;
        for seed in start..end {
            cfg.seed = seed;
            let r = run_chaos(&cfg);
            if !r.healthy() {
                failed += 1;
                let s = &r.report.serve;
                println!(
                    "seed {seed}: FAIL (slo_ok={} p99={:.1}us, rto_ok={}, recovered_ok={}, split_ok={})",
                    r.slo_ok,
                    s.latency_p99_ns as f64 / 1e3,
                    r.rto_ok,
                    r.recovered_ok,
                    r.split_ok
                );
            }
        }
        println!(
            "chaos campaign: {} seeds, {} unhealthy",
            end - start,
            failed
        );
        if failed > 0 {
            return Err(format!("{failed} seed(s) failed the chaos gate"));
        }
        println!("verdict: PASS — every seed rode out the storm");
        return Ok(());
    }

    let trace = TraceArgs::of(args);
    let traced = trace.begin("chaos", cfg.seed);
    let report = run_chaos(&cfg);
    if traced {
        trace.write(&het_trace::finish())?;
    }
    println!("--- train ---");
    println!("system            {}", report.report.train.system);
    println!("final metric      {:.4}", report.report.train.final_metric);
    println!("iterations        {}", report.report.train.total_iterations);
    println!("--- serve ---");
    print_serve_report(&report.report.serve);
    println!("--- verdicts ---");
    let s = &report.report.serve;
    println!(
        "slo  p99          {:.1} us vs {:.1} us objective: {}",
        s.latency_p99_ns as f64 / 1e3,
        report.slo_p99_ns as f64 / 1e3,
        if report.slo_ok { "OK" } else { "VIOLATED" }
    );
    println!(
        "rto               {:.1} us vs {:.1} us objective: {}",
        s.max_recovery_ns as f64 / 1e3,
        report.rto_ns as f64 / 1e3,
        if report.rto_ok { "OK" } else { "VIOLATED" }
    );
    println!(
        "recovery          {}",
        if report.recovered_ok {
            "OK"
        } else {
            "INCOMPLETE"
        }
    );
    println!(
        "live split        {}",
        if report.split_ok { "OK" } else { "INCOMPLETE" }
    );
    if !report.healthy() {
        return Err("chaos gate failed".to_string());
    }
    println!("verdict: PASS");
    Ok(())
}

/// Runs the lookahead-depth sweep (`het_bench::prefetch_sweep`) on the
/// remote-PS CTR workload, prints the cycle-time table, and writes the
/// rows to `target/experiments/prefetch_sweep.json`. With `--gate F`
/// the command fails unless cycle time is monotonically non-increasing
/// in depth *and* the depth-4 row cuts cycle time by at least fraction
/// `F` vs depth 0 — the CI smoke gate.
fn cmd_prefetch_sweep(args: &Args) -> Result<(), String> {
    let iters: u64 = args.get_parsed("iters", 600)?;
    let depths: Vec<u64> = match args.get("depths") {
        None => vec![0, 1, 2, 4, 8],
        Some(s) => s
            .split(',')
            .map(|d| {
                d.trim()
                    .parse()
                    .map_err(|_| format!("--depths: cannot parse '{d}'"))
            })
            .collect::<Result<_, _>>()?,
    };
    let gate: f64 = args.get_parsed("gate", 0.0)?;
    let dim: usize = args.get_parsed("dim", 0)?;
    let batch: usize = args.get_parsed("batch", 0)?;
    let workers: usize = args.get_parsed("workers", 0)?;
    let cache_frac: f64 = args.get_parsed("cache-frac", 0.0)?;
    let staleness: u64 = args.get_parsed("staleness", 0)?;
    let rows = het_bench::prefetch_sweep_with(&depths, iters, &|c| {
        if dim > 0 {
            c.dim = dim;
        }
        if batch > 0 {
            c.batch_size = batch;
        }
        if workers > 0 {
            c.cluster = ClusterSpec::cluster_a(workers, 1);
        }
        if cache_frac > 0.0 {
            *c = c.clone().with_cache(cache_frac, PolicyKind::light_lfu());
        }
        if staleness > 0 {
            if let SparseMode::Cached { staleness: s, .. } = &mut c.system.sparse {
                *s = staleness;
            }
        }
    });
    println!(
        "{:>6} {:>12} {:>9} {:>7} {:>10} {:>10} {:>8}",
        "depth", "cycle(us)", "speedup", "hit%", "installs", "pf-hits", "wasted"
    );
    for r in &rows {
        println!(
            "{:>6} {:>12.2} {:>8.2}x {:>6.1} {:>10} {:>10} {:>8}",
            r.depth,
            r.cycle_time_us,
            r.speedup_vs_demand,
            100.0 * r.cache_hit_rate,
            r.prefetch_installs,
            r.prefetch_hits,
            r.prefetch_wasted
        );
    }
    het_bench::out::write_json(
        "prefetch_sweep",
        &het_json::Json::Arr(rows.iter().map(het_json::ToJson::to_json).collect()),
    );
    let tracing = TraceArgs::of(args);
    if tracing.requested() {
        // One extra traced run (default: the deepest swept depth) for
        // the timeline where prefetch transfers overlap compute.
        let trace_depth: u64 =
            args.get_parsed("trace-depth", depths.last().copied().unwrap_or(0))?;
        let (_, log) = het_bench::prefetch_sweep_traced(trace_depth, iters);
        tracing.write(&log)?;
    }
    if gate > 0.0 {
        for w in rows.windows(2) {
            if w[1].cycle_time_us > w[0].cycle_time_us {
                return Err(format!(
                    "cycle time is not monotonically non-increasing: depth {} ({:.2} us) > \
                     depth {} ({:.2} us)",
                    w[1].depth, w[1].cycle_time_us, w[0].depth, w[0].cycle_time_us
                ));
            }
        }
        let depth4 = rows
            .iter()
            .find(|r| r.depth == 4)
            .ok_or("--gate needs a depth-4 row in the sweep")?;
        let reduction = 1.0 - depth4.cycle_time_us / rows[0].cycle_time_us;
        println!(
            "depth-4 cycle-time reduction: {:.1} % (gate {:.1} %)",
            100.0 * reduction,
            100.0 * gate
        );
        if reduction < gate {
            return Err(format!(
                "depth-4 cycle-time reduction {:.1} % is below the {:.1} % gate",
                100.0 * reduction,
                100.0 * gate
            ));
        }
        println!("verdict: PASS");
    }
    Ok(())
}

/// Runs the tiered-store sweep (`het_bench::store_sweep`): one
/// CTR-shaped Zipf stream at a paper-scale key space against the flat
/// in-memory baseline and a tiered cell per hot budget, printing the
/// memory-vs-disk crossover table and writing the rows to
/// `target/experiments/store_sweep.json`. With `--gate FLOOR` the
/// command fails unless every tiered cell stayed within its resident
/// budget, exercised the cold tier, and kept its hot hit rate at or
/// above FLOOR — the CI smoke gate proving 10⁷-key spaces run in
/// bounded memory.
fn cmd_store_sweep(args: &Args) -> Result<(), String> {
    let n_keys: u64 = args.get_parsed("keys", 10_000_000)?;
    let ops: u64 = args.get_parsed("ops", 1_000_000)?;
    let dim: usize = args.get_parsed("dim", 16)?;
    let gate: f64 = args.get_parsed("gate", 0.0)?;
    let hot_budgets: Vec<u64> = match args.get("hot") {
        None => vec![1 << 14, 1 << 16, 1 << 18],
        Some(s) => s
            .split(',')
            .map(|h| {
                h.trim()
                    .parse()
                    .map_err(|_| format!("--hot: cannot parse '{h}'"))
            })
            .collect::<Result<_, _>>()?,
    };
    // Cold tiers spill to real segment files under target/experiments
    // by default, so host memory stays bounded at 10⁷–10⁸-key scale;
    // `--spill 0` keeps segments in memory (small sweeps only).
    let spill_dir = if args.get_parsed("spill", 1u8)? != 0 {
        Some(het_bench::out::experiments_dir().join("store_sweep_cold"))
    } else {
        None
    };
    let rows = het_bench::store_sweep(n_keys, ops, &hot_budgets, dim, spill_dir.clone());
    println!(
        "{:<16} {:>12} {:>12} {:>10} {:>7} {:>10} {:>8} {:>10}",
        "backend", "distinct", "resident", "res(MiB)", "hit%", "io(ms)", "compact", "wall(ms)"
    );
    for r in &rows {
        println!(
            "{:<16} {:>12} {:>12} {:>10.1} {:>6.1} {:>10.2} {:>8} {:>10.0}",
            r.backend,
            r.distinct_keys,
            r.resident_rows,
            r.resident_mb,
            100.0 * r.hot_hit_rate,
            r.io_ms,
            r.compactions,
            r.wall_ms
        );
    }
    het_bench::out::write_json(
        "store_sweep",
        &het_json::Json::Arr(rows.iter().map(het_json::ToJson::to_json).collect()),
    );
    if let Some(d) = &spill_dir {
        // The cold logs are scratch, not an artifact.
        let _ = std::fs::remove_dir_all(d);
    }
    if gate > 0.0 {
        het_bench::store_sweep_gate(&rows, gate)?;
        println!("verdict: PASS (every tiered cell bounded, hot hit rate >= {gate:.2})");
    }
    Ok(())
}

/// Runs the eviction-policy shootout (`het_bench::policy_shootout`):
/// every scenario of the matrix (CTR/GNN training, prefetch on,
/// faulted, serve with hot-set drift, serve with a flash crowd) ×
/// every `PolicyKind`, printing the leaderboard and writing it to
/// `target/experiments/policy_shootout.json`. With `--gate MARGIN` the
/// command fails if on any scenario the adaptive meta-policy's hit
/// rate falls more than MARGIN (absolute) below the best fixed policy
/// — the CI gate proving the switcher tracks the per-workload winner.
fn cmd_policy_shootout(args: &Args) -> Result<(), String> {
    let iters: u64 = args.get_parsed("iters", 240)?;
    let requests: usize = args.get_parsed("requests", 2_400)?;
    let gate: f64 = args.get_parsed("gate", 0.0)?;
    let rows = het_bench::policy_shootout(iters, requests);
    println!(
        "{:<20} {:<10} {:>7} {:>12} {:>10}",
        "scenario", "policy", "hit%", "cycle(us)", "p99(us)"
    );
    for scenario in het_bench::SHOOTOUT_SCENARIOS {
        let mut cells: Vec<_> = rows.iter().filter(|r| r.scenario == scenario).collect();
        cells.sort_by(|a, b| b.hit_rate.total_cmp(&a.hit_rate));
        for r in cells {
            println!(
                "{:<20} {:<10} {:>6.1}% {:>12.2} {:>10.1}",
                r.scenario,
                r.policy,
                100.0 * r.hit_rate,
                r.cycle_time_us,
                r.p99_us
            );
        }
    }
    het_bench::out::write_json(
        "policy_shootout",
        &het_json::Json::Arr(rows.iter().map(het_json::ToJson::to_json).collect()),
    );
    if gate > 0.0 {
        het_bench::shootout_gate(&rows, gate)?;
        println!("verdict: PASS (adaptive within {gate:.2} of best fixed on every scenario)");
    }
    Ok(())
}

/// Parses `"A..B"` into a half-open index range.
fn seed_range_of(s: &str) -> Result<(u64, u64), String> {
    let (a, b) = s
        .split_once("..")
        .ok_or_else(|| format!("--seeds: expected A..B, got '{s}'"))?;
    let start: u64 = a.parse().map_err(|_| format!("--seeds: bad start '{a}'"))?;
    let end: u64 = b.parse().map_err(|_| format!("--seeds: bad end '{b}'"))?;
    if end <= start {
        return Err(format!("--seeds: empty range '{s}'"));
    }
    Ok((start, end))
}

fn cmd_oracle(args: &Args) -> Result<(), String> {
    use het_oracle::fuzz::{read_repro, run_fuzz, run_scenario, FuzzConfig};

    if let Some(path) = args.get("repro") {
        let scenario = read_repro(std::path::Path::new(path))?;
        println!("replaying {path}");
        println!("scenario  {}", het_json::to_string(&scenario));
        return match run_scenario(&scenario).oracle {
            Ok(report) => {
                println!(
                    "verdict   PASS ({} events, {} computes, {} window reads)",
                    report.events, report.computes, report.window_reads
                );
                Ok(())
            }
            Err(v) => Err(format!(
                "violation reproduced: [{}] t={}ns worker={:?}: {}",
                v.check, v.t_ns, v.worker, v.message
            )),
        };
    }

    let (seed_start, seed_end) = seed_range_of(args.get("seeds").unwrap_or("0..100"))?;
    let out_dir = match args.get("out") {
        Some(p) => std::path::PathBuf::from(p),
        None => {
            let target = std::env::var("CARGO_TARGET_DIR")
                .unwrap_or_else(|_| format!("{}/../../target", env!("CARGO_MANIFEST_DIR")));
            std::path::PathBuf::from(target).join("oracle")
        }
    };
    let cfg = FuzzConfig {
        master_seed: args.get_parsed("master-seed", 0)?,
        seed_start,
        seed_end,
        max_iters: args.get_parsed("iters", 50)?,
        extra_staleness: args.get_parsed("sabotage-staleness", 0)?,
        out_dir: Some(out_dir),
        stop_after: args.get_parsed("stop-after", 0)?,
    };
    let outcome = run_fuzz(&cfg);
    println!(
        "oracle: {} runs (bsp {} / asp {} / ssp {}), {} cached, {} prefetched, {} tiered, \
         {} faulted",
        outcome.runs,
        outcome.by_sync[0],
        outcome.by_sync[1],
        outcome.by_sync[2],
        outcome.cached_runs,
        outcome.prefetch_runs,
        outcome.tiered_runs,
        outcome.faulted_runs
    );
    println!(
        "checked: {} iteration completions, {} staleness windows, {} barriers, \
         {} prefetch installs",
        outcome.computes, outcome.window_reads, outcome.barriers, outcome.prefetch_installs
    );
    if outcome.violations.is_empty() {
        println!("verdict: PASS — zero violations");
        return Ok(());
    }
    for caught in &outcome.violations {
        println!(
            "VIOLATION at index {} [{}]: {}",
            caught.index, caught.violation.check, caught.violation.message
        );
        println!(
            "  shrunk to workers={} iters={} ({} shrink runs)",
            caught.shrunk.workers, caught.shrunk.iters, caught.shrink_runs
        );
        if let Some(p) = &caught.repro_path {
            println!("  repro file: {}", p.display());
        }
    }
    Err(format!(
        "{} violation(s) found in {} runs",
        outcome.violations.len(),
        outcome.runs
    ))
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = argv.first().map(String::as_str) else {
        eprintln!(
            "usage: hetctl <train|compare|serve|colocate|chaos|oracle|prefetch-sweep|\
             scale-sweep|store-sweep|policy-shootout|list> [--flag value ...]"
        );
        return ExitCode::FAILURE;
    };
    let result = match command {
        "list" => {
            println!("workloads: wdl dfm dcn reddit amazon mag");
            println!("systems:   tf-ps tf-parallax het-ps het-ar het-hybrid het-cache ssp");
            println!("flags:     --workers N --servers N --dim N --iters N --staleness N");
            println!(
                "           --cache-frac F --network 1gbe|10gbe\n           --policy \
                 lru|lfu|lightlfu[:T]|clock|slru|lfuda|gdsf|adaptive[:W]"
            );
            println!("           --target METRIC --lr RATE --lookahead DEPTH (prefetcher)");
            println!(
                "           --backend sim|threads:N (train/serve/colocate: real OS threads;\n           \
                 threaded training always oracle-replays its merged trace)"
            );
            println!("           --fault-crashes N --fault-outages N --fault-stragglers N");
            println!("           --fault-degradations N --fault-drop P --fault-horizon SECS");
            println!("           --fault-checkpoint-every ITERS");
            println!("           --trace OUT.jsonl (structured event trace, het-trace-v1)");
            println!("           --trace-chrome OUT.json (chrome://tracing view)");
            println!("oracle:    --seeds A..B --iters N --master-seed N --stop-after N");
            println!("           --sabotage-staleness N --out DIR --repro FILE.json");
            println!("           --store mem|tiered:HOT_ROWS (PS row-store backend)");
            println!("prefetch-sweep: --depths 0,1,2,4,8 --iters N --gate FRACTION");
            println!("scale-sweep: --threads 1,2,4 --iters N --gate RATIO (wall-clock scaling)");
            println!("store-sweep: --keys N --ops N --hot A,B,C --dim N --spill 0|1 --gate FLOOR");
            println!("policy-shootout: --iters N --requests N --gate HIT_RATE_MARGIN");
            println!("serve:     --replicas N --servers N --dim N --fields N --keys N");
            println!("           --cache ENTRIES --staleness N --policy (as above)");
            println!("           --rate REQ_PER_S --requests N --zipf EXP --seed N");
            println!("           --max-batch N --max-delay-us US --network 1gbe|10gbe");
            println!("           --pretrain-updates N --warmup REQS");
            println!("           --drift-period-ms MS --drift-step KEYS");
            println!("           --flash-at-ms MS --flash-dur-ms MS --flash-x F --flash-hot N");
            println!("           (plus the --fault-* and --trace* flags above)");
            println!("colocate:  --workers N --servers N --iters N --system NAME --staleness N");
            println!(
                "           --replicas N --cache ENTRIES --serve-staleness N --rate REQ_PER_S"
            );
            println!("           --requests N --pretrain-updates N --warmup REQS --seed N");
            println!("           (plus the --fault-* and --trace* flags above)");
            println!("chaos:     --seed N | --seeds A..B --workers N --servers N --iters N");
            println!("           --requests N --rate REQ_PER_S --flash-x F");
            println!("           --slo-p99-us US --rto-us US");
            println!("plans:     --fault-plan FILE.json (serve/colocate/chaos: scripted plan)");
            println!("           --fault-plan-dump FILE.json (write the plan actually used)");
            println!("           --supervised 1 --heartbeat-us US (serve: heartbeat recovery)");
            Ok(())
        }
        "train" | "compare" => (|| -> Result<(), String> {
            let args = Args::parse(&argv[1..])?;
            let workload = workload_of(args.get("workload").unwrap_or("wdl"))?;
            let staleness: u64 = args.get_parsed("staleness", 100)?;
            let system_name = args.get("system").unwrap_or("het-cache").to_string();
            let preset = system_of(&system_name, staleness)?;
            if let ExecutionBackend::Threads(n) = backend_of(&args)? {
                if command == "compare" {
                    return Err(
                        "compare is sim-only (its baselines are simulated); use --backend sim"
                            .to_string(),
                    );
                }
                return run_one_threaded(workload, preset, &args, n);
            }
            let trace = TraceArgs::of(&args);
            let (summary, report, log) = run_one(workload, preset, &args, trace.requested())?;
            print_report(workload, &system_name, &summary, &report);
            if let Some(log) = log {
                trace.write(&log)?;
            }
            if command == "compare" {
                let base_name = args.get("baseline").unwrap_or("het-hybrid").to_string();
                let base_preset = system_of(&base_name, staleness)?;
                let (base, base_report, _) = run_one(workload, base_preset, &args, false)?;
                println!("\n--- baseline ---");
                print_report(workload, &base_name, &base, &base_report);
                println!("\n--- comparison ---");
                println!(
                    "epoch-time speedup      {:.2}x",
                    base.epoch_time_s / summary.epoch_time_s.max(f64::MIN_POSITIVE)
                );
                let reduction = if base.embedding_bytes > 0 {
                    1.0 - summary.embedding_bytes as f64 / base.embedding_bytes as f64
                } else {
                    0.0
                };
                println!("embedding comm reduction {:.1} %", 100.0 * reduction);
            }
            Ok(())
        })(),
        "prefetch-sweep" => Args::parse(&argv[1..]).and_then(|args| cmd_prefetch_sweep(&args)),
        "scale-sweep" => Args::parse(&argv[1..]).and_then(|args| cmd_scale_sweep(&args)),
        "store-sweep" => Args::parse(&argv[1..]).and_then(|args| cmd_store_sweep(&args)),
        "policy-shootout" => Args::parse(&argv[1..]).and_then(|args| cmd_policy_shootout(&args)),
        "serve" => Args::parse(&argv[1..]).and_then(|args| cmd_serve(&args)),
        "colocate" => Args::parse(&argv[1..]).and_then(|args| cmd_colocate(&args)),
        "chaos" => Args::parse(&argv[1..]).and_then(|args| cmd_chaos(&args)),
        "oracle" => Args::parse(&argv[1..]).and_then(|args| cmd_oracle(&args)),
        other => Err(format!(
            "unknown command '{other}' (try: train compare serve colocate chaos oracle \
             prefetch-sweep scale-sweep store-sweep policy-shootout list)"
        )),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("hetctl: {msg}");
            ExitCode::FAILURE
        }
    }
}
