//! Shared experiment harness for the paper-reproduction benches.
//!
//! Every table and figure of the paper's §5 has a bench target in
//! `benches/` (registered with `harness = false`, so `cargo bench`
//! regenerates all of them). This library gives those targets one
//! vocabulary: the six evaluated workloads, a uniform way to run any
//! (workload × system) pair at bench scale, table printing, and JSON
//! output under `target/experiments/`.
//!
//! Scales are reduced from the paper (no GPU cluster here — the
//! simulated cluster preserves the *shape*: who wins and by what
//! factor). See DESIGN.md for the substitution argument and
//! EXPERIMENTS.md for paper-vs-measured numbers.

#![warn(missing_docs)]

pub mod micro;

use het_core::config::{SystemPreset, TrainerConfig};
use het_core::{TrainReport, Trainer};
use het_data::{CtrConfig, CtrDataset, Graph, GraphConfig, NeighborSampler};
use het_json::{impl_to_json, ToJson};
use het_models::{DeepCross, DeepFm, GnnDataset, GraphSage, WideDeep};
use het_simnet::SimDuration;
use std::path::PathBuf;

/// The paper's six evaluated workloads (§5: three DLRM models on Criteo,
/// GraphSAGE on three graphs).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Workload {
    /// Wide&Deep on the Criteo-like CTR stream.
    WdlCriteo,
    /// DeepFM on the Criteo-like CTR stream.
    DfmCriteo,
    /// Deep&Cross on the Criteo-like CTR stream.
    DcnCriteo,
    /// GraphSAGE on the Reddit-like graph.
    GnnReddit,
    /// GraphSAGE on the Amazon-like graph.
    GnnAmazon,
    /// GraphSAGE on the ogbn-mag-like graph.
    GnnOgbnMag,
}

impl Workload {
    /// All six workloads in the paper's presentation order.
    pub const ALL: [Workload; 6] = [
        Workload::WdlCriteo,
        Workload::DfmCriteo,
        Workload::DcnCriteo,
        Workload::GnnReddit,
        Workload::GnnAmazon,
        Workload::GnnOgbnMag,
    ];

    /// The three DLRM workloads (used by Fig. 7).
    pub const DLRM: [Workload; 3] = [
        Workload::WdlCriteo,
        Workload::DfmCriteo,
        Workload::DcnCriteo,
    ];

    /// The paper's display name.
    pub fn name(self) -> &'static str {
        match self {
            Workload::WdlCriteo => "WDL-Criteo",
            Workload::DfmCriteo => "DFM-Criteo",
            Workload::DcnCriteo => "DCN-Criteo",
            Workload::GnnReddit => "GNN-Reddit",
            Workload::GnnAmazon => "GNN-Amazon",
            Workload::GnnOgbnMag => "GNN-ogbn-mag",
        }
    }

    /// True for the CTR (AUC-metric) workloads.
    pub fn is_ctr(self) -> bool {
        matches!(
            self,
            Workload::WdlCriteo | Workload::DfmCriteo | Workload::DcnCriteo
        )
    }

    /// Number of embedding keys at bench scale (approximate for CTR,
    /// whose heterogeneous field profile rounds per field).
    pub fn n_keys(self) -> usize {
        match self {
            Workload::WdlCriteo | Workload::DfmCriteo | Workload::DcnCriteo => {
                het_data::ctr::scaled_criteo_vocabs(CTR_FIELDS * CTR_VOCAB)
                    .iter()
                    .sum()
            }
            Workload::GnnReddit => 40_000,
            Workload::GnnAmazon => 60_000,
            Workload::GnnOgbnMag => 50_000,
        }
    }

    /// A metric target for "time to quality" experiments (Table 1),
    /// calibrated per workload to a level every synchronous system
    /// reaches at bench scale — slightly below each task's plateau,
    /// analogous to the paper's AUC≈0.8 Criteo thresholds.
    pub fn target_metric(self) -> f64 {
        match self {
            Workload::WdlCriteo => 0.74,
            Workload::DfmCriteo => 0.62,
            Workload::DcnCriteo => 0.775,
            Workload::GnnReddit => 0.55,
            Workload::GnnAmazon => 0.30,
            Workload::GnnOgbnMag => 0.32,
        }
    }

    /// The grid-searched learning rate per workload (the paper grid
    /// searches a small set per task; our synthetic scales land on 0.05
    /// for WDL/DCN, 0.02 for DeepFM — whose quadratic FM term diverges
    /// at higher rates, especially under accumulated stale writes — and
    /// 0.6 for GraphSAGE's from-scratch node embeddings).
    pub fn learning_rate(self) -> f32 {
        match self {
            Workload::DfmCriteo => 0.02,
            Workload::WdlCriteo | Workload::DcnCriteo => 0.05,
            _ => 0.6,
        }
    }
}

/// CTR workload scale shared by every bench.
pub const CTR_FIELDS: usize = 26;
/// Vocabulary per categorical field at bench scale (52 000 total keys).
pub const CTR_VOCAB: usize = 2_000;

fn ctr_dataset(seed: u64) -> CtrDataset {
    let mut cfg = CtrConfig::criteo_like(seed);
    // Rescale the heterogeneous Criteo field profile to the bench key
    // budget.
    cfg.vocab_sizes = Some(het_data::ctr::scaled_criteo_vocabs(CTR_FIELDS * CTR_VOCAB));
    cfg.n_train = 50_000;
    cfg.n_test = 4_000;
    CtrDataset::new(cfg)
}

fn graph_dataset(workload: Workload, seed: u64) -> GnnDataset {
    // Paper regime: embedding table ≫ one batch's unique keys, so the
    // 10 % cache comfortably holds the hub working set.
    let cfg = match workload {
        Workload::GnnReddit => GraphConfig {
            n_nodes: 40_000,
            attach_m: 15,
            ..GraphConfig::reddit_like(seed)
        },
        Workload::GnnAmazon => GraphConfig {
            n_nodes: 60_000,
            attach_m: 6,
            ..GraphConfig::amazon_like(seed)
        },
        Workload::GnnOgbnMag => GraphConfig {
            n_nodes: 50_000,
            attach_m: 5,
            ..GraphConfig::ogbn_mag_like(seed)
        },
        _ => unreachable!("not a graph workload"),
    };
    GnnDataset::new(Graph::generate(cfg), NeighborSampler::degree_biased(8, 4))
}

/// The default bench-scale trainer configuration: the paper's cluster A
/// (8 workers, 1 server, 1 GbE), batch 128, D = 16.
pub fn bench_config(preset: SystemPreset) -> TrainerConfig {
    let mut config = TrainerConfig::cluster_a(preset);
    config.dim = 16;
    config.lr = 0.1;
    config.max_iterations = 2_400;
    config.eval_every = 400;
    config.eval_batches = 8;
    config
}

/// Runs one (workload × system) pair. `tweak` edits the bench-scale
/// config (iterations, cluster, dim, cache, …) before the run.
pub fn run_workload(
    workload: Workload,
    preset: SystemPreset,
    tweak: &dyn Fn(&mut TrainerConfig),
) -> TrainReport {
    let mut config = bench_config(preset);
    config.lr = workload.learning_rate();
    tweak(&mut config);
    let dim = config.dim;
    match workload {
        Workload::WdlCriteo => {
            let mut t = Trainer::new(config, ctr_dataset(0xC0), move |rng| {
                WideDeep::new(rng, CTR_FIELDS, dim, &[64, 32])
            });
            t.run()
        }
        Workload::DfmCriteo => {
            let mut t = Trainer::new(config, ctr_dataset(0xC1), move |rng| {
                DeepFm::new(rng, CTR_FIELDS, dim, &[64, 32])
            });
            t.run()
        }
        Workload::DcnCriteo => {
            let mut t = Trainer::new(config, ctr_dataset(0xC2), move |rng| {
                DeepCross::new(rng, CTR_FIELDS, dim, 3, &[64, 32])
            });
            t.run()
        }
        Workload::GnnReddit | Workload::GnnAmazon | Workload::GnnOgbnMag => {
            let dataset = graph_dataset(workload, 0xD0 + workload.n_keys() as u64);
            let classes = dataset.graph().config().n_classes;
            let mut t = Trainer::new(config, dataset, move |rng| {
                GraphSage::new(rng, dim, 32, classes)
            });
            t.run()
        }
    }
}

/// [`run_workload`] with the observability layer switched on: the run
/// is collected into a [`het_trace::TraceLog`] (JSONL / Chrome
/// exportable) alongside the normal report. The trace carries the
/// workload and system names plus the config seed as metadata, so a
/// fixture file is self-describing. Tracing is scoped to this call —
/// it is started here and torn down before returning, leaving the
/// thread's trace state as it was.
pub fn run_workload_traced(
    workload: Workload,
    preset: SystemPreset,
    tweak: &dyn Fn(&mut TrainerConfig),
) -> (TrainReport, het_trace::TraceLog) {
    let mut probe = bench_config(preset);
    tweak(&mut probe);
    het_trace::start(vec![
        (
            "workload".to_string(),
            het_json::Json::Str(workload.name().to_string()),
        ),
        (
            "system".to_string(),
            het_json::Json::Str(probe.system.name.to_string()),
        ),
        ("seed".to_string(), het_json::Json::UInt(probe.seed)),
    ]);
    let report = run_workload(workload, preset, tweak);
    let log = het_trace::finish();
    (report, log)
}

/// [`run_workload`] on the threaded execution backend: the same
/// (workload × system) pair run through [`Trainer::run_threaded`] on
/// real OS threads (one per configured worker). Returns the
/// [`het_core::ParallelReport`] plus the resolved config, so callers
/// can hand the trace to `het-oracle` with a matching `OracleSpec`.
/// Pass `trace_meta` to collect a per-thread merged trace; `None`
/// skips tracing entirely.
pub fn run_workload_threaded(
    workload: Workload,
    preset: SystemPreset,
    tweak: &dyn Fn(&mut TrainerConfig),
    trace_meta: Option<Vec<(String, het_json::Json)>>,
) -> Result<(het_core::ParallelReport, TrainerConfig), String> {
    let mut config = bench_config(preset);
    config.lr = workload.learning_rate();
    tweak(&mut config);
    let dim = config.dim;
    match workload {
        Workload::WdlCriteo => {
            let mut t = Trainer::new(config, ctr_dataset(0xC0), move |rng| {
                WideDeep::new(rng, CTR_FIELDS, dim, &[64, 32])
            });
            Ok((t.run_threaded(trace_meta)?, t.config().clone()))
        }
        Workload::DfmCriteo => {
            let mut t = Trainer::new(config, ctr_dataset(0xC1), move |rng| {
                DeepFm::new(rng, CTR_FIELDS, dim, &[64, 32])
            });
            Ok((t.run_threaded(trace_meta)?, t.config().clone()))
        }
        Workload::DcnCriteo => {
            let mut t = Trainer::new(config, ctr_dataset(0xC2), move |rng| {
                DeepCross::new(rng, CTR_FIELDS, dim, 3, &[64, 32])
            });
            Ok((t.run_threaded(trace_meta)?, t.config().clone()))
        }
        Workload::GnnReddit | Workload::GnnAmazon | Workload::GnnOgbnMag => {
            let dataset = graph_dataset(workload, 0xD0 + workload.n_keys() as u64);
            let classes = dataset.graph().config().n_classes;
            let mut t = Trainer::new(config, dataset, move |rng| {
                GraphSage::new(rng, dim, 32, classes)
            });
            Ok((t.run_threaded(trace_meta)?, t.config().clone()))
        }
    }
}

/// The systems compared throughout §5, in the paper's order.
pub fn evaluated_systems() -> Vec<(&'static str, SystemPreset)> {
    vec![
        ("TF PS", SystemPreset::TfPs),
        ("TF Parallax", SystemPreset::TfParallax),
        ("HET PS", SystemPreset::HetPs),
        ("HET AR", SystemPreset::HetAr),
        ("HET Hybrid", SystemPreset::HetHybrid),
        ("HET Cache s=10", SystemPreset::HetCache { staleness: 10 }),
        ("HET Cache s=100", SystemPreset::HetCache { staleness: 100 }),
    ]
}

/// Output helpers: experiment JSON lands in `target/experiments/`.
pub mod out {
    use super::*;

    /// The directory experiment records are written to.
    pub fn experiments_dir() -> PathBuf {
        let target = std::env::var("CARGO_TARGET_DIR")
            .unwrap_or_else(|_| format!("{}/../../target", env!("CARGO_MANIFEST_DIR")));
        let dir = PathBuf::from(target).join("experiments");
        std::fs::create_dir_all(&dir).expect("create experiments dir");
        dir
    }

    /// Serialises `value` as `<name>.json` under the experiments dir.
    pub fn write_json<T: ToJson>(name: &str, value: &T) {
        let path = experiments_dir().join(format!("{name}.json"));
        let json = het_json::to_string_pretty(value);
        std::fs::write(&path, json).expect("write experiment json");
        eprintln!("[experiment json] {}", path.display());
    }

    /// Prints a banner naming the figure/table being regenerated.
    pub fn banner(title: &str) {
        println!("\n{}", "=".repeat(76));
        println!("{title}");
        println!("{}\n", "=".repeat(76));
    }
}

/// A serialisable summary row used by several benches.
#[derive(Clone, Debug)]
pub struct RunSummary {
    /// Workload display name.
    pub workload: String,
    /// System display name.
    pub system: String,
    /// Total simulated seconds.
    pub sim_time_s: f64,
    /// Simulated seconds per epoch.
    pub epoch_time_s: f64,
    /// Final metric (AUC or accuracy).
    pub final_metric: f64,
    /// Embedding bytes moved.
    pub embedding_bytes: u64,
    /// Cache hit rate (0 for cache-less systems).
    pub cache_hit_rate: f64,
    /// Fraction of accounted time spent communicating.
    pub comm_fraction: f64,
    /// Simulated seconds to the workload's target metric, if reached.
    pub time_to_target_s: Option<f64>,
}

impl_to_json!(RunSummary {
    workload,
    system,
    sim_time_s,
    epoch_time_s,
    final_metric,
    embedding_bytes,
    cache_hit_rate,
    comm_fraction,
    time_to_target_s,
});

impl RunSummary {
    /// Builds a summary row from a report.
    pub fn from_report(workload: Workload, system: &str, report: &TrainReport) -> Self {
        RunSummary {
            workload: workload.name().to_string(),
            system: system.to_string(),
            sim_time_s: report.total_sim_time.as_secs_f64(),
            epoch_time_s: report.epoch_time(),
            final_metric: report.final_metric,
            embedding_bytes: report.comm.embedding_bytes(),
            cache_hit_rate: report.cache.hit_rate(),
            comm_fraction: report.breakdown.communication_fraction(),
            time_to_target_s: report.convergence_time(),
        }
    }
}

/// One row of the lookahead-depth sweep (`hetctl prefetch-sweep`): the
/// remote-PS CTR workload re-run at one prefetch depth, everything else
/// held fixed.
#[derive(Clone, Debug)]
pub struct PrefetchSweepRow {
    /// Prefetch lookahead depth (0 = the demand-only legacy path).
    pub depth: u64,
    /// Total simulated seconds.
    pub sim_time_s: f64,
    /// Simulated microseconds per training iteration (cycle time).
    pub cycle_time_us: f64,
    /// Cycle-time speedup vs the depth-0 row of the same sweep.
    pub speedup_vs_demand: f64,
    /// Cache hit rate of the run.
    pub cache_hit_rate: f64,
    /// Lookahead pulls landed in worker caches.
    pub prefetch_installs: u64,
    /// Reads served by a not-yet-consumed prefetched entry.
    pub prefetch_hits: u64,
    /// Prefetched entries displaced before ever serving a read.
    pub prefetch_wasted: u64,
}

impl_to_json!(PrefetchSweepRow {
    depth,
    sim_time_s,
    cycle_time_us,
    speedup_vs_demand,
    cache_hit_rate,
    prefetch_installs,
    prefetch_hits,
    prefetch_wasted,
});

/// Runs the lookahead-depth sweep on the paper's Fig. 2 shape — the
/// Wide&Deep CTR workload against a remote PS over cluster A's 1 GbE —
/// one training run per depth. The first depth must be 0: that row is
/// the demand-only baseline every speedup is measured against. Deeper
/// lookahead can only add overlap, so cycle time must come out
/// monotonically non-increasing in depth (the CI smoke gates on it).
pub fn prefetch_sweep(depths: &[u64], iters: u64) -> Vec<PrefetchSweepRow> {
    prefetch_sweep_with(depths, iters, &|_| {})
}

/// The sweep's workload recipe: the Fig. 2 deployment — one worker
/// with the whole embedding table on a remote PS over 1 GbE — upgraded
/// to an accelerator-class worker, so compute is fast and the cycle is
/// transfer-bound (the paper's motivating regime, where the GPU
/// starves on embedding fetch). The cache is sized small relative to
/// the Criteo hot set so demand misses dominate the depth-0 baseline,
/// which is exactly what lookahead can overlap away.
fn fig2_sweep_config(
    c: &mut TrainerConfig,
    iters: u64,
    depth: u64,
    extra: &dyn Fn(&mut TrainerConfig),
) {
    c.cluster = het_simnet::ClusterSpec::cluster_b(1, 1);
    c.cluster.worker_server = het_simnet::LinkSpec::ethernet_1gbit();
    // At D = 128 / batch 128 the dense kernels are large enough to run
    // near the card's real throughput rather than the
    // launch-overhead-bound rate cluster A/B model for tiny kernels.
    c.cluster.worker_flops = 1.0e12;
    // The huge-embedding-model regime the paper targets: wide rows make
    // the demand-fetch leg dwarf the clock-validation leg (per key,
    // (24 + 4 D) fetched bytes vs 32 clock bytes), which is what
    // lookahead can actually hide.
    c.dim = 128;
    *c = c
        .clone()
        .with_cache(0.05, het_cache::PolicyKind::light_lfu());
    c.max_iterations = iters;
    c.eval_every = iters;
    extra(c);
    c.lookahead_depth = depth;
}

/// One traced run of the sweep recipe at a single depth — the source of
/// the Chrome-exportable timeline where the `prefetch_issue` transfer
/// spans visibly overlap the `compute` spans.
pub fn prefetch_sweep_traced(depth: u64, iters: u64) -> (TrainReport, het_trace::TraceLog) {
    run_workload_traced(
        Workload::WdlCriteo,
        SystemPreset::HetCache { staleness: 100 },
        &|c| fig2_sweep_config(c, iters, depth, &|_| {}),
    )
}

/// [`prefetch_sweep`] with an extra config hook applied after the sweep
/// recipe (exposed so `hetctl prefetch-sweep` can vary dim, batch,
/// cluster, … without a recompile).
pub fn prefetch_sweep_with(
    depths: &[u64],
    iters: u64,
    extra: &dyn Fn(&mut TrainerConfig),
) -> Vec<PrefetchSweepRow> {
    assert!(
        depths.first() == Some(&0),
        "sweep must start at the depth-0 demand-only baseline"
    );
    let mut rows: Vec<PrefetchSweepRow> = Vec::new();
    for &depth in depths {
        let report = run_workload(
            Workload::WdlCriteo,
            SystemPreset::HetCache { staleness: 100 },
            &|c| fig2_sweep_config(c, iters, depth, extra),
        );
        let cycle_time_us =
            report.total_sim_time.as_secs_f64() * 1e6 / report.total_iterations.max(1) as f64;
        let base = rows.first().map_or(cycle_time_us, |r| r.cycle_time_us);
        rows.push(PrefetchSweepRow {
            depth,
            sim_time_s: report.total_sim_time.as_secs_f64(),
            cycle_time_us,
            speedup_vs_demand: base / cycle_time_us,
            cache_hit_rate: report.cache.hit_rate(),
            prefetch_installs: report.cache.prefetch_installs,
            prefetch_hits: report.cache.prefetch_hits,
            prefetch_wasted: report.cache.prefetch_wasted,
        });
    }
    rows
}

/// One row of the thread-scaling sweep (`hetctl scale-sweep`): the
/// Fig. 2 CTR recipe re-run at one `--backend threads:<n>` width,
/// everything else held fixed. Unlike every other sweep in this crate
/// the numbers here are **wall-clock**, so they vary run to run and
/// with the host's core count — the sweep measures the machine, not
/// the model.
#[derive(Clone, Debug)]
pub struct ScaleSweepRow {
    /// Worker-thread count of this run.
    pub threads: u64,
    /// Training iterations completed (all runs complete the recipe).
    pub iterations: u64,
    /// Wall-clock seconds for the whole run.
    pub wall_s: f64,
    /// Training iterations per wall-clock second.
    pub ops_per_sec: f64,
    /// Wall-clock microseconds per training iteration (cycle time).
    pub cycle_time_us: f64,
    /// Throughput relative to the `threads = 1` row of the same sweep.
    pub speedup_vs_one: f64,
}

impl_to_json!(ScaleSweepRow {
    threads,
    iterations,
    wall_s,
    ops_per_sec,
    cycle_time_us,
    speedup_vs_one,
});

/// The scale-sweep recipe: the paper's Fig. 2 CTR deployment shape —
/// Wide&Deep over Criteo-like data behind the HET cache — with the
/// cluster resized to `threads` workers so the threaded backend runs
/// one OS thread per worker. BSP keeps every width on the sim-identical
/// convergence path; only the wall clock changes.
fn scale_sweep_config(c: &mut TrainerConfig, iters: u64, threads: usize) {
    c.cluster = het_simnet::ClusterSpec::cluster_a(threads, 1);
    c.dim = 32;
    *c = c
        .clone()
        .with_cache(0.10, het_cache::PolicyKind::light_lfu());
    c.max_iterations = iters;
    c.eval_every = iters;
    c.lookahead_depth = 0;
}

/// Runs the thread-scaling sweep: one threaded training run per entry
/// of `threads_list` (the first entry must be 1 — that row is the
/// baseline every speedup is measured against), `iters` iterations
/// each, all on the Fig. 2 CTR recipe.
pub fn scale_sweep(threads_list: &[usize], iters: u64) -> Result<Vec<ScaleSweepRow>, String> {
    if threads_list.first() != Some(&1) {
        return Err("scale-sweep must start at the threads:1 baseline".to_string());
    }
    let mut rows: Vec<ScaleSweepRow> = Vec::new();
    for &threads in threads_list {
        let (report, _) = run_workload_threaded(
            Workload::WdlCriteo,
            SystemPreset::HetCache { staleness: 100 },
            &|c| scale_sweep_config(c, iters, threads),
            None,
        )?;
        let wall_s = report.wall_ns as f64 / 1e9;
        let cycle_time_us = report.wall_ns as f64 / 1e3 / report.total_iterations.max(1) as f64;
        let base = rows.first().map_or(report.ops_per_sec, |r| r.ops_per_sec);
        rows.push(ScaleSweepRow {
            threads: threads as u64,
            iterations: report.total_iterations,
            wall_s,
            ops_per_sec: report.ops_per_sec,
            cycle_time_us,
            speedup_vs_one: report.ops_per_sec / base,
        });
    }
    Ok(rows)
}

/// The CI gate over a scale sweep: the `threads = 4` row must reach at
/// least `threshold ×` the `threads = 1` throughput. On a multi-core
/// host the threshold is 1.0 (parallelism must not lose); single-core
/// CI boxes pass a tolerance < 1 instead, because four time-sliced
/// threads doing BSP turnstiles can only add coordination overhead
/// there — `ci.sh` picks the threshold from `nproc`.
pub fn scale_sweep_gate(rows: &[ScaleSweepRow], threshold: f64) -> Result<(), String> {
    let one = rows
        .iter()
        .find(|r| r.threads == 1)
        .ok_or("scale-sweep gate: no threads:1 baseline row")?;
    let four = rows
        .iter()
        .find(|r| r.threads == 4)
        .ok_or("scale-sweep gate: no threads:4 row")?;
    if four.ops_per_sec < threshold * one.ops_per_sec {
        return Err(format!(
            "scale-sweep gate: threads:4 throughput {:.1} ops/s fell below {threshold:.2} x \
             threads:1 ({:.1} ops/s)",
            four.ops_per_sec, one.ops_per_sec
        ));
    }
    Ok(())
}

/// One row of the tiered-store sweep (`hetctl store-sweep`): the same
/// CTR-shaped Zipf key stream driven against one row-store backend at
/// paper-scale key spaces (10⁷–10⁸), charting the memory-vs-disk
/// crossover the tiered store exists for. `modelled_ms` is the
/// simulated time the stream's PS leg would carry (always 0 for the
/// flat store, which has no I/O model); `resident_mb` is the estimated
/// host memory the backend's resident rows pin.
#[derive(Clone, Debug)]
pub struct StoreSweepRow {
    /// Backend label (`mem` or `tiered:<hot_rows>`).
    pub backend: String,
    /// Hot-tier row budget (0 for the flat store).
    pub hot_rows: u64,
    /// Key-space size the Zipf stream draws from.
    pub n_keys: u64,
    /// Operations driven (each is a pull or a read-modify-write push).
    pub ops: u64,
    /// Distinct keys materialised by the stream.
    pub distinct_keys: u64,
    /// Rows resident in memory at the end of the stream.
    pub resident_rows: u64,
    /// Estimated resident-row memory in MiB (rows × per-row bytes).
    pub resident_mb: f64,
    /// Fraction of accesses served without touching the cold tier.
    pub hot_hit_rate: f64,
    /// Modelled disk milliseconds accrued by the stream.
    pub io_ms: f64,
    /// Cold-tier bytes read (promotions + compaction), MiB.
    pub cold_read_mb: f64,
    /// Cold-tier bytes written (demotions + compaction), MiB.
    pub cold_write_mb: f64,
    /// Completed compaction passes.
    pub compactions: u64,
    /// Host wall-clock milliseconds for the stream (honesty metric —
    /// hardware-dependent, not part of any determinism contract).
    pub wall_ms: f64,
}

impl_to_json!(StoreSweepRow {
    backend,
    hot_rows,
    n_keys,
    ops,
    distinct_keys,
    resident_rows,
    resident_mb,
    hot_hit_rate,
    io_ms,
    cold_read_mb,
    cold_write_mb,
    compactions,
    wall_ms,
});

/// Estimated resident bytes for one row: vector payload plus map-entry
/// overhead (key, clock, `Vec` headers, hash bucket).
fn row_bytes(dim: usize) -> u64 {
    (dim * 4 + 96) as u64
}

/// O(1)-memory approximate Zipf rank over `{0, …, n−1}` with exponent
/// `s > 0, s ≠ 1`: the inverse CDF of the continuous bounded power law
/// on `[1, n+1]`. The exact tabulated sampler
/// ([`het_data::ZipfSampler`]) builds an O(n) table — 800 MB at the
/// sweep's 10⁸-key top end — which would defeat a bench whose point is
/// bounded memory.
fn zipf_rank(u: f64, n: u64, s: f64) -> u64 {
    let top = (n + 1) as f64;
    let x = (1.0 + u * (top.powf(1.0 - s) - 1.0)).powf(1.0 / (1.0 - s));
    ((x as u64).saturating_sub(1)).min(n - 1)
}

/// Drives one backend with the sweep's deterministic CTR-shaped stream:
/// Zipf-popular keys (the paper's Fig. 3 skew), three read-modify-write
/// pushes per pull — a training-shaped mix where the working set far
/// exceeds any sane hot budget.
fn store_sweep_cell(
    backend: String,
    hot_rows: u64,
    store: &mut dyn het_ps::RowStore,
    n_keys: u64,
    ops: u64,
    dim: usize,
) -> StoreSweepRow {
    use het_rng::rngs::StdRng;
    use het_rng::{Rng, SeedableRng};

    let mut rng = StdRng::seed_from_u64(0x0005_702E_0001);
    let started = std::time::Instant::now();
    let mut io_ns: u64 = 0;
    for i in 0..ops {
        let key = zipf_rank(rng.gen::<f64>(), n_keys, 1.1);
        if i % 4 == 0 {
            // A pull: read access, may promote, never dirties.
            let hit = store.get(key).is_some();
            if !hit {
                store.apply(
                    key,
                    &mut || het_ps::StoredRow {
                        vector: vec![0.0; dim],
                        clock: 0,
                        opt_state: Vec::new(),
                    },
                    &mut |_| {},
                );
            }
        } else {
            // A push: read-modify-write, dirties the row.
            store.apply(
                key,
                &mut || het_ps::StoredRow {
                    vector: vec![0.0; dim],
                    clock: 0,
                    opt_state: Vec::new(),
                },
                &mut |row| {
                    for v in &mut row.vector {
                        *v += 0.01;
                    }
                    row.clock += 1;
                },
            );
        }
        io_ns += store.take_io_ns();
    }
    let wall_ms = started.elapsed().as_secs_f64() * 1e3;
    let stats = store.stats();
    StoreSweepRow {
        backend,
        hot_rows,
        n_keys,
        ops,
        distinct_keys: store.len() as u64,
        resident_rows: store.resident_rows() as u64,
        resident_mb: (store.resident_rows() as u64 * row_bytes(dim)) as f64 / (1 << 20) as f64,
        hot_hit_rate: stats.hot_hit_rate(),
        io_ms: io_ns as f64 / 1e6,
        cold_read_mb: stats.cold_read_bytes as f64 / (1 << 20) as f64,
        cold_write_mb: stats.cold_write_bytes as f64 / (1 << 20) as f64,
        compactions: stats.compactions,
        wall_ms,
    }
}

/// Runs the store sweep: the flat in-memory baseline plus one tiered
/// cell per hot budget, all fed the identical key stream. `spill_dir`
/// gives the tiered cells a real on-disk cold tier (`None` keeps
/// segments in memory — fine for small sweeps, unbounded for 10⁸-key
/// ones).
pub fn store_sweep(
    n_keys: u64,
    ops: u64,
    hot_budgets: &[u64],
    dim: usize,
    spill_dir: Option<std::path::PathBuf>,
) -> Vec<StoreSweepRow> {
    let mut rows = Vec::new();
    let mut mem = het_ps::StoreSpec::Mem.build_shard(dim, 0, 1);
    rows.push(store_sweep_cell(
        "mem".to_string(),
        0,
        mem.as_mut(),
        n_keys,
        ops,
        dim,
    ));
    drop(mem);
    for &hot in hot_budgets {
        let mut cfg = het_ps::TieredConfig::new(hot as usize);
        // Each cell spills into its own directory so reruns and other
        // budgets never replay each other's logs.
        cfg.dir = spill_dir.as_ref().map(|d| d.join(format!("hot-{hot}")));
        if let Some(d) = &cfg.dir {
            // A stale cold tier from an earlier sweep would be replayed
            // as recovery state; the sweep wants a cold start.
            let _ = std::fs::remove_dir_all(d);
        }
        let spec = het_ps::StoreSpec::Tiered(cfg);
        let mut store = spec.build_shard(dim, 0, 1);
        rows.push(store_sweep_cell(
            format!("tiered:{hot}"),
            hot,
            store.as_mut(),
            n_keys,
            ops,
            dim,
        ));
    }
    rows
}

/// The CI gate over a store sweep: every tiered cell must have kept its
/// resident set within budget (bounded memory is the whole point), hit
/// the hot tier at or above `hit_floor` (the Zipf hot set must fit),
/// and actually exercised the cold tier; the flat baseline must accrue
/// zero modelled disk time.
pub fn store_sweep_gate(rows: &[StoreSweepRow], hit_floor: f64) -> Result<(), String> {
    let mem = rows
        .iter()
        .find(|r| r.backend == "mem")
        .ok_or("store-sweep gate: no mem baseline row")?;
    if mem.io_ms != 0.0 {
        return Err(format!(
            "store-sweep gate: flat store accrued {} ms of disk time",
            mem.io_ms
        ));
    }
    for r in rows.iter().filter(|r| r.hot_rows > 0) {
        if r.resident_rows > r.hot_rows {
            return Err(format!(
                "store-sweep gate: {} holds {} resident rows over its {}-row budget",
                r.backend, r.resident_rows, r.hot_rows
            ));
        }
        if r.hot_hit_rate < hit_floor {
            return Err(format!(
                "store-sweep gate: {} hot hit rate {:.4} is below the {hit_floor:.2} floor",
                r.backend, r.hot_hit_rate
            ));
        }
        if r.distinct_keys > r.hot_rows && r.io_ms <= 0.0 {
            return Err(format!(
                "store-sweep gate: {} spilled ({} keys > {} hot) but accrued no disk time",
                r.backend, r.distinct_keys, r.hot_rows
            ));
        }
    }
    Ok(())
}

/// One leaderboard row of the eviction-policy shootout
/// (`hetctl policy-shootout`): one (scenario × policy) cell. Train
/// scenarios report cycle time and leave `p99_us` at 0; serve
/// scenarios report tail latency and leave `cycle_time_us` at 0.
#[derive(Clone, Debug)]
pub struct ShootoutRow {
    /// Scenario name (one of [`SHOOTOUT_SCENARIOS`]).
    pub scenario: String,
    /// Policy display name (`PolicyKind` Display).
    pub policy: String,
    /// Cache hit rate of the run — the gated metric.
    pub hit_rate: f64,
    /// Simulated microseconds per training iteration (train scenarios).
    pub cycle_time_us: f64,
    /// 99th-percentile request latency in microseconds (serve
    /// scenarios).
    pub p99_us: f64,
}

impl_to_json!(ShootoutRow {
    scenario,
    policy,
    hit_rate,
    cycle_time_us,
    p99_us,
});

/// The shootout scenario matrix: CTR vs GNN key distributions, the
/// prefetch staging region on, a faulted run, hot-set drift, and a
/// flash crowd — the regimes where eviction quality diverges.
pub const SHOOTOUT_SCENARIOS: [&str; 6] = [
    "ctr-train",
    "gnn-train",
    "ctr-train-prefetch",
    "ctr-train-faulted",
    "serve-drift",
    "serve-flash",
];

/// The contenders: the seven fixed policies plus the adaptive
/// meta-policy ([`het_cache::PolicyKind::ALL`]).
pub fn shootout_policies() -> [het_cache::PolicyKind; 8] {
    het_cache::PolicyKind::ALL
}

fn shootout_train_tweak(c: &mut TrainerConfig, iters: u64, policy: het_cache::PolicyKind) {
    c.cluster = het_simnet::ClusterSpec::cluster_a(2, 1);
    c.max_iterations = iters;
    c.eval_every = iters;
    // Small enough that capacity binds hard and eviction quality shows
    // up in the hit rate.
    *c = c.clone().with_cache(0.05, policy);
}

fn shootout_train(
    workload: Workload,
    policy: het_cache::PolicyKind,
    iters: u64,
    lookahead: u64,
    faulted: bool,
) -> TrainReport {
    let preset = SystemPreset::HetCache { staleness: 100 };
    let faults = if faulted {
        // Size the fault horizon from a clean probe, as the fuzzer and
        // golden-trace tests do, so the faults land inside the run.
        let probe = run_workload(workload, preset, &|c| {
            shootout_train_tweak(c, iters, policy);
            c.lookahead_depth = lookahead;
        });
        let mut f = het_core::FaultConfig::disabled();
        f.enabled = true;
        f.spec.worker_crashes = 2;
        f.spec.shard_outages = 1;
        f.spec.horizon = SimDuration::from_secs_f64(probe.total_sim_time.as_secs_f64() * 0.8);
        f.checkpoint_every = 20;
        f
    } else {
        het_core::FaultConfig::disabled()
    };
    run_workload(workload, preset, &|c| {
        shootout_train_tweak(c, iters, policy);
        c.lookahead_depth = lookahead;
        c.faults = faults.clone();
    })
}

fn shootout_serve(
    policy: het_cache::PolicyKind,
    requests: usize,
    drift: bool,
    flash: bool,
) -> het_serve::ServeReport {
    let mut cfg = het_serve::ServeConfig::tiny(0xD0_1177);
    cfg.policy = policy;
    cfg.n_requests = requests;
    cfg.n_keys = 1_200;
    cfg.cache_capacity = 150;
    if drift {
        // Rotate the Zipf rank→key mapping every 20 ms of simulated
        // time: the hot set walks and stale-frequency policies pay.
        cfg.drift_period = SimDuration::from_secs_f64(0.02);
        cfg.drift_step = 48;
    }
    if flash {
        // A 4× arrival burst over a small uniform hot subset, landing
        // mid-run.
        cfg.flash_at = Some(het_simnet::SimTime::ZERO + SimDuration::from_secs_f64(0.08));
        cfg.flash_duration = SimDuration::from_secs_f64(0.06);
        cfg.flash_factor = 4.0;
        cfg.flash_hot_keys = 64;
    }
    let (n_fields, dim) = (cfg.n_fields, cfg.dim);
    het_serve::ServeSim::new(cfg, move |rng| {
        het_models::WideDeep::new(rng, n_fields, dim, &[32])
    })
    .run()
}

fn shootout_cell(
    scenario: &str,
    policy: het_cache::PolicyKind,
    iters: u64,
    requests: usize,
) -> ShootoutRow {
    let (hit_rate, cycle_time_us, p99_us) = match scenario {
        "ctr-train" => {
            let r = shootout_train(Workload::WdlCriteo, policy, iters, 0, false);
            (r.cache.hit_rate(), cycle_us(&r), 0.0)
        }
        "gnn-train" => {
            let r = shootout_train(Workload::GnnReddit, policy, iters, 0, false);
            (r.cache.hit_rate(), cycle_us(&r), 0.0)
        }
        "ctr-train-prefetch" => {
            let r = shootout_train(Workload::WdlCriteo, policy, iters, 4, false);
            (r.cache.hit_rate(), cycle_us(&r), 0.0)
        }
        "ctr-train-faulted" => {
            let r = shootout_train(Workload::WdlCriteo, policy, iters, 0, true);
            (r.cache.hit_rate(), cycle_us(&r), 0.0)
        }
        "serve-drift" => {
            let r = shootout_serve(policy, requests, true, false);
            (r.cache.hit_rate(), 0.0, r.latency_p99_ns as f64 / 1e3)
        }
        "serve-flash" => {
            let r = shootout_serve(policy, requests, false, true);
            (r.cache.hit_rate(), 0.0, r.latency_p99_ns as f64 / 1e3)
        }
        other => unreachable!("unknown shootout scenario {other}"),
    };
    ShootoutRow {
        scenario: scenario.to_string(),
        policy: policy.to_string(),
        hit_rate,
        cycle_time_us,
        p99_us,
    }
}

fn cycle_us(report: &TrainReport) -> f64 {
    report.total_sim_time.as_secs_f64() * 1e6 / report.total_iterations.max(1) as f64
}

/// Runs the full policy shootout: every scenario in
/// [`SHOOTOUT_SCENARIOS`] × every policy in [`shootout_policies`],
/// returning one leaderboard row per cell. `iters` sizes the train
/// scenarios, `requests` the serve scenarios.
pub fn policy_shootout(iters: u64, requests: usize) -> Vec<ShootoutRow> {
    let mut rows = Vec::new();
    for scenario in SHOOTOUT_SCENARIOS {
        for policy in shootout_policies() {
            rows.push(shootout_cell(scenario, policy, iters, requests));
        }
    }
    rows
}

/// The CI gate over a shootout leaderboard: on every scenario the
/// adaptive meta-policy's hit rate must come within `margin` (absolute
/// hit-rate points, default 0.05) of the best fixed policy. A policy
/// that had to be picked by hand would silently rot as workloads
/// drift; this bound proves the switcher tracks the winner.
pub fn shootout_gate(rows: &[ShootoutRow], margin: f64) -> Result<(), String> {
    for scenario in SHOOTOUT_SCENARIOS {
        let cells: Vec<&ShootoutRow> = rows.iter().filter(|r| r.scenario == scenario).collect();
        let adaptive = cells
            .iter()
            .find(|r| r.policy == "Adaptive")
            .ok_or_else(|| format!("gate: no adaptive row for scenario {scenario}"))?;
        let best_fixed = cells
            .iter()
            .filter(|r| r.policy != "Adaptive")
            .max_by(|a, b| a.hit_rate.total_cmp(&b.hit_rate))
            .ok_or_else(|| format!("gate: no fixed rows for scenario {scenario}"))?;
        if adaptive.hit_rate + margin < best_fixed.hit_rate {
            return Err(format!(
                "policy-shootout gate: scenario {scenario}: adaptive hit rate {:.4} \
                 is more than {margin:.2} below best fixed ({} at {:.4})",
                adaptive.hit_rate, best_fixed.policy, best_fixed.hit_rate
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_names_and_targets() {
        assert_eq!(Workload::ALL.len(), 6);
        for w in Workload::ALL {
            assert!(!w.name().is_empty());
            assert!(w.target_metric() > 0.0);
            assert!(w.n_keys() > 0);
        }
        assert!(Workload::WdlCriteo.is_ctr());
        assert!(!Workload::GnnReddit.is_ctr());
    }

    #[test]
    fn smoke_run_every_workload() {
        // One very short run per workload to keep the harness honest.
        for w in Workload::ALL {
            let report = run_workload(w, SystemPreset::HetCache { staleness: 100 }, &|c| {
                c.max_iterations = 32;
                c.eval_every = 32;
                c.cluster = het_simnet::ClusterSpec::cluster_a(4, 1);
            });
            assert!(report.total_iterations >= 32, "{}", w.name());
            assert!(report.final_metric.is_finite(), "{}", w.name());
        }
    }

    #[test]
    fn store_sweep_is_deterministic_and_gated() {
        let a = store_sweep(100_000, 24_000, &[512, 4_096], 16, None);
        let b = store_sweep(100_000, 24_000, &[512, 4_096], 16, None);
        assert_eq!(a.len(), 3);
        for (x, y) in a.iter().zip(&b) {
            // Everything but host wall time must reproduce exactly.
            assert_eq!(x.backend, y.backend);
            assert_eq!(x.distinct_keys, y.distinct_keys);
            assert_eq!(x.resident_rows, y.resident_rows);
            assert_eq!(x.hot_hit_rate, y.hot_hit_rate);
            assert_eq!(x.io_ms, y.io_ms);
            assert_eq!(x.cold_read_mb, y.cold_read_mb);
            assert_eq!(x.compactions, y.compactions);
        }
        store_sweep_gate(&a, 0.5).expect("gate");
        // The crossover shape: both tiered cells bound memory below the
        // flat baseline, and the larger hot budget pays less disk.
        let (mem, small, large) = (&a[0], &a[1], &a[2]);
        assert_eq!(mem.io_ms, 0.0);
        assert!(small.resident_rows < mem.resident_rows);
        assert!(large.resident_rows < mem.resident_rows);
        assert!(
            small.io_ms > large.io_ms,
            "{} <= {}",
            small.io_ms,
            large.io_ms
        );
        assert!(small.hot_hit_rate < large.hot_hit_rate);
    }

    #[test]
    fn summary_row_from_report() {
        let report = run_workload(Workload::WdlCriteo, SystemPreset::HetHybrid, &|c| {
            c.max_iterations = 16;
            c.eval_every = 16;
            c.cluster = het_simnet::ClusterSpec::cluster_a(2, 1);
        });
        let row = RunSummary::from_report(Workload::WdlCriteo, "HET Hybrid", &report);
        assert_eq!(row.workload, "WDL-Criteo");
        assert!(row.sim_time_s > 0.0);
        assert_eq!(row.cache_hit_rate, 0.0);
    }
}
