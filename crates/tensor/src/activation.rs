//! Activation functions and their derivatives.

use crate::matrix::Matrix;

/// Numerically stable logistic sigmoid.
pub fn sigmoid(x: f32) -> f32 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

/// In-place ReLU; returns a mask matrix usable by [`relu_backward`].
pub fn relu_inplace(x: &mut Matrix) -> Matrix {
    let mut mask = Matrix::zeros(x.rows(), x.cols());
    for (v, m) in x.as_mut_slice().iter_mut().zip(mask.as_mut_slice()) {
        if *v > 0.0 {
            *m = 1.0;
        } else {
            *v = 0.0;
        }
    }
    mask
}

/// Applies the ReLU mask to an upstream gradient in place.
pub fn relu_backward(dy: &mut Matrix, mask: &Matrix) {
    assert_eq!(
        (dy.rows(), dy.cols()),
        (mask.rows(), mask.cols()),
        "relu mask shape mismatch"
    );
    for (g, &m) in dy.as_mut_slice().iter_mut().zip(mask.as_slice()) {
        *g *= m;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sigmoid_symmetry_and_range() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-7);
        for x in [-15.0f32, -3.0, -0.5, 0.5, 3.0, 15.0] {
            let s = sigmoid(x);
            assert!(s > 0.0 && s < 1.0);
            assert!((s + sigmoid(-x) - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn sigmoid_extremes_do_not_overflow() {
        assert!(sigmoid(1000.0).is_finite());
        assert!(sigmoid(-1000.0).is_finite());
        assert!(sigmoid(-1000.0) >= 0.0);
    }

    #[test]
    fn relu_zeroes_negatives_and_masks() {
        let mut x = Matrix::from_vec(1, 4, vec![-1.0, 0.0, 2.0, -3.0]);
        let mask = relu_inplace(&mut x);
        assert_eq!(x.as_slice(), &[0.0, 0.0, 2.0, 0.0]);
        assert_eq!(mask.as_slice(), &[0.0, 0.0, 1.0, 0.0]);

        let mut dy = Matrix::from_vec(1, 4, vec![5.0, 5.0, 5.0, 5.0]);
        relu_backward(&mut dy, &mask);
        assert_eq!(dy.as_slice(), &[0.0, 0.0, 5.0, 0.0]);
    }
}
