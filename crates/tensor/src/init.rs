//! Parameter initialisation.
//!
//! Xavier/Glorot-uniform for dense layers and scaled-uniform for
//! embeddings, both driven by a caller-supplied RNG so every worker
//! replica initialises identically from the same seed (data-parallel
//! replicas must start from the same point, §2.1).

use crate::matrix::Matrix;
use het_rng::Rng;

/// Xavier/Glorot-uniform initialisation for a `fan_in × fan_out` weight
/// matrix: `U(−√(6/(fan_in+fan_out)), +√(6/(fan_in+fan_out)))`.
pub fn xavier_uniform<R: Rng>(rng: &mut R, fan_in: usize, fan_out: usize) -> Matrix {
    let bound = (6.0 / (fan_in + fan_out) as f64).sqrt() as f32;
    Matrix::from_fn(fan_in, fan_out, |_, _| rng.gen_range(-bound..bound))
}

/// Uniform embedding initialisation in `[−1/√dim, +1/√dim]`, the common
/// scheme for embedding tables (keeps the interaction terms of FM/cross
/// layers at unit scale).
pub fn embedding_uniform<R: Rng>(rng: &mut R, dim: usize) -> Vec<f32> {
    let bound = 1.0 / (dim.max(1) as f64).sqrt() as f32;
    (0..dim).map(|_| rng.gen_range(-bound..bound)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use het_rng::rngs::StdRng;
    use het_rng::SeedableRng;

    #[test]
    fn xavier_respects_bound_and_shape() {
        let mut rng = StdRng::seed_from_u64(7);
        let w = xavier_uniform(&mut rng, 64, 32);
        assert_eq!((w.rows(), w.cols()), (64, 32));
        let bound = (6.0f64 / 96.0).sqrt() as f32;
        assert!(w.as_slice().iter().all(|v| v.abs() <= bound));
        // Not all zero.
        assert!(w.frob_norm() > 0.0);
    }

    #[test]
    fn xavier_is_deterministic_per_seed() {
        let a = xavier_uniform(&mut StdRng::seed_from_u64(1), 8, 8);
        let b = xavier_uniform(&mut StdRng::seed_from_u64(1), 8, 8);
        let c = xavier_uniform(&mut StdRng::seed_from_u64(2), 8, 8);
        assert_eq!(a.as_slice(), b.as_slice());
        assert_ne!(a.as_slice(), c.as_slice());
    }

    #[test]
    fn embedding_init_scales_with_dim() {
        let mut rng = StdRng::seed_from_u64(3);
        let e = embedding_uniform(&mut rng, 16);
        assert_eq!(e.len(), 16);
        assert!(e.iter().all(|v| v.abs() <= 0.25));
    }
}
